//! End-to-end fleet tests: in-process [`capsule_serve::Server`] backends
//! plus an in-process [`Fleet`] coordinator, driven over real TCP.
//!
//! Job mixes stick to the *fast* smoke-scale catalog entries (the full
//! catalog spans 0.1s–10s per smoke job in a debug build; CI's release
//! fleet smoke run covers the full sweep). The mid-flight-kill test uses
//! `ablation_policies` (a few seconds at smoke scale) so the job is
//! reliably still running when its backend dies, and full-scale
//! `fig6_division_tree` (minutes, but promptly cancellable) where a job
//! must stay in flight indefinitely.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use capsule_core::output::Json;
use capsule_fleet::{Fleet, FleetOptions};
use capsule_serve::client::{request_once, Connection, Proto};
use capsule_serve::protocol::{cache_key, Request};
use capsule_serve::{Server, ServerOptions};

/// Smoke-scale entries that finish in well under a second each (debug).
const FAST_SCENARIOS: &[&str] =
    &["table1_config", "toolchain_overhead", "fig6_division_tree", "table3_divisions"];

/// Smoke-scale job that runs for a few seconds in a debug build — long
/// enough to observe and kill mid-flight, short enough to re-run.
const SLOW_RUN: &str = r#"{"op":"run","scenario":"ablation_policies","scale":"smoke"}"#;

/// Full-scale fig6 runs for minutes uncancelled: a job that is
/// guaranteed to still be in flight whenever the test looks.
const ENDLESS_RUN: &str = r#"{"op":"run","scenario":"fig6_division_tree","scale":"full"}"#;

fn run_line(scenario: &str) -> String {
    format!(r#"{{"op":"run","scenario":"{scenario}","scale":"smoke"}}"#)
}

fn start_backend() -> Server {
    start_backend_with_checkpoints(0)
}

/// A backend that checkpoints in-flight jobs every `checkpoint_cycles`
/// simulated cycles (0 disables checkpointing, the plain default).
fn start_backend_with_checkpoints(checkpoint_cycles: u64) -> Server {
    let opts = ServerOptions {
        workers: 1,
        queue: 8,
        cache: 8,
        traces: 16,
        checkpoint_cycles,
        checkpoints: 8,
        flight: 64,
    };
    Server::start("127.0.0.1:0", opts).expect("bind backend")
}

/// Test-sized fleet policy: fast probes and backoffs, generous caps.
fn fleet_opts() -> FleetOptions {
    FleetOptions {
        queue: 16,
        attempts: 4,
        backoff_ms: 10,
        fail_window_ms: 2_000,
        fail_threshold: 2,
        probe_ms: 50,
        connect_timeout_ms: 500,
        job_timeout_ms: 120_000,
        dispatch_wait_ms: 30_000,
        traces: 16,
        flight: 64,
    }
}

fn start_fleet(backends: &[&Server], opts: FleetOptions) -> Fleet {
    let addrs: Vec<String> = backends.iter().map(|s| s.local_addr().to_string()).collect();
    Fleet::start("127.0.0.1:0", &addrs, opts).expect("bind fleet")
}

fn request(fleet: &Fleet, line: &str) -> Json {
    request_once(&fleet.local_addr().to_string(), line).expect("fleet request")
}

fn ok(json: &Json) -> bool {
    json.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_code(json: &Json) -> Option<&str> {
    json.get("error").and_then(Json::as_str)
}

fn stats(fleet: &Fleet) -> Json {
    request(fleet, r#"{"op":"stats"}"#)
}

fn fleet_counter(stats: &Json, name: &str) -> u64 {
    stats
        .get("fleet")
        .and_then(|f| f.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .expect("fleet counter")
}

/// Poll until the condition holds or a generous deadline passes.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn backends_alive(fleet: &Fleet) -> u64 {
    stats(fleet).get("fleet").and_then(|f| f.get("backends_alive")).and_then(Json::as_u64).unwrap()
}

/// The `name` of the backend currently holding an in-flight job, if any.
fn busy_backend(fleet: &Fleet) -> Option<String> {
    let s = stats(fleet);
    s.get("backends")?.as_array()?.iter().find_map(|b| {
        (b.get("in_flight").and_then(Json::as_u64)? > 0)
            .then(|| b.get("name").and_then(Json::as_str).map(str::to_string))?
    })
}

/// Runs the fast scenarios through the fleet; every job must succeed.
/// Returns scenario -> compact report rendering.
fn run_fast_batch(fleet: &Fleet) -> BTreeMap<String, String> {
    let mut reports = BTreeMap::new();
    for scenario in FAST_SCENARIOS {
        let reply = request(fleet, &run_line(scenario));
        assert!(ok(&reply), "{scenario} failed: {}", reply.to_string_compact());
        assert!(reply.get("backend").and_then(Json::as_str).is_some(), "backend attribution");
        assert!(reply.get("attempts").and_then(Json::as_u64).unwrap_or(0) >= 1);
        let report = reply.get("report").map(Json::to_string_compact).expect("report");
        reports.insert((*scenario).to_string(), report);
    }
    reports
}

#[test]
fn fleet_reports_are_byte_identical_to_a_direct_server() {
    let backends = [start_backend(), start_backend()];
    let fleet = start_fleet(&[&backends[0], &backends[1]], fleet_opts());
    let reference = start_backend();

    wait_for("both backends alive", || backends_alive(&fleet) == 2);
    let via_fleet = run_fast_batch(&fleet);

    for (scenario, fleet_report) in &via_fleet {
        let direct = request_once(&reference.local_addr().to_string(), &run_line(scenario))
            .expect("direct request");
        assert!(ok(&direct), "{scenario} failed directly: {}", direct.to_string_compact());
        assert_eq!(
            direct.get("report").map(Json::to_string_compact).as_deref(),
            Some(fleet_report.as_str()),
            "{scenario}: fleet and direct reports must render byte-identically"
        );
    }

    fleet.shutdown();
    reference.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn killing_a_backend_mid_batch_loses_no_jobs() {
    let mut backends = [Some(start_backend()), Some(start_backend())];
    let fleet = {
        let refs: Vec<&Server> = backends.iter().flatten().collect();
        start_fleet(&refs, fleet_opts())
    };
    wait_for("both backends alive", || backends_alive(&fleet) == 2);

    // Phase 1: a healthy-fleet batch pins the expected report bytes.
    let before = run_fast_batch(&fleet);

    // A slow job, dispatched and observed in flight; then its backend is
    // killed under it. Backend index is the digit in the reported name
    // ("b0"/"b1" in the order the fleet was configured with).
    let mut slow = Connection::connect(&fleet.local_addr().to_string()).expect("connect");
    slow.send(SLOW_RUN).expect("send slow job");
    wait_for("slow job to reach a backend", || busy_backend(&fleet).is_some());
    let victim: usize =
        busy_backend(&fleet).unwrap().trim_start_matches('b').parse().expect("backend index");
    backends[victim].take().expect("victim still running").shutdown();

    // The kill cancels the backend's in-flight run; the fleet must
    // classify that as a backend fault and finish the job elsewhere.
    let reply = slow.recv().expect("slow job response");
    assert!(ok(&reply), "slow job failed: {}", reply.to_string_compact());
    assert!(
        reply.get("attempts").and_then(Json::as_u64).unwrap_or(0) >= 2,
        "the job must have been retried: {}",
        reply.to_string_compact()
    );
    let survivor = format!("b{}", 1 - victim);
    assert_eq!(reply.get("backend").and_then(Json::as_str), Some(survivor.as_str()));

    // Phase 2: the same batch on the crippled fleet — every job still
    // completes, with byte-identical reports.
    let after = run_fast_batch(&fleet);
    assert_eq!(before, after, "reports must be unchanged by the backend loss");

    let s = stats(&fleet);
    assert_eq!(fleet_counter(&s, "jobs_completed"), 2 * FAST_SCENARIOS.len() as u64 + 1);
    assert_eq!(fleet_counter(&s, "jobs_failed"), 0);
    assert!(fleet_counter(&s, "retries") >= 1);
    assert!(fleet_counter(&s, "backend_failures") >= 1);
    wait_for("probes to notice the dead backend", || backends_alive(&fleet) == 1);

    fleet.shutdown();
    if let Some(b) = backends[1 - victim].take() {
        b.shutdown();
    }
}

#[test]
fn stats_aggregates_every_backend() {
    let backends = [start_backend(), start_backend()];
    let fleet = start_fleet(&[&backends[0], &backends[1]], fleet_opts());
    wait_for("both backends alive", || backends_alive(&fleet) == 2);

    for scenario in ["table1_config", "toolchain_overhead"] {
        let reply = request(&fleet, &run_line(scenario));
        assert!(ok(&reply), "{scenario} failed: {}", reply.to_string_compact());
    }

    let s = stats(&fleet);
    assert_eq!(fleet_counter(&s, "jobs_accepted"), 2);
    assert_eq!(fleet_counter(&s, "jobs_completed"), 2);
    assert!(fleet_counter(&s, "probes_ok") >= 2);
    let fleet_obj = s.get("fleet").expect("fleet object");
    assert_eq!(fleet_obj.get("backends").and_then(Json::as_u64), Some(2));
    // The coordinator's own dispatch-wait histogram saw both grants.
    assert_eq!(
        fleet_obj.get("dispatch_wait_us").and_then(|h| h.get("count")).and_then(Json::as_u64),
        Some(2)
    );

    let agg = s.get("aggregate").expect("aggregate object");
    assert_eq!(agg.get("backends_reporting").and_then(Json::as_u64), Some(2));
    // Both jobs were cache misses somewhere in the fleet: the merged
    // run-latency histogram counts exactly the two executed runs, and the
    // summed backend counters agree.
    assert_eq!(agg.get("run_us").and_then(|h| h.get("count")).and_then(Json::as_u64), Some(2));
    assert_eq!(
        agg.get("counters").and_then(|c| c.get("jobs_completed")).and_then(Json::as_u64),
        Some(2)
    );

    let listed = s.get("backends").and_then(Json::as_array).expect("backends array");
    assert_eq!(listed.len(), 2);
    for b in listed {
        assert_eq!(b.get("alive").and_then(Json::as_bool), Some(true));
        let remote = b.get("stats").expect("embedded stats");
        assert_eq!(remote.get("op").and_then(Json::as_str), Some("stats"));
        assert_eq!(b.get("workers").and_then(Json::as_u64), Some(1));
    }

    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn cancel_propagates_and_full_fleet_queue_rejects() {
    let backend = start_backend();
    let fleet = start_fleet(&[&backend], FleetOptions { queue: 1, ..fleet_opts() });
    wait_for("backend alive", || backends_alive(&fleet) == 1);

    let mut long = Connection::connect(&fleet.local_addr().to_string()).expect("connect");
    long.send(ENDLESS_RUN).expect("send long job");
    wait_for("long job to reach the backend", || busy_backend(&fleet).is_some());

    // The single fleet queue slot is held by the long job.
    let rejected = request(&fleet, &run_line("table1_config"));
    assert!(!ok(&rejected));
    assert_eq!(error_code(&rejected), Some("queue-full"));
    assert_eq!(rejected.get("queue_capacity").and_then(Json::as_u64), Some(1));

    // A fleet-level cancel reaches the backend and the client sees the
    // backend's structured `cancelled` answer, not a retry storm.
    let started = Instant::now();
    let cancel = request(&fleet, r#"{"op":"cancel"}"#);
    assert!(ok(&cancel));
    assert_eq!(cancel.get("backends_cancelled").and_then(Json::as_u64), Some(1));
    let reply = long.recv().expect("long job response");
    assert_eq!(error_code(&reply), Some("cancelled"), "{}", reply.to_string_compact());
    assert!(started.elapsed() < Duration::from_secs(30), "cancellation was not prompt");

    let s = stats(&fleet);
    assert_eq!(fleet_counter(&s, "jobs_cancelled"), 1);
    assert_eq!(fleet_counter(&s, "jobs_rejected"), 1);
    assert_eq!(fleet_counter(&s, "cancel_requests"), 1);

    // The queue slot is free again: the fleet accepts and finishes jobs.
    let after = request(&fleet, &run_line("table1_config"));
    assert!(ok(&after), "post-cancel job failed: {}", after.to_string_compact());

    fleet.shutdown();
    backend.shutdown();
}

#[test]
fn traced_job_survives_a_killed_backend_and_reconstructs_end_to_end() {
    let mut backends = [Some(start_backend()), Some(start_backend())];
    let fleet = {
        let refs: Vec<&Server> = backends.iter().flatten().collect();
        start_fleet(&refs, fleet_opts())
    };
    wait_for("both backends alive", || backends_alive(&fleet) == 2);

    // A traced slow job; its backend dies under it mid-run.
    let traced_run =
        r#"{"op":"run","scenario":"ablation_policies","scale":"smoke","trace_id":"kill-t1"}"#;
    let mut slow = Connection::connect(&fleet.local_addr().to_string()).expect("connect");
    slow.send(traced_run).expect("send traced job");
    wait_for("traced job to reach a backend", || busy_backend(&fleet).is_some());
    let victim: usize =
        busy_backend(&fleet).unwrap().trim_start_matches('b').parse().expect("backend index");
    backends[victim].take().expect("victim still running").shutdown();

    let reply = slow.recv().expect("traced job response");
    assert!(ok(&reply), "traced job failed: {}", reply.to_string_compact());
    assert!(reply.get("attempts").and_then(Json::as_u64).unwrap_or(0) >= 2, "job was retried");
    assert_eq!(reply.get("trace_id").and_then(Json::as_str), Some("kill-t1"));
    let survivor = format!("b{}", 1 - victim);

    // One `trace` query reconstructs the whole distributed job: the
    // fleet's admission and every dispatch attempt, with the surviving
    // backend's own span tree grafted under the attempt that succeeded.
    let trace = request(&fleet, r#"{"op":"trace","trace_id":"kill-t1"}"#);
    assert!(ok(&trace), "trace query failed: {}", trace.to_string_compact());
    let tree = trace.get("trace").expect("trace tree");
    let spans = tree.get("spans").and_then(Json::as_array).expect("spans");
    let by_name = |name: &str| -> Vec<&Json> {
        spans.iter().filter(|s| s.get("name").and_then(Json::as_str) == Some(name)).collect()
    };
    let attr = |span: &Json, key: &str| {
        span.get("attrs").and_then(|a| a.get(key)).and_then(Json::as_str).map(str::to_string)
    };

    let roots = by_name("fleet.run");
    assert_eq!(roots.len(), 1);
    assert_eq!(attr(roots[0], "scenario").as_deref(), Some("ablation_policies"));
    let root_id = roots[0].get("id").and_then(Json::as_u64).expect("root id");

    let dispatches = by_name("fleet.dispatch");
    assert!(dispatches.len() >= 2, "retry must add a second dispatch span");
    for d in &dispatches {
        assert_eq!(d.get("parent").and_then(Json::as_u64), Some(root_id));
    }
    assert!(
        dispatches.iter().any(|d| attr(d, "outcome").as_deref() == Some("retry")),
        "the killed attempt must be recorded as a retry"
    );
    let winner = dispatches
        .iter()
        .find(|d| attr(d, "outcome").as_deref() == Some("completed"))
        .expect("a completed dispatch span");
    assert_eq!(attr(winner, "backend"), Some(survivor.clone()));
    let winner_id = winner.get("id").and_then(Json::as_u64).expect("winner id");

    // The grafted backend tree: its serve.run root hangs under the
    // winning dispatch span and carries the backend attribution; the
    // execution span completed.
    let serve_roots = by_name("serve.run");
    assert_eq!(serve_roots.len(), 1, "exactly one backend tree grafts (the survivor's)");
    assert_eq!(serve_roots[0].get("parent").and_then(Json::as_u64), Some(winner_id));
    assert_eq!(attr(serve_roots[0], "backend"), Some(survivor.clone()));
    let executes = by_name("serve.execute");
    assert_eq!(executes.len(), 1);
    assert_eq!(attr(executes[0], "outcome").as_deref(), Some("completed"));

    // Backend accounting in the merged tree: the survivor grafted, the
    // dead victim reported as unreachable rather than failing the query.
    let listed = tree.get("backends").and_then(Json::as_array).expect("backends list");
    let grafted = |name: &str| {
        listed
            .iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(name))
            .and_then(|b| b.get("grafted").and_then(Json::as_bool))
    };
    assert_eq!(grafted(&survivor), Some(true));
    assert_eq!(grafted(&format!("b{victim}")), Some(false));
    assert_eq!(tree.get("dropped").and_then(Json::as_u64), Some(0));

    fleet.shutdown();
    if let Some(b) = backends[1 - victim].take() {
        b.shutdown();
    }
}

#[test]
fn fleet_metrics_exposition_is_deterministic_and_golden_when_fresh() {
    let backend = start_backend();
    let fleet = start_fleet(&[&backend], fleet_opts());
    wait_for("backend alive", || backends_alive(&fleet) == 1);

    // Golden: the full exposition of a fresh one-backend fleet, byte for
    // byte. Scrape-perturbed counters (connections, requests) and the
    // continuously bumped probe counters are excluded by design. The
    // pool families are compared separately below: the alive-poll above
    // runs an unpredictable number of `stats` forwards, each of which
    // legitimately moves the pool counters. `flight_recorded_total` is 1:
    // exactly one backend-up transition since boot.
    let expected = "capsule_fleet_backend_alive{backend=\"b0\"} 1\n\
                    capsule_fleet_backend_completed_total{backend=\"b0\"} 0\n\
                    capsule_fleet_backend_dispatched_total{backend=\"b0\"} 0\n\
                    capsule_fleet_backend_ewma_job_us{backend=\"b0\"} 0\n\
                    capsule_fleet_backend_failures_total 0\n\
                    capsule_fleet_backend_failures_total{backend=\"b0\"} 0\n\
                    capsule_fleet_backend_in_flight{backend=\"b0\"} 0\n\
                    capsule_fleet_backend_predicted_wait_us{backend=\"b0\"} 0\n\
                    capsule_fleet_backend_throttled{backend=\"b0\"} 0\n\
                    capsule_fleet_backends 1\n\
                    capsule_fleet_backends_alive 1\n\
                    capsule_fleet_bad_requests_total 0\n\
                    capsule_fleet_cancel_requests_total 0\n\
                    capsule_fleet_checkpoint_fetches_total 0\n\
                    capsule_fleet_checkpoint_puts_total 0\n\
                    capsule_fleet_dispatch_wait_us_bucket{le=\"+Inf\"} 0\n\
                    capsule_fleet_dispatch_wait_us_count 0\n\
                    capsule_fleet_dispatch_wait_us_sum 0\n\
                    capsule_fleet_flight_capacity 64\n\
                    capsule_fleet_flight_recorded_total 1\n\
                    capsule_fleet_job_us_bucket{le=\"+Inf\"} 0\n\
                    capsule_fleet_job_us_count 0\n\
                    capsule_fleet_job_us_sum 0\n\
                    capsule_fleet_jobs_accepted_total 0\n\
                    capsule_fleet_jobs_cancelled_total 0\n\
                    capsule_fleet_jobs_completed_total 0\n\
                    capsule_fleet_jobs_failed_total 0\n\
                    capsule_fleet_jobs_in_flight 0\n\
                    capsule_fleet_jobs_migrated_total 0\n\
                    capsule_fleet_jobs_rejected_total 0\n\
                    capsule_fleet_pending 0\n\
                    capsule_fleet_preempt_requests_total 0\n\
                    capsule_fleet_queue_capacity 16\n\
                    capsule_fleet_retries_total 0\n\
                    capsule_fleet_traces_stored 0\n";
    let first = request(&fleet, r#"{"op":"metrics"}"#);
    assert!(ok(&first), "metrics failed: {}", first.to_string_compact());
    let split_pool = |text: &str| -> (String, Vec<(String, u64)>) {
        let mut rest = String::new();
        let mut pool = Vec::new();
        for line in text.lines() {
            match line.strip_prefix("capsule_fleet_pool_") {
                Some(entry) => {
                    let (name, value) = entry.split_once(' ').expect("pool line");
                    pool.push((name.to_string(), value.parse().expect("pool value")));
                }
                None => {
                    rest.push_str(line);
                    rest.push('\n');
                }
            }
        }
        (rest, pool)
    };
    let exposition = first.get("exposition").and_then(Json::as_str).expect("exposition");
    let (stable, pool) = split_pool(exposition);
    assert_eq!(stable.as_str(), expected);
    // The pool counters are present as a metrics family and satisfy the
    // pool invariants even though their absolute values depend on how
    // many stats polls the alive-wait above needed.
    let pool_value = |name: &str| {
        pool.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_else(|| {
            panic!("missing pool metric {name}");
        })
    };
    assert_eq!(
        pool_value("checkouts_total"),
        pool_value("reuses_total") + pool_value("dials_total"),
        "every checkout is either a reuse or a dial"
    );
    assert!(pool_value("redials_total") <= pool_value("dials_total"));

    // Two back-to-back scrapes are byte-identical, response and all.
    let second = request(&fleet, r#"{"op":"metrics"}"#);
    assert_eq!(first.to_string_compact(), second.to_string_compact());

    // After a job the dispatch counters and latency histograms move.
    let reply = request(&fleet, &run_line("table1_config"));
    assert!(ok(&reply));
    let after = request(&fleet, r#"{"op":"metrics"}"#);
    let text = after.get("exposition").and_then(Json::as_str).expect("exposition");
    assert!(text.contains("capsule_fleet_jobs_completed_total 1\n"), "{text}");
    assert!(text.contains("capsule_fleet_backend_dispatched_total{backend=\"b0\"} 1\n"), "{text}");
    assert!(text.contains("capsule_fleet_dispatch_wait_us_count 1\n"), "{text}");
    assert!(!text.contains("probes_"), "probe counters leaked into the exposition:\n{text}");

    fleet.shutdown();
    backend.shutdown();
}

/// The checkpoint-migration e2e (docs/CHECKPOINT.md): a checkpointed job
/// is preempted through the fleet, the coordinator pulls the checkpoint
/// off the victim backend, the victim is killed, and the job resumes on
/// the survivor *from the checkpoint* — not from cycle 0 — with a report
/// byte-identical to an uninterrupted run.
#[test]
fn preempted_job_migrates_off_a_killed_backend_with_identical_bytes() {
    let mut backends = [
        Some(start_backend_with_checkpoints(50_000)),
        Some(start_backend_with_checkpoints(50_000)),
    ];
    // A generous backoff parks the migrated retry long enough for the
    // test to kill the victim between the fetch and the resume.
    let opts = FleetOptions { backoff_ms: 1_000, ..fleet_opts() };
    let fleet = {
        let refs: Vec<&Server> = backends.iter().flatten().collect();
        start_fleet(&refs, opts)
    };
    let reference = start_backend();
    wait_for("both backends alive", || backends_alive(&fleet) == 2);

    // Baseline bytes from an uninterrupted run on a plain server.
    let direct = request_once(&reference.local_addr().to_string(), SLOW_RUN).expect("direct run");
    assert!(ok(&direct), "baseline failed: {}", direct.to_string_compact());
    let baseline = direct.get("report").map(Json::to_string_compact).expect("baseline report");

    // Dispatch the slow job through the fleet and find its backend.
    let mut slow = Connection::connect(&fleet.local_addr().to_string()).expect("connect");
    slow.send(SLOW_RUN).expect("send slow job");
    wait_for("slow job to reach a backend", || busy_backend(&fleet).is_some());
    let victim: usize =
        busy_backend(&fleet).unwrap().trim_start_matches('b').parse().expect("backend index");

    // Preempt it by cache key through the fleet; the backend may not
    // have admitted the job yet, so poll until one claims it.
    let key = {
        let Request::Run(run) = Request::parse_line(SLOW_RUN).expect("parse run") else {
            panic!("SLOW_RUN is a run request");
        };
        cache_key(&run.canonical())
    };
    let preempt_line = format!(r#"{{"op":"preempt","cache_key":"{key}"}}"#);
    let mut preempt_reply = Json::Null;
    wait_for("preempt to land on a backend", || {
        let r = request(&fleet, &preempt_line);
        if ok(&r) {
            preempt_reply = r;
            true
        } else {
            false
        }
    });
    assert_eq!(
        preempt_reply.get("backend").and_then(Json::as_str),
        Some(format!("b{victim}").as_str()),
        "the victim must be the backend acknowledging the preempt"
    );

    // The dispatcher fetches the checkpoint as soon as the park lands;
    // once the blob is off the victim, the victim can die.
    wait_for("the checkpoint to migrate", || fleet_counter(&stats(&fleet), "jobs_migrated") >= 1);
    backends[victim].take().expect("victim still running").shutdown();

    // The resumed leg completes on the survivor, byte for byte.
    let reply = slow.recv().expect("slow job response");
    assert!(ok(&reply), "migrated job failed: {}", reply.to_string_compact());
    let survivor = format!("b{}", 1 - victim);
    assert_eq!(reply.get("backend").and_then(Json::as_str), Some(survivor.as_str()));
    assert!(
        reply.get("attempts").and_then(Json::as_u64).unwrap_or(0) >= 2,
        "migration must show as a second dispatch attempt: {}",
        reply.to_string_compact()
    );
    assert_eq!(
        reply.get("report").map(Json::to_string_compact).as_deref(),
        Some(baseline.as_str()),
        "the migrated report must be byte-identical to an uninterrupted run"
    );

    let s = stats(&fleet);
    assert!(fleet_counter(&s, "preempt_requests") >= 1);
    assert_eq!(fleet_counter(&s, "jobs_migrated"), 1);
    assert_eq!(fleet_counter(&s, "checkpoint_fetches"), 1);
    assert_eq!(fleet_counter(&s, "checkpoint_puts"), 1);
    assert_eq!(fleet_counter(&s, "jobs_completed"), 1);
    assert_eq!(fleet_counter(&s, "jobs_failed"), 0);
    assert_eq!(
        fleet_counter(&s, "backend_failures"),
        0,
        "a park is not a backend fault and must not trip the failure window"
    );

    // The survivor really resumed from the blob rather than restarting:
    // its own jobs_resumed counter moved.
    let survivor_stats = s
        .get("backends")
        .and_then(Json::as_array)
        .and_then(|arr| {
            arr.iter().find(|b| b.get("name").and_then(Json::as_str) == Some(survivor.as_str()))
        })
        .and_then(|b| b.get("stats"))
        .expect("survivor stats");
    assert_eq!(
        survivor_stats.get("counters").and_then(|c| c.get("jobs_resumed")).and_then(Json::as_u64),
        Some(1),
        "the survivor must have resumed from the checkpoint"
    );

    fleet.shutdown();
    reference.shutdown();
    if let Some(b) = backends[1 - victim].take() {
        b.shutdown();
    }
}

#[test]
fn dead_fleet_answers_control_ops_and_gives_up_on_runs() {
    // Port 1 on localhost is essentially never listening: every probe
    // and dispatch fails, exercising the no-live-backend paths without
    // starting a single server.
    let opts = FleetOptions { attempts: 2, backoff_ms: 5, dispatch_wait_ms: 300, ..fleet_opts() };
    let fleet = Fleet::start("127.0.0.1:0", &["127.0.0.1:1".to_string()], opts).expect("bind");

    for (line, why) in [
        ("not json", "unparseable"),
        (r#"{"op":"frobnicate"}"#, "unknown op"),
        (r#"{"op":"run"}"#, "missing scenario"),
        (r#"{"op":"run","scenario":"nope"}"#, "unknown scenario"),
    ] {
        let reply = request(&fleet, line);
        assert!(!ok(&reply), "{why}: expected rejection, got {}", reply.to_string_compact());
        assert_eq!(error_code(&reply), Some("bad-request"), "{why}");
    }

    // `list` is served by the coordinator itself, identically to a server.
    let list = request(&fleet, r#"{"op":"list"}"#);
    assert!(ok(&list));
    let scenarios = list.get("scenarios").and_then(Json::as_array).expect("scenarios");
    assert_eq!(scenarios.len(), capsule_bench::catalog::entries().len());

    // A valid run has nowhere to go: a structured backend-unavailable
    // failure after the bounded dispatch window, not a hang.
    let reply = request(&fleet, &run_line("table1_config"));
    assert!(!ok(&reply));
    assert_eq!(error_code(&reply), Some("backend-unavailable"));
    assert!(reply.get("detail").and_then(Json::as_str).is_some());

    let s = stats(&fleet);
    assert_eq!(
        s.get("fleet").and_then(|f| f.get("backends_alive")).and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        s.get("aggregate").and_then(|a| a.get("backends_reporting")).and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(fleet_counter(&s, "jobs_failed"), 1);
    assert!(fleet_counter(&s, "probes_failed") >= 1);

    // Shutdown over the wire stops the coordinator.
    let reply = request(&fleet, r#"{"op":"shutdown"}"#);
    assert!(ok(&reply));
    wait_for("fleet to stop", || !fleet.running());
    fleet.join();
}

/// The fleet accepts both wire protocols from its own clients and the
/// answer is byte-identical: the frame layer is transport, not content.
#[test]
fn fleet_answers_v1_and_v2_clients_byte_identically() {
    let backend = start_backend();
    let fleet = start_fleet(&[&backend], fleet_opts());
    let addr = fleet.local_addr().to_string();
    let line = run_line("table1_config");

    // Warm the backend cache so both probes observe identical state.
    let warm = request(&fleet, &line);
    assert!(ok(&warm), "warm run failed: {}", warm.to_string_compact());

    let v1 = request_once(&addr, &line).expect("v1 request");
    let mut framed = Connection::connect_with(&addr, Proto::V2).expect("v2 connect");
    let v2 = framed.request(&line).expect("v2 request");
    assert!(ok(&v1));
    // Everything but the per-request host-timing field must match byte
    // for byte — protocol choice is transport, not content.
    let strip_wait = |j: &Json| {
        let s = j.to_string_compact();
        match s.find(",\"dispatch_wait_us\":") {
            Some(at) => {
                let rest = &s[at + 21..];
                let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
                format!("{}{}", &s[..at], &rest[end..])
            }
            None => s,
        }
    };
    assert_eq!(strip_wait(&v1), strip_wait(&v2), "the fleet's v1 and v2 answers diverged");
    assert_eq!(v2.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(v2.get("backend").and_then(Json::as_str), Some("b0"));

    // Control ops answer over v2 too, tagged with their own op.
    let s = framed.request(r#"{"op":"stats"}"#).expect("v2 stats");
    assert!(ok(&s));
    assert!(s.get("fleet").is_some(), "fleet stats answered over v2");

    fleet.shutdown();
    backend.shutdown();
}

/// A run that deterministically fails job-level on any backend: a
/// 10-cycle budget overruns immediately (`scenario-failed` passthrough).
const FAILING_RUN: &str = r#"{"op":"run","scenario":"table1_config","scale":"smoke","budget":10}"#;

/// The canonical cache key (16-hex) of a run line — also the id its
/// anonymous fleet trace files under.
fn line_key(line: &str) -> String {
    let Request::Run(run) = Request::parse_line(line).expect("parse run") else {
        panic!("not a run line");
    };
    cache_key(&run.canonical())
}

#[test]
fn health_ranks_backends_by_predicted_wait_with_rendezvous_tiebreak() {
    let backends = [start_backend(), start_backend()];
    let fleet = start_fleet(&[&backends[0], &backends[1]], fleet_opts());
    wait_for("both backends alive", || backends_alive(&fleet) == 2);

    // Fresh fleet, no key: both rows idle, ranked in configuration
    // order, each carrying the gauges behind the ranking.
    let fresh = request(&fleet, r#"{"op":"health"}"#);
    assert!(ok(&fresh), "health failed: {}", fresh.to_string_compact());
    assert_eq!(fresh.get("backends_alive").and_then(Json::as_u64), Some(2));
    let rows = fresh.get("backends").and_then(Json::as_array).expect("rows");
    assert_eq!(rows.len(), 2);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.get("rank").and_then(Json::as_u64), Some(i as u64));
        assert_eq!(row.get("name").and_then(Json::as_str), Some(format!("b{i}").as_str()));
        assert_eq!(row.get("alive").and_then(Json::as_bool), Some(true));
        assert_eq!(row.get("predicted_wait_us").and_then(Json::as_u64), Some(0));
        assert_eq!(row.get("ewma_job_us").and_then(Json::as_u64), Some(0));
    }

    // With the slow job's cache key, the idle tie breaks by the same
    // rendezvous preference dispatch uses — so rank 0 must be exactly
    // the backend the job then lands on.
    let key = line_key(SLOW_RUN);
    let keyed = request(&fleet, &format!(r#"{{"op":"health","key":"{key}"}}"#));
    assert!(ok(&keyed));
    assert_eq!(keyed.get("key").and_then(Json::as_str), Some(key.as_str()));
    let predicted_first = keyed
        .get("backends")
        .and_then(Json::as_array)
        .and_then(<[Json]>::first)
        .and_then(|b| b.get("name").and_then(Json::as_str))
        .expect("rank-0 name")
        .to_string();

    let mut slow = Connection::connect(&fleet.local_addr().to_string()).expect("connect");
    slow.send(SLOW_RUN).expect("send slow job");
    wait_for("slow job to reach a backend", || busy_backend(&fleet).is_some());
    assert_eq!(busy_backend(&fleet).as_deref(), Some(predicted_first.as_str()));

    // While one backend is loaded, the idle one ranks first: its
    // deterministic predicted wait is strictly lower.
    let loaded = request(&fleet, r#"{"op":"health"}"#);
    let rows = loaded.get("backends").and_then(Json::as_array).expect("rows");
    assert_eq!(
        rows[0].get("in_flight").and_then(Json::as_u64),
        Some(0),
        "the idle backend must rank first: {}",
        loaded.to_string_compact()
    );
    assert_eq!(rows[1].get("name").and_then(Json::as_str), Some(predicted_first.as_str()));
    assert_eq!(rows[1].get("in_flight").and_then(Json::as_u64), Some(1));
    let p0 = rows[0].get("predicted_wait_us").and_then(Json::as_u64).unwrap();
    let p1 = rows[1].get("predicted_wait_us").and_then(Json::as_u64).unwrap();
    assert!(p0 < p1, "ranking must follow predicted wait ({p0} vs {p1})");

    let reply = slow.recv().expect("slow job response");
    assert!(ok(&reply), "slow job failed: {}", reply.to_string_compact());
    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}

/// Satellite pin: the full preempt-then-migrate flow books exactly the
/// same counters whichever wire protocol the client spoke — both
/// protocols funnel into one dispatch path — and `jobs_migrated` stays
/// orthogonal to the final-outcome counters: the job counts once in
/// `jobs_completed` AND once in `jobs_migrated`, never twice anywhere.
#[test]
fn preempt_then_migrate_books_identical_counters_on_both_protocols() {
    fn migrate_and_snapshot(proto: Proto) -> BTreeMap<String, u64> {
        let backends =
            [start_backend_with_checkpoints(50_000), start_backend_with_checkpoints(50_000)];
        let fleet = start_fleet(&[&backends[0], &backends[1]], fleet_opts());
        wait_for("both backends alive", || backends_alive(&fleet) == 2);

        let mut conn =
            Connection::connect_with(&fleet.local_addr().to_string(), proto).expect("connect");
        conn.send(SLOW_RUN).expect("send slow job");
        wait_for("slow job to reach a backend", || busy_backend(&fleet).is_some());

        let key = line_key(SLOW_RUN);
        let preempt_line = format!(r#"{{"op":"preempt","cache_key":"{key}"}}"#);
        wait_for("preempt to land", || ok(&request(&fleet, &preempt_line)));
        wait_for("the checkpoint to migrate", || {
            fleet_counter(&stats(&fleet), "jobs_migrated") >= 1
        });

        let reply = conn.recv().expect("migrated job response");
        assert!(ok(&reply), "migrated job failed: {}", reply.to_string_compact());
        assert!(reply.get("attempts").and_then(Json::as_u64).unwrap_or(0) >= 2);

        // `preempt_requests` is deliberately not compared: landing the
        // preempt takes an unpredictable number of polls while the
        // backend is still admitting the job.
        let s = stats(&fleet);
        let mut snapshot = BTreeMap::new();
        for name in [
            "jobs_accepted",
            "jobs_rejected",
            "jobs_completed",
            "jobs_failed",
            "jobs_cancelled",
            "jobs_migrated",
            "retries",
            "backend_failures",
            "checkpoint_fetches",
            "checkpoint_puts",
        ] {
            snapshot.insert(name.to_string(), fleet_counter(&s, name));
        }
        fleet.shutdown();
        for b in backends {
            b.shutdown();
        }
        snapshot
    }

    let v1 = migrate_and_snapshot(Proto::V1);
    let v2 = migrate_and_snapshot(Proto::V2);
    assert_eq!(v1, v2, "the two wire protocols must book identical counters");
    assert_eq!(v1.get("jobs_accepted"), Some(&1));
    assert_eq!(v1.get("jobs_completed"), Some(&1));
    assert_eq!(v1.get("jobs_migrated"), Some(&1), "migration counted once, alongside completion");
    assert_eq!(v1.get("jobs_failed"), Some(&0));
    assert_eq!(v1.get("retries"), Some(&1), "the resume leg is the only retry");
    assert_eq!(v1.get("backend_failures"), Some(&0), "a park is not a backend fault");
    assert_eq!(v1.get("checkpoint_fetches"), Some(&1));
    assert_eq!(v1.get("checkpoint_puts"), Some(&1));
}

#[test]
fn fleet_tail_retention_and_dump_capture_troubled_jobs() {
    let backend = start_backend();
    let fleet = start_fleet(&[&backend], fleet_opts());
    wait_for("backend alive", || backends_alive(&fleet) == 1);

    // A clean first-attempt success with no slow history behind it: the
    // tail policy drops its anonymous trace.
    let fast = request(&fleet, &run_line("table1_config"));
    assert!(ok(&fast), "fast run failed: {}", fast.to_string_compact());
    let fast_key = line_key(&run_line("table1_config"));
    let dropped = request(&fleet, &format!(r#"{{"op":"trace","trace_id":"{fast_key}"}}"#));
    assert!(!ok(&dropped), "fast job's trace must have been dropped");
    assert_eq!(error_code(&dropped), Some("unknown-trace"));

    // A job-level failure is always retained, under its cache-key hex.
    let failing = request(&fleet, FAILING_RUN);
    assert!(!ok(&failing));
    assert_eq!(error_code(&failing), Some("scenario-failed"));
    let fail_key = line_key(FAILING_RUN);
    let kept = request(&fleet, &format!(r#"{{"op":"trace","trace_id":"{fail_key}"}}"#));
    assert!(ok(&kept), "failed job's trace must be tail-retained: {}", kept.to_string_compact());
    let spans =
        kept.get("trace").and_then(|t| t.get("spans")).and_then(Json::as_array).expect("spans");
    assert!(
        spans.iter().any(|s| s.get("name").and_then(Json::as_str) == Some("fleet.dispatch")),
        "the retained tree must include the dispatch span"
    );

    // The dump artifact: versioned, with the flight ring, the retained
    // trace (and only that one), the gauges, and the counters.
    let dump = request(&fleet, r#"{"op":"dump"}"#);
    assert!(ok(&dump), "dump failed: {}", dump.to_string_compact());
    let d = dump.get("dump").expect("dump object");
    assert_eq!(d.get("schema").and_then(Json::as_str), Some("capsule-dump/1"));
    assert_eq!(d.get("source").and_then(Json::as_str), Some("fleet"));
    let flight = d.get("flight").expect("flight ring");
    assert_eq!(flight.get("capacity").and_then(Json::as_u64), Some(64));
    let events = flight.get("events").and_then(Json::as_array).expect("events");
    let kinds: Vec<&str> =
        events.iter().filter_map(|e| e.get("kind").and_then(Json::as_str)).collect();
    assert_eq!(kinds.first(), Some(&"backend-up"), "the boot transition leads the ring");
    for kind in ["enqueue", "dispatch", "complete"] {
        assert!(kinds.contains(&kind), "missing {kind} in {kinds:?}");
    }
    assert!(
        events.iter().any(|e| {
            e.get("cache_key").and_then(Json::as_str) == Some(fail_key.as_str())
                && e.get("outcome").and_then(Json::as_str) == Some("failed")
        }),
        "the failing job's completion must be on the ring: {}",
        flight.to_string_compact()
    );
    let trace_ids: Vec<&str> = d
        .get("traces")
        .and_then(Json::as_array)
        .expect("traces")
        .iter()
        .filter_map(|t| t.get("trace_id").and_then(Json::as_str))
        .collect();
    assert!(trace_ids.contains(&fail_key.as_str()));
    assert!(!trace_ids.contains(&fast_key.as_str()), "a dropped trace must not be in the dump");
    let gauges = d.get("gauges").expect("gauges");
    assert_eq!(gauges.get("backends_alive").and_then(Json::as_u64), Some(1));
    assert_eq!(gauges.get("jobs_in_flight").and_then(Json::as_u64), Some(0));
    let counters = d.get("counters").expect("counters");
    assert_eq!(counters.get("jobs_completed").and_then(Json::as_u64), Some(1));
    assert_eq!(counters.get("jobs_failed").and_then(Json::as_u64), Some(1));

    fleet.shutdown();
    backend.shutdown();
}
