//! The fleet coordinator: a TCP server speaking `capsule-serve/1`
//! upstream that dispatches jobs across N `capsule-serve` backends
//! downstream.
//!
//! Dispatch mirrors the paper's conditional-division policy one level
//! up. A worker in CAPSULE probes the hardware and divides only if a
//! context is free, throttled by the recent death rate; the coordinator
//! probes backends (liveness + pool geometry from `stats`, plus its own
//! in-flight counts), grants a job to a backend with a free worker slot,
//! queues it while none has one, and refuses to route to a backend whose
//! recent dispatch-failure count crossed the sliding-window threshold
//! (see [`crate::backend::FailureWindow`]). Routing is cache-affine:
//! rendezvous hashing over the job's canonical form keeps each backend's
//! LRU result cache hot ([`crate::dispatch`]). Failed dispatches retry
//! with exponential backoff on the next-preferred backend; client
//! cancels broadcast to the backends; `stats` aggregates every backend's
//! counters and latency histograms into one fleet view.
//!
//! Preemption is the drain lever (docs/CHECKPOINT.md): a fleet-level
//! `preempt` parks a checkpointable job on whichever backend runs it,
//! and the dispatcher — which is still waiting on that job's `run`
//! round-trip — sees the structured `preempted` answer, fetches the
//! checkpoint off the backend while it is still reachable, and retries
//! on the next-preferred backend with `resume_from`, so the job
//! continues from its last checkpoint instead of restarting. A fleet
//! preempt therefore *migrates* rather than parks; the raw
//! `checkpoint-fetch`/`checkpoint-put` ops are forwarded for tooling
//! that wants to move parked state by hand.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use capsule_core::output::Json;
use capsule_core::stats::Histogram;
use capsule_core::{
    FlightKind, FlightRecorder, MetricsRegistry, SpanId, TailPolicy, TraceRecorder, TraceStore,
};
use capsule_serve::client::{self, ClientError, ConnectionPool, Proto};
use capsule_serve::frame::{self, FrameFlow, ReplySink};
use capsule_serve::protocol::{
    cache_key as protocol_cache_key, error_response, fnv1a64, hex_encode, list_response,
    response_head, Request, RunRequest,
};

use crate::backend::Backend;
use crate::dispatch::preference_order;

/// Coordinator sizing and policy knobs (`CAPSULE_FLEET_*`).
#[derive(Debug, Clone, Copy)]
pub struct FleetOptions {
    /// Max run jobs admitted concurrently — dispatching or waiting for a
    /// backend slot (`CAPSULE_FLEET_QUEUE`). Beyond it, `queue-full`.
    pub queue: usize,
    /// Dispatch attempts per job, first try included
    /// (`CAPSULE_FLEET_ATTEMPTS`).
    pub attempts: usize,
    /// Base retry backoff in ms, doubling per attempt
    /// (`CAPSULE_FLEET_BACKOFF_MS`).
    pub backoff_ms: u64,
    /// Sliding failure-window length in ms
    /// (`CAPSULE_FLEET_FAIL_WINDOW_MS`).
    pub fail_window_ms: u64,
    /// Failures within the window that throttle a backend; 0 disables
    /// (`CAPSULE_FLEET_FAIL_THRESHOLD`).
    pub fail_threshold: usize,
    /// Health-probe period in ms (`CAPSULE_FLEET_PROBE_MS`).
    pub probe_ms: u64,
    /// TCP connect timeout toward backends in ms
    /// (`CAPSULE_FLEET_CONNECT_TIMEOUT_MS`).
    pub connect_timeout_ms: u64,
    /// Cap on one backend round-trip in ms, 0 for none
    /// (`CAPSULE_FLEET_JOB_TIMEOUT_MS`).
    pub job_timeout_ms: u64,
    /// Max total wait for a free backend slot in ms
    /// (`CAPSULE_FLEET_DISPATCH_WAIT_MS`).
    pub dispatch_wait_ms: u64,
    /// Retained span trees for the `trace` op (`CAPSULE_FLEET_TRACES`);
    /// 0 disables request tracing entirely.
    pub traces: usize,
    /// Flight-recorder ring capacity in events (`CAPSULE_FLEET_FLIGHT`);
    /// 0 disables the always-on recorder.
    pub flight: usize,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            queue: 64,
            attempts: 4,
            backoff_ms: 50,
            fail_window_ms: 5_000,
            fail_threshold: 3,
            probe_ms: 500,
            connect_timeout_ms: 1_000,
            job_timeout_ms: 600_000,
            dispatch_wait_ms: 60_000,
            traces: 64,
            flight: 1024,
        }
    }
}

impl FleetOptions {
    /// Defaults overridden by the `CAPSULE_FLEET_*` environment.
    /// Malformed values warn on stderr and fall back
    /// (see [`capsule_serve::env`]).
    pub fn from_env() -> FleetOptions {
        use capsule_serve::env::{env_u64, env_usize};
        let d = FleetOptions::default();
        FleetOptions {
            queue: env_usize("CAPSULE_FLEET_QUEUE", d.queue).max(1),
            attempts: env_usize("CAPSULE_FLEET_ATTEMPTS", d.attempts).max(1),
            backoff_ms: env_u64("CAPSULE_FLEET_BACKOFF_MS", d.backoff_ms),
            fail_window_ms: env_u64("CAPSULE_FLEET_FAIL_WINDOW_MS", d.fail_window_ms).max(1),
            fail_threshold: env_usize("CAPSULE_FLEET_FAIL_THRESHOLD", d.fail_threshold),
            probe_ms: env_u64("CAPSULE_FLEET_PROBE_MS", d.probe_ms).max(10),
            connect_timeout_ms: env_u64("CAPSULE_FLEET_CONNECT_TIMEOUT_MS", d.connect_timeout_ms)
                .max(1),
            job_timeout_ms: env_u64("CAPSULE_FLEET_JOB_TIMEOUT_MS", d.job_timeout_ms),
            dispatch_wait_ms: env_u64("CAPSULE_FLEET_DISPATCH_WAIT_MS", d.dispatch_wait_ms).max(1),
            traces: env_usize("CAPSULE_FLEET_TRACES", d.traces),
            flight: env_usize("CAPSULE_FLEET_FLIGHT", d.flight),
        }
    }
}

/// Fleet counters. Exact meanings are pinned in docs/FLEET.md; the two
/// invariants that hold on both wire protocols (they share this very
/// code path) are:
///
/// - every **accepted** run reaches exactly one final-outcome counter
///   (`jobs_completed` / `jobs_failed` / `jobs_cancelled`), including
///   dispatch give-ups and shutdown aborts, so when the fleet is
///   quiescent `jobs_accepted == completed + failed + cancelled`;
/// - `jobs_migrated` counts checkpoint migrations and is **orthogonal**
///   to the final-outcome counters: a preempt-then-migrate job that then
///   completes adds one to `jobs_migrated` *and* one to
///   `jobs_completed` — migration describes the journey, not the end.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    bad_requests: AtomicU64,
    /// Runs admitted past the fleet queue check.
    jobs_accepted: AtomicU64,
    /// Runs refused at admission (`queue-full`); never admitted, so
    /// these reach no final-outcome counter.
    jobs_rejected: AtomicU64,
    /// Accepted runs answered by a backend with `ok:true`.
    jobs_completed: AtomicU64,
    /// Accepted runs that ended in any error other than `cancelled`:
    /// job-level verdicts passed through, dispatch give-ups, and
    /// shutdown aborts.
    jobs_failed: AtomicU64,
    /// Accepted runs that ended `cancelled` by a client cancel.
    jobs_cancelled: AtomicU64,
    /// Dispatch attempts after the first, whatever their reason
    /// (backend fault, migration resume, bad checkpoint).
    retries: AtomicU64,
    /// Dispatch attempts charged to a backend's failure window.
    backend_failures: AtomicU64,
    cancel_requests: AtomicU64,
    preempt_requests: AtomicU64,
    /// Checkpoints successfully pulled off a preempting backend for
    /// resumption elsewhere. Orthogonal to the final-outcome counters.
    jobs_migrated: AtomicU64,
    checkpoint_fetches: AtomicU64,
    checkpoint_puts: AtomicU64,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
}

#[derive(Default)]
struct Latencies {
    /// Admission to backend grant.
    dispatch_wait_us: Histogram,
    /// Backend grant to usable response (the final attempt only).
    job_us: Histogram,
}

struct State {
    backends: Vec<Backend>,
    /// Run jobs admitted and not yet answered.
    pending: usize,
}

struct Shared {
    opts: FleetOptions,
    addr: SocketAddr,
    running: AtomicBool,
    state: Mutex<State>,
    /// Signalled whenever a slot may have freed (job done, probe news).
    slots: Condvar,
    /// Bumped by every fleet-level `cancel`; a job dispatched under an
    /// older generation treats a backend `cancelled` answer as a backend
    /// fault (retry), a newer one as the client's own cancel (pass it
    /// through).
    cancel_generation: AtomicU64,
    counters: Counters,
    latencies: Mutex<Latencies>,
    traces: Mutex<TraceStore>,
    /// Always-on flight recorder: a bounded ring of job-lifecycle and
    /// backend-liveness events, serialized by `dump`.
    flight: FlightRecorder,
    /// Tail-sampling policy for anonymous traces: every run is traced,
    /// but only slow/failed/retried/migrated (or explicitly requested)
    /// trees reach the bounded store.
    tail: Mutex<TailPolicy>,
    /// Keep-alive `capsule-serve/2` connections toward the backends.
    /// Every dispatch and forwarded op checks a connection out of here,
    /// so the steady-state cost per job is one framed round-trip — not
    /// a TCP connect plus a protocol preamble plus the round-trip.
    pool: ConnectionPool,
    /// Read handles of open client connections, severed on shutdown so
    /// keep-alive clients see a closed socket instead of a zombie fleet
    /// (mirrors the same registry in `capsule_serve::server`).
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// Registers a connection for shutdown severing; deregisters on drop.
struct ConnGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl<'a> ConnGuard<'a> {
    fn register(shared: &'a Shared, stream: &TcpStream) -> Option<ConnGuard<'a>> {
        let handle = stream.try_clone().ok()?;
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        lock(&shared.conns).insert(id, handle);
        Some(ConnGuard { shared, id })
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        lock(&self.shared.conns).remove(&self.id);
    }
}

/// Per-job trace state at the fleet level: the coordinator's own span
/// tree plus the list of backends the job was forwarded to, so the
/// `trace` op can later fetch and graft each backend's tree under the
/// dispatch span that sent the job there.
struct FleetTrace {
    id: String,
    /// True when the client supplied the trace id. Explicit traces are
    /// always retained; anonymous ones (filed under the job's cache-key
    /// hex) only when tail sampling keeps them.
    explicit: bool,
    rec: TraceRecorder,
    root: SpanId,
    /// `(name, addr, dispatch-span id)` per forwarded attempt.
    backends: Vec<(String, String, u32)>,
}

impl FleetTrace {
    /// Every run is traced: under the client's id when one was sent,
    /// otherwise anonymously under the cache-key hex (which the `trace`
    /// op accepts), so a job that turns out slow or troubled is
    /// reconstructable after the fact.
    fn start(run: &RunRequest, key: u64) -> FleetTrace {
        let (id, explicit) = match &run.trace_id {
            Some(id) => (id.clone(), true),
            None => (format!("{key:016x}"), false),
        };
        let mut rec = TraceRecorder::new(64, 256);
        let root = rec.span("fleet.run", None);
        rec.attr(root, "scenario", &run.scenario);
        rec.attr(root, "scale", run.scale.name());
        FleetTrace { id, explicit, rec, root, backends: Vec::new() }
    }

    /// Closes the root span and files the tree (with the backend list
    /// appended) under the trace id.
    fn store(mut self, shared: &Shared) {
        self.rec.end(self.root);
        let mut v = self.rec.finish().to_json();
        let mut list = Vec::with_capacity(self.backends.len());
        for (name, addr, span) in &self.backends {
            let mut b = Json::object();
            b.push("name", name.as_str()).push("addr", addr.as_str()).push("span", *span);
            list.push(b);
        }
        v.push("backends", Json::Array(list));
        lock(&shared.traces).put(&self.id, v);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running fleet coordinator.
pub struct Fleet {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    probe: Option<JoinHandle<()>>,
}

impl Fleet {
    /// Binds `addr` and starts the accept loop and the backend health
    /// prober for `backends` (a list of `HOST:PORT` strings).
    ///
    /// # Errors
    ///
    /// Socket errors from binding, or `InvalidInput` when `backends` is
    /// empty.
    pub fn start(addr: &str, backends: &[String], opts: FleetOptions) -> std::io::Result<Fleet> {
        if backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a fleet needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let window = Duration::from_millis(opts.fail_window_ms);
        let backends: Vec<Backend> = backends
            .iter()
            .enumerate()
            .map(|(i, a)| Backend::new(a.clone(), i, window, opts.fail_threshold))
            .collect();
        let shared = Arc::new(Shared {
            opts,
            addr: local,
            running: AtomicBool::new(true),
            state: Mutex::new(State { backends, pending: 0 }),
            slots: Condvar::new(),
            cancel_generation: AtomicU64::new(0),
            counters: Counters::default(),
            latencies: Mutex::new(Latencies::default()),
            traces: Mutex::new(TraceStore::new(opts.traces)),
            flight: FlightRecorder::new(opts.flight),
            tail: Mutex::new(TailPolicy::new()),
            pool: ConnectionPool::new(Proto::V2, Duration::from_millis(opts.connect_timeout_ms)),
            conns: Mutex::new(std::collections::HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        install_dump_hooks(&shared);
        let probe = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || probe_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(Fleet { shared, accept: Some(accept), probe: Some(probe) })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// False once shutdown has started.
    pub fn running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// Starts shutdown exactly as the `shutdown` request does. Backends
    /// are left running — they are managed independently.
    pub fn request_shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Waits for the accept and probe threads to exit.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.probe.take() {
            let _ = h.join();
        }
    }

    /// [`Fleet::request_shutdown`] followed by [`Fleet::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.running.swap(false, Ordering::SeqCst) {
        // Wake slot-waiters so they answer `shutting-down`, and the
        // accept loop so it observes `running == false`.
        shared.slots.notify_all();
        // Sever the read side of open client connections so keep-alive
        // clients see EOF; pending responses still flush.
        for conn in lock(&shared.conns).values() {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
        let _ = TcpStream::connect(shared.addr);
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if !shared.running.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || handle_connection(&shared, stream));
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    use std::io::{BufRead, BufReader, Write};
    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    let _guard = ConnGuard::register(shared, &stream);
    // Same first-byte negotiation as capsule-serve itself: a framed
    // `capsule-serve/2` preamble starts with `C`, a v1 JSON line with
    // `{`, so one peek routes the connection without consuming bytes.
    let mut first = [0u8; 1];
    match stream.peek(&mut first) {
        Ok(0) | Err(_) => return,
        Ok(_) => {}
    }
    if first[0] == frame::MAGIC[0] {
        let _ = frame::serve_v2(stream, |f, sink| handle_frame(shared, f, sink));
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (response, shutdown) = handle_line(shared, &line);
        let mut bytes = response.to_string_compact().into_bytes();
        bytes.push(b'\n');
        if writer.write_all(&bytes).and_then(|()| writer.flush()).is_err() {
            break;
        }
        if shutdown {
            initiate_shutdown(shared);
            break;
        }
    }
}

/// One `capsule-serve/2` frame at the fleet. Control ops answer inline;
/// a `run` moves to its own dispatcher thread (dispatch blocks on
/// backend slots and round-trips, by design) replying through the
/// connection's writer when it resolves — so one fleet connection can
/// carry many concurrent jobs, completing out of submission order.
fn handle_frame(shared: &Arc<Shared>, f: frame::Frame, sink: &ReplySink) -> FrameFlow {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let Some(expected_op) = frame::tag_op(f.tag) else {
        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        sink.send_bad_frame(f.id, "unknown frame tag");
        return FrameFlow::Continue;
    };
    let Ok(text) = std::str::from_utf8(&f.payload) else {
        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        sink.send_bad_frame(f.id, "frame payload is not UTF-8");
        return FrameFlow::Continue;
    };
    let request = match Request::parse_line(text) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            sink.send_json(f.id, f.tag, &error_response("?", "bad-request", Some(&e.message)));
            return FrameFlow::Continue;
        }
    };
    if request.op() != expected_op {
        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        sink.send_bad_frame(f.id, "frame tag does not match the payload op");
        return FrameFlow::Continue;
    }
    if let Request::Run(run) = request {
        let shared = Arc::clone(shared);
        let sink = sink.clone();
        let id = f.id;
        std::thread::spawn(move || {
            let response = handle_run(&shared, &run);
            let _ = sink.send_str(id, frame::tag::RUN, &response.to_string_compact());
        });
        return FrameFlow::Continue;
    }
    let (response, shutdown) = answer(shared, request);
    sink.send_json(f.id, f.tag, &response);
    if shutdown {
        initiate_shutdown(shared);
        return FrameFlow::Close;
    }
    FrameFlow::Continue
}

fn handle_line(shared: &Shared, line: &str) -> (Json, bool) {
    let request = match Request::parse_line(line) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return (error_response("?", "bad-request", Some(&e.message)), false);
        }
    };
    answer(shared, request)
}

/// Routes one parsed request; shared by both protocol front ends.
fn answer(shared: &Shared, request: Request) -> (Json, bool) {
    match request {
        Request::Run(run) => (handle_run(shared, &run), false),
        Request::Cancel => (handle_cancel(shared), false),
        Request::Stats => (stats_response(shared), false),
        Request::List => (list_response(), false),
        Request::Metrics => (metrics_response(shared), false),
        Request::Trace { trace_id } => (trace_response(shared, &trace_id), false),
        Request::Preempt { cache_key } => (handle_preempt(shared, &cache_key), false),
        Request::Health { key } => (health_response(shared, key.as_deref()), false),
        Request::Dump => (dump_response(shared), false),
        Request::CheckpointFetch { token } => (handle_checkpoint_fetch(shared, &token), false),
        Request::CheckpointPut { token, canonical, blob } => {
            (handle_checkpoint_put(shared, &token, &canonical, &blob), false)
        }
        Request::Shutdown => (response_head("shutdown", true), true),
    }
}

/// Alive backends as `(name, addr)` in rendezvous order for `key`, so
/// checkpoint ops land on the same backend a resume would route to.
fn alive_in_preference_order(shared: &Shared, key: u64) -> Vec<(String, String)> {
    let st = lock(&shared.state);
    let addrs: Vec<String> = st.backends.iter().map(|b| b.addr.clone()).collect();
    preference_order(&addrs, key)
        .into_iter()
        .filter(|&i| st.backends[i].alive)
        .map(|i| (st.backends[i].name.clone(), st.backends[i].addr.clone()))
        .collect()
}

/// The 16-hex checkpoint token is the job's FNV cache key rendered in
/// hex; parse it back for rendezvous routing (the parser already
/// guaranteed the format, so this cannot fail in practice).
fn token_key(token: &str) -> u64 {
    u64::from_str_radix(token, 16).unwrap_or(0)
}

/// The fleet `preempt` op: broadcast in preference order until a backend
/// acknowledges owning the job. The dispatcher thread still waiting on
/// that job's run then migrates it (see [`dispatch_with_retries`]).
fn handle_preempt(shared: &Shared, cache_key: &str) -> Json {
    shared.counters.preempt_requests.fetch_add(1, Ordering::Relaxed);
    let line = {
        let mut q = Json::object();
        q.push("op", "preempt").push("cache_key", cache_key);
        q.to_string_compact()
    };
    for (name, addr) in alive_in_preference_order(shared, token_key(cache_key)) {
        if let Some(mut json) = forward_op(shared, &addr, &line) {
            json.push("backend", name.as_str());
            return json;
        }
    }
    let mut r = error_response(
        "preempt",
        "not-running",
        Some("no backend reports an admitted checkpointable job with this cache_key"),
    );
    r.push("cache_key", cache_key);
    r
}

/// The fleet `checkpoint-fetch` op: first backend (preference order)
/// holding the token answers; the response passes through with backend
/// attribution added.
fn handle_checkpoint_fetch(shared: &Shared, token: &str) -> Json {
    for (name, addr) in alive_in_preference_order(shared, token_key(token)) {
        let line = {
            let mut q = Json::object();
            q.push("op", "checkpoint-fetch").push("token", token);
            q.to_string_compact()
        };
        if let Some(mut json) = forward_op(shared, &addr, &line) {
            shared.counters.checkpoint_fetches.fetch_add(1, Ordering::Relaxed);
            json.push("backend", name.as_str());
            return json;
        }
    }
    let mut r = error_response(
        "checkpoint-fetch",
        "unknown-checkpoint",
        Some("no live backend holds a checkpoint for this token"),
    );
    r.push("token", token);
    r
}

/// The fleet `checkpoint-put` op: validates the token against the
/// canonical form (same rule a backend enforces) and stores the blob on
/// the most-preferred live backend, so a later resume routes straight to
/// the checkpoint it needs.
fn handle_checkpoint_put(shared: &Shared, token: &str, canonical: &str, blob: &[u8]) -> Json {
    if protocol_cache_key(canonical) != token {
        return error_response(
            "checkpoint-put",
            "checkpoint-mismatch",
            Some("token is not the cache_key of the supplied canonical request"),
        );
    }
    let line = {
        let mut q = Json::object();
        q.push("op", "checkpoint-put")
            .push("token", token)
            .push("canonical", canonical)
            .push("blob", hex_encode(blob).as_str());
        q.to_string_compact()
    };
    for (name, addr) in alive_in_preference_order(shared, token_key(token)) {
        if let Some(mut json) = forward_op(shared, &addr, &line) {
            shared.counters.checkpoint_puts.fetch_add(1, Ordering::Relaxed);
            json.push("backend", name.as_str());
            return json;
        }
    }
    error_response("checkpoint-put", "backend-unavailable", Some("no live backend took the blob"))
}

/// How one backend round-trip ended.
enum Outcome {
    /// A usable answer for the client (success or a job-level failure).
    Respond(Json),
    /// A backend fault: try the next-preferred backend.
    Retry { error: String, mark_dead: bool },
    /// The backend parked the job at a checkpoint boundary (someone
    /// preempted it). The dispatcher migrates the checkpoint and resumes
    /// on the next-preferred backend instead of passing the park on.
    Preempted { json: Json },
    /// The backend rejected the migrated checkpoint blob: the fault is
    /// the coordinator's artifact, not the backend, so the dispatcher
    /// drops the blob and retries from scratch *without* charging the
    /// backend's failure window (a healthy backend must not be
    /// throttled for a corrupt blob it was handed).
    BadCheckpoint,
}

/// A checkpoint pulled off a preempting backend, ready to re-post to the
/// migration target ahead of the resumed dispatch.
struct Migration {
    token: String,
    canonical: String,
    blob_hex: String,
}

/// Fetches a parked job's checkpoint from the backend that parked it.
/// `None` (backend already gone, store evicted, malformed answer) means
/// the retry simply restarts the job from scratch — correct, just slower.
fn fetch_checkpoint(shared: &Shared, addr: &str, token: &str) -> Option<Migration> {
    if token.is_empty() {
        return None;
    }
    let line = {
        let mut q = Json::object();
        q.push("op", "checkpoint-fetch").push("token", token);
        q.to_string_compact()
    };
    let json = forward_op(shared, addr, &line)?;
    let migration = Migration {
        token: token.to_string(),
        canonical: json.get("canonical").and_then(Json::as_str)?.to_string(),
        blob_hex: json.get("blob").and_then(Json::as_str)?.to_string(),
    };
    shared.counters.checkpoint_fetches.fetch_add(1, Ordering::Relaxed);
    Some(migration)
}

/// Re-posts a fetched checkpoint to the migration target. On success the
/// resumed run finds its blob locally; on failure the dispatch proceeds
/// without `resume_from` and restarts from scratch.
fn push_checkpoint(shared: &Shared, addr: &str, m: &Migration) -> bool {
    let line = {
        let mut q = Json::object();
        q.push("op", "checkpoint-put")
            .push("token", m.token.as_str())
            .push("canonical", m.canonical.as_str())
            .push("blob", m.blob_hex.as_str());
        q.to_string_compact()
    };
    let ok = forward_op(shared, addr, &line).is_some();
    if ok {
        shared.counters.checkpoint_puts.fetch_add(1, Ordering::Relaxed);
    }
    ok
}

/// How a slot-acquisition attempt ended.
enum Acquire {
    Granted(usize),
    TimedOut,
    ShuttingDown,
}

fn handle_run(shared: &Shared, run: &RunRequest) -> Json {
    // The canonical form is both the routing key (cache affinity) and
    // the base of the line forwarded downstream, so fleet and backend
    // cache keys agree by construction. Observability fields ride on the
    // forwarded line but never enter the canonical form or the key.
    let canonical = run.canonical();
    let key = fnv1a64(canonical.as_bytes());
    let forward = forward_line(run, &canonical);
    let mut trace = Some(FleetTrace::start(run, key));

    {
        let mut st = lock(&shared.state);
        if !shared.running.load(Ordering::SeqCst) {
            shared.flight.record(FlightKind::Deny, Some(key), None, "shutting-down");
            return error_response("run", "shutting-down", None);
        }
        if st.pending >= shared.opts.queue {
            shared.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            drop(st);
            shared.flight.record(FlightKind::Deny, Some(key), None, "queue-full");
            if let Some(mut t) = trace.take() {
                t.rec.event(t.root, "queue-full", &[]);
                // A rejected job never ran, so there is no duration for
                // the tail policy; keep only explicitly requested traces.
                if t.explicit {
                    t.store(shared);
                }
            }
            let mut r = error_response("run", "queue-full", None);
            r.push("queue_capacity", shared.opts.queue);
            echo_trace_id(&mut r, run);
            return r;
        }
        st.pending += 1;
    }
    shared.counters.jobs_accepted.fetch_add(1, Ordering::Relaxed);
    shared.flight.record(FlightKind::Enqueue, Some(key), None, "");

    let admitted = Instant::now();
    let mut response = dispatch_with_retries(shared, &forward, key, &mut trace);
    if let Some(t) = trace.take() {
        // Tail retention: keep the tree when the client asked for it,
        // when the job ended in anything but a clean first-attempt
        // success (failures, retries, migrations all leave attempts > 1
        // or ok:false), or when the end-to-end time lands above the
        // rolling p99 of previously observed jobs.
        let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
        let attempts = response.get("attempts").and_then(Json::as_u64).unwrap_or(1);
        let interesting = t.explicit || !ok || attempts > 1;
        let total_us = admitted.elapsed().as_micros() as u64;
        if lock(&shared.tail).observe(total_us, interesting) {
            t.store(shared);
        }
    }
    // Successful passthroughs already echo the id (the backend does it);
    // fleet-generated errors must echo it themselves.
    if response.get("trace_id").is_none() {
        echo_trace_id(&mut response, run);
    }

    lock(&shared.state).pending -= 1;
    response
}

/// The line actually forwarded to a backend: the canonical form plus the
/// observability fields (`trace_id`, `profile`), which are observation-
/// only and therefore excluded from the canonical form itself.
fn forward_line(run: &RunRequest, canonical: &str) -> String {
    if run.trace_id.is_none() && !run.profile {
        return canonical.to_string();
    }
    let mut line = Json::parse(canonical).expect("canonical form is valid json");
    if let Some(id) = &run.trace_id {
        line.push("trace_id", id.as_str());
    }
    if run.profile {
        line.push("profile", true);
    }
    line.to_string_compact()
}

/// Echoes the request's trace id (if any) into a response.
fn echo_trace_id(r: &mut Json, run: &RunRequest) {
    if let Some(id) = &run.trace_id {
        r.push("trace_id", id.as_str());
    }
}

fn dispatch_with_retries(
    shared: &Shared,
    forward: &str,
    key: u64,
    trace: &mut Option<FleetTrace>,
) -> Json {
    let generation = shared.cancel_generation.load(Ordering::SeqCst);
    let admitted = Instant::now();
    let deadline = admitted + Duration::from_millis(shared.opts.dispatch_wait_ms);
    let mut attempted: Vec<usize> = Vec::new();
    let mut last_error = String::from("no live backend");
    let mut migration: Option<Migration> = None;

    for attempt in 0..shared.opts.attempts.max(1) {
        if attempt > 0 {
            shared.counters.retries.fetch_add(1, Ordering::Relaxed);
            let shift = (attempt - 1).min(6) as u32;
            let backoff = shared.opts.backoff_ms.saturating_mul(1 << shift).min(2_000);
            if let Some(t) = trace.as_mut() {
                t.rec.event(t.root, "backoff", &[("ms", &backoff.to_string())]);
            }
            std::thread::sleep(Duration::from_millis(backoff));
        }
        let idx = match acquire_backend(shared, key, &mut attempted, deadline) {
            Acquire::Granted(i) => i,
            Acquire::ShuttingDown => {
                // The job was already accepted, so it must still reach a
                // final-outcome counter (`jobs_accepted == completed +
                // failed + cancelled` when quiescent); a shutdown abort
                // is a fleet-side failure.
                shared.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
                shared.flight.record(FlightKind::Complete, Some(key), None, "shutting-down");
                return error_response("run", "shutting-down", None);
            }
            Acquire::TimedOut => break,
        };
        let (addr, name) = {
            let st = lock(&shared.state);
            (st.backends[idx].addr.clone(), st.backends[idx].name.clone())
        };
        let waited_us = admitted.elapsed().as_micros() as u64;
        lock(&shared.latencies).dispatch_wait_us.record(waited_us);
        shared.flight.record(FlightKind::Dispatch, Some(key), Some(idx as u32), "");

        // One dispatch span per attempt; the backend's own span tree is
        // grafted under it later by the `trace` op.
        let dspan = trace.as_mut().map(|t| {
            let s = t.rec.span("fleet.dispatch", Some(t.root));
            t.rec.attr(s, "backend", &name);
            t.rec.attr(s, "addr", &addr);
            t.rec.attr(s, "attempt", &(attempt + 1).to_string());
            t.backends.push((name.clone(), addr.clone(), s.index().map_or(0, |i| i as u32)));
            s
        });

        // A migrated job carries its checkpoint to the new backend and
        // resumes from it; if the blob cannot be re-posted the dispatch
        // falls back to a from-scratch run (same bytes, more cycles).
        let forward_line = match &migration {
            Some(m) if push_checkpoint(shared, &addr, m) => {
                shared.flight.record(FlightKind::Resume, Some(key), Some(idx as u32), "");
                if let (Some(t), Some(s)) = (trace.as_mut(), dspan) {
                    t.rec.attr(s, "resume_from", &m.token);
                }
                let mut line = Json::parse(forward).expect("forward line is valid json");
                line.push("resume_from", m.token.as_str());
                line.to_string_compact()
            }
            _ => forward.to_string(),
        };

        let started = Instant::now();
        match roundtrip(shared, &addr, &forward_line, generation) {
            Outcome::Respond(mut json) => {
                release(shared, idx, true, false);
                let job_us = started.elapsed().as_micros() as u64;
                lock(&shared.latencies).job_us.record(job_us);
                lock(&shared.state).backends[idx].observe_job(job_us);
                count_final(shared, &json);
                let final_kind = match json.get("error").and_then(Json::as_str) {
                    None => "completed",
                    Some("cancelled") => "cancelled",
                    Some(_) => "failed",
                };
                shared.flight.record(FlightKind::Complete, Some(key), Some(idx as u32), final_kind);
                if let (Some(t), Some(s)) = (trace.as_mut(), dspan) {
                    let outcome = match json.get("error").and_then(Json::as_str) {
                        None => "completed",
                        Some(e) => e,
                    };
                    t.rec.attr(s, "outcome", outcome);
                    t.rec.end(s);
                }
                json.push("backend", name.as_str())
                    .push("backend_addr", addr.as_str())
                    .push("attempts", attempt + 1)
                    .push("dispatch_wait_us", waited_us);
                return json;
            }
            Outcome::Retry { error, mark_dead } => {
                release(shared, idx, false, mark_dead);
                shared.flight.record(
                    FlightKind::Retry,
                    Some(key),
                    Some(idx as u32),
                    "backend-fault",
                );
                if mark_dead {
                    shared.flight.record(
                        FlightKind::BackendDown,
                        None,
                        Some(idx as u32),
                        "dispatch",
                    );
                }
                if let (Some(t), Some(s)) = (trace.as_mut(), dspan) {
                    t.rec.attr(s, "outcome", "retry");
                    t.rec.attr(s, "error", &error);
                    t.rec.end(s);
                }
                last_error = format!("{name} ({addr}): {error}");
                attempted.push(idx);
            }
            Outcome::BadCheckpoint => {
                // A well-formed answer from a healthy backend: release
                // the slot as a success so the failure window stays
                // untouched, drop the bad blob, restart from scratch.
                release(shared, idx, true, false);
                shared.flight.record(
                    FlightKind::Retry,
                    Some(key),
                    Some(idx as u32),
                    "bad-checkpoint",
                );
                if let (Some(t), Some(s)) = (trace.as_mut(), dspan) {
                    t.rec.attr(s, "outcome", "bad-checkpoint");
                    t.rec.end(s);
                }
                migration = None;
                last_error =
                    format!("{name} ({addr}): rejected the migrated checkpoint; restarting");
                attempted.push(idx);
            }
            Outcome::Preempted { json } => {
                // A park is a deliberate, well-formed answer — not a
                // backend fault — so the slot releases as a success and
                // the failure window stays untouched.
                release(shared, idx, true, false);
                shared.flight.record(FlightKind::Preempt, Some(key), Some(idx as u32), "migrating");
                if let (Some(t), Some(s)) = (trace.as_mut(), dspan) {
                    t.rec.attr(s, "outcome", "preempted");
                    t.rec.end(s);
                }
                let token =
                    json.get("cache_key").and_then(Json::as_str).unwrap_or_default().to_string();
                // Pull the checkpoint while the backend is reachable —
                // it may be killed before the resumed leg dispatches.
                if let Some(m) = fetch_checkpoint(shared, &addr, &token) {
                    shared.counters.jobs_migrated.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = trace.as_mut() {
                        t.rec.event(t.root, "migrated", &[("token", &m.token)]);
                    }
                    migration = Some(m);
                }
                last_error = format!("{name} ({addr}): job preempted, migrating");
                attempted.push(idx);
            }
        }
    }

    shared.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
    shared.flight.record(FlightKind::Complete, Some(key), None, "gave-up");
    let detail = format!(
        "dispatch gave up after {} attempt(s); last: {last_error}",
        shared.opts.attempts.max(1)
    );
    if let Some(t) = trace.as_mut() {
        t.rec.event(t.root, "gave-up", &[("detail", &detail)]);
    }
    error_response("run", "backend-unavailable", Some(&detail))
}

/// Bumps the final-outcome counter matching a passthrough response.
fn count_final(shared: &Shared, json: &Json) {
    if json.get("ok").and_then(Json::as_bool) == Some(true) {
        shared.counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
    } else if json.get("error").and_then(Json::as_str) == Some("cancelled") {
        shared.counters.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Waits (bounded by `deadline`) for a backend with a free worker slot,
/// preferring the rendezvous order for `key` and skipping backends that
/// are dead, throttled, or already failed this job (`attempted`). When
/// every live backend has failed the job once, `attempted` is cleared so
/// later attempts may re-try them after backoff.
fn acquire_backend(
    shared: &Shared,
    key: u64,
    attempted: &mut Vec<usize>,
    deadline: Instant,
) -> Acquire {
    let mut st = lock(&shared.state);
    loop {
        if !shared.running.load(Ordering::SeqCst) {
            return Acquire::ShuttingDown;
        }
        let now = Instant::now();
        let addrs: Vec<String> = st.backends.iter().map(|b| b.addr.clone()).collect();
        let order = preference_order(&addrs, key);

        let usable = |b: &mut Backend, now: Instant| b.alive && !b.window.throttled(now);
        let mut candidates = 0usize;
        let mut free = None;
        for &i in &order {
            if attempted.contains(&i) || !usable(&mut st.backends[i], now) {
                continue;
            }
            candidates += 1;
            if free.is_none() && st.backends[i].has_free_slot() {
                free = Some(i);
            }
        }
        if candidates == 0 && !attempted.is_empty() {
            // Every live backend already failed this job: forgive and
            // let the remaining attempts re-try the preferred ones.
            attempted.clear();
            continue;
        }
        if let Some(i) = free {
            st.backends[i].in_flight += 1;
            st.backends[i].dispatched += 1;
            return Acquire::Granted(i);
        }
        if now >= deadline {
            return Acquire::TimedOut;
        }
        // Either all candidates are busy or none exists yet; wait for a
        // completion/probe signal (time-capped: throttle expiry and the
        // deadline are clock-driven and never signalled).
        let (guard, _) = shared
            .slots
            .wait_timeout(st, Duration::from_millis(25))
            .unwrap_or_else(PoisonError::into_inner);
        st = guard;
    }
}

/// Returns the backend's slot and records the attempt outcome.
fn release(shared: &Shared, idx: usize, success: bool, mark_dead: bool) {
    let mut st = lock(&shared.state);
    let b = &mut st.backends[idx];
    b.in_flight = b.in_flight.saturating_sub(1);
    if success {
        b.completed += 1;
    } else {
        b.failures += 1;
        b.window.record(Instant::now());
        if mark_dead {
            b.alive = false;
        }
        shared.counters.backend_failures.fetch_add(1, Ordering::Relaxed);
    }
    shared.slots.notify_all();
}

/// One dispatch: forward the canonical run line to `addr` and classify
/// the result. Transport faults and load-shedding answers are backend
/// faults ([`Outcome::Retry`]); job-level answers pass through.
fn roundtrip(shared: &Shared, addr: &str, canonical: &str, generation: u64) -> Outcome {
    let read_timeout =
        (shared.opts.job_timeout_ms > 0).then(|| Duration::from_millis(shared.opts.job_timeout_ms));
    // The pool reuses a keep-alive v2 connection when one is idle and
    // transparently redials once when a reused connection turns out to
    // be stale, so errors surfacing here are real backend faults.
    let json = match shared.pool.request_timeout(addr, canonical, read_timeout) {
        Ok(j) => j,
        // Connection refused, or the write path is gone: the process is
        // unreachable — stop routing there until a probe revives it.
        Err(e @ (ClientError::Connect(_) | ClientError::Send(_))) => {
            return Outcome::Retry { error: e.to_string(), mark_dead: true }
        }
        Err(e) => return Outcome::Retry { error: e.to_string(), mark_dead: false },
    };
    if json.get("ok").and_then(Json::as_bool) == Some(true) {
        return Outcome::Respond(json);
    }
    match json.get("error").and_then(Json::as_str) {
        // Job-level verdicts: deterministic for this request, so another
        // backend would answer the same. Pass through.
        Some("scenario-failed") | Some("bad-request") => Outcome::Respond(json),
        // The backend parked the job at a checkpoint boundary: migrate
        // it instead of surfacing the park or treating it as a fault.
        Some("preempted") => Outcome::Preempted { json },
        // The blob this dispatcher migrated in was rejected: retry from
        // scratch without blaming (or throttling) the backend.
        Some("bad-checkpoint") => Outcome::BadCheckpoint,
        // `cancelled` is the client's own doing only if a fleet cancel
        // arrived after this job was dispatched; otherwise the backend
        // died mid-job (shutdown cancels its in-flight runs) and the job
        // deserves another backend.
        Some("cancelled") => {
            if shared.cancel_generation.load(Ordering::SeqCst) != generation {
                Outcome::Respond(json)
            } else {
                Outcome::Retry {
                    error: "backend cancelled the job unprompted".to_string(),
                    mark_dead: false,
                }
            }
        }
        // queue-full / shutting-down / internal-error / anything new:
        // load or fault local to that backend.
        Some(other) => {
            Outcome::Retry { error: format!("backend answered {other}"), mark_dead: false }
        }
        None => {
            Outcome::Retry { error: "malformed backend response".to_string(), mark_dead: false }
        }
    }
}

fn handle_cancel(shared: &Shared) -> Json {
    shared.counters.cancel_requests.fetch_add(1, Ordering::Relaxed);
    // Bump the generation first: in-flight jobs that now come back
    // `cancelled` must classify it as the client's cancel, not a fault.
    shared.cancel_generation.fetch_add(1, Ordering::SeqCst);
    let targets: Vec<String> =
        lock(&shared.state).backends.iter().filter(|b| b.alive).map(|b| b.addr.clone()).collect();
    let mut cancelled = 0usize;
    for addr in &targets {
        if forward_op(shared, addr, r#"{"op":"cancel"}"#).is_some() {
            cancelled += 1;
        }
    }
    let mut r = response_head("cancel", true);
    r.push("backends_cancelled", cancelled);
    r
}

/// One short-deadline request to a backend over a pooled keep-alive
/// connection; `None` on transport fault or an `ok:false` answer.
fn forward_op(shared: &Shared, addr: &str, line: &str) -> Option<Json> {
    let json = shared.pool.request_timeout(addr, line, Some(Duration::from_secs(5))).ok()?;
    (json.get("ok").and_then(Json::as_bool) == Some(true)).then_some(json)
}

/// A consistent snapshot of one backend's coordinator-side view.
struct BackendSnap {
    name: String,
    addr: String,
    alive: bool,
    workers: usize,
    in_flight: usize,
    throttled: bool,
    failures_in_window: usize,
    dispatched: u64,
    completed: u64,
    failures: u64,
    ewma_job_us: u64,
    predicted_wait_us: u64,
}

/// The fleet's own counters as one JSON object (shared by `stats` and
/// `dump`).
fn counters_json(shared: &Shared) -> Json {
    let c = &shared.counters;
    let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let mut counters = Json::object();
    counters
        .push("connections", get(&c.connections))
        .push("requests", get(&c.requests))
        .push("bad_requests", get(&c.bad_requests))
        .push("jobs_accepted", get(&c.jobs_accepted))
        .push("jobs_rejected", get(&c.jobs_rejected))
        .push("jobs_completed", get(&c.jobs_completed))
        .push("jobs_failed", get(&c.jobs_failed))
        .push("jobs_cancelled", get(&c.jobs_cancelled))
        .push("retries", get(&c.retries))
        .push("backend_failures", get(&c.backend_failures))
        .push("cancel_requests", get(&c.cancel_requests))
        .push("preempt_requests", get(&c.preempt_requests))
        .push("jobs_migrated", get(&c.jobs_migrated))
        .push("checkpoint_fetches", get(&c.checkpoint_fetches))
        .push("checkpoint_puts", get(&c.checkpoint_puts))
        .push("probes_ok", get(&c.probes_ok))
        .push("probes_failed", get(&c.probes_failed));
    counters
}

fn stats_response(shared: &Shared) -> Json {
    let (snaps, pending) = {
        let mut st = lock(&shared.state);
        let now = Instant::now();
        let snaps: Vec<BackendSnap> = st
            .backends
            .iter_mut()
            .map(|b| BackendSnap {
                name: b.name.clone(),
                addr: b.addr.clone(),
                alive: b.alive,
                workers: b.workers,
                in_flight: b.in_flight,
                throttled: b.window.throttled(now),
                failures_in_window: b.window.count(now),
                dispatched: b.dispatched,
                completed: b.completed,
                failures: b.failures,
                ewma_job_us: b.ewma_job_us,
                predicted_wait_us: b.predicted_wait_us(),
            })
            .collect();
        (snaps, st.pending)
    };

    // Live per-backend stats are fetched without holding the state lock.
    let mut aggregate: Vec<(String, u64)> = Vec::new();
    let mut agg_queue_wait = Histogram::new();
    let mut agg_run = Histogram::new();
    let mut reporting = 0usize;
    let mut backends_json = Vec::new();
    for s in &snaps {
        let remote = if s.alive { forward_op(shared, &s.addr, r#"{"op":"stats"}"#) } else { None };
        if let Some(stats) = &remote {
            reporting += 1;
            if let Some(counters) = stats.get("counters").and_then(Json::as_object) {
                for (k, v) in counters {
                    if let Some(n) = v.as_u64() {
                        match aggregate.iter_mut().find(|(name, _)| name == k) {
                            Some((_, total)) => *total += n,
                            None => aggregate.push((k.clone(), n)),
                        }
                    }
                }
            }
            for (field, agg) in [("queue_wait_us", &mut agg_queue_wait), ("run_us", &mut agg_run)] {
                if let Some(h) = stats.get(field).and_then(Histogram::from_json) {
                    agg.merge(&h);
                }
            }
        }
        let mut b = Json::object();
        b.push("name", s.name.as_str())
            .push("addr", s.addr.as_str())
            .push("alive", s.alive)
            .push("workers", s.workers)
            .push("in_flight", s.in_flight)
            .push("throttled", s.throttled)
            .push("failures_in_window", s.failures_in_window)
            .push("dispatched", s.dispatched)
            .push("completed", s.completed)
            .push("failures", s.failures)
            .push("ewma_job_us", s.ewma_job_us)
            .push("predicted_wait_us", s.predicted_wait_us)
            .push("stats", remote.unwrap_or(Json::Null));
        backends_json.push(b);
    }

    let counters = counters_json(shared);
    let (dispatch_wait, job) = {
        let lat = lock(&shared.latencies);
        (lat.dispatch_wait_us.to_json(), lat.job_us.to_json())
    };
    let mut fleet = Json::object();
    fleet
        .push("backends", snaps.len())
        .push("backends_alive", snaps.iter().filter(|s| s.alive).count())
        .push("queue_capacity", shared.opts.queue)
        .push("pending", pending)
        .push("jobs_in_flight", snaps.iter().map(|s| s.in_flight).sum::<usize>())
        .push("traces_stored", lock(&shared.traces).len())
        .push("flight_capacity", shared.flight.capacity())
        .push("flight_recorded", shared.flight.recorded())
        .push("counters", counters)
        .push("dispatch_wait_us", dispatch_wait)
        .push("job_us", job);

    let mut agg = Json::object();
    let mut agg_counters = Json::object();
    for (k, v) in &aggregate {
        agg_counters.push(k, *v);
    }
    agg.push("backends_reporting", reporting)
        .push("counters", agg_counters)
        .push("queue_wait_us", agg_queue_wait.to_json())
        .push("run_us", agg_run.to_json());

    let mut r = response_head("stats", true);
    r.push("fleet", fleet).push("aggregate", agg).push("backends", Json::Array(backends_json));
    r
}

/// The deterministic metrics exposition (docs/OBSERVABILITY.md).
/// Scrape- and time-perturbed counters are deliberately excluded:
/// `connections`/`requests` (each scrape is one of each) and
/// `probes_ok`/`probes_failed` (bumped continuously by the prober), so
/// that two back-to-back scrapes of an idle fleet are byte-identical.
/// The pool and flight families stay scrape-stable too: a metrics
/// scrape never touches the connection pool (only dispatch and `stats`
/// forwarding do), and the flight ring only moves on job lifecycle and
/// backend liveness transitions.
fn metrics_response(shared: &Shared) -> Json {
    let c = &shared.counters;
    let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let mut m = MetricsRegistry::new();
    m.set("capsule_fleet_bad_requests_total", &[], get(&c.bad_requests));
    m.set("capsule_fleet_jobs_accepted_total", &[], get(&c.jobs_accepted));
    m.set("capsule_fleet_jobs_rejected_total", &[], get(&c.jobs_rejected));
    m.set("capsule_fleet_jobs_completed_total", &[], get(&c.jobs_completed));
    m.set("capsule_fleet_jobs_failed_total", &[], get(&c.jobs_failed));
    m.set("capsule_fleet_jobs_cancelled_total", &[], get(&c.jobs_cancelled));
    m.set("capsule_fleet_retries_total", &[], get(&c.retries));
    m.set("capsule_fleet_backend_failures_total", &[], get(&c.backend_failures));
    m.set("capsule_fleet_cancel_requests_total", &[], get(&c.cancel_requests));
    m.set("capsule_fleet_preempt_requests_total", &[], get(&c.preempt_requests));
    m.set("capsule_fleet_jobs_migrated_total", &[], get(&c.jobs_migrated));
    m.set("capsule_fleet_checkpoint_fetches_total", &[], get(&c.checkpoint_fetches));
    m.set("capsule_fleet_checkpoint_puts_total", &[], get(&c.checkpoint_puts));
    m.set("capsule_fleet_queue_capacity", &[], shared.opts.queue as u64);
    m.set("capsule_fleet_traces_stored", &[], lock(&shared.traces).len() as u64);
    m.set("capsule_fleet_flight_capacity", &[], shared.flight.capacity() as u64);
    m.set("capsule_fleet_flight_recorded_total", &[], shared.flight.recorded());
    let pool = shared.pool.counters();
    m.set("capsule_fleet_pool_checkouts_total", &[], pool.checkouts);
    m.set("capsule_fleet_pool_dials_total", &[], pool.dials);
    m.set("capsule_fleet_pool_redials_total", &[], pool.redials);
    m.set("capsule_fleet_pool_reuses_total", &[], pool.reuses);
    {
        let mut st = lock(&shared.state);
        let now = Instant::now();
        m.set("capsule_fleet_backends", &[], st.backends.len() as u64);
        m.set(
            "capsule_fleet_backends_alive",
            &[],
            st.backends.iter().filter(|b| b.alive).count() as u64,
        );
        m.set("capsule_fleet_pending", &[], st.pending as u64);
        m.set(
            "capsule_fleet_jobs_in_flight",
            &[],
            st.backends.iter().map(|b| b.in_flight as u64).sum(),
        );
        for b in st.backends.iter_mut() {
            let name = b.name.clone();
            let labels: &[(&str, &str)] = &[("backend", name.as_str())];
            m.set("capsule_fleet_backend_alive", labels, u64::from(b.alive));
            m.set("capsule_fleet_backend_throttled", labels, u64::from(b.window.throttled(now)));
            m.set("capsule_fleet_backend_in_flight", labels, b.in_flight as u64);
            m.set("capsule_fleet_backend_dispatched_total", labels, b.dispatched);
            m.set("capsule_fleet_backend_completed_total", labels, b.completed);
            m.set("capsule_fleet_backend_failures_total", labels, b.failures);
            m.set("capsule_fleet_backend_ewma_job_us", labels, b.ewma_job_us);
            m.set("capsule_fleet_backend_predicted_wait_us", labels, b.predicted_wait_us());
        }
    }
    {
        let lat = lock(&shared.latencies);
        m.histogram("capsule_fleet_dispatch_wait_us", &[], &lat.dispatch_wait_us);
        m.histogram("capsule_fleet_job_us", &[], &lat.job_us);
    }
    let mut r = response_head("metrics", true);
    r.push("exposition", m.render());
    r
}

/// Interprets the optional `health` affinity key: a 16-hex cache key
/// parses to its u64 (the exact value run routing uses), anything else
/// is FNV-hashed so arbitrary labels still rank deterministically.
fn health_key(key: &str) -> u64 {
    if key.len() == 16 && key.bytes().all(|b| b.is_ascii_hexdigit()) {
        u64::from_str_radix(key, 16).unwrap_or_else(|_| fnv1a64(key.as_bytes()))
    } else {
        fnv1a64(key.as_bytes())
    }
}

/// One backend's health row plus its sort rank inputs.
struct HealthRow {
    dead: bool,
    throttled: bool,
    predicted: u64,
    pref: usize,
    name: String,
    addr: String,
    alive: bool,
    workers: usize,
    in_flight: usize,
    ewma_job_us: u64,
}

/// The fleet `health` op: backends ranked best-first for a new job —
/// routable ones (alive, unthrottled) before throttled before dead,
/// lower deterministic `predicted_wait_us` first, ties broken by the
/// rendezvous preference for the optional `key` (configuration order
/// without one). Rank 0 is where admission control would send the next
/// job; the gauges behind the ranking ride along so a `capsule-top`
/// snapshot or a reject-early policy can show its work.
fn health_response(shared: &Shared, key: Option<&str>) -> Json {
    let rkey = key.map(health_key);
    let mut rows: Vec<HealthRow> = {
        let mut st = lock(&shared.state);
        let now = Instant::now();
        let addrs: Vec<String> = st.backends.iter().map(|b| b.addr.clone()).collect();
        let pref: Vec<usize> = match rkey {
            Some(k) => {
                let order = preference_order(&addrs, k);
                let mut pos = vec![0usize; addrs.len()];
                for (p, &i) in order.iter().enumerate() {
                    pos[i] = p;
                }
                pos
            }
            None => (0..addrs.len()).collect(),
        };
        st.backends
            .iter_mut()
            .enumerate()
            .map(|(i, b)| HealthRow {
                dead: !b.alive,
                throttled: b.window.throttled(now),
                predicted: b.predicted_wait_us(),
                pref: pref[i],
                name: b.name.clone(),
                addr: b.addr.clone(),
                alive: b.alive,
                workers: b.workers,
                in_flight: b.in_flight,
                ewma_job_us: b.ewma_job_us,
            })
            .collect()
    };
    rows.sort_by(|a, b| {
        (a.dead, a.throttled, a.predicted, a.pref, &a.name).cmp(&(
            b.dead,
            b.throttled,
            b.predicted,
            b.pref,
            &b.name,
        ))
    });
    let mut list = Vec::with_capacity(rows.len());
    for (rank, r) in rows.iter().enumerate() {
        let mut j = Json::object();
        j.push("rank", rank)
            .push("name", r.name.as_str())
            .push("addr", r.addr.as_str())
            .push("alive", r.alive)
            .push("throttled", r.throttled)
            .push("workers", r.workers)
            .push("in_flight", r.in_flight)
            .push("ewma_job_us", r.ewma_job_us)
            .push("predicted_wait_us", r.predicted);
        list.push(j);
    }
    let mut resp = response_head("health", true);
    if let Some(k) = key {
        resp.push("key", k);
    }
    resp.push("backends_alive", rows.iter().filter(|r| r.alive).count())
        .push("backends", Json::Array(list));
    resp
}

/// The fleet-level gauges snapshot included in a dump artifact.
fn gauges_json(shared: &Shared) -> Json {
    let mut st = lock(&shared.state);
    let now = Instant::now();
    let mut backends = Vec::with_capacity(st.backends.len());
    let mut alive = 0usize;
    let mut in_flight = 0usize;
    for b in st.backends.iter_mut() {
        alive += usize::from(b.alive);
        in_flight += b.in_flight;
        let mut j = Json::object();
        j.push("name", b.name.as_str())
            .push("alive", b.alive)
            .push("throttled", b.window.throttled(now))
            .push("workers", b.workers)
            .push("in_flight", b.in_flight)
            .push("ewma_job_us", b.ewma_job_us)
            .push("predicted_wait_us", b.predicted_wait_us());
        backends.push(j);
    }
    let pending = st.pending;
    let total = st.backends.len();
    drop(st);
    let mut g = Json::object();
    g.push("queue_capacity", shared.opts.queue)
        .push("pending", pending)
        .push("jobs_in_flight", in_flight)
        .push("backends_total", total)
        .push("backends_alive", alive)
        .push("traces_stored", lock(&shared.traces).len())
        .push("backends", Json::Array(backends));
    g
}

/// The `capsule-dump/1` post-mortem artifact (docs/OBSERVABILITY.md):
/// the flight ring, every retained trace, the gauges, and the counters
/// in one versioned JSON object.
fn dump_json(shared: &Shared) -> Json {
    let mut d = Json::object();
    d.push("schema", "capsule-dump/1")
        .push("source", "fleet")
        .push("flight", shared.flight.snapshot().to_json());
    let traces = {
        let store = lock(&shared.traces);
        let mut list = Vec::new();
        for (id, tree) in store.entries() {
            let mut t = Json::object();
            t.push("trace_id", id).push("trace", tree.clone());
            list.push(t);
        }
        list
    };
    d.push("traces", Json::Array(traces))
        .push("gauges", gauges_json(shared))
        .push("counters", counters_json(shared));
    d
}

fn dump_response(shared: &Shared) -> Json {
    let mut r = response_head("dump", true);
    r.push("dump", dump_json(shared));
    r
}

/// Serializes the dump artifact to `path`, best effort: a post-mortem
/// writer must never bring down the process it is trying to explain.
fn write_dump_file(shared: &Shared, path: &str, reason: &str) {
    let mut dump = dump_json(shared);
    dump.push("reason", reason);
    let mut bytes = dump.to_string_compact().into_bytes();
    bytes.push(b'\n');
    match std::fs::write(path, bytes) {
        Ok(()) => eprintln!("capsule-fleet: wrote {reason} dump to {path}"),
        Err(e) => eprintln!("capsule-fleet: failed to write {reason} dump to {path}: {e}"),
    }
}

/// `CAPSULE_FLEET_DUMP_ON_PANIC=path`: chain a panic hook that writes
/// the post-mortem artifact before the default handler runs, so a
/// crashing coordinator leaves its last moments on disk.
fn install_dump_hooks(shared: &Arc<Shared>) {
    if let Ok(path) = std::env::var("CAPSULE_FLEET_DUMP_ON_PANIC") {
        if !path.is_empty() {
            let shared = Arc::clone(shared);
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                write_dump_file(&shared, &path, "panic");
                previous(info);
            }));
        }
    }
}

/// The fleet `trace` op: the coordinator's stored span tree for the id,
/// with each reachable backend's own span tree for the same id grafted
/// under the dispatch span that forwarded the job there — one query
/// reconstructs the whole distributed job, retries included.
fn trace_response(shared: &Shared, trace_id: &str) -> Json {
    let Some(stored) = lock(&shared.traces).get(trace_id).cloned() else {
        let mut r = error_response(
            "trace",
            "unknown-trace",
            Some("no stored trace for this id (never submitted, disabled, or evicted)"),
        );
        r.push("trace_id", trace_id);
        return r;
    };
    let mut r = response_head("trace", true);
    r.push("trace_id", trace_id).push("trace", graft_backend_spans(shared, trace_id, &stored));
    r
}

/// Rewrites one backend span for grafting: ids shifted by `offset`, the
/// backend-local root reparented under the fleet dispatch span, and a
/// `backend` attribute stamped on it.
fn graft_span(span: &Json, offset: u64, graft_parent: u64, backend: &str) -> Json {
    let mut out = Json::object();
    let mut is_root = false;
    for (k, v) in span.as_object().unwrap_or(&[]) {
        match k.as_str() {
            "id" => {
                out.push("id", v.as_u64().unwrap_or(0) + offset);
            }
            "parent" => match v.as_u64() {
                Some(p) => {
                    out.push("parent", p + offset);
                }
                None => {
                    is_root = true;
                    out.push("parent", graft_parent);
                }
            },
            "attrs" if is_root => {
                let mut attrs = v.clone();
                attrs.push("backend", backend);
                out.push("attrs", attrs);
            }
            other => {
                out.push(other, v.clone());
            }
        }
    }
    out
}

/// Builds the merged tree: fleet spans as stored, plus every reachable
/// backend's spans for the same trace id. Unreachable backends (e.g. a
/// killed process whose retry the trace records) are reported in the
/// `backends` list with `grafted: false` instead of failing the query.
fn graft_backend_spans(shared: &Shared, trace_id: &str, stored: &Json) -> Json {
    let fleet_spans = stored.get("spans").and_then(Json::as_array).unwrap_or(&[]);
    let mut spans: Vec<Json> = fleet_spans.to_vec();
    let mut dropped = stored.get("dropped").and_then(Json::as_u64).unwrap_or(0);
    let mut next_id =
        spans.iter().filter_map(|s| s.get("id").and_then(Json::as_u64)).max().map_or(0, |m| m + 1);

    // Deduplicate by address keeping the *last* dispatch span: a backend
    // retried later holds only its latest tree for this id anyway.
    let listed = stored.get("backends").and_then(Json::as_array).unwrap_or(&[]);
    let mut targets: Vec<(String, String, u64)> = Vec::new();
    for b in listed {
        let name = b.get("name").and_then(Json::as_str).unwrap_or("?").to_string();
        let addr = b.get("addr").and_then(Json::as_str).unwrap_or_default().to_string();
        let span = b.get("span").and_then(Json::as_u64).unwrap_or(0);
        match targets.iter_mut().find(|(_, a, _)| *a == addr) {
            Some(t) => t.2 = span,
            None => targets.push((name, addr, span)),
        }
    }

    let query = {
        let mut q = Json::object();
        q.push("op", "trace").push("trace_id", trace_id);
        q.to_string_compact()
    };
    let mut backends_json = Vec::with_capacity(targets.len());
    for (name, addr, graft_parent) in &targets {
        let remote = forward_op(shared, addr, &query).and_then(|reply| reply.get("trace").cloned());
        let grafted = remote.is_some();
        if let Some(tree) = remote {
            let bspans = tree.get("spans").and_then(Json::as_array).unwrap_or(&[]);
            let offset = next_id;
            let mut max_id = 0u64;
            for s in bspans {
                max_id = max_id.max(s.get("id").and_then(Json::as_u64).unwrap_or(0));
                spans.push(graft_span(s, offset, *graft_parent, name));
            }
            if !bspans.is_empty() {
                next_id = offset + max_id + 1;
            }
            dropped += tree.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        }
        let mut b = Json::object();
        b.push("name", name.as_str())
            .push("addr", addr.as_str())
            .push("span", *graft_parent)
            .push("grafted", grafted);
        backends_json.push(b);
    }

    let mut out = Json::object();
    out.push("spans", Json::Array(spans))
        .push("dropped", dropped)
        .push("backends", Json::Array(backends_json));
    out
}

fn probe_loop(shared: &Shared) {
    while shared.running.load(Ordering::SeqCst) {
        let targets: Vec<(usize, String)> = lock(&shared.state)
            .backends
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.addr.clone()))
            .collect();
        for (i, addr) in targets {
            if !shared.running.load(Ordering::SeqCst) {
                return;
            }
            let connect = Duration::from_millis(shared.opts.connect_timeout_ms);
            let result = client::probe(&addr, connect, Duration::from_secs(2));
            let mut st = lock(&shared.state);
            match result {
                Ok(p) => {
                    if !st.backends[i].alive {
                        shared.flight.record(FlightKind::BackendUp, None, Some(i as u32), "probe");
                    }
                    st.backends[i].alive = true;
                    st.backends[i].workers = p.workers.max(1);
                    shared.counters.probes_ok.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    if st.backends[i].alive {
                        shared.flight.record(
                            FlightKind::BackendDown,
                            None,
                            Some(i as u32),
                            "probe",
                        );
                    }
                    st.backends[i].alive = false;
                    shared.counters.probes_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            drop(st);
            // Liveness or capacity may have changed: wake slot-waiters.
            shared.slots.notify_all();
        }
        // Sleep in slices so shutdown stays prompt.
        let end = Instant::now() + Duration::from_millis(shared.opts.probe_ms);
        while shared.running.load(Ordering::SeqCst) && Instant::now() < end {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}
