//! Per-backend bookkeeping: liveness and pool geometry learned from
//! probes, the coordinator-tracked in-flight count, and the
//! sliding-window failure throttle.
//!
//! The throttle is the fleet-level analogue of the paper's death-rate
//! division throttle (§4.2): the hardware counts recent worker deaths in
//! a sliding cycle window and denies divisions while the count is above
//! a threshold. Here the coordinator counts recent *dispatch failures*
//! per backend in a sliding wall-clock window and stops routing jobs to
//! a backend while its count is above the threshold — the backend gets a
//! quiet period to recover instead of a retry storm.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Recent-failure counter over a sliding wall-clock window.
///
/// Time is passed in explicitly (`now`) so the policy is testable
/// without sleeping.
#[derive(Debug)]
pub struct FailureWindow {
    window: Duration,
    threshold: usize,
    failures: VecDeque<Instant>,
}

impl FailureWindow {
    /// A window of `window` duration that throttles at `threshold`
    /// failures. `threshold == 0` disables throttling entirely.
    pub fn new(window: Duration, threshold: usize) -> FailureWindow {
        FailureWindow { window, threshold, failures: VecDeque::new() }
    }

    /// Records one failure observed at `now`.
    pub fn record(&mut self, now: Instant) {
        self.failures.push_back(now);
        // Cap memory even under a failure storm: only `threshold` recent
        // entries can ever matter (0 keeps a single entry for `count`).
        while self.failures.len() > self.threshold.max(1) * 2 {
            self.failures.pop_front();
        }
    }

    /// Failures within the window ending at `now`; prunes older entries.
    pub fn count(&mut self, now: Instant) -> usize {
        while let Some(&front) = self.failures.front() {
            if now.duration_since(front) > self.window {
                self.failures.pop_front();
            } else {
                break;
            }
        }
        self.failures.len()
    }

    /// True while the recent-failure count is at or above the threshold —
    /// dispatch must skip this backend until the window slides.
    pub fn throttled(&mut self, now: Instant) -> bool {
        self.threshold > 0 && self.count(now) >= self.threshold
    }
}

/// One downstream `capsule-serve` endpoint as the coordinator sees it.
#[derive(Debug)]
pub struct Backend {
    /// `HOST:PORT` of the backend.
    pub addr: String,
    /// Short stable name used in responses and stats (`b0`, `b1`, ...).
    pub name: String,
    /// False until a probe succeeds, and again after one fails; dead
    /// backends are skipped by dispatch until a probe revives them.
    pub alive: bool,
    /// Worker-pool size learned from the last successful probe.
    pub workers: usize,
    /// Jobs this coordinator currently has outstanding on the backend.
    pub in_flight: usize,
    /// Sliding-window dispatch-failure throttle.
    pub window: FailureWindow,
    /// Jobs ever dispatched to this backend.
    pub dispatched: u64,
    /// Dispatches answered with a usable response.
    pub completed: u64,
    /// Dispatches that failed and were retried elsewhere.
    pub failures: u64,
    /// Smoothed per-job round-trip in µs (α = 1/8), fed by
    /// [`Backend::observe_job`] at every usable response. Plain integer
    /// arithmetic — a `Backend` only lives under the coordinator's state
    /// mutex. 0 until the first observation.
    pub ewma_job_us: u64,
}

impl Backend {
    /// A backend starting dead (the first probe round brings it up).
    pub fn new(addr: String, index: usize, window: Duration, threshold: usize) -> Backend {
        Backend {
            addr,
            name: format!("b{index}"),
            alive: false,
            workers: 1,
            in_flight: 0,
            window: FailureWindow::new(window, threshold),
            dispatched: 0,
            completed: 0,
            failures: 0,
            ewma_job_us: 0,
        }
    }

    /// Feeds one finished job's round-trip time into the smoothed
    /// per-job estimate: the first sample seeds it, later samples move
    /// it by 1/8 of the error (never below 1µs, so a seeded estimate is
    /// distinguishable from the unseeded 0).
    pub fn observe_job(&mut self, job_us: u64) {
        if self.ewma_job_us == 0 {
            self.ewma_job_us = job_us.max(1);
        } else {
            let cur = self.ewma_job_us as i64;
            // Floored division so downward steps always make progress
            // (truncation would stall small estimates above the samples).
            let next = cur + (job_us as i64 - cur).div_euclid(8);
            self.ewma_job_us = next.max(1) as u64;
        }
    }

    /// Deterministic estimate of how long a new job would wait behind
    /// this backend's current load: outstanding jobs times the smoothed
    /// job time, divided across the worker pool. Pure arithmetic over
    /// the coordinator's own bookkeeping — two calls with the same
    /// history agree exactly, which is what lets `health` rank backends
    /// reproducibly.
    pub fn predicted_wait_us(&self) -> u64 {
        (self.in_flight as u64).saturating_mul(self.ewma_job_us.max(1)) / self.workers.max(1) as u64
    }

    /// True when a new job can start on the backend right now: it is
    /// alive and has a worker slot not already occupied by one of ours.
    /// The free-worker probe mirrors the paper's "divide only if a
    /// context is free": grant while capacity exists, queue otherwise.
    pub fn has_free_slot(&self) -> bool {
        self.alive && self.in_flight < self.workers.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttle_trips_at_threshold_and_decays_with_the_window() {
        let mut w = FailureWindow::new(Duration::from_millis(100), 3);
        let t0 = Instant::now();
        assert!(!w.throttled(t0));
        w.record(t0);
        w.record(t0 + Duration::from_millis(10));
        assert!(!w.throttled(t0 + Duration::from_millis(10)), "below threshold");
        w.record(t0 + Duration::from_millis(20));
        assert!(w.throttled(t0 + Duration::from_millis(20)), "at threshold");
        // 90ms later the first two failures have aged out of the window.
        let later = t0 + Duration::from_millis(115);
        assert_eq!(w.count(later), 1);
        assert!(!w.throttled(later), "window slid past the burst");
    }

    #[test]
    fn zero_threshold_never_throttles() {
        let mut w = FailureWindow::new(Duration::from_secs(10), 0);
        let t0 = Instant::now();
        for i in 0..20 {
            w.record(t0 + Duration::from_millis(i));
        }
        assert!(!w.throttled(t0 + Duration::from_millis(20)));
    }

    #[test]
    fn failure_storm_keeps_bounded_memory() {
        let mut w = FailureWindow::new(Duration::from_secs(10), 3);
        let t0 = Instant::now();
        for i in 0..10_000u64 {
            w.record(t0 + Duration::from_micros(i));
        }
        assert!(w.failures.len() <= 6);
        assert!(w.throttled(t0 + Duration::from_millis(100)));
    }

    #[test]
    fn free_slot_needs_liveness_and_capacity() {
        let mut b = Backend::new("127.0.0.1:9".into(), 0, Duration::from_secs(1), 3);
        assert_eq!(b.name, "b0");
        assert!(!b.has_free_slot(), "dead backends have no slots");
        b.alive = true;
        b.workers = 2;
        assert!(b.has_free_slot());
        b.in_flight = 2;
        assert!(!b.has_free_slot(), "pool full");
        b.workers = 0; // unprobed geometry still admits one probe job
        b.in_flight = 0;
        assert!(b.has_free_slot());
    }

    #[test]
    fn job_ewma_seeds_then_smooths_and_never_returns_to_zero() {
        let mut b = Backend::new("127.0.0.1:9".into(), 0, Duration::from_secs(1), 3);
        assert_eq!(b.ewma_job_us, 0, "unseeded");
        b.observe_job(800);
        assert_eq!(b.ewma_job_us, 800, "first sample seeds");
        b.observe_job(0);
        assert_eq!(b.ewma_job_us, 700, "moves by 1/8 of the error");
        for _ in 0..200 {
            b.observe_job(0);
        }
        assert_eq!(b.ewma_job_us, 1, "floors at 1µs once seeded");
    }

    #[test]
    fn predicted_wait_scales_with_load_and_pool_size() {
        let mut b = Backend::new("127.0.0.1:9".into(), 0, Duration::from_secs(1), 3);
        b.alive = true;
        b.workers = 2;
        assert_eq!(b.predicted_wait_us(), 0, "idle backend predicts zero");
        b.observe_job(8000);
        b.in_flight = 3;
        assert_eq!(b.predicted_wait_us(), 3 * 8000 / 2);
        b.workers = 0; // unprobed geometry counts as one worker
        assert_eq!(b.predicted_wait_us(), 3 * 8000);
        b.ewma_job_us = 0; // unseeded estimate still ranks loaded > idle
        assert_eq!(b.predicted_wait_us(), 3);
    }
}
