//! `capsule-top`: a terminal snapshot of a fleet's (or a single
//! server's) health, built from the `stats` and `health` ops
//! (docs/OBSERVABILITY.md).
//!
//! Usage:
//!   capsule-top [--once] [--interval MS] [--key KEY] ADDR
//!
//! Against a coordinator the table lists every backend in `health`
//! rank order — rank 0 is where admission control would send the next
//! job. Against a plain `capsule-serve` endpoint (whose `health` has no
//! backend ranking) the snapshot is the server's own gauges. `--key`
//! ranks for a specific cache key's rendezvous preference.
//!
//! `--once` prints a single snapshot and exits — the output is a pure
//! function of the two responses, so CI can assert on it (scripts/ci.sh
//! checks that the surviving backend of a kill ranks first). Without
//! `--once` the snapshot repeats every `--interval` milliseconds
//! (default 1000), redrawing in place when stdout is a terminal.

use capsule_core::output::Json;
use capsule_serve::client::request_once;
use std::io::IsTerminal;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let once = if let Some(i) = args.iter().position(|a| a == "--once") {
        args.remove(i);
        true
    } else {
        false
    };
    let mut interval_ms: u64 = 1000;
    if let Some(i) = args.iter().position(|a| a == "--interval") {
        args.remove(i);
        if i >= args.len() {
            eprintln!("--interval expects milliseconds");
            std::process::exit(2);
        }
        let v = args.remove(i);
        interval_ms = v.parse().unwrap_or_else(|_| {
            eprintln!("--interval expects an integer, got {v:?}");
            std::process::exit(2);
        });
    }
    let mut key: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--key") {
        args.remove(i);
        if i >= args.len() {
            eprintln!("--key expects a value");
            std::process::exit(2);
        }
        key = Some(args.remove(i));
    }
    if args.len() != 1 {
        eprintln!("usage: capsule-top [--once] [--interval MS] [--key KEY] ADDR");
        std::process::exit(2);
    }
    let addr = args.remove(0);

    let redraw = !once && std::io::stdout().is_terminal();
    loop {
        let frame = snapshot(&addr, key.as_deref()).unwrap_or_else(|e| {
            eprintln!("{addr}: {e}");
            std::process::exit(1);
        });
        if redraw {
            // Clear the screen and home the cursor so the table redraws
            // in place like top(1).
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        if once {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// One rendered snapshot: a header line of whole-endpoint gauges and,
/// for a fleet, the ranked backend table.
fn snapshot(addr: &str, key: Option<&str>) -> Result<String, String> {
    let stats = request(addr, r#"{"op":"stats"}"#)?;
    let health_req = match key {
        Some(k) => {
            let mut r = Json::object();
            r.push("op", "health").push("key", k);
            r.to_string_compact()
        }
        None => r#"{"op":"health"}"#.to_string(),
    };
    let health = request(addr, &health_req)?;
    match health.get("backends").and_then(Json::as_array) {
        Some(rows) => Ok(render_fleet(addr, &stats, &health, rows)),
        None => Ok(render_serve(addr, &stats, &health)),
    }
}

fn request(addr: &str, line: &str) -> Result<Json, String> {
    let json = request_once(addr, line).map_err(|e| e.to_string())?;
    if json.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("endpoint answered not-ok: {}", json.to_string_compact()));
    }
    Ok(json)
}

fn num(j: &Json, path: &[&str]) -> u64 {
    let mut cur = j;
    for p in path {
        match cur.get(p) {
            Some(next) => cur = next,
            None => return 0,
        }
    }
    cur.as_u64().unwrap_or(0)
}

/// The coordinator view: fleet gauges, then one row per backend in
/// `health` rank order. Rank 0 is the next job's placement.
fn render_fleet(addr: &str, stats: &Json, health: &Json, rows: &[Json]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fleet {addr}  backends {} (alive {})  pending {}  in_flight {}  \
         traces {}  flight {}/{}\n",
        num(stats, &["fleet", "backends"]),
        num(health, &["backends_alive"]),
        num(stats, &["fleet", "pending"]),
        num(stats, &["fleet", "jobs_in_flight"]),
        num(stats, &["fleet", "traces_stored"]),
        num(stats, &["fleet", "flight_recorded"]),
        num(stats, &["fleet", "flight_capacity"]),
    ));
    out.push_str(&format!(
        "jobs: accepted {}  completed {}  failed {}  cancelled {}  \
         retries {}  migrated {}\n",
        num(stats, &["fleet", "counters", "jobs_accepted"]),
        num(stats, &["fleet", "counters", "jobs_completed"]),
        num(stats, &["fleet", "counters", "jobs_failed"]),
        num(stats, &["fleet", "counters", "jobs_cancelled"]),
        num(stats, &["fleet", "counters", "retries"]),
        num(stats, &["fleet", "counters", "jobs_migrated"]),
    ));
    if let Some(k) = health.get("key").and_then(Json::as_str) {
        out.push_str(&format!("ranked for key {k}\n"));
    }
    let mut table: Vec<[String; 8]> = vec![[
        "RANK".into(),
        "NAME".into(),
        "ADDR".into(),
        "STATE".into(),
        "WORKERS".into(),
        "IN_FLIGHT".into(),
        "EWMA_JOB_US".into(),
        "PREDICTED_WAIT_US".into(),
    ]];
    for row in rows {
        let state = if row.get("alive").and_then(Json::as_bool) != Some(true) {
            "down"
        } else if row.get("throttled").and_then(Json::as_bool) == Some(true) {
            "throttled"
        } else {
            "up"
        };
        table.push([
            num(row, &["rank"]).to_string(),
            row.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
            row.get("addr").and_then(Json::as_str).unwrap_or("?").to_string(),
            state.to_string(),
            num(row, &["workers"]).to_string(),
            num(row, &["in_flight"]).to_string(),
            num(row, &["ewma_job_us"]).to_string(),
            num(row, &["predicted_wait_us"]).to_string(),
        ]);
    }
    let mut widths = [0usize; 8];
    for row in &table {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    for row in &table {
        let mut line = String::new();
        for (i, (cell, w)) in row.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// The single-server view: `health` carries the gauges directly.
fn render_serve(addr: &str, stats: &Json, health: &Json) -> String {
    format!(
        "serve {addr}  workers {}  in_flight {}  queue_capacity {}  \
         traces {}  flight {}/{}\n\
         ewma_queue_wait_us {}  ewma_run_us {}  predicted_wait_us {}\n\
         jobs: accepted {}  completed {}  failed {}  cancelled {}  cache_hits {}\n",
        num(health, &["workers"]),
        num(health, &["jobs_in_flight"]),
        num(health, &["queue_capacity"]),
        num(health, &["traces_stored"]),
        num(stats, &["flight_recorded"]),
        num(stats, &["flight_capacity"]),
        num(health, &["ewma_queue_wait_us"]),
        num(health, &["ewma_run_us"]),
        num(health, &["predicted_wait_us"]),
        num(stats, &["counters", "jobs_accepted"]),
        num(stats, &["counters", "jobs_completed"]),
        num(stats, &["counters", "jobs_failed"]),
        num(stats, &["counters", "jobs_cancelled"]),
        num(stats, &["counters", "cache_hits"]),
    )
}
