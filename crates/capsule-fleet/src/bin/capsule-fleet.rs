//! The `capsule-fleet` daemon: binds a TCP address, coordinates a set of
//! `capsule-serve` backends, and serves `capsule-serve/1` requests until
//! a `shutdown` request arrives.
//!
//! Usage:
//!   capsule-fleet [--addr HOST:PORT] --backend HOST:PORT [--backend ...]
//!                 [--queue N] [--attempts N] [--backoff-ms N]
//!                 [--fail-window-ms N] [--fail-threshold N] [--probe-ms N]
//!                 [--traces N] [--flight N]
//!
//! Backends may also come from `CAPSULE_FLEET_BACKENDS` (comma-
//! separated); the sizing flags default from the `CAPSULE_FLEET_*`
//! environment (see docs/FLEET.md). The resolved address is printed as
//! `listening on HOST:PORT` so scripts can scrape it.

use capsule_fleet::{Fleet, FleetOptions};

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut backends: Vec<String> = Vec::new();
    let mut opts = FleetOptions::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--backend" => backends.push(value("--backend")),
            "--queue" => opts.queue = parse_usize(&value("--queue"), "--queue").max(1),
            "--attempts" => opts.attempts = parse_usize(&value("--attempts"), "--attempts").max(1),
            "--backoff-ms" => opts.backoff_ms = parse_u64(&value("--backoff-ms"), "--backoff-ms"),
            "--fail-window-ms" => {
                opts.fail_window_ms =
                    parse_u64(&value("--fail-window-ms"), "--fail-window-ms").max(1);
            }
            "--fail-threshold" => {
                opts.fail_threshold = parse_usize(&value("--fail-threshold"), "--fail-threshold");
            }
            "--probe-ms" => opts.probe_ms = parse_u64(&value("--probe-ms"), "--probe-ms").max(10),
            "--traces" => opts.traces = parse_usize(&value("--traces"), "--traces"),
            "--flight" => opts.flight = parse_usize(&value("--flight"), "--flight"),
            "--help" | "-h" => {
                println!(
                    "usage: capsule-fleet [--addr HOST:PORT] --backend HOST:PORT [--backend ...] \
                     [--queue N] [--attempts N] [--backoff-ms N] [--fail-window-ms N] \
                     [--fail-threshold N] [--probe-ms N] [--traces N] [--flight N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if backends.is_empty() {
        if let Ok(list) = std::env::var("CAPSULE_FLEET_BACKENDS") {
            backends.extend(
                list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string),
            );
        }
    }
    if backends.is_empty() {
        eprintln!(
            "capsule-fleet needs at least one backend (--backend HOST:PORT or \
             CAPSULE_FLEET_BACKENDS)"
        );
        std::process::exit(2);
    }

    let fleet = match Fleet::start(&addr, &backends, opts) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", fleet.local_addr());
    println!("backends: {}", backends.join(", "));
    println!(
        "queue {}, attempts {}, backoff {}ms, fail window {}ms / threshold {}, probe every {}ms",
        opts.queue,
        opts.attempts,
        opts.backoff_ms,
        opts.fail_window_ms,
        opts.fail_threshold,
        opts.probe_ms
    );
    fleet.join();
    println!("shut down");
}

fn parse_usize(v: &str, name: &str) -> usize {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{name} expects an integer, got {v:?}");
        std::process::exit(2);
    })
}

fn parse_u64(v: &str, name: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{name} expects an integer, got {v:?}");
        std::process::exit(2);
    })
}
