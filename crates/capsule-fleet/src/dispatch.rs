//! Cache-affinity routing: rendezvous (highest-random-weight) hashing
//! from a job's `cache_key` to a preference order over backends.
//!
//! Every backend keeps an LRU result cache keyed by the canonical run
//! request. Routing the same canonical request to the same backend keeps
//! those caches hot; rendezvous hashing does that while guaranteeing
//! that adding or removing a backend only moves the keys that hashed to
//! it — every other key keeps its preferred backend, so a backend
//! failure does not flush the whole fleet's cache affinity.

use capsule_serve::protocol::fnv1a64;

/// Folds `bytes` into a running FNV-1a state.
fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The rendezvous weight of `(backend addr, job key)`: FNV-1a over the
/// address bytes continued over the key's little-endian bytes.
pub fn rendezvous_score(addr: &str, key: u64) -> u64 {
    fnv_fold(fnv1a64(addr.as_bytes()), &key.to_le_bytes())
}

/// Backend indices ordered most- to least-preferred for `key`.
///
/// Deterministic: depends only on the backend address strings and the
/// key, never on probe timing or list order (ties — only possible with
/// duplicate addresses — break toward the lower index).
pub fn preference_order(addrs: &[String], key: u64) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> =
        addrs.iter().enumerate().map(|(i, a)| (rendezvous_score(a, key), i)).collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn order_is_a_permutation_and_deterministic() {
        let backends = addrs(5);
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            let order = preference_order(&backends, key);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "permutation for key {key:#x}");
            assert_eq!(order, preference_order(&backends, key), "deterministic");
        }
    }

    #[test]
    fn removing_a_backend_preserves_relative_order_of_the_rest() {
        // The rendezvous property: scores are per-(addr, key), so
        // dropping one backend never reshuffles the others.
        let backends = addrs(4);
        for key in 0..200u64 {
            let full = preference_order(&backends, key);
            let survivor_addrs: Vec<String> = backends.iter().take(3).cloned().collect::<Vec<_>>();
            let reduced = preference_order(&survivor_addrs, key);
            let full_filtered: Vec<usize> = full.into_iter().filter(|&i| i < 3).collect();
            assert_eq!(full_filtered, reduced, "key {key}");
        }
    }

    #[test]
    fn keys_spread_across_backends() {
        let backends = addrs(4);
        let mut first_choice = [0usize; 4];
        for key in 0..1000u64 {
            first_choice[preference_order(&backends, key)[0]] += 1;
        }
        for (i, &n) in first_choice.iter().enumerate() {
            assert!(n > 100, "backend {i} owns only {n}/1000 keys");
        }
    }

    #[test]
    fn different_keys_get_different_preferences() {
        let backends = addrs(3);
        let owners: std::collections::HashSet<usize> =
            (0..50u64).map(|k| preference_order(&backends, k)[0]).collect();
        assert!(owners.len() > 1, "all keys routed to one backend");
    }
}
