//! `capsule-fleet`: a sharded multi-backend coordinator for
//! `capsule-serve` with CAPSULE-style conditional dispatch.
//!
//! The coordinator is a std-only TCP server that speaks the existing
//! `capsule-serve/1` protocol upstream — clients written for a single
//! server work unchanged — and fans jobs out to N `capsule-serve`
//! backends downstream. Its dispatch policy is the paper's conditional
//! division lifted one level up the stack:
//!
//! - **Probe, then grant.** Health probes poll every backend's `stats`;
//!   a job is granted to a backend only while the coordinator counts a
//!   free worker slot there, and queues (bounded) otherwise — the
//!   "divide only if a context is free" rule.
//! - **Throttle by recent failures.** A backend whose dispatch failures
//!   within a sliding window cross a threshold stops receiving jobs
//!   until the window slides — the analogue of the 128-cycle death-rate
//!   division throttle.
//! - **Cache affinity.** Jobs route by rendezvous hashing of their
//!   canonical form, so each backend's LRU result cache stays hot and a
//!   backend loss only moves the keys it owned.
//! - **Retry away from faults.** Transport faults, `queue-full` and
//!   unprompted cancels retry with exponential backoff on the
//!   next-preferred backend; job-level verdicts pass through untouched,
//!   so a fleet answer is byte-identical to a single server's.
//! - **Migrate instead of restarting.** A job parked by `preempt` on a
//!   checkpointing backend is not a fault and not a restart: the
//!   dispatcher fetches the checkpoint over the wire, re-posts it to the
//!   next-preferred backend, and resumes with `resume_from` — the
//!   cluster-level analogue of the paper's thread swap, with reports
//!   still byte-identical (docs/CHECKPOINT.md).
//!
//! See docs/FLEET.md for topology, policy details, and the env knobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod coordinator;
pub mod dispatch;

pub use backend::{Backend, FailureWindow};
pub use coordinator::{Fleet, FleetOptions};
