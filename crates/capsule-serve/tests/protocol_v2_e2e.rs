//! End-to-end tests for the framed `capsule-serve/2` wire protocol: an
//! in-process [`Server`] on an ephemeral port, driven over real TCP
//! connections with hand-built frames where the test needs byte-level
//! control (torn frames, oversized lengths, version mismatches) and the
//! [`Connection`] client where it doesn't.
//!
//! The v1 newline-JSON protocol stays the outer contract: every test
//! here that produces a response also pins it byte-identical to what the
//! same request answers over v1, so the frame layer can never fork the
//! payload.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use capsule_core::output::Json;
use capsule_core::rng::{Rng, Xoshiro256StarStar};
use capsule_serve::client::{Connection, Proto};
use capsule_serve::frame::{self, FrameError};
use capsule_serve::{Server, ServerOptions};

fn start(workers: usize, queue: usize, cache: usize) -> Server {
    Server::start(
        "127.0.0.1:0",
        ServerOptions {
            workers,
            queue,
            cache,
            traces: 16,
            checkpoint_cycles: 0,
            checkpoints: 8,
            flight: 64,
        },
    )
    .expect("bind ephemeral port")
}

const SMOKE_RUN: &str = r#"{"op":"run","scenario":"table1_config","scale":"smoke"}"#;
/// Full-scale fig6 sorts 12000 elements — takes long enough in a debug
/// build that a smoke job submitted after it reliably finishes first.
const LONG_RUN: &str = r#"{"op":"run","scenario":"fig6_division_tree","scale":"full"}"#;

/// One v1 request/response exchange on a fresh connection, returning the
/// raw response line (newline stripped) for byte comparisons.
fn v1_request_raw(server: &Server, line: &str) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(format!("{line}\n").as_bytes()).expect("send");
    stream.flush().expect("flush");
    let mut response = String::new();
    BufReader::new(&stream).read_line(&mut response).expect("recv");
    response.trim_end_matches('\n').to_string()
}

/// A raw v2 connection with the preamble already exchanged.
fn v2_connect(server: &Server) -> TcpStream {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    frame::write_preamble(&mut stream).expect("send preamble");
    frame::read_preamble(&mut stream).expect("server preamble");
    stream
}

/// One v2 request/response exchange, returning the raw payload bytes.
fn v2_request_raw(server: &Server, line: &str) -> Vec<u8> {
    let mut stream = v2_connect(server);
    frame::write_frame(&mut stream, 1, frame::tag::RUN, line.as_bytes()).expect("send frame");
    let reply = frame::read_frame(&mut stream).expect("read frame");
    assert_eq!(reply.id, 1);
    reply.payload
}

fn ok(json: &Json) -> bool {
    json.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_code(json: &Json) -> Option<&str> {
    json.get("error").and_then(Json::as_str)
}

#[test]
fn v1_and_v2_answers_are_byte_identical() {
    let server = start(2, 8, 8);

    // Warm the cache so both probes see identical server state (a hit).
    let warm = Json::parse(&v1_request_raw(&server, SMOKE_RUN)).expect("warm");
    assert!(ok(&warm), "warm run failed: {}", warm.to_string_compact());

    let v1 = v1_request_raw(&server, SMOKE_RUN);
    let v2 = v2_request_raw(&server, SMOKE_RUN);
    assert_eq!(v1.as_bytes(), &v2[..], "the frame layer forked the response payload");

    // Both were served from cache, so the reports inside match the warm
    // run too — the whole chain is one byte-stable answer.
    let parsed = Json::parse(&v1).expect("parse");
    assert_eq!(parsed.get("cache_hit").and_then(Json::as_bool), Some(true));

    server.shutdown();
}

#[test]
fn a_v1_only_client_works_against_a_v2_capable_server() {
    // Negotiation is per connection, from the first bytes: plain
    // newline-JSON clients and framed clients interleave freely on the
    // same listener.
    let server = start(2, 8, 8);

    let v1_first = Json::parse(&v1_request_raw(&server, SMOKE_RUN)).expect("v1");
    assert!(ok(&v1_first));

    let mut framed =
        Connection::connect_with(&server.local_addr().to_string(), Proto::V2).expect("v2 connect");
    let v2 = framed.request(SMOKE_RUN).expect("v2 request");
    assert!(ok(&v2));
    assert_eq!(v2.get("cache_hit").and_then(Json::as_bool), Some(true));

    let v1_again = Json::parse(&v1_request_raw(&server, r#"{"op":"stats"}"#)).expect("stats");
    assert!(ok(&v1_again));

    server.shutdown();
}

#[test]
fn torn_frames_across_arbitrary_segment_boundaries_reassemble() {
    let server = start(2, 8, 8);
    // Warm the cache first so the reference exchange and every torn
    // round answer from identical server state (a cache hit).
    let _ = v2_request_raw(&server, SMOKE_RUN);
    let expected = v2_request_raw(&server, SMOKE_RUN);

    // The whole client side of the exchange — preamble plus one frame —
    // dribbled out in seeded random segments with the stream flushed
    // after every one, so the server sees arbitrary read boundaries.
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    for round in 0..4 {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&frame::MAGIC);
        bytes.push(frame::VERSION);
        bytes.extend_from_slice(&frame::encode_frame(9, frame::tag::RUN, SMOKE_RUN.as_bytes()));

        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut sent = 0usize;
        while sent < bytes.len() {
            let n = 1 + rng.u64_below((bytes.len() - sent) as u64) as usize;
            stream.write_all(&bytes[sent..sent + n]).expect("dribble");
            stream.flush().expect("flush");
            sent += n;
            std::thread::sleep(Duration::from_millis(1));
        }
        frame::read_preamble(&mut stream).expect("server preamble");
        let reply = frame::read_frame(&mut stream).expect("read frame");
        assert_eq!(reply.id, 9, "round {round}");
        assert_eq!(reply.tag, frame::tag::RUN, "round {round}");
        assert_eq!(reply.payload, expected, "round {round}: torn delivery changed the answer");
    }

    server.shutdown();
}

#[test]
fn pipelined_jobs_complete_out_of_order_with_matching_ids() {
    let server = start(2, 8, 8);
    let addr = server.local_addr().to_string();

    let mut conn = Connection::connect_with(&addr, Proto::V2).expect("connect");
    let long_id = conn.submit(LONG_RUN).expect("submit long");
    // Make sure the long job is on a worker before the smoke job is even
    // submitted, so its earlier arrival is not a scheduling accident.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = Json::parse(&v1_request_raw(&server, r#"{"op":"stats"}"#)).expect("stats");
        if stats.get("jobs_in_flight").and_then(Json::as_i64) == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "long job never started");
        std::thread::sleep(Duration::from_millis(20));
    }
    let smoke_id = conn.submit(SMOKE_RUN).expect("submit smoke");
    assert_ne!(long_id, smoke_id);

    // The cheap job overtakes the expensive one on the same connection.
    let (first_id, first) = conn.collect().expect("first completion");
    assert_eq!(first_id, smoke_id, "smoke job should complete first");
    assert!(ok(&first), "smoke job failed: {}", first.to_string_compact());

    // Cancel unblocks the long job; its (structured) failure still comes
    // back tagged with the right id.
    let cancel = Json::parse(&v1_request_raw(&server, r#"{"op":"cancel"}"#)).expect("cancel");
    assert!(ok(&cancel));
    let (second_id, second) = conn.collect().expect("second completion");
    assert_eq!(second_id, long_id);
    assert_eq!(error_code(&second), Some("cancelled"));

    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_rejected_without_reading_the_body() {
    let server = start(1, 2, 2);
    let mut stream = v2_connect(&server);

    // A length prefix promising more than MAX_FRAME_LEN. The body never
    // follows — the server must answer from the prefix alone (which is
    // why the rejection carries id 0: the id lives in the unread body).
    stream.write_all(&(frame::MAX_FRAME_LEN + 1).to_le_bytes()).expect("send oversized len");
    stream.flush().expect("flush");

    let reply = frame::read_frame(&mut stream).expect("bad-frame answer");
    assert_eq!(reply.id, 0);
    assert_eq!(reply.tag, frame::tag::ERROR);
    let json = Json::parse(std::str::from_utf8(&reply.payload).expect("utf8")).expect("json");
    assert_eq!(error_code(&json), Some("bad-frame"));
    let detail = json.get("detail").and_then(Json::as_str).unwrap_or("");
    assert!(detail.contains("exceeds"), "detail was {detail:?}");

    // An oversized length cannot be resynchronized past (the body was
    // never read), so the connection is closed.
    match frame::read_frame(&mut stream) {
        Err(FrameError::Eof) => {}
        other => panic!("expected EOF after oversized frame, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn truncated_frame_gets_a_bad_frame_answer_and_the_connection_survives() {
    let server = start(1, 2, 2);
    let mut stream = v2_connect(&server);

    // len < FRAME_HEADER_LEN: too short to even hold id + tag. The
    // declared bytes are consumed, so the stream stays in sync.
    stream.write_all(&4u32.to_le_bytes()).expect("send bad len");
    stream.write_all(&[0xAA; 4]).expect("send stub body");
    stream.flush().expect("flush");

    let reply = frame::read_frame(&mut stream).expect("bad-frame answer");
    assert_eq!(reply.tag, frame::tag::ERROR);
    let json = Json::parse(std::str::from_utf8(&reply.payload).expect("utf8")).expect("json");
    assert_eq!(error_code(&json), Some("bad-frame"));

    // Same connection, valid frame: still served.
    frame::write_frame(&mut stream, 11, frame::tag::STATS, br#"{"op":"stats"}"#).expect("send");
    let stats = frame::read_frame(&mut stream).expect("stats answer");
    assert_eq!(stats.id, 11);
    let json = Json::parse(std::str::from_utf8(&stats.payload).expect("utf8")).expect("json");
    assert!(ok(&json));

    server.shutdown();
}

#[test]
fn version_mismatch_is_answered_then_the_connection_closes() {
    let server = start(1, 2, 2);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // Right magic, wrong version: the server still speaks — its own
    // preamble plus one error frame — so the client learns why, then
    // the connection closes.
    stream.write_all(&frame::MAGIC).expect("send magic");
    stream.write_all(&[7]).expect("send bogus version");
    stream.flush().expect("flush");

    frame::read_preamble(&mut stream).expect("server preamble");
    let reply = frame::read_frame(&mut stream).expect("error frame");
    assert_eq!(reply.tag, frame::tag::ERROR);
    let json = Json::parse(std::str::from_utf8(&reply.payload).expect("utf8")).expect("json");
    assert_eq!(error_code(&json), Some("bad-frame"));
    let detail = json.get("detail").and_then(Json::as_str).unwrap_or("");
    assert!(detail.contains("version"), "detail was {detail:?}");
    match frame::read_frame(&mut stream) {
        Err(FrameError::Eof) => {}
        other => panic!("expected EOF after version mismatch, got {other:?}"),
    }

    // The server itself is unharmed.
    let after = Json::parse(&v1_request_raw(&server, r#"{"op":"stats"}"#)).expect("stats");
    assert!(ok(&after));

    server.shutdown();
}

#[test]
fn mismatched_tag_and_unknown_tag_are_bad_frames() {
    let server = start(1, 2, 2);
    let mut stream = v2_connect(&server);

    // Tag says STATS, payload says run.
    frame::write_frame(&mut stream, 21, frame::tag::STATS, SMOKE_RUN.as_bytes()).expect("send");
    let reply = frame::read_frame(&mut stream).expect("answer");
    assert_eq!(reply.id, 21);
    let json = Json::parse(std::str::from_utf8(&reply.payload).expect("utf8")).expect("json");
    assert_eq!(error_code(&json), Some("bad-frame"));

    // A tag outside the op table.
    frame::write_frame(&mut stream, 22, 200, br#"{"op":"stats"}"#).expect("send");
    let reply = frame::read_frame(&mut stream).expect("answer");
    assert_eq!(reply.id, 22);
    let json = Json::parse(std::str::from_utf8(&reply.payload).expect("utf8")).expect("json");
    assert_eq!(error_code(&json), Some("bad-frame"));

    // Both were protocol errors, not job failures; the connection lives.
    frame::write_frame(&mut stream, 23, frame::tag::STATS, br#"{"op":"stats"}"#).expect("send");
    let stats = frame::read_frame(&mut stream).expect("stats answer");
    let json = Json::parse(std::str::from_utf8(&stats.payload).expect("utf8")).expect("json");
    assert!(ok(&json));
    assert!(
        json.get("counters").and_then(|c| c.get("bad_requests")).and_then(Json::as_i64) >= Some(2)
    );

    server.shutdown();
}
