//! End-to-end tests: an in-process [`Server`] on an ephemeral port,
//! driven over real TCP connections.
//!
//! Long-running jobs use `fig6_division_tree` at full scale (a
//! 12000-element quicksort) so they are reliably still in flight when
//! the test cancels them or stacks jobs behind them; cheap jobs use
//! smoke-scale scenarios.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use capsule_core::output::Json;
use capsule_serve::{Server, ServerOptions};

fn start(workers: usize, queue: usize, cache: usize) -> Server {
    start_with_checkpoints(workers, queue, cache, 0)
}

fn start_with_checkpoints(
    workers: usize,
    queue: usize,
    cache: usize,
    checkpoint_cycles: u64,
) -> Server {
    Server::start(
        "127.0.0.1:0",
        ServerOptions {
            workers,
            queue,
            cache,
            traces: 16,
            checkpoint_cycles,
            checkpoints: 8,
            flight: 64,
        },
    )
    .expect("bind ephemeral port")
}

/// One request/response exchange on a fresh connection.
fn request(server: &Server, line: &str) -> Json {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(format!("{line}\n").as_bytes()).expect("send");
    stream.flush().expect("flush");
    let mut response = String::new();
    BufReader::new(&stream).read_line(&mut response).expect("recv");
    Json::parse(response.trim()).expect("parse response")
}

/// Send a request and return the reader without waiting for the reply,
/// so the test can do other work while the job runs.
fn request_deferred(server: &Server, line: &str) -> BufReader<TcpStream> {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(format!("{line}\n").as_bytes()).expect("send");
    stream.flush().expect("flush");
    BufReader::new(stream)
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Json {
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    Json::parse(response.trim()).expect("parse response")
}

fn ok(json: &Json) -> bool {
    json.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_code(json: &Json) -> Option<&str> {
    json.get("error").and_then(Json::as_str)
}

fn counter(server: &Server, name: &str) -> i64 {
    let stats = request(server, r#"{"op":"stats"}"#);
    stats.get("counters").and_then(|c| c.get(name)).and_then(Json::as_i64).expect("counter")
}

fn jobs_in_flight(server: &Server) -> i64 {
    let stats = request(server, r#"{"op":"stats"}"#);
    stats.get("jobs_in_flight").and_then(Json::as_i64).expect("jobs_in_flight")
}

/// Poll until the condition holds or a generous deadline passes.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

const SMOKE_RUN: &str = r#"{"op":"run","scenario":"table1_config","scale":"smoke"}"#;
/// Full-scale fig6 sorts 12000 elements — takes long enough in a debug
/// build that the test can observe and cancel it mid-flight.
const LONG_RUN: &str = r#"{"op":"run","scenario":"fig6_division_tree","scale":"full"}"#;

#[test]
fn run_then_cache_hit_is_byte_identical() {
    let server = start(2, 8, 8);

    let first = request(&server, SMOKE_RUN);
    assert!(ok(&first), "first run failed: {}", first.to_string_compact());
    assert_eq!(first.get("cache_hit").and_then(Json::as_bool), Some(false));
    assert_eq!(
        first.get("report").and_then(|r| r.get("schema")).and_then(Json::as_str),
        Some("capsule-bench-report/1")
    );
    let key = first.get("cache_key").and_then(Json::as_str).expect("cache_key").to_string();
    assert_eq!(key.len(), 16, "cache_key is 16 hex digits");

    let second = request(&server, SMOKE_RUN);
    assert!(ok(&second));
    assert_eq!(second.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(second.get("cache_key").and_then(Json::as_str), Some(key.as_str()));
    assert_eq!(
        first.get("report").map(Json::to_string_compact),
        second.get("report").map(Json::to_string_compact),
        "cached report must render byte-identically"
    );

    // A different budget is different work: canonical form differs, so no hit.
    let other = request(
        &server,
        r#"{"op":"run","scenario":"table1_config","scale":"smoke","budget":500000000000}"#,
    );
    assert!(ok(&other), "large-budget run failed: {}", other.to_string_compact());
    assert_eq!(other.get("cache_hit").and_then(Json::as_bool), Some(false));
    assert_ne!(other.get("cache_key").and_then(Json::as_str), Some(key.as_str()));

    server.shutdown();
}

#[test]
fn full_queue_rejects_with_structured_error() {
    // One worker, one queue slot: a long job occupies the worker, a
    // second waits in the queue, and the third must bounce immediately.
    let server = start(1, 1, 8);

    let mut long = request_deferred(&server, LONG_RUN);
    wait_for("long job to occupy the worker", || jobs_in_flight(&server) == 1);

    let mut queued = request_deferred(&server, SMOKE_RUN);
    wait_for("second job to be queued", || counter(&server, "jobs_accepted") >= 2);

    let rejected = request(&server, SMOKE_RUN);
    assert!(!ok(&rejected));
    assert_eq!(error_code(&rejected), Some("queue-full"));
    assert_eq!(rejected.get("queue_capacity").and_then(Json::as_i64), Some(1));
    assert!(counter(&server, "jobs_rejected") >= 1);

    // Unblock the worker; the queued job must still complete.
    let cancel = request(&server, r#"{"op":"cancel"}"#);
    assert!(ok(&cancel));
    let long_reply = read_reply(&mut long);
    assert_eq!(error_code(&long_reply), Some("cancelled"));
    let queued_reply = read_reply(&mut queued);
    assert!(ok(&queued_reply), "queued job failed: {}", queued_reply.to_string_compact());

    server.shutdown();
}

#[test]
fn cancel_stops_in_flight_job_and_frees_the_worker() {
    let server = start(1, 4, 8);

    let mut long = request_deferred(&server, LONG_RUN);
    wait_for("long job to start", || jobs_in_flight(&server) == 1);

    let started = Instant::now();
    let cancel = request(&server, r#"{"op":"cancel"}"#);
    assert!(ok(&cancel));

    let reply = read_reply(&mut long);
    assert!(!ok(&reply));
    assert_eq!(error_code(&reply), Some("cancelled"));
    let detail = reply.get("detail").and_then(Json::as_str).unwrap_or("");
    assert!(detail.contains("cancelled at cycle"), "detail was {detail:?}");
    // The cycle-loop poll makes cancellation prompt, not best-effort:
    // the full-scale job takes minutes uncancelled.
    assert!(started.elapsed() < Duration::from_secs(30), "cancellation was not prompt");
    assert_eq!(counter(&server, "jobs_cancelled"), 1);

    // The worker slot is free again and new jobs run to completion —
    // cancel installs a fresh token rather than poisoning the server.
    wait_for("worker to go idle", || jobs_in_flight(&server) == 0);
    let after = request(&server, SMOKE_RUN);
    assert!(ok(&after), "post-cancel job failed: {}", after.to_string_compact());

    server.shutdown();
}

#[test]
fn budget_overrun_is_a_structured_failure() {
    let server = start(1, 4, 8);
    let reply =
        request(&server, r#"{"op":"run","scenario":"table1_config","scale":"smoke","budget":10}"#);
    assert!(!ok(&reply));
    assert_eq!(error_code(&reply), Some("scenario-failed"));
    let detail = reply.get("detail").and_then(Json::as_str).unwrap_or("");
    assert!(detail.contains("no halt within"), "detail was {detail:?}");
    assert_eq!(counter(&server, "jobs_failed"), 1);
    server.shutdown();
}

#[test]
fn config_overrides_change_the_report() {
    let server = start(1, 4, 8);
    let base = request(&server, SMOKE_RUN);
    let throttled = request(
        &server,
        r#"{"op":"run","scenario":"table1_config","scale":"smoke","config":{"division_mode":"never"}}"#,
    );
    assert!(ok(&base) && ok(&throttled));
    assert_eq!(throttled.get("cache_hit").and_then(Json::as_bool), Some(false));
    assert_ne!(
        base.get("report").map(Json::to_string_compact),
        throttled.get("report").map(Json::to_string_compact),
        "disabling division must change simulated results"
    );
    server.shutdown();
}

#[test]
fn malformed_and_unknown_requests_get_structured_rejections() {
    let server = start(1, 2, 2);
    for (line, why) in [
        ("not json", "unparseable"),
        (r#"{"op":"frobnicate"}"#, "unknown op"),
        (r#"{"op":"run"}"#, "missing scenario"),
        (r#"{"op":"run","scenario":"nope"}"#, "unknown scenario"),
        (r#"{"op":"run","scenario":"table1_config","budget":0}"#, "zero budget"),
    ] {
        let reply = request(&server, line);
        assert!(!ok(&reply), "{why}: expected rejection, got {}", reply.to_string_compact());
        assert_eq!(error_code(&reply), Some("bad-request"), "{why}");
        assert!(reply.get("detail").and_then(Json::as_str).is_some(), "{why}: detail missing");
    }
    assert_eq!(counter(&server, "bad_requests"), 5);
    server.shutdown();
}

#[test]
fn list_names_every_catalog_entry_and_stats_counts_requests() {
    let server = start(1, 2, 2);
    let list = request(&server, r#"{"op":"list"}"#);
    assert!(ok(&list));
    let names: Vec<&str> = list
        .get("scenarios")
        .and_then(Json::as_array)
        .expect("scenarios array")
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names.len(), capsule_bench::catalog::entries().len());
    assert!(names.contains(&"fig3_dijkstra_dist"));
    assert!(names.contains(&"toolchain_overhead"));
    assert!(counter(&server, "requests") >= 2);
    server.shutdown();
}

#[test]
fn profile_run_returns_stage_profiles_without_touching_the_report() {
    let server = start(1, 4, 8);

    let plain = request(&server, SMOKE_RUN);
    assert!(ok(&plain));
    assert!(plain.get("profile").is_none(), "unprofiled run must not carry profiles");

    // profile:true bypasses the cache lookup (the stage profile has to
    // come from a real run), so this is a fresh execution...
    let profiled = request(
        &server,
        r#"{"op":"run","scenario":"table1_config","scale":"smoke","profile":true}"#,
    );
    assert!(ok(&profiled), "profiled run failed: {}", profiled.to_string_compact());
    assert_eq!(profiled.get("cache_hit").and_then(Json::as_bool), Some(false));
    // ...whose report is still byte-identical: profiling is observation-only.
    assert_eq!(
        plain.get("report").map(Json::to_string_compact),
        profiled.get("report").map(Json::to_string_compact),
        "profiling perturbed the report"
    );

    let rows = profiled.get("profile").and_then(Json::as_array).expect("profile array");
    let report_runs = profiled
        .get("report")
        .and_then(|r| r.get("records"))
        .and_then(Json::as_array)
        .expect("records")
        .len();
    assert_eq!(rows.len(), report_runs, "one profile row per record");
    for row in rows {
        assert!(row.get("group").and_then(Json::as_str).is_some());
        let stages = row.get("stages").expect("stages object");
        for stage in ["fetch", "dispatch", "issue", "complete", "commit"] {
            let s = stages.get(stage).unwrap_or_else(|| panic!("missing stage {stage}"));
            assert!(s.get("active_cycles").and_then(Json::as_u64).is_some());
            assert!(s.get("units").and_then(Json::as_u64).is_some());
        }
        assert!(stages.get("stepped_cycles").and_then(Json::as_u64).is_some());
    }
    server.shutdown();
}

#[test]
fn traced_job_is_reconstructable_via_the_trace_op() {
    let server = start(1, 4, 8);

    // An unknown id is a structured error, not a hang or an empty tree.
    let missing = request(&server, r#"{"op":"trace","trace_id":"never-submitted"}"#);
    assert!(!ok(&missing));
    assert_eq!(error_code(&missing), Some("unknown-trace"));

    let run = request(
        &server,
        r#"{"op":"run","scenario":"table1_config","scale":"smoke","trace_id":"e2e-t1"}"#,
    );
    assert!(ok(&run), "traced run failed: {}", run.to_string_compact());
    assert_eq!(run.get("trace_id").and_then(Json::as_str), Some("e2e-t1"));

    let reply = request(&server, r#"{"op":"trace","trace_id":"e2e-t1"}"#);
    assert!(ok(&reply), "trace query failed: {}", reply.to_string_compact());
    let tree = reply.get("trace").expect("trace tree");
    assert_eq!(tree.get("dropped").and_then(Json::as_u64), Some(0));
    let spans = tree.get("spans").and_then(Json::as_array).expect("spans");
    let names: Vec<&str> =
        spans.iter().filter_map(|s| s.get("name").and_then(Json::as_str)).collect();
    assert_eq!(names, ["serve.run", "serve.queue", "serve.execute"]);

    let root = &spans[0];
    assert_eq!(root.get("parent"), Some(&Json::Null));
    let attr = |span: &Json, key: &str| {
        span.get("attrs").and_then(|a| a.get(key)).and_then(Json::as_str).map(str::to_string)
    };
    assert_eq!(attr(root, "scenario").as_deref(), Some("table1_config"));
    assert_eq!(attr(root, "scale").as_deref(), Some("smoke"));
    let miss = root.get("events").and_then(Json::as_array).expect("events");
    assert!(
        miss.iter().any(|e| e.get("name").and_then(Json::as_str) == Some("cache-miss")),
        "first traced run must record a cache-miss event"
    );
    // Children hang off the root, every span is closed, and the execute
    // span carries its outcome.
    let root_id = root.get("id").and_then(Json::as_u64).expect("id");
    for span in &spans[1..] {
        assert_eq!(span.get("parent").and_then(Json::as_u64), Some(root_id));
        assert!(span.get("end_us").and_then(Json::as_u64).is_some(), "span left open");
    }
    assert_eq!(attr(&spans[2], "outcome").as_deref(), Some("completed"));

    // The same work traced again is a cache hit; the stored tree says so.
    let hit = request(
        &server,
        r#"{"op":"run","scenario":"table1_config","scale":"smoke","trace_id":"e2e-t2"}"#,
    );
    assert_eq!(hit.get("cache_hit").and_then(Json::as_bool), Some(true));
    let reply2 = request(&server, r#"{"op":"trace","trace_id":"e2e-t2"}"#);
    let spans2 = reply2.get("trace").and_then(|t| t.get("spans")).unwrap();
    let hit_events = spans2.as_array().unwrap()[0].get("events").and_then(Json::as_array).unwrap();
    assert!(
        hit_events.iter().any(|e| e.get("name").and_then(Json::as_str) == Some("cache-hit")),
        "cache-hit trace must record the hit"
    );

    server.shutdown();
}

#[test]
fn metrics_exposition_is_deterministic_and_golden_on_a_fresh_server() {
    let server = start(1, 4, 8);

    // Golden: the full exposition of an untouched server, byte for byte.
    // Scrape-perturbed counters (connections, requests) are excluded by
    // design, so a scrape does not change the next scrape.
    let expected = "capsule_serve_bad_requests_total 0\n\
                    capsule_serve_cache_capacity 8\n\
                    capsule_serve_cache_entries 0\n\
                    capsule_serve_cache_evictions_total 0\n\
                    capsule_serve_cache_hits_total 0\n\
                    capsule_serve_cache_misses_total 0\n\
                    capsule_serve_cancel_requests_total 0\n\
                    capsule_serve_checkpoint_capacity 8\n\
                    capsule_serve_checkpoint_cycles 0\n\
                    capsule_serve_checkpoint_entries 0\n\
                    capsule_serve_checkpoint_evictions_total 0\n\
                    capsule_serve_checkpoint_fetches_total 0\n\
                    capsule_serve_checkpoint_puts_total 0\n\
                    capsule_serve_checkpoints_stored_total 0\n\
                    capsule_serve_ewma_queue_wait_us 0\n\
                    capsule_serve_ewma_run_us 0\n\
                    capsule_serve_flight_capacity 64\n\
                    capsule_serve_flight_recorded_total 0\n\
                    capsule_serve_jobs_accepted_total 0\n\
                    capsule_serve_jobs_cancelled_total 0\n\
                    capsule_serve_jobs_completed_total 0\n\
                    capsule_serve_jobs_failed_total 0\n\
                    capsule_serve_jobs_in_flight 0\n\
                    capsule_serve_jobs_preempted_total 0\n\
                    capsule_serve_jobs_rejected_total 0\n\
                    capsule_serve_jobs_resumed_total 0\n\
                    capsule_serve_predicted_wait_us 0\n\
                    capsule_serve_preempt_requests_total 0\n\
                    capsule_serve_queue_capacity 4\n\
                    capsule_serve_queue_wait_us_bucket{le=\"+Inf\"} 0\n\
                    capsule_serve_queue_wait_us_count 0\n\
                    capsule_serve_queue_wait_us_sum 0\n\
                    capsule_serve_run_us_bucket{le=\"+Inf\"} 0\n\
                    capsule_serve_run_us_count 0\n\
                    capsule_serve_run_us_sum 0\n\
                    capsule_serve_snapshot_bytes_total 0\n\
                    capsule_serve_traces_stored 0\n\
                    capsule_serve_workers 1\n";
    let first = request(&server, r#"{"op":"metrics"}"#);
    assert!(ok(&first));
    assert_eq!(first.get("exposition").and_then(Json::as_str), Some(expected));

    // Two back-to-back scrapes are byte-identical, response and all.
    let second = request(&server, r#"{"op":"metrics"}"#);
    assert_eq!(first.to_string_compact(), second.to_string_compact());

    // After real work the counters move and the histograms fill in.
    let run = request(&server, SMOKE_RUN);
    assert!(ok(&run));
    let after = request(&server, r#"{"op":"metrics"}"#);
    let text = after.get("exposition").and_then(Json::as_str).expect("exposition");
    assert!(text.contains("capsule_serve_jobs_completed_total 1\n"), "{text}");
    assert!(text.contains("capsule_serve_cache_misses_total 1\n"), "{text}");
    assert!(text.contains("capsule_serve_cache_entries 1\n"), "{text}");
    assert!(text.contains("capsule_serve_run_us_count 1\n"), "{text}");
    assert!(!text.contains("connections"), "scrape-perturbed counter leaked in:\n{text}");

    server.shutdown();
}

/// The `cache_key` (= checkpoint token) a run line will be admitted
/// under, computed the same way the server does.
fn run_cache_key(line: &str) -> String {
    use capsule_serve::protocol::{cache_key, Request};
    let Request::Run(run) = Request::parse_line(line).expect("parse run line") else {
        panic!("not a run line: {line}")
    };
    cache_key(&run.canonical())
}

/// Preempt a job, park it server-side, migrate its checkpoint to another
/// server over the wire, and resume it on both — every resumed report
/// must be byte-identical to an uninterrupted run of the same request.
#[test]
fn preempted_job_resumes_byte_identically_and_migrates_across_servers() {
    // Baseline: a plain, never-checkpointed server.
    let plain = start(1, 4, 8);
    let baseline = request(&plain, SMOKE_RUN);
    assert!(ok(&baseline), "baseline run failed: {}", baseline.to_string_compact());
    let baseline_report = baseline.get("report").map(Json::to_string_compact).expect("report");

    // Checkpointed server: a long job occupies the single worker, so the
    // smoke job is preempted while still queued (deterministically —
    // no race against a checkpoint boundary; boundary preemption is
    // pinned exhaustively by capsule-bench's checkpoint tests).
    let ckpt = start_with_checkpoints(1, 4, 8, 50_000);
    let mut long = request_deferred(&ckpt, LONG_RUN);
    wait_for("long job to occupy the worker", || jobs_in_flight(&ckpt) == 1);
    let mut queued = request_deferred(&ckpt, SMOKE_RUN);
    wait_for("smoke job to be queued", || counter(&ckpt, "jobs_accepted") >= 2);

    let key = run_cache_key(SMOKE_RUN);
    let preempt = request(&ckpt, &format!(r#"{{"op":"preempt","cache_key":"{key}"}}"#));
    assert!(ok(&preempt), "preempt failed: {}", preempt.to_string_compact());

    // Free the worker; the queued job starts, observes its preempt flag
    // and parks instead of running.
    let cancel = request(&ckpt, r#"{"op":"cancel"}"#);
    assert!(ok(&cancel));
    assert_eq!(error_code(&read_reply(&mut long)), Some("cancelled"));
    let parked = read_reply(&mut queued);
    assert!(!ok(&parked));
    assert_eq!(error_code(&parked), Some("preempted"));
    assert_eq!(parked.get("cache_key").and_then(Json::as_str), Some(key.as_str()));
    assert_eq!(counter(&ckpt, "jobs_preempted"), 1);
    assert!(counter(&ckpt, "checkpoints_stored") >= 1);

    // Fetch the parked checkpoint and migrate it to the plain server.
    let fetched = request(&ckpt, &format!(r#"{{"op":"checkpoint-fetch","token":"{key}"}}"#));
    assert!(ok(&fetched), "fetch failed: {}", fetched.to_string_compact());
    let canonical = fetched.get("canonical").and_then(Json::as_str).expect("canonical");
    let blob = fetched.get("blob").and_then(Json::as_str).expect("blob hex");
    assert_eq!(counter(&ckpt, "checkpoint_fetches"), 1);

    // A put that lies about its job is rejected.
    let lied = request(
        &plain,
        &format!(
            r#"{{"op":"checkpoint-put","token":"0000000000000000","canonical":{},"blob":"{blob}"}}"#,
            Json::from(canonical).to_string_compact()
        ),
    );
    assert_eq!(error_code(&lied), Some("checkpoint-mismatch"));

    let put = request(
        &plain,
        &format!(
            r#"{{"op":"checkpoint-put","token":"{key}","canonical":{},"blob":"{blob}"}}"#,
            Json::from(canonical).to_string_compact()
        ),
    );
    assert!(ok(&put), "put failed: {}", put.to_string_compact());
    assert_eq!(put.get("checkpoint_entries").and_then(Json::as_i64), Some(1));

    // Resume on the migration target. Its result cache already holds the
    // baseline report for this canonical request, and a cache hit is the
    // correct (byte-identical) answer — so bypass it with profile:true,
    // which forces a real run through the resume path.
    let resume_line = format!(
        r#"{{"op":"run","scenario":"table1_config","scale":"smoke","resume_from":"{key}","profile":true}}"#
    );
    let migrated = request(&plain, &resume_line);
    assert!(ok(&migrated), "migrated resume failed: {}", migrated.to_string_compact());
    assert_eq!(migrated.get("cache_hit").and_then(Json::as_bool), Some(false));
    assert_eq!(
        migrated.get("report").map(Json::to_string_compact).as_deref(),
        Some(baseline_report.as_str()),
        "migrated resume diverged from the uninterrupted run"
    );
    assert_eq!(counter(&plain, "jobs_resumed"), 1);

    // Resume on the original server too (its copy is still parked).
    let resumed = request(&ckpt, &resume_line);
    assert!(ok(&resumed), "resume failed: {}", resumed.to_string_compact());
    assert_eq!(
        resumed.get("report").map(Json::to_string_compact).as_deref(),
        Some(baseline_report.as_str()),
        "resumed report diverged from the uninterrupted run"
    );

    // Completion consumed the parked checkpoints on both servers.
    for s in [&plain, &ckpt] {
        let gone = request(s, &format!(r#"{{"op":"checkpoint-fetch","token":"{key}"}}"#));
        assert_eq!(error_code(&gone), Some("unknown-checkpoint"));
    }

    // The new counters are in the exposition and scrapes stay stable.
    let m1 = request(&ckpt, r#"{"op":"metrics"}"#);
    let text = m1.get("exposition").and_then(Json::as_str).expect("exposition");
    assert!(text.contains("capsule_serve_jobs_preempted_total 1\n"), "{text}");
    assert!(text.contains("capsule_serve_jobs_resumed_total 1\n"), "{text}");
    assert!(text.contains("capsule_serve_checkpoint_fetches_total 1\n"), "{text}");
    let m2 = request(&ckpt, r#"{"op":"metrics"}"#);
    assert_eq!(m1.to_string_compact(), m2.to_string_compact());

    plain.shutdown();
    ckpt.shutdown();
}

/// Every checkpoint failure mode is a structured error, never a hang,
/// a panic, or a silently wrong run.
#[test]
fn checkpoint_errors_are_structured() {
    let server = start_with_checkpoints(1, 4, 8, 10_000);
    let key = run_cache_key(SMOKE_RUN);

    // Preempting a job that is not admitted.
    let idle = request(&server, &format!(r#"{{"op":"preempt","cache_key":"{key}"}}"#));
    assert_eq!(error_code(&idle), Some("not-running"));

    // Fetching a checkpoint that was never parked.
    let missing = request(&server, &format!(r#"{{"op":"checkpoint-fetch","token":"{key}"}}"#));
    assert_eq!(error_code(&missing), Some("unknown-checkpoint"));

    // Resuming with a token that is not this request's cache_key.
    let foreign = request(
        &server,
        r#"{"op":"run","scenario":"table1_config","scale":"smoke","resume_from":"0000000000000000"}"#,
    );
    assert_eq!(error_code(&foreign), Some("checkpoint-mismatch"));

    // Resuming with the right token but no parked checkpoint.
    let unparked = request(
        &server,
        &format!(
            r#"{{"op":"run","scenario":"table1_config","scale":"smoke","resume_from":"{key}"}}"#
        ),
    );
    assert_eq!(error_code(&unparked), Some("unknown-checkpoint"));

    // A corrupt blob passes checkpoint-put (the token/canonical pair is
    // consistent) but is rejected with a structured error at resume.
    use capsule_serve::protocol::Request;
    let Request::Run(run) = Request::parse_line(SMOKE_RUN).expect("parse") else { panic!("run") };
    let canonical = Json::from(run.canonical().as_str()).to_string_compact();
    let put = request(
        &server,
        &format!(
            r#"{{"op":"checkpoint-put","token":"{key}","canonical":{canonical},"blob":"deadbeefdeadbeef"}}"#
        ),
    );
    assert!(ok(&put), "put failed: {}", put.to_string_compact());
    let bad = request(
        &server,
        &format!(
            r#"{{"op":"run","scenario":"table1_config","scale":"smoke","resume_from":"{key}"}}"#
        ),
    );
    assert_eq!(error_code(&bad), Some("bad-checkpoint"));
    let detail = bad.get("detail").and_then(Json::as_str).unwrap_or("");
    assert!(detail.contains("magic"), "detail was {detail:?}");
    assert_eq!(counter(&server, "jobs_failed"), 1);

    server.shutdown();
}

#[test]
fn shutdown_request_over_the_wire_stops_the_server() {
    let server = start(2, 4, 4);
    let reply = request(&server, r#"{"op":"shutdown"}"#);
    assert!(ok(&reply));
    wait_for("server to stop", || !server.running());
    assert!(
        TcpStream::connect(server.local_addr()).is_err() || {
            // The listener may accept one last connection while tearing
            // down; a request on it must not hang the test.
            true
        }
    );
    server.join();
}

/// Smoke-scale job that runs for a few seconds in a debug build — an
/// order of magnitude slower than `SMOKE_RUN`, so it reliably lands
/// above a tail-policy p99 warmed on fast samples.
const SLOW_RUN: &str = r#"{"op":"run","scenario":"ablation_policies","scale":"smoke"}"#;

#[test]
fn health_reports_gauges_and_predicted_wait() {
    let server = start(1, 4, 8);

    // Fresh server: every gauge reads zero and the prediction is zero.
    let fresh = request(&server, r#"{"op":"health"}"#);
    assert!(ok(&fresh), "health failed: {}", fresh.to_string_compact());
    assert_eq!(fresh.get("workers").and_then(Json::as_i64), Some(1));
    assert_eq!(fresh.get("queue_capacity").and_then(Json::as_i64), Some(4));
    assert_eq!(fresh.get("jobs_in_flight").and_then(Json::as_i64), Some(0));
    assert_eq!(fresh.get("ewma_queue_wait_us").and_then(Json::as_i64), Some(0));
    assert_eq!(fresh.get("ewma_run_us").and_then(Json::as_i64), Some(0));
    assert_eq!(fresh.get("predicted_wait_us").and_then(Json::as_i64), Some(0));
    assert_eq!(fresh.get("flight_recorded").and_then(Json::as_i64), Some(0));
    assert!(fresh.get("key").is_none(), "no key was sent, none must echo");

    // An optional key is echoed back for fan-out correlation.
    let keyed = request(&server, r#"{"op":"health","key":"abc123"}"#);
    assert!(ok(&keyed));
    assert_eq!(keyed.get("key").and_then(Json::as_str), Some("abc123"));

    // After one run the EWMAs are seeded and the always-on flight ring
    // has seen the whole job lifecycle (enqueue, dequeue, complete).
    let run = request(&server, SMOKE_RUN);
    assert!(ok(&run), "run failed: {}", run.to_string_compact());
    let after = request(&server, r#"{"op":"health"}"#);
    assert!(after.get("ewma_run_us").and_then(Json::as_u64).expect("ewma_run_us") > 0);
    assert!(after.get("flight_recorded").and_then(Json::as_u64).expect("flight_recorded") >= 3);

    server.shutdown();
}

/// Tail-based retention: every run is traced internally under its cache
/// key, but only interesting finishes survive — slower than the rolling
/// p99, failed, or explicitly requested. Fast clean jobs are provably
/// dropped, before and after the policy has history.
#[test]
fn tail_sampling_retains_slow_and_failed_traces_and_drops_fast_ones() {
    let server = start(1, 8, 16);

    // The very first job has no p99 history, so retention falls back to
    // "interesting only" and this clean fast job's tree is dropped.
    let first = request(&server, SMOKE_RUN);
    assert!(ok(&first), "first run failed: {}", first.to_string_compact());
    let first_key = first.get("cache_key").and_then(Json::as_str).expect("cache_key").to_string();
    let gone = request(&server, &format!(r#"{{"op":"trace","trace_id":"{first_key}"}}"#));
    assert_eq!(error_code(&gone), Some("unknown-trace"), "fast first job must not be retained");

    // Warm the policy with more fast samples. Distinct budgets keep the
    // result cache out of the way — cache hits never feed the policy.
    for budget in [500000000001u64, 500000000002, 500000000003, 500000000004] {
        let r = request(
            &server,
            &format!(
                r#"{{"op":"run","scenario":"table1_config","scale":"smoke","budget":{budget}}}"#
            ),
        );
        assert!(ok(&r), "warmup failed: {}", r.to_string_compact());
    }

    // A job an order of magnitude slower than every sample so far lands
    // above the pre-sample p99 and is tail-retained under its cache key.
    let slow = request(&server, SLOW_RUN);
    assert!(ok(&slow), "slow run failed: {}", slow.to_string_compact());
    let slow_key = slow.get("cache_key").and_then(Json::as_str).expect("cache_key").to_string();
    let kept = request(&server, &format!(r#"{{"op":"trace","trace_id":"{slow_key}"}}"#));
    assert!(ok(&kept), "slow job's trace was not tail-retained: {}", kept.to_string_compact());
    let spans = kept.get("trace").and_then(|t| t.get("spans")).and_then(Json::as_array).unwrap();
    let names: Vec<&str> =
        spans.iter().filter_map(|s| s.get("name").and_then(Json::as_str)).collect();
    assert_eq!(names, ["serve.run", "serve.queue", "serve.execute"], "retained tree is complete");

    // With the slow sample now in the histogram, a late fast job is
    // below the p99 again — provably evicted from retention.
    let late = request(
        &server,
        r#"{"op":"run","scenario":"table1_config","scale":"smoke","budget":500000000005}"#,
    );
    assert!(ok(&late), "late run failed: {}", late.to_string_compact());
    let late_key = late.get("cache_key").and_then(Json::as_str).expect("cache_key").to_string();
    let dropped = request(&server, &format!(r#"{{"op":"trace","trace_id":"{late_key}"}}"#));
    assert_eq!(error_code(&dropped), Some("unknown-trace"), "late fast job must be dropped");

    // A failed job is always retained, however fast it failed.
    const FAILING: &str = r#"{"op":"run","scenario":"table1_config","scale":"smoke","budget":10}"#;
    let failed = request(&server, FAILING);
    assert_eq!(error_code(&failed), Some("scenario-failed"));
    let failed_key = run_cache_key(FAILING);
    let kept_fail = request(&server, &format!(r#"{{"op":"trace","trace_id":"{failed_key}"}}"#));
    assert!(ok(&kept_fail), "failed job's trace missing: {}", kept_fail.to_string_compact());
    let fail_spans =
        kept_fail.get("trace").and_then(|t| t.get("spans")).and_then(Json::as_array).unwrap();
    let outcome = fail_spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("serve.execute"))
        .and_then(|s| s.get("attrs"))
        .and_then(|a| a.get("outcome"))
        .and_then(Json::as_str);
    assert_eq!(outcome, Some("failed"));

    server.shutdown();
}

#[test]
fn dump_returns_a_versioned_post_mortem_artifact() {
    let server = start(1, 4, 8);

    // One explicitly traced success, one failure (tail-retained).
    let run = request(
        &server,
        r#"{"op":"run","scenario":"table1_config","scale":"smoke","trace_id":"pm-1"}"#,
    );
    assert!(ok(&run), "run failed: {}", run.to_string_compact());
    const FAILING: &str = r#"{"op":"run","scenario":"table1_config","scale":"smoke","budget":10}"#;
    let failed = request(&server, FAILING);
    assert_eq!(error_code(&failed), Some("scenario-failed"));

    let reply = request(&server, r#"{"op":"dump"}"#);
    assert!(ok(&reply), "dump failed: {}", reply.to_string_compact());
    let dump = reply.get("dump").expect("dump object");
    assert_eq!(dump.get("schema").and_then(Json::as_str), Some("capsule-dump/1"));
    assert_eq!(dump.get("source").and_then(Json::as_str), Some("serve"));

    // The flight ring replays both jobs' lifecycles, in order, each
    // event stamped with the job's cache key and a monotone seq.
    let flight = dump.get("flight").expect("flight ring");
    assert_eq!(flight.get("capacity").and_then(Json::as_u64), Some(64));
    let events = flight.get("events").and_then(Json::as_array).expect("events");
    assert_eq!(flight.get("recorded").and_then(Json::as_u64), Some(events.len() as u64));
    assert_eq!(flight.get("overwritten").and_then(Json::as_u64), Some(0));
    let kinds: Vec<&str> =
        events.iter().filter_map(|e| e.get("kind").and_then(Json::as_str)).collect();
    assert_eq!(kinds, ["enqueue", "dequeue", "complete", "enqueue", "dequeue", "complete"]);
    assert_eq!(events[2].get("outcome").and_then(Json::as_str), Some("completed"));
    assert_eq!(events[5].get("outcome").and_then(Json::as_str), Some("failed"));
    assert_eq!(
        events[0].get("cache_key").and_then(Json::as_str),
        run.get("cache_key").and_then(Json::as_str)
    );
    let seqs: Vec<u64> =
        events.iter().filter_map(|e| e.get("seq").and_then(Json::as_u64)).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq must be strictly increasing: {seqs:?}");

    // Both retained traces are embedded by id.
    let traces = dump.get("traces").and_then(Json::as_array).expect("traces");
    let ids: Vec<&str> =
        traces.iter().filter_map(|t| t.get("trace_id").and_then(Json::as_str)).collect();
    assert!(ids.contains(&"pm-1"), "explicit trace missing from dump: {ids:?}");
    let failed_key = run_cache_key(FAILING);
    assert!(ids.contains(&failed_key.as_str()), "failed job's trace missing from dump: {ids:?}");

    // Gauges and counters round out the artifact.
    let gauges = dump.get("gauges").expect("gauges");
    assert_eq!(gauges.get("jobs_in_flight").and_then(Json::as_i64), Some(0));
    assert!(gauges.get("ewma_run_us").and_then(Json::as_u64).expect("ewma_run_us") > 0);
    let counters = dump.get("counters").expect("counters");
    assert_eq!(counters.get("jobs_completed").and_then(Json::as_i64), Some(1));
    assert_eq!(counters.get("jobs_failed").and_then(Json::as_i64), Some(1));

    server.shutdown();
}
