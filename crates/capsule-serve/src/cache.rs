//! LRU result cache keyed by the canonical run-request string, and the
//! bounded checkpoint store behind preemptible jobs.
//!
//! The cached value is the *serialized* `capsule-bench-report/1` object
//! — the compact rendering, stored once as a shared string — so a cache
//! hit splices the bytes straight into the response without touching
//! the JSON renderer, on both the v1 and v2 paths. Because the renderer
//! is deterministic, the spliced bytes reproduce the original report
//! byte for byte. Keys are the full canonical request strings (never
//! the FNV hash the server reports as `cache_key`), so hash collisions
//! cannot alias two different jobs.
//!
//! The [`CheckpointStore`] is keyed by the 16-hex checkpoint token (the
//! job's `cache_key`) but every entry also carries the full canonical
//! string it was taken for: a resume validates the canonical against the
//! incoming request, so a token collision degrades to a structured
//! `checkpoint-mismatch` instead of resuming the wrong job.

use std::collections::HashMap;
use std::sync::Arc;

/// A bounded least-recently-used map from canonical request to the
/// serialized report bytes.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    evictions: u64,
    entries: HashMap<String, Entry>,
}

#[derive(Debug)]
struct Entry {
    report: Arc<str>,
    last_used: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` reports (0 disables caching).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache { capacity, tick: 0, evictions: 0, entries: HashMap::new() }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted to make room over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, marking the entry most-recently used. The hit is
    /// a shared handle to the serialized bytes — no re-rendering, no
    /// copy.
    pub fn get(&mut self, key: &str) -> Option<Arc<str>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.report))
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when the cache is full.
    pub fn put(&mut self, key: String, report: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(lru) =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(key, Entry { report, last_used: self.tick });
    }
}

/// One parked job: the canonical request it belongs to plus the
/// checkpoint blob that resumes it.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Canonical form of the job the blob was taken for.
    pub canonical: String,
    /// The `capsule-bench` checkpoint blob.
    pub blob: Vec<u8>,
}

/// A bounded LRU map from checkpoint token to parked job.
///
/// Same recency discipline as [`ResultCache`]; capacity 0 disables
/// checkpoint storage (a preempted job is then simply lost, and resume
/// reports `unknown-checkpoint`).
#[derive(Debug)]
pub struct CheckpointStore {
    capacity: usize,
    tick: u64,
    evictions: u64,
    entries: HashMap<String, (Checkpoint, u64)>,
}

impl CheckpointStore {
    /// A store holding at most `capacity` checkpoints.
    pub fn new(capacity: usize) -> CheckpointStore {
        CheckpointStore { capacity, tick: 0, evictions: 0, entries: HashMap::new() }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Checkpoints evicted under capacity pressure over the store's
    /// lifetime (explicit [`CheckpointStore::remove`] is not an
    /// eviction).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of stored checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `token`, marking the entry most-recently used.
    pub fn get(&mut self, token: &str) -> Option<Checkpoint> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(token)?;
        entry.1 = tick;
        Some(entry.0.clone())
    }

    /// Inserts (or refreshes) `token`, evicting the least-recently-used
    /// checkpoint when the store is full.
    pub fn put(&mut self, token: String, checkpoint: Checkpoint) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&token) && self.entries.len() >= self.capacity {
            if let Some(lru) =
                self.entries.iter().min_by_key(|(_, (_, used))| *used).map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(token, (checkpoint, self.tick));
    }

    /// Drops `token`'s checkpoint (the job completed).
    pub fn remove(&mut self, token: &str) {
        self.entries.remove(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A rendered report, the way the server caches it: built as JSON,
    /// stored as its compact serialization.
    fn report(tag: &str) -> Arc<str> {
        let mut j = capsule_core::output::Json::object();
        j.push("tag", tag);
        Arc::from(j.to_string_compact())
    }

    #[test]
    fn hit_returns_the_identical_bytes() {
        let mut c = ResultCache::new(4);
        c.put("k".to_string(), report("r1"));
        let hit = c.get("k").expect("hit");
        assert_eq!(&*hit, &*report("r1"));
        assert!(c.get("other").is_none());
    }

    #[test]
    fn hit_shares_the_stored_bytes_without_reserializing() {
        // The whole point of caching the serialization: a hit is the
        // *same allocation* that was stored, not a re-rendered copy.
        let mut c = ResultCache::new(4);
        let stored = report("r1");
        c.put("k".to_string(), Arc::clone(&stored));
        let hit = c.get("k").expect("hit");
        assert!(Arc::ptr_eq(&stored, &hit), "a hit must share the stored bytes");
    }

    #[test]
    fn serialized_bytes_round_trip_the_renderer() {
        // Byte parity with the render path: parsing the cached bytes
        // and re-rendering them is the identity, so splicing them into
        // a response is indistinguishable from rendering the report.
        let mut c = ResultCache::new(4);
        let mut j = capsule_core::output::Json::object();
        j.push("schema", "capsule-bench-report/1").push("cycles", 12345u64).push("ok", true);
        let rendered = j.to_string_compact();
        c.put("k".to_string(), Arc::from(rendered.clone()));
        let hit = c.get("k").expect("hit");
        let reparsed = capsule_core::output::Json::parse(&hit).expect("cached bytes parse");
        assert_eq!(reparsed.to_string_compact(), rendered);
    }

    #[test]
    fn evicts_the_least_recently_used_entry() {
        let mut c = ResultCache::new(2);
        c.put("a".to_string(), report("a"));
        c.put("b".to_string(), report("b"));
        assert!(c.get("a").is_some()); // refresh a; b is now LRU
        c.put("c".to_string(), report("c"));
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none());
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn refreshing_an_existing_key_does_not_evict() {
        let mut c = ResultCache::new(2);
        c.put("a".to_string(), report("a1"));
        c.put("b".to_string(), report("b"));
        c.put("a".to_string(), report("a2"));
        assert_eq!(c.len(), 2);
        assert_eq!(&*c.get("a").unwrap(), &*report("a2"));
        assert!(c.get("b").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.put("a".to_string(), report("a"));
        assert!(c.is_empty());
        assert!(c.get("a").is_none());
        assert_eq!(c.len(), 0);
        // Repeated puts never accumulate anything either.
        c.put("b".to_string(), report("b"));
        c.put("a".to_string(), report("a2"));
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_follows_the_full_access_order() {
        // Capacity 3, interleaved gets and puts: each insertion beyond
        // capacity must evict exactly the least-recently-*used* entry,
        // where both hits and inserts refresh recency.
        let mut c = ResultCache::new(3);
        c.put("a".to_string(), report("a"));
        c.put("b".to_string(), report("b"));
        c.put("c".to_string(), report("c"));
        assert!(c.get("a").is_some()); // recency now: b, c, a
        c.put("d".to_string(), report("d")); // evicts b
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some()); // recency now: a, d, c
        c.put("e".to_string(), report("e")); // evicts a
        assert!(c.get("a").is_none());
        c.put("f".to_string(), report("f")); // evicts d
        assert!(c.get("d").is_none());
        // Survivors are exactly the three most recently used.
        assert_eq!(c.len(), 3);
        assert!(c.get("c").is_some());
        assert!(c.get("e").is_some());
        assert!(c.get("f").is_some());
    }

    #[test]
    fn put_refreshes_recency_of_an_existing_key() {
        let mut c = ResultCache::new(2);
        c.put("a".to_string(), report("a1"));
        c.put("b".to_string(), report("b"));
        // Overwriting `a` makes `b` the LRU entry.
        c.put("a".to_string(), report("a2"));
        c.put("c".to_string(), report("c")); // evicts b, not a
        assert!(c.get("b").is_none());
        assert_eq!(&*c.get("a").unwrap(), &*report("a2"));
        assert!(c.get("c").is_some());
    }

    #[test]
    fn a_miss_never_disturbs_recency() {
        let mut c = ResultCache::new(2);
        c.put("a".to_string(), report("a"));
        c.put("b".to_string(), report("b"));
        for _ in 0..5 {
            assert!(c.get("nope").is_none());
        }
        // `a` is still the LRU entry despite the failed lookups.
        c.put("c".to_string(), report("c"));
        assert!(c.get("a").is_none());
        assert!(c.get("b").is_some());
    }

    fn ckpt(canonical: &str, byte: u8) -> Checkpoint {
        Checkpoint { canonical: canonical.to_string(), blob: vec![byte; 4] }
    }

    #[test]
    fn checkpoint_store_round_trips_and_removes() {
        let mut s = CheckpointStore::new(4);
        assert!(s.is_empty());
        s.put("t1".to_string(), ckpt("c1", 0xaa));
        let hit = s.get("t1").expect("hit");
        assert_eq!(hit.canonical, "c1");
        assert_eq!(hit.blob, vec![0xaa; 4]);
        assert!(s.get("t2").is_none());
        s.remove("t1");
        assert!(s.get("t1").is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn checkpoint_store_evicts_least_recently_used() {
        let mut s = CheckpointStore::new(2);
        assert_eq!(s.capacity(), 2);
        s.put("a".to_string(), ckpt("a", 1));
        s.put("b".to_string(), ckpt("b", 2));
        assert_eq!(s.evictions(), 0);
        assert!(s.get("a").is_some()); // refresh a; b is now LRU
        s.put("c".to_string(), ckpt("c", 3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.evictions(), 1);
        assert!(s.get("b").is_none());
        assert!(s.get("a").is_some());
        assert!(s.get("c").is_some());
        // Explicit removal is not an eviction.
        s.remove("a");
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn eviction_counters_track_capacity_pressure_only() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.capacity(), 2);
        c.put("a".to_string(), report("a"));
        c.put("b".to_string(), report("b"));
        // Refreshing an existing key never evicts.
        c.put("a".to_string(), report("a2"));
        assert_eq!(c.evictions(), 0);
        c.put("c".to_string(), report("c"));
        c.put("d".to_string(), report("d"));
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn zero_capacity_disables_checkpoint_storage() {
        let mut s = CheckpointStore::new(0);
        s.put("a".to_string(), ckpt("a", 1));
        assert!(s.is_empty());
        assert!(s.get("a").is_none());
    }
}
