//! The job server: TCP accept loop, bounded job queue, worker pool,
//! cooperative cancellation and the LRU result cache.
//!
//! Concurrency layout: one cheap thread per connection parses requests
//! and writes responses; simulation work happens only on the fixed
//! worker pool, fed through a bounded `sync_channel`. When the queue is
//! full, `try_send` fails immediately and the client gets a structured
//! `queue-full` rejection instead of an ever-growing backlog — the
//! server-level analogue of the paper's death-rate division throttle
//! (§4.2): admission control by refusal, not by queueing.
//!
//! The protocol is negotiated per connection from the first byte on the
//! wire: `{` (or whitespace) opens a v1 newline-JSON line loop, the
//! frame magic `C` opens a v2 framed connection ([`crate::frame`]). A
//! v1 connection serves one request per round-trip, exactly as before;
//! a v2 connection is pipelined — run jobs are admitted without
//! blocking the reader, and each worker queues its rendered response
//! (tagged with the request id) onto the connection's writer thread the
//! moment it finishes, in whatever order that happens.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use capsule_bench::catalog;
use capsule_bench::checkpoint::{run_checkpointed, CheckpointFailure, CheckpointOutcome};
use capsule_bench::{BatchRunner, RunOptions};
use capsule_core::output::Json;
use capsule_core::stats::Histogram;
use capsule_core::{
    Ewma, FlightKind, FlightRecorder, MetricsRegistry, SpanId, TailPolicy, TraceRecorder,
    TraceStore,
};
use capsule_sim::machine::WarmMachine;
use capsule_sim::CancelToken;

use crate::cache::{Checkpoint, CheckpointStore, ResultCache};
use crate::frame::{self, FrameFlow, ReplySink};
use crate::protocol::{
    cache_key, error_response, fnv1a64, hex_encode, list_response, response_head, Request,
    RunRequest,
};

/// Server sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Simulation worker threads (`CAPSULE_SERVE_WORKERS`).
    pub workers: usize,
    /// Bounded job-queue depth (`CAPSULE_SERVE_QUEUE`).
    pub queue: usize,
    /// Result-cache capacity in reports (`CAPSULE_SERVE_CACHE`).
    pub cache: usize,
    /// Retained span trees for the `trace` op (`CAPSULE_SERVE_TRACES`);
    /// 0 disables request tracing entirely.
    pub traces: usize,
    /// Checkpoint interval in simulated cycles
    /// (`CAPSULE_SERVE_CHECKPOINT_CYCLES`); 0 disables periodic
    /// checkpoints, making jobs non-preemptible unless they arrive with
    /// `resume_from` (checkpointed runs are cycle-identical to plain
    /// ones, so this only trades snapshot overhead for preemptibility).
    pub checkpoint_cycles: u64,
    /// Checkpoint-store capacity in parked jobs
    /// (`CAPSULE_SERVE_CHECKPOINTS`); 0 drops preempted jobs instead of
    /// parking them.
    pub checkpoints: usize,
    /// Flight-recorder ring capacity in events
    /// (`CAPSULE_SERVE_FLIGHT`); 0 disables the always-on recorder.
    pub flight: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            workers: 2,
            queue: 16,
            cache: 64,
            traces: 64,
            checkpoint_cycles: 0,
            checkpoints: 16,
            flight: 1024,
        }
    }
}

impl ServerOptions {
    /// Defaults overridden by the `CAPSULE_SERVE_*` environment.
    /// Malformed values warn on stderr and fall back (see [`crate::env`]).
    pub fn from_env() -> ServerOptions {
        let d = ServerOptions::default();
        ServerOptions {
            workers: crate::env::env_usize("CAPSULE_SERVE_WORKERS", d.workers).max(1),
            queue: crate::env::env_usize("CAPSULE_SERVE_QUEUE", d.queue).max(1),
            cache: crate::env::env_usize("CAPSULE_SERVE_CACHE", d.cache),
            traces: crate::env::env_usize("CAPSULE_SERVE_TRACES", d.traces),
            checkpoint_cycles: crate::env::env_u64(
                "CAPSULE_SERVE_CHECKPOINT_CYCLES",
                d.checkpoint_cycles,
            ),
            checkpoints: crate::env::env_usize("CAPSULE_SERVE_CHECKPOINTS", d.checkpoints),
            flight: crate::env::env_usize("CAPSULE_SERVE_FLIGHT", d.flight),
        }
    }
}

/// Per-job trace state: the recorder travels with the job from admission
/// through the queue to the worker. Every run is traced; whether the
/// finished tree is *retained* in the server's [`TraceStore`] is decided
/// at completion by the tail-sampling policy — explicitly requested
/// traces (a client `trace_id`) always land, anonymous ones (filed under
/// the job's cache key) only when the job finished interestingly: above
/// the rolling p99, or with a non-`completed` outcome.
struct JobTrace {
    id: String,
    /// True when the client chose the id via `trace_id` — such traces
    /// bypass tail sampling and are always retained.
    explicit: bool,
    rec: TraceRecorder,
    root: SpanId,
}

impl JobTrace {
    fn start(run: &RunRequest, canonical: &str) -> JobTrace {
        let (id, explicit) = match &run.trace_id {
            Some(id) => (id.clone(), true),
            None => (cache_key(canonical), false),
        };
        let mut rec = TraceRecorder::new(16, 64);
        let root = rec.span("serve.run", None);
        rec.attr(root, "scenario", &run.scenario);
        rec.attr(root, "scale", run.scale.name());
        JobTrace { id, explicit, rec, root }
    }

    /// Closes the root span and files the tree under the trace id.
    fn store(mut self, shared: &Shared) {
        self.rec.end(self.root);
        let tree = self.rec.finish();
        lock(&shared.traces).put(&self.id, tree.to_json());
    }
}

/// Where a finished job's rendered response goes: back to the blocking
/// v1 connection thread, or onto a v2 connection's writer queue, tagged
/// with the request id so completions may land out of submission order.
enum JobReply {
    /// v1: the connection thread blocks on the paired receiver.
    V1(mpsc::Sender<String>),
    /// v2: queue onto the connection's writer with the request id.
    V2 { sink: ReplySink, id: u64 },
}

impl JobReply {
    /// Routes the rendered response; the connection may already be gone
    /// (a v1 client that hung up, a v2 writer that exited), which is
    /// fine — the result is cached regardless.
    fn send(&self, rendered: String) {
        match self {
            JobReply::V1(tx) => {
                let _ = tx.send(rendered);
            }
            JobReply::V2 { sink, id } => {
                let _ = sink.send_str(*id, frame::tag::RUN, &rendered);
            }
        }
    }
}

/// One queued run job: the validated request plus the reply route of
/// the connection waiting for it.
struct Job {
    run: RunRequest,
    canonical: String,
    enqueued: Instant,
    reply: JobReply,
    trace: Option<JobTrace>,
    /// Checkpoint blob to resume from, pre-validated at admission.
    resume: Option<Vec<u8>>,
    /// The job's preempt flag, registered in [`Shared::preempts`] under
    /// its cache key while the job is admitted. `None` for jobs that run
    /// without checkpointing (nothing to preempt into).
    preempt: Option<Arc<AtomicBool>>,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    bad_requests: AtomicU64,
    jobs_accepted: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_in_flight: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cancel_requests: AtomicU64,
    preempt_requests: AtomicU64,
    jobs_preempted: AtomicU64,
    jobs_resumed: AtomicU64,
    checkpoints_stored: AtomicU64,
    checkpoint_fetches: AtomicU64,
    checkpoint_puts: AtomicU64,
    snapshot_bytes: AtomicU64,
}

#[derive(Default)]
struct Latencies {
    queue_wait_us: Histogram,
    run_us: Histogram,
}

struct Shared {
    opts: ServerOptions,
    addr: SocketAddr,
    running: AtomicBool,
    /// `None` once shutdown started: no further jobs are accepted.
    jobs: Mutex<Option<SyncSender<Job>>>,
    /// Current cancellation generation; `cancel` trips it and installs a
    /// fresh token, so only jobs dispatched before the cancel stop.
    cancel: Mutex<CancelToken>,
    cache: Mutex<ResultCache>,
    counters: Counters,
    latencies: Mutex<Latencies>,
    traces: Mutex<TraceStore>,
    /// Always-on flight recorder: a bounded ring of job-lifecycle events
    /// (enqueue/dequeue/complete/deny/preempt/…) for post-mortems.
    flight: FlightRecorder,
    /// Tail-sampling policy deciding which anonymous traces to retain.
    tail: Mutex<TailPolicy>,
    /// Smoothed queue-wait gauge feeding `predicted_wait_us`.
    ewma_queue_wait: Ewma,
    /// Smoothed run-time gauge feeding `predicted_wait_us`.
    ewma_run: Ewma,
    /// Parked jobs by checkpoint token (= cache key).
    checkpoints: Mutex<CheckpointStore>,
    /// Preempt flags of admitted checkpointable jobs, by cache key. A
    /// re-admitted duplicate key overwrites the previous flag — the
    /// `preempt` op then reaches the newest job, which is the one still
    /// making progress.
    preempts: Mutex<HashMap<String, Arc<AtomicBool>>>,
    /// Read handles of every open connection, so shutdown can sever
    /// them. Keep-alive clients (the fleet's connection pool) otherwise
    /// keep a "stopped" server reachable indefinitely: connection
    /// threads block in `read` and would happily serve control ops
    /// forever. Severing only the *read* side lets queued responses —
    /// including the `shutdown` acknowledgement itself — still flush.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// Registers a connection for shutdown severing; deregisters on drop so
/// the registry tracks only live connections.
struct ConnGuard<'a> {
    shared: &'a Shared,
    id: u64,
}

impl<'a> ConnGuard<'a> {
    fn register(shared: &'a Shared, stream: &TcpStream) -> Option<ConnGuard<'a>> {
        let handle = stream.try_clone().ok()?;
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        lock(&shared.conns).insert(id, handle);
        Some(ConnGuard { shared, id })
    }
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        lock(&self.shared.conns).remove(&self.id);
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running `capsule-serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn start(addr: &str, opts: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (tx, rx) = mpsc::sync_channel::<Job>(opts.queue);
        let rx = Arc::new(Mutex::new(rx));
        let shared = Arc::new(Shared {
            opts,
            addr: local,
            running: AtomicBool::new(true),
            jobs: Mutex::new(Some(tx)),
            cancel: Mutex::new(CancelToken::new()),
            cache: Mutex::new(ResultCache::new(opts.cache)),
            counters: Counters::default(),
            latencies: Mutex::new(Latencies::default()),
            traces: Mutex::new(TraceStore::new(opts.traces)),
            flight: FlightRecorder::new(opts.flight),
            tail: Mutex::new(TailPolicy::new()),
            ewma_queue_wait: Ewma::new(),
            ewma_run: Ewma::new(),
            checkpoints: Mutex::new(CheckpointStore::new(opts.checkpoints)),
            preempts: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });

        install_dump_hooks(&shared);

        let mut workers = Vec::with_capacity(opts.workers);
        for _ in 0..opts.workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
        }

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };

        Ok(Server { shared, accept: Some(accept), workers })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// False once shutdown has started.
    pub fn running(&self) -> bool {
        self.shared.running.load(Ordering::SeqCst)
    }

    /// Starts shutdown exactly as the `shutdown` request does: stop
    /// accepting connections and jobs, and cancel in-flight runs.
    pub fn request_shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Waits until the server has shut down (via the `shutdown` request
    /// or [`Server::request_shutdown`]) and all threads have exited.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// [`Server::request_shutdown`] followed by [`Server::join`].
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.running.swap(false, Ordering::SeqCst) {
        // Stop admitting jobs; once the queue drains, the workers see a
        // disconnected channel and exit.
        *lock(&shared.jobs) = None;
        // Stop in-flight runs promptly.
        lock(&shared.cancel).cancel();
        // Sever the read side of every open connection: blocked reads
        // see EOF, connection threads drain their pending responses and
        // exit, and keep-alive peers observe a closed socket instead of
        // a zombie endpoint.
        for conn in lock(&shared.conns).values() {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
        // Unblock the accept loop so it observes `running == false`.
        let _ = TcpStream::connect(shared.addr);
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if !shared.running.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || handle_connection(&shared, stream));
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    let _guard = ConnGuard::register(shared, &stream);
    // Protocol negotiation happens on the first byte without consuming
    // it: v1 request lines open with `{` (or whitespace), v2
    // connections open with the frame magic `C`.
    let mut first = [0u8; 1];
    match stream.peek(&mut first) {
        Ok(0) | Err(_) => return,
        Ok(_) => {}
    }
    if first[0] == frame::MAGIC[0] {
        let _ = frame::serve_v2(stream, |f, sink| handle_frame(shared, f, sink));
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (response, shutdown) = handle_line(shared, &line);
        let mut bytes = response.into_bytes();
        bytes.push(b'\n');
        if writer.write_all(&bytes).and_then(|()| writer.flush()).is_err() {
            break;
        }
        if shutdown {
            initiate_shutdown(shared);
            break;
        }
    }
}

/// Handles one v2 request frame. Runs are admitted without blocking the
/// reader — the worker queues the rendered response by request id when
/// the job finishes — so one v2 connection can keep many jobs in
/// flight and collect completions out of order.
fn handle_frame(shared: &Shared, f: frame::Frame, sink: &ReplySink) -> FrameFlow {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let Some(op) = frame::tag_op(f.tag) else {
        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        sink.send_bad_frame(f.id, &format!("unknown op tag {}", f.tag));
        return FrameFlow::Continue;
    };
    let Ok(line) = std::str::from_utf8(&f.payload) else {
        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        sink.send_bad_frame(f.id, "payload is not UTF-8");
        return FrameFlow::Continue;
    };
    let request = match Request::parse_line(line) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            sink.send_json(f.id, f.tag, &error_response("?", "bad-request", Some(&e.message)));
            return FrameFlow::Continue;
        }
    };
    if request.op() != op {
        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        sink.send_bad_frame(
            f.id,
            &format!("frame tag {op:?} does not match payload op {:?}", request.op()),
        );
        return FrameFlow::Continue;
    }
    match dispatch(shared, request, JobReply::V2 { sink: sink.clone(), id: f.id }) {
        Dispatched::Done(rendered) => {
            sink.send_str(f.id, f.tag, &rendered);
            FrameFlow::Continue
        }
        Dispatched::Shutdown(rendered) => {
            sink.send_str(f.id, f.tag, &rendered);
            initiate_shutdown(shared);
            FrameFlow::Close
        }
        Dispatched::Queued => FrameFlow::Continue,
    }
}

/// Handles one v1 request line; the bool asks the connection loop to
/// start server shutdown after the response is written. v1 keeps its
/// one-request-per-round-trip shape by blocking on the reply channel of
/// a queued run.
fn handle_line(shared: &Shared, line: &str) -> (String, bool) {
    let request = match Request::parse_line(line) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return (
                error_response("?", "bad-request", Some(&e.message)).to_string_compact(),
                false,
            );
        }
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    match dispatch(shared, request, JobReply::V1(reply_tx)) {
        Dispatched::Done(rendered) => (rendered, false),
        Dispatched::Shutdown(rendered) => (rendered, true),
        Dispatched::Queued => {
            let rendered = reply_rx.recv().unwrap_or_else(|_| {
                error_response("run", "internal-error", Some("worker dropped the job"))
                    .to_string_compact()
            });
            (rendered, false)
        }
    }
}

/// How a request resolved at dispatch: a rendered response (possibly
/// one that asks the connection to start shutdown), or a queued run
/// that replies later through its [`JobReply`].
enum Dispatched {
    Done(String),
    Shutdown(String),
    Queued,
}

/// Protocol-independent request dispatch: both the v1 line loop and the
/// v2 frame handler funnel here, so every op behaves identically — and
/// renders identically — over both wire formats.
fn dispatch(shared: &Shared, request: Request, reply: JobReply) -> Dispatched {
    match request {
        Request::Run(run) => match submit_run(shared, run, reply) {
            Some(rendered) => Dispatched::Done(rendered),
            None => Dispatched::Queued,
        },
        Request::Cancel => {
            shared.counters.cancel_requests.fetch_add(1, Ordering::Relaxed);
            let mut guard = lock(&shared.cancel);
            guard.cancel();
            *guard = CancelToken::new();
            Dispatched::Done(response_head("cancel", true).to_string_compact())
        }
        Request::Stats => Dispatched::Done(stats_response(shared).to_string_compact()),
        Request::List => Dispatched::Done(list_response().to_string_compact()),
        Request::Metrics => Dispatched::Done(metrics_response(shared).to_string_compact()),
        Request::Health { key } => {
            Dispatched::Done(health_response(shared, key.as_deref()).to_string_compact())
        }
        Request::Dump => Dispatched::Done(dump_response(shared).to_string_compact()),
        Request::Trace { trace_id } => {
            Dispatched::Done(trace_response(shared, &trace_id).to_string_compact())
        }
        Request::Preempt { cache_key } => {
            Dispatched::Done(preempt_response(shared, &cache_key).to_string_compact())
        }
        Request::CheckpointFetch { token } => {
            Dispatched::Done(checkpoint_fetch_response(shared, &token).to_string_compact())
        }
        Request::CheckpointPut { token, canonical, blob } => Dispatched::Done(
            checkpoint_put_response(shared, token, canonical, blob).to_string_compact(),
        ),
        Request::Shutdown => {
            Dispatched::Shutdown(response_head("shutdown", true).to_string_compact())
        }
    }
}

/// The `preempt` op: trips the preempt flag of an admitted job so it
/// parks at its next checkpoint boundary. Asynchronous by design — the
/// `run` response of the parked job (error code `preempted`) is the
/// confirmation.
fn preempt_response(shared: &Shared, key: &str) -> Json {
    shared.counters.preempt_requests.fetch_add(1, Ordering::Relaxed);
    match lock(&shared.preempts).get(key) {
        Some(flag) => {
            flag.store(true, Ordering::Relaxed);
            let mut r = response_head("preempt", true);
            r.push("cache_key", key);
            r
        }
        None => {
            let mut r = error_response(
                "preempt",
                "not-running",
                Some("no admitted checkpointable job has this cache_key"),
            );
            r.push("cache_key", key);
            r
        }
    }
}

/// The `checkpoint-fetch` op: a stored checkpoint as hex, plus the
/// canonical request it belongs to (the fleet re-posts both to the
/// migration target via `checkpoint-put`).
fn checkpoint_fetch_response(shared: &Shared, token: &str) -> Json {
    match lock(&shared.checkpoints).get(token) {
        Some(cp) => {
            shared.counters.checkpoint_fetches.fetch_add(1, Ordering::Relaxed);
            let mut r = response_head("checkpoint-fetch", true);
            r.push("token", token)
                .push("canonical", cp.canonical.as_str())
                .push("blob", hex_encode(&cp.blob));
            r
        }
        None => {
            let mut r = error_response(
                "checkpoint-fetch",
                "unknown-checkpoint",
                Some("no stored checkpoint for this token (never parked, or evicted)"),
            );
            r.push("token", token);
            r
        }
    }
}

/// The `checkpoint-put` op: accepts a blob fetched elsewhere. The token
/// must be the cache key of the supplied canonical form — a put that
/// lies about its job is rejected, keeping store keys trustworthy for
/// later resumes.
fn checkpoint_put_response(
    shared: &Shared,
    token: String,
    canonical: String,
    blob: Vec<u8>,
) -> Json {
    if cache_key(&canonical) != token {
        return error_response(
            "checkpoint-put",
            "checkpoint-mismatch",
            Some("token is not the cache_key of the supplied canonical request"),
        );
    }
    shared.counters.checkpoint_puts.fetch_add(1, Ordering::Relaxed);
    let mut store = lock(&shared.checkpoints);
    store.put(token.clone(), Checkpoint { canonical, blob });
    let entries = store.len();
    drop(store);
    let mut r = response_head("checkpoint-put", true);
    r.push("token", token).push("checkpoint_entries", entries);
    r
}

/// Admits a `run` request: answers immediately (`Some`) on a cache
/// hit, a validation failure, queue-full or shutdown; otherwise the job
/// is queued (`None`) and the worker routes the rendered response
/// through `reply` when it finishes — out of submission order on a
/// pipelined v2 connection.
fn submit_run(shared: &Shared, run: RunRequest, reply: JobReply) -> Option<String> {
    let canonical = run.canonical();
    let keyn = fnv1a64(canonical.as_bytes());
    let mut trace = Some(JobTrace::start(&run, &canonical));
    // A profiled request bypasses the cache lookup — the per-stage
    // profile has to come from a real run — but still stores its report,
    // so it neither perturbs the hit/miss counters nor goes uncached.
    if !run.profile {
        if let Some(report) = lock(&shared.cache).get(&canonical) {
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            shared.flight.record(FlightKind::CacheHit, Some(keyn), None, "");
            if let Some(mut t) = trace.take() {
                t.rec.event(t.root, "cache-hit", &[]);
                // A hit is answered from memory — nothing ran, so the
                // tail policy has no sample; keep the tree only when the
                // client asked for it by id.
                if t.explicit {
                    t.store(shared);
                }
            }
            return Some(render_run_ok(
                &canonical,
                &report,
                true,
                0,
                0,
                run.trace_id.as_deref(),
                None,
            ));
        }
        shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = trace.as_mut() {
            t.rec.event(t.root, "cache-miss", &[]);
        }
    }

    // Resume tokens are validated at admission so a bad one is rejected
    // before it occupies a queue slot. The token must be this request's
    // own cache key (the canonical-form hash) and the stored checkpoint
    // must agree on the canonical — so a token can only resume the exact
    // job it was parked from.
    let key = cache_key(&canonical);
    let resume =
        match &run.resume_from {
            None => None,
            Some(token) => {
                if *token != key {
                    return Some(
                        error_response(
                            "run",
                            "checkpoint-mismatch",
                            Some("resume_from is not this request's cache_key"),
                        )
                        .to_string_compact(),
                    );
                }
                match lock(&shared.checkpoints).get(token) {
                    None => return Some(
                        error_response(
                            "run",
                            "unknown-checkpoint",
                            Some("no stored checkpoint for this token (never parked, or evicted)"),
                        )
                        .to_string_compact(),
                    ),
                    Some(cp) if cp.canonical != canonical => {
                        return Some(
                            error_response(
                                "run",
                                "checkpoint-mismatch",
                                Some("stored checkpoint belongs to a different job"),
                            )
                            .to_string_compact(),
                        )
                    }
                    Some(cp) => Some(cp.blob),
                }
            }
        };

    // A job is preemptible iff it runs on the checkpointed path: either
    // the server checkpoints periodically, or the job resumes a parked
    // blob (and keeps checkpointing from there only if enabled).
    let preempt = if shared.opts.checkpoint_cycles > 0 || resume.is_some() {
        let flag = Arc::new(AtomicBool::new(false));
        lock(&shared.preempts).insert(key.clone(), Arc::clone(&flag));
        Some(flag)
    } else {
        None
    };
    let unregister = |shared: &Shared| {
        if preempt.is_some() {
            lock(&shared.preempts).remove(&key);
        }
    };

    // Clone the sender out so the jobs lock is not held while waiting.
    let Some(tx) = lock(&shared.jobs).clone() else {
        unregister(shared);
        shared.flight.record(FlightKind::Deny, Some(keyn), None, "shutting-down");
        return Some(error_response("run", "shutting-down", None).to_string_compact());
    };
    let job = Job {
        run,
        canonical,
        enqueued: Instant::now(),
        reply,
        trace,
        resume,
        preempt: preempt.clone(),
    };
    match tx.try_send(job) {
        Ok(()) => {
            shared.counters.jobs_accepted.fetch_add(1, Ordering::Relaxed);
            shared.flight.record(FlightKind::Enqueue, Some(keyn), None, "");
            None
        }
        Err(TrySendError::Full(job)) => {
            unregister(shared);
            shared.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            shared.flight.record(FlightKind::Deny, Some(keyn), None, "queue-full");
            if let Some(mut t) = job.trace {
                t.rec.event(t.root, "queue-full", &[]);
                // A rejected job never ran, so there is no tail sample;
                // retain the tree only on explicit request.
                if t.explicit {
                    t.store(shared);
                }
            }
            let mut r = error_response("run", "queue-full", None);
            r.push("queue_capacity", shared.opts.queue);
            Some(r.to_string_compact())
        }
        Err(TrySendError::Disconnected(_)) => {
            unregister(shared);
            shared.flight.record(FlightKind::Deny, Some(keyn), None, "shutting-down");
            Some(error_response("run", "shutting-down", None).to_string_compact())
        }
    }
}

/// Echoes the request's trace id (if any) into a `run` response so the
/// client can correlate the reply with a later `trace` query.
fn echo_trace_id(r: &mut Json, run: &RunRequest) {
    if let Some(id) = &run.trace_id {
        r.push("trace_id", id.as_str());
    }
}

/// Renders a `run` success response, splicing the already-serialized
/// report bytes into place instead of re-rendering the report object.
/// The field order — and every byte — matches what pushing the parsed
/// report into the response object would have produced, so v1 lines,
/// v2 payloads, cache hits and cache misses all render identically.
fn render_run_ok(
    canonical: &str,
    report: &str,
    cache_hit: bool,
    queue_wait_us: u64,
    run_us: u64,
    trace_id: Option<&str>,
    profile: Option<Json>,
) -> String {
    let mut head = response_head("run", true);
    head.push("cache_hit", cache_hit)
        .push("cache_key", format!("{:016x}", fnv1a64(canonical.as_bytes())))
        .push("queue_wait_us", queue_wait_us)
        .push("run_us", run_us);
    let mut out = head.to_string_compact();
    out.pop(); // reopen the object to splice the remaining fields
    out.push_str(",\"report\":");
    out.push_str(report);
    let mut tail = Json::object();
    if let Some(id) = trace_id {
        tail.push("trace_id", id);
    }
    if let Some(p) = profile {
        tail.push("profile", p);
    }
    let tail = tail.to_string_compact();
    if tail.len() > 2 {
        out.push(',');
        out.push_str(&tail[1..]);
    } else {
        out.push('}');
    }
    out
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    // One long-lived single-threaded batch runner per worker: its warmed
    // machine persists across jobs, so repeated runs reuse the simulator's
    // data-memory buffer, window arena and stage scratch (reset per run,
    // cycle-identical to fresh machines). The checkpointed path keeps its
    // own warmed machine with the same reset/restore-equivalence contract.
    let runner = BatchRunner::with_workers(1);
    let mut warm = WarmMachine::new();
    loop {
        // Hold the receiver lock only while waiting, never while running.
        let job = lock(rx).recv_timeout(Duration::from_millis(100));
        match job {
            Ok(job) => run_job(shared, &runner, &mut warm, job),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Drops the job's preempt-flag registration, unless a re-admitted
/// duplicate job has already replaced it with its own flag.
fn unregister_preempt(shared: &Shared, job: &Job) {
    let Some(flag) = &job.preempt else { return };
    let key = cache_key(&job.canonical);
    let mut map = lock(&shared.preempts);
    if map.get(&key).is_some_and(|f| Arc::ptr_eq(f, flag)) {
        map.remove(&key);
    }
}

/// Parks `blob` in the checkpoint store under the job's token and bumps
/// the snapshot counters.
fn store_checkpoint(shared: &Shared, job: &Job, blob: &[u8]) {
    shared.counters.checkpoints_stored.fetch_add(1, Ordering::Relaxed);
    shared.counters.snapshot_bytes.fetch_add(blob.len() as u64, Ordering::Relaxed);
    lock(&shared.checkpoints).put(
        cache_key(&job.canonical),
        Checkpoint { canonical: job.canonical.clone(), blob: blob.to_vec() },
    );
}

/// Records a finished dispatch in both latency histograms and the EWMA
/// gauges behind `predicted_wait_us`.
fn record_latency(shared: &Shared, queue_wait_us: u64, run_us: u64) {
    {
        let mut lat = lock(&shared.latencies);
        lat.queue_wait_us.record(queue_wait_us);
        lat.run_us.record(run_us);
    }
    shared.ewma_queue_wait.observe(queue_wait_us);
    shared.ewma_run.observe(run_us);
}

fn run_job(shared: &Shared, runner: &BatchRunner, warm: &mut WarmMachine, mut job: Job) {
    let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
    let keyn = fnv1a64(job.canonical.as_bytes());
    // The cancellation generation is sampled at dispatch: an operator
    // `cancel` stops jobs already running, not jobs still queued.
    let token = lock(&shared.cancel).clone();
    shared.counters.jobs_in_flight.fetch_add(1, Ordering::SeqCst);
    shared.flight.record(FlightKind::Dequeue, Some(keyn), None, "");
    let started = Instant::now();

    // The queue span covers enqueue -> dispatch; the execute span opens
    // now and closes (with an outcome attribute) when the run returns.
    let exec = job.trace.as_mut().map(|t| {
        let start = t.rec.at(job.enqueued);
        let queue = t.rec.span_at("serve.queue", Some(t.root), start);
        t.rec.end(queue);
        t.rec.span("serve.execute", Some(t.root))
    });

    let entry = catalog::find(&job.run.scenario).expect("scenario validated at parse");
    let mut scenarios = entry.scenarios(job.run.scale);
    for sc in &mut scenarios {
        job.run.overrides.apply(&mut sc.config);
    }
    let opts = RunOptions { profile: job.run.profile, trace: None };
    // One batch worker per job: across-job parallelism comes from the
    // server pool, and a single-threaded batch keeps a job's cost
    // predictable for the queue's admission control. A preemptible job
    // takes the checkpointed path instead — serial like the one-worker
    // runner and proven report-identical to it (capsule-bench's
    // `checkpoint` tests), so which path ran is unobservable in the
    // report bytes.
    let result = match &job.preempt {
        None => runner.try_run_opts(entry.title, scenarios, job.run.budget, Some(&token), opts),
        Some(flag) => {
            if job.resume.is_some() {
                shared.counters.jobs_resumed.fetch_add(1, Ordering::Relaxed);
                shared.flight.record(FlightKind::Resume, Some(keyn), None, "");
            }
            let checkpointed = run_checkpointed(
                entry.title,
                scenarios,
                job.run.budget,
                Some(&token),
                opts,
                warm,
                shared.opts.checkpoint_cycles,
                flag,
                job.resume.as_deref(),
                |blob| store_checkpoint(shared, &job, blob),
            );
            match checkpointed {
                Ok(CheckpointOutcome::Done(report)) => {
                    // The job is finished; its parked state is stale.
                    lock(&shared.checkpoints).remove(&cache_key(&job.canonical));
                    Ok(report)
                }
                Ok(CheckpointOutcome::Preempted(blob)) => {
                    store_checkpoint(shared, &job, &blob);
                    shared.counters.jobs_preempted.fetch_add(1, Ordering::Relaxed);
                    let run_us = started.elapsed().as_micros() as u64;
                    shared.counters.jobs_in_flight.fetch_sub(1, Ordering::SeqCst);
                    shared.flight.record(FlightKind::Preempt, Some(keyn), None, "parked");
                    record_latency(shared, queue_wait_us, run_us);
                    finish_job_trace(shared, &mut job, exec, "preempted", run_us);
                    let mut r = error_response("run", "preempted", None);
                    r.push("cache_key", cache_key(&job.canonical))
                        .push("queue_wait_us", queue_wait_us)
                        .push("run_us", run_us);
                    echo_trace_id(&mut r, &job.run);
                    unregister_preempt(shared, &job);
                    job.reply.send(r.to_string_compact());
                    return;
                }
                Err(CheckpointFailure::Batch(e)) => Err(e),
                Err(CheckpointFailure::Blob(reason)) => {
                    shared.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
                    let run_us = started.elapsed().as_micros() as u64;
                    shared.counters.jobs_in_flight.fetch_sub(1, Ordering::SeqCst);
                    shared.flight.record(FlightKind::Complete, Some(keyn), None, "bad-checkpoint");
                    record_latency(shared, queue_wait_us, run_us);
                    finish_job_trace(shared, &mut job, exec, "bad-checkpoint", run_us);
                    let mut r = error_response("run", "bad-checkpoint", Some(&reason));
                    r.push("queue_wait_us", queue_wait_us).push("run_us", run_us);
                    echo_trace_id(&mut r, &job.run);
                    unregister_preempt(shared, &job);
                    job.reply.send(r.to_string_compact());
                    return;
                }
            }
        }
    };
    let run_us = started.elapsed().as_micros() as u64;
    shared.counters.jobs_in_flight.fetch_sub(1, Ordering::SeqCst);
    record_latency(shared, queue_wait_us, run_us);
    unregister_preempt(shared, &job);

    let response = match result {
        Ok(report) => {
            // The report is rendered exactly once; the cache stores the
            // serialized bytes, so later hits splice them into their
            // responses without touching the renderer. The cached
            // report never carries observation data: profile arrays are
            // rebuilt per response, so a later plain hit is
            // byte-identical to an untraced run's report.
            let bytes: Arc<str> = Arc::from(report.to_json().to_string_compact());
            lock(&shared.cache).put(job.canonical.clone(), Arc::clone(&bytes));
            shared.counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
            shared.flight.record(FlightKind::Complete, Some(keyn), None, "completed");
            finish_job_trace(shared, &mut job, exec, "completed", run_us);
            let profile = job.run.profile.then(|| profile_json(&report));
            render_run_ok(
                &job.canonical,
                &bytes,
                false,
                queue_wait_us,
                run_us,
                job.run.trace_id.as_deref(),
                profile,
            )
        }
        Err(e) => {
            let cancelled = e.failure.is_cancelled();
            let outcome = if cancelled { "cancelled" } else { "failed" };
            if cancelled {
                shared.counters.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.counters.jobs_failed.fetch_add(1, Ordering::Relaxed);
            }
            shared.flight.record(FlightKind::Complete, Some(keyn), None, outcome);
            finish_job_trace(shared, &mut job, exec, outcome, run_us);
            let mut r = error_response(
                "run",
                if cancelled { "cancelled" } else { "scenario-failed" },
                Some(&e.to_string()),
            );
            r.push("queue_wait_us", queue_wait_us).push("run_us", run_us);
            echo_trace_id(&mut r, &job.run);
            r.to_string_compact()
        }
    };
    // The connection may already be gone; the result is cached anyway.
    job.reply.send(response);
}

/// Closes the execute span with its outcome, feeds the run time to the
/// tail-sampling policy, and files the span tree iff the policy keeps
/// it: always for explicit `trace_id` requests and non-`completed`
/// outcomes, otherwise only when `run_us` lands above the rolling p99
/// observed *before* this job (so retention is deterministic for a
/// given request history).
fn finish_job_trace(
    shared: &Shared,
    job: &mut Job,
    exec: Option<SpanId>,
    outcome: &str,
    run_us: u64,
) {
    let Some(mut t) = job.trace.take() else { return };
    if let Some(exec) = exec {
        t.rec.attr(exec, "outcome", outcome);
        t.rec.end(exec);
    }
    let interesting = t.explicit || outcome != "completed";
    if lock(&shared.tail).observe(run_us, interesting) {
        t.store(shared);
    }
}

/// Per-record stage profiles of a batch, in record order:
/// `[{"group":..,"label":..,"stages":{..}}, ...]`.
fn profile_json(report: &capsule_bench::BatchReport) -> Json {
    let mut rows = Vec::with_capacity(report.records.len());
    for r in &report.records {
        let mut row = Json::object();
        row.push("group", r.group.as_str()).push("label", r.label.as_str());
        if let Some(p) = &r.outcome.profile {
            row.push("stages", p.to_json());
        }
        rows.push(row);
    }
    Json::Array(rows)
}

fn counters_json(shared: &Shared) -> Json {
    let c = &shared.counters;
    let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let mut counters = Json::object();
    counters
        .push("connections", get(&c.connections))
        .push("requests", get(&c.requests))
        .push("bad_requests", get(&c.bad_requests))
        .push("jobs_accepted", get(&c.jobs_accepted))
        .push("jobs_rejected", get(&c.jobs_rejected))
        .push("jobs_completed", get(&c.jobs_completed))
        .push("jobs_failed", get(&c.jobs_failed))
        .push("jobs_cancelled", get(&c.jobs_cancelled))
        .push("cache_hits", get(&c.cache_hits))
        .push("cache_misses", get(&c.cache_misses))
        .push("cancel_requests", get(&c.cancel_requests))
        .push("preempt_requests", get(&c.preempt_requests))
        .push("jobs_preempted", get(&c.jobs_preempted))
        .push("jobs_resumed", get(&c.jobs_resumed))
        .push("checkpoints_stored", get(&c.checkpoints_stored))
        .push("checkpoint_fetches", get(&c.checkpoint_fetches))
        .push("checkpoint_puts", get(&c.checkpoint_puts))
        .push("snapshot_bytes", get(&c.snapshot_bytes));
    counters
}

/// The deterministic queue-pressure estimate exposed by `stats`,
/// `metrics` and `health`: the smoothed queue wait plus how long the
/// backlog beyond the worker pool will take to drain at the smoothed
/// run time. Pure arithmetic over gauges — two calls with the same
/// observation history agree exactly.
fn predicted_wait_us(shared: &Shared) -> u64 {
    let workers = shared.opts.workers.max(1) as u64;
    let in_flight = shared.counters.jobs_in_flight.load(Ordering::SeqCst);
    let backlog = in_flight.saturating_sub(shared.opts.workers as u64);
    shared
        .ewma_queue_wait
        .get()
        .saturating_add(backlog.saturating_mul(shared.ewma_run.get()) / workers)
}

fn stats_response(shared: &Shared) -> Json {
    let c = &shared.counters;
    let counters = counters_json(shared);
    let (queue_wait, run) = {
        let lat = lock(&shared.latencies);
        (lat.queue_wait_us.to_json(), lat.run_us.to_json())
    };
    let mut r = response_head("stats", true);
    r.push("workers", shared.opts.workers)
        .push("queue_capacity", shared.opts.queue)
        .push("cache_capacity", shared.opts.cache)
        .push("cache_entries", lock(&shared.cache).len())
        .push("checkpoint_cycles", shared.opts.checkpoint_cycles)
        .push("checkpoint_capacity", shared.opts.checkpoints)
        .push("checkpoint_entries", lock(&shared.checkpoints).len())
        .push("jobs_in_flight", c.jobs_in_flight.load(Ordering::SeqCst))
        .push("traces_stored", lock(&shared.traces).len())
        .push("flight_capacity", shared.flight.capacity())
        .push("flight_recorded", shared.flight.recorded())
        .push("ewma_queue_wait_us", shared.ewma_queue_wait.get())
        .push("ewma_run_us", shared.ewma_run.get())
        .push("predicted_wait_us", predicted_wait_us(shared))
        .push("counters", counters)
        .push("queue_wait_us", queue_wait)
        .push("run_us", run);
    r
}

/// The `health` op: the server's live load gauges in one small object,
/// cheap enough to poll tightly. The optional `key` is echoed back so a
/// fleet-side caller can correlate fan-out probes; a standalone server
/// has no placement preference to derive from it.
fn health_response(shared: &Shared, key: Option<&str>) -> Json {
    let mut r = response_head("health", true);
    if let Some(k) = key {
        r.push("key", k);
    }
    r.push("workers", shared.opts.workers)
        .push("queue_capacity", shared.opts.queue)
        .push("jobs_in_flight", shared.counters.jobs_in_flight.load(Ordering::SeqCst))
        .push("ewma_queue_wait_us", shared.ewma_queue_wait.get())
        .push("ewma_run_us", shared.ewma_run.get())
        .push("predicted_wait_us", predicted_wait_us(shared))
        .push("traces_stored", lock(&shared.traces).len())
        .push("flight_recorded", shared.flight.recorded());
    r
}

/// The load gauges as embedded in the `capsule-dump/1` artifact.
fn gauges_json(shared: &Shared) -> Json {
    let mut g = Json::object();
    g.push("workers", shared.opts.workers)
        .push("queue_capacity", shared.opts.queue)
        .push("jobs_in_flight", shared.counters.jobs_in_flight.load(Ordering::SeqCst))
        .push("ewma_queue_wait_us", shared.ewma_queue_wait.get())
        .push("ewma_run_us", shared.ewma_run.get())
        .push("predicted_wait_us", predicted_wait_us(shared))
        .push("cache_entries", lock(&shared.cache).len())
        .push("checkpoint_entries", lock(&shared.checkpoints).len())
        .push("traces_stored", lock(&shared.traces).len());
    g
}

/// The versioned post-mortem artifact (`capsule-dump/1`): the flight
/// ring, every retained trace, the live gauges and the counters, in one
/// self-describing object shared by the `dump` op, the panic hook and
/// the stall watchdog.
fn dump_json(shared: &Shared) -> Json {
    let mut d = Json::object();
    d.push("schema", "capsule-dump/1")
        .push("source", "serve")
        .push("flight", shared.flight.snapshot().to_json());
    let mut traces = Vec::new();
    for (id, tree) in lock(&shared.traces).entries() {
        let mut t = Json::object();
        t.push("trace_id", id).push("trace", tree.clone());
        traces.push(t);
    }
    d.push("traces", Json::Array(traces))
        .push("gauges", gauges_json(shared))
        .push("counters", counters_json(shared));
    d
}

/// The `dump` op: the `capsule-dump/1` artifact inline in the response.
fn dump_response(shared: &Shared) -> Json {
    let mut r = response_head("dump", true);
    r.push("dump", dump_json(shared));
    r
}

/// Serializes the dump artifact to `path`, tagged with what triggered
/// it. Never panics — a failing dump on the panic path must not mask
/// the original panic.
fn write_dump_file(shared: &Shared, path: &str, reason: &str) {
    let mut d = dump_json(shared);
    d.push("reason", reason);
    let mut body = d.to_string_compact();
    body.push('\n');
    match std::fs::write(path, body) {
        Ok(()) => eprintln!("capsule-serve: wrote dump ({reason}) to {path}"),
        Err(e) => eprintln!("capsule-serve: failed to write dump to {path}: {e}"),
    }
}

/// Post-mortem hooks, opt-in via the environment:
///
/// - `CAPSULE_SERVE_DUMP_ON_PANIC=<path>` chains a panic hook that
///   writes the dump artifact before deferring to the previous hook;
/// - `CAPSULE_SERVE_WATCHDOG_MS=<ms>` starts a stall watchdog that
///   writes the dump to `CAPSULE_SERVE_WATCHDOG_DUMP` (default
///   `capsule-dump.json`) whenever jobs stay in flight for a full
///   interval without any job reaching a terminal state.
fn install_dump_hooks(shared: &Arc<Shared>) {
    if let Ok(path) = std::env::var("CAPSULE_SERVE_DUMP_ON_PANIC") {
        if !path.is_empty() {
            let shared = Arc::clone(shared);
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                write_dump_file(&shared, &path, "panic");
                previous(info);
            }));
        }
    }
    let interval = crate::env::env_u64("CAPSULE_SERVE_WATCHDOG_MS", 0);
    if interval > 0 {
        let path = std::env::var("CAPSULE_SERVE_WATCHDOG_DUMP")
            .unwrap_or_else(|_| "capsule-dump.json".to_string());
        let shared = Arc::clone(shared);
        std::thread::spawn(move || watchdog_loop(&shared, interval, &path));
    }
}

/// Counts jobs that reached a terminal state — the watchdog's notion of
/// forward progress.
fn progress_mark(shared: &Shared) -> u64 {
    let c = &shared.counters;
    let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
    get(&c.jobs_completed) + get(&c.jobs_failed) + get(&c.jobs_cancelled) + get(&c.jobs_preempted)
}

fn watchdog_loop(shared: &Shared, interval_ms: u64, path: &str) {
    let mut last = progress_mark(shared);
    let mut stalled_since: Option<Instant> = None;
    while shared.running.load(Ordering::SeqCst) {
        // Sleep in short slices so shutdown is observed promptly even
        // with a long stall interval.
        std::thread::sleep(Duration::from_millis(interval_ms.clamp(1, 100)));
        let in_flight = shared.counters.jobs_in_flight.load(Ordering::SeqCst);
        let mark = progress_mark(shared);
        if in_flight == 0 || mark != last {
            last = mark;
            stalled_since = None;
            continue;
        }
        let since = *stalled_since.get_or_insert_with(Instant::now);
        if since.elapsed() >= Duration::from_millis(interval_ms) {
            write_dump_file(shared, path, "watchdog-stall");
            // Re-arm: a persisting stall dumps again only after another
            // full interval, not on every poll.
            stalled_since = None;
        }
    }
}

/// The deterministic metrics exposition (docs/OBSERVABILITY.md): a
/// Prometheus-style text body in a `metrics` response. Scrape-perturbed
/// counters (`connections`, `requests` — each scrape is itself a
/// connection and a request) are deliberately excluded so that two
/// back-to-back scrapes of an idle server are byte-identical.
fn metrics_response(shared: &Shared) -> Json {
    let c = &shared.counters;
    let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let mut m = MetricsRegistry::new();
    m.set("capsule_serve_bad_requests_total", &[], get(&c.bad_requests));
    m.set("capsule_serve_jobs_accepted_total", &[], get(&c.jobs_accepted));
    m.set("capsule_serve_jobs_rejected_total", &[], get(&c.jobs_rejected));
    m.set("capsule_serve_jobs_completed_total", &[], get(&c.jobs_completed));
    m.set("capsule_serve_jobs_failed_total", &[], get(&c.jobs_failed));
    m.set("capsule_serve_jobs_cancelled_total", &[], get(&c.jobs_cancelled));
    m.set("capsule_serve_cache_hits_total", &[], get(&c.cache_hits));
    m.set("capsule_serve_cache_misses_total", &[], get(&c.cache_misses));
    m.set("capsule_serve_cancel_requests_total", &[], get(&c.cancel_requests));
    m.set("capsule_serve_preempt_requests_total", &[], get(&c.preempt_requests));
    m.set("capsule_serve_jobs_preempted_total", &[], get(&c.jobs_preempted));
    m.set("capsule_serve_jobs_resumed_total", &[], get(&c.jobs_resumed));
    m.set("capsule_serve_checkpoints_stored_total", &[], get(&c.checkpoints_stored));
    m.set("capsule_serve_checkpoint_fetches_total", &[], get(&c.checkpoint_fetches));
    m.set("capsule_serve_checkpoint_puts_total", &[], get(&c.checkpoint_puts));
    m.set("capsule_serve_snapshot_bytes_total", &[], get(&c.snapshot_bytes));
    m.set("capsule_serve_jobs_in_flight", &[], c.jobs_in_flight.load(Ordering::SeqCst));
    m.set("capsule_serve_workers", &[], shared.opts.workers as u64);
    m.set("capsule_serve_queue_capacity", &[], shared.opts.queue as u64);
    m.set("capsule_serve_cache_capacity", &[], shared.opts.cache as u64);
    m.set("capsule_serve_cache_entries", &[], lock(&shared.cache).len() as u64);
    m.set("capsule_serve_checkpoint_cycles", &[], shared.opts.checkpoint_cycles);
    m.set("capsule_serve_checkpoint_capacity", &[], shared.opts.checkpoints as u64);
    m.set("capsule_serve_checkpoint_entries", &[], lock(&shared.checkpoints).len() as u64);
    m.set("capsule_serve_traces_stored", &[], lock(&shared.traces).len() as u64);
    m.set("capsule_serve_cache_evictions_total", &[], lock(&shared.cache).evictions());
    m.set("capsule_serve_checkpoint_evictions_total", &[], lock(&shared.checkpoints).evictions());
    m.set("capsule_serve_flight_capacity", &[], shared.flight.capacity() as u64);
    m.set("capsule_serve_flight_recorded_total", &[], shared.flight.recorded());
    m.set("capsule_serve_ewma_queue_wait_us", &[], shared.ewma_queue_wait.get());
    m.set("capsule_serve_ewma_run_us", &[], shared.ewma_run.get());
    m.set("capsule_serve_predicted_wait_us", &[], predicted_wait_us(shared));
    {
        let lat = lock(&shared.latencies);
        m.histogram("capsule_serve_queue_wait_us", &[], &lat.queue_wait_us);
        m.histogram("capsule_serve_run_us", &[], &lat.run_us);
    }
    let mut r = response_head("metrics", true);
    r.push("exposition", m.render());
    r
}

/// The `trace` op: the stored span tree for a client-chosen trace id,
/// or an `unknown-trace` error if the id was never submitted, tracing
/// is disabled (`traces: 0`), or the tree has been evicted.
fn trace_response(shared: &Shared, trace_id: &str) -> Json {
    match lock(&shared.traces).get(trace_id).cloned() {
        Some(tree) => {
            let mut r = response_head("trace", true);
            r.push("trace_id", trace_id).push("trace", tree);
            r
        }
        None => {
            let mut r = error_response(
                "trace",
                "unknown-trace",
                Some("no stored trace for this id (never submitted, disabled, or evicted)"),
            );
            r.push("trace_id", trace_id);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The dump writer is exercised directly (rather than through the
    /// panic/watchdog env hooks — process-global state is racy under
    /// the parallel test runner): it must produce a `capsule-dump/1`
    /// artifact tagged with its trigger, and never panic.
    #[test]
    fn write_dump_file_emits_a_versioned_artifact() {
        let server = Server::start("127.0.0.1:0", ServerOptions::default()).unwrap();
        server.shared.flight.record(FlightKind::Enqueue, Some(0xb517_4289_4a5f_f828), None, "");
        let path =
            std::env::temp_dir().join(format!("capsule-dump-test-{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        write_dump_file(&server.shared, &path, "unit-test");
        let body = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(body.starts_with('{') && body.ends_with("}\n"));
        assert!(body.contains("\"schema\":\"capsule-dump/1\""));
        assert!(body.contains("\"source\":\"serve\""));
        assert!(body.contains("\"reason\":\"unit-test\""));
        assert!(body.contains("\"cache_key\":\"b51742894a5ff828\""));
        assert!(body.contains("\"gauges\":"));
        assert!(body.contains("\"counters\":"));

        // A path that cannot be created reports instead of panicking.
        write_dump_file(&server.shared, "/nonexistent-dir/x/dump.json", "unit-test");
        server.shutdown();
    }

    /// `predicted_wait_us` is pure arithmetic over the gauges: with no
    /// observations it is zero, and after seeding the EWMAs it follows
    /// wait + backlog * run / workers exactly.
    #[test]
    fn predicted_wait_follows_the_gauges() {
        let server = Server::start("127.0.0.1:0", ServerOptions::default()).unwrap();
        let shared = &server.shared;
        assert_eq!(predicted_wait_us(shared), 0);
        shared.ewma_queue_wait.observe(500);
        shared.ewma_run.observe(9000);
        // No backlog beyond the worker pool: prediction is the queue wait.
        assert_eq!(predicted_wait_us(shared), 500);
        // Fake a backlog of 4 beyond the 2 workers: + 4 * 9000 / 2.
        shared.counters.jobs_in_flight.store(6, Ordering::SeqCst);
        assert_eq!(predicted_wait_us(shared), 500 + 4 * 9000 / 2);
        shared.counters.jobs_in_flight.store(0, Ordering::SeqCst);
        server.shutdown();
    }
}
