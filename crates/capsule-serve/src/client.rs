//! Reusable client plumbing for both server protocols: a line-oriented
//! `capsule-serve/1` connection, the framed pipelined `capsule-serve/2`
//! ([`crate::frame`]), one-shot request helpers, a keep-alive
//! [`ConnectionPool`], and the health probe the fleet coordinator polls
//! backends with.
//!
//! Everything that talks *to* a capsule-serve endpoint — `capsule-client`,
//! `capsule-loadgen`, the `capsule-fleet` coordinator and the e2e tests —
//! goes through [`Connection`], so timeout handling and error
//! classification live in exactly one place.
//!
//! The v2 half of the API is the `submit`/`collect` pair: `submit`
//! writes a request frame and returns its id without waiting, `collect`
//! returns the next completion (any id). [`Connection::request`] remains
//! the synchronous one-round-trip shape on both protocols.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use capsule_core::output::Json;

use crate::frame;

/// Why a request over a [`Connection`] failed.
///
/// The variants matter to the fleet's retry policy: every one of them is
/// a *transport* fault of the endpoint (retryable on another backend),
/// as opposed to a structured `ok:false` response, which is a statement
/// about the job itself.
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect (or address resolution) failed.
    Connect(std::io::Error),
    /// Writing the request failed.
    Send(std::io::Error),
    /// Reading the response failed (includes read timeouts).
    Recv(std::io::Error),
    /// The endpoint closed the connection without responding.
    Closed,
    /// The response was not valid JSON.
    BadJson(String),
    /// The endpoint broke the `capsule-serve/2` framing contract
    /// (bad preamble, misframed response).
    Proto(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Send(e) => write!(f, "send: {e}"),
            ClientError::Recv(e) => write!(f, "recv: {e}"),
            ClientError::Closed => f.write_str("connection closed before a response arrived"),
            ClientError::BadJson(e) => write!(f, "unparseable response: {e}"),
            ClientError::Proto(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Which wire protocol a [`Connection`] speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Proto {
    /// `capsule-serve/1`: newline-delimited JSON, one request per
    /// round-trip.
    #[default]
    V1,
    /// `capsule-serve/2`: length-prefixed binary frames, pipelined.
    V2,
}

impl Proto {
    /// Parses the `--proto` flag / `CAPSULE_*_PROTO` value.
    pub fn parse(s: &str) -> Option<Proto> {
        match s {
            "v1" => Some(Proto::V1),
            "v2" => Some(Proto::V2),
            _ => None,
        }
    }

    /// The flag spelling (`"v1"` / `"v2"`).
    pub fn name(self) -> &'static str {
        match self {
            Proto::V1 => "v1",
            Proto::V2 => "v2",
        }
    }
}

impl std::fmt::Display for Proto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Proto {
    type Err = String;

    fn from_str(s: &str) -> Result<Proto, String> {
        Proto::parse(s).ok_or_else(|| format!("unknown protocol {s:?} (expected v1 or v2)"))
    }
}

/// One connection to a capsule-serve endpoint, speaking either wire
/// protocol.
///
/// On v2, [`Connection::submit`] and [`Connection::collect`] expose
/// pipelining: many requests may be in flight and completions arrive in
/// whatever order the workers finish. On v1 the same API degrades
/// gracefully to in-order request/response (the server processes a v1
/// connection serially), so callers can be written once against
/// submit/collect and benchmarked over both protocols.
#[derive(Debug)]
pub struct Connection {
    proto: Proto,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
    /// Ids submitted but not yet returned to the caller, oldest first.
    submitted: VecDeque<u64>,
    /// v2 completions read off the wire while waiting for a different
    /// id, in arrival order.
    arrived: VecDeque<(u64, Json)>,
}

impl Connection {
    /// Connects to `addr` (a `HOST:PORT` string) speaking v1.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when resolution or the TCP connect fails.
    pub fn connect(addr: &str) -> Result<Connection, ClientError> {
        Connection::connect_with(addr, Proto::V1)
    }

    /// Connects to `addr` speaking `proto`. A v2 connection exchanges
    /// preambles before returning, so a success means the endpoint
    /// really speaks v2.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] on connect failure, [`ClientError::Proto`]
    /// when the endpoint answers with a bad preamble.
    pub fn connect_with(addr: &str, proto: Proto) -> Result<Connection, ClientError> {
        Connection::from_stream(TcpStream::connect(addr).map_err(ClientError::Connect)?, proto)
    }

    /// Connects to `addr` giving up after `timeout`, so probing a dead
    /// backend cannot hang the caller. Speaks v1.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] on resolution failure or timeout.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> Result<Connection, ClientError> {
        Connection::connect_timeout_with(addr, timeout, Proto::V1)
    }

    /// [`Connection::connect_timeout`] with an explicit protocol.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] on resolution failure or timeout,
    /// [`ClientError::Proto`] on a bad v2 preamble.
    pub fn connect_timeout_with(
        addr: &str,
        timeout: Duration,
        proto: Proto,
    ) -> Result<Connection, ClientError> {
        let resolved = resolve(addr)?;
        let stream =
            TcpStream::connect_timeout(&resolved, timeout).map_err(ClientError::Connect)?;
        Connection::from_stream(stream, proto)
    }

    fn from_stream(stream: TcpStream, proto: Proto) -> Result<Connection, ClientError> {
        let read_half = stream.try_clone().map_err(ClientError::Connect)?;
        let mut conn = Connection {
            proto,
            writer: stream,
            reader: BufReader::new(read_half),
            next_id: 1,
            submitted: VecDeque::new(),
            arrived: VecDeque::new(),
        };
        if proto == Proto::V2 {
            frame::write_preamble(&mut conn.writer)
                .and_then(|()| conn.writer.flush())
                .map_err(ClientError::Send)?;
            frame::read_preamble(&mut conn.reader).map_err(|e| match e {
                frame::FrameError::Io(io) => ClientError::Recv(io),
                other => ClientError::Proto(other.to_string()),
            })?;
        }
        Ok(conn)
    }

    /// The protocol this connection speaks.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Requests submitted whose responses have not been returned yet.
    pub fn outstanding(&self) -> usize {
        self.submitted.len() + self.arrived.len()
    }

    /// True when no response is pending — the state a pooled keep-alive
    /// connection must be in to be reused.
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0
    }

    /// Cheap liveness check for pooled idle connections: an idle, live
    /// endpoint has sent nothing, so a non-blocking peek must report
    /// would-block. EOF (the endpoint closed the idle connection) and
    /// unexpected bytes both disqualify it.
    pub fn is_live(&self) -> bool {
        if self.writer.set_nonblocking(true).is_err() {
            return false;
        }
        let mut probe = [0u8; 1];
        let result = self.writer.peek(&mut probe);
        let restored = self.writer.set_nonblocking(false).is_ok();
        restored && matches!(result, Err(e) if e.kind() == ErrorKind::WouldBlock)
    }

    /// Caps how long receiving may block (`None` removes the cap).
    /// Transport-level insurance for talking to a wedged endpoint.
    ///
    /// # Errors
    ///
    /// [`ClientError::Recv`] when the socket rejects the option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout).map_err(ClientError::Recv)
    }

    /// Writes one request without waiting for the reply — the deferred
    /// half of [`Connection::request`] — and returns the id its
    /// response will carry. On v2 many submits may be outstanding at
    /// once; on v1 responses come back in submission order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Send`] when the write fails.
    pub fn submit(&mut self, line: &str) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        match self.proto {
            Proto::V1 => self.write_line(line)?,
            Proto::V2 => {
                let t = line_tag(line);
                frame::write_frame(&mut self.writer, id, t, line.as_bytes())
                    .and_then(|()| self.writer.flush())
                    .map_err(ClientError::Send)?;
            }
        }
        self.submitted.push_back(id);
        Ok(id)
    }

    /// Returns the next completed response as `(id, response)`. On v2
    /// this is the next completion *in arrival order*, which may not be
    /// submission order; on v1 it is always the oldest outstanding
    /// request.
    ///
    /// # Errors
    ///
    /// [`ClientError::Recv`] / [`ClientError::Closed`] on transport
    /// faults, [`ClientError::BadJson`] on an unparseable response.
    pub fn collect(&mut self) -> Result<(u64, Json), ClientError> {
        if let Some(done) = self.arrived.pop_front() {
            self.forget(done.0);
            return Ok(done);
        }
        match self.proto {
            Proto::V1 => {
                let id = self.submitted.pop_front().unwrap_or(0);
                Ok((id, self.read_line_json()?))
            }
            Proto::V2 => {
                let done = self.read_frame_json()?;
                self.forget(done.0);
                Ok(done)
            }
        }
    }

    /// Waits for the response with a specific id, buffering any other
    /// completions that arrive first (they remain collectable).
    ///
    /// # Errors
    ///
    /// As [`Connection::collect`].
    pub fn recv_for(&mut self, id: u64) -> Result<Json, ClientError> {
        if let Some(at) = self.arrived.iter().position(|(got, _)| *got == id) {
            let (_, json) = self.arrived.remove(at).expect("position just found");
            self.forget(id);
            return Ok(json);
        }
        match self.proto {
            Proto::V1 => {
                // v1 responses arrive in submission order: drain and
                // buffer until the wanted one is at the front.
                loop {
                    let front = self.submitted.pop_front().unwrap_or(0);
                    let json = self.read_line_json()?;
                    if front == id {
                        return Ok(json);
                    }
                    self.arrived.push_back((front, json));
                }
            }
            Proto::V2 => loop {
                let (got, json) = self.read_frame_json()?;
                if got == id {
                    self.forget(id);
                    return Ok(json);
                }
                self.arrived.push_back((got, json));
            },
        }
    }

    /// Writes one request line without waiting for the reply, for
    /// callers that want to do other work (or cancel the job) while it
    /// runs. Equivalent to discarding the id of [`Connection::submit`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Send`] when the write fails.
    pub fn send(&mut self, line: &str) -> Result<(), ClientError> {
        self.submit(line).map(|_| ())
    }

    /// Reads the next response, whatever request it answers.
    ///
    /// # Errors
    ///
    /// As [`Connection::collect`].
    pub fn recv(&mut self) -> Result<Json, ClientError> {
        self.collect().map(|(_, json)| json)
    }

    /// Sends one request and reads its matching response.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the send or receive half.
    pub fn request(&mut self, line: &str) -> Result<Json, ClientError> {
        let id = self.submit(line)?;
        self.recv_for(id)
    }

    /// Splits an idle v2 connection into independently owned send and
    /// receive halves, so a submitter thread can keep the pipeline full
    /// while a collector thread drains completions — the open-loop
    /// driver shape.
    ///
    /// # Errors
    ///
    /// [`ClientError::Proto`] on a v1 connection (the line protocol has
    /// no out-of-order half) or when responses are still outstanding.
    pub fn into_split(self) -> Result<(SendHalf, RecvHalf), ClientError> {
        if self.proto != Proto::V2 {
            return Err(ClientError::Proto("only v2 connections split".to_string()));
        }
        if !self.is_idle() {
            return Err(ClientError::Proto("cannot split with responses outstanding".to_string()));
        }
        Ok((
            SendHalf { writer: self.writer, next_id: self.next_id },
            RecvHalf { reader: self.reader },
        ))
    }

    /// Drops `id` from the outstanding-submission queue.
    fn forget(&mut self, id: u64) {
        if let Some(at) = self.submitted.iter().position(|s| *s == id) {
            self.submitted.remove(at);
        }
    }

    fn write_line(&mut self, line: &str) -> Result<(), ClientError> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        self.writer.write_all(&bytes).and_then(|()| self.writer.flush()).map_err(ClientError::Send)
    }

    fn read_line_json(&mut self) -> Result<Json, ClientError> {
        read_response_line(&mut self.reader)
    }

    fn read_frame_json(&mut self) -> Result<(u64, Json), ClientError> {
        read_response_frame(&mut self.reader)
    }
}

/// The tag a request line's op maps to; unknown ops are framed as
/// [`frame::tag::ERROR`] and rejected by the server as a bad frame —
/// the same terminal answer a v1 unknown op gets, one hop later.
fn line_tag(line: &str) -> u8 {
    Json::parse(line)
        .ok()
        .as_ref()
        .and_then(|j| j.get("op"))
        .and_then(Json::as_str)
        .and_then(frame::op_tag)
        .unwrap_or(frame::tag::ERROR)
}

fn read_response_line(reader: &mut BufReader<TcpStream>) -> Result<Json, ClientError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(ClientError::Recv)?;
    if n == 0 || line.trim().is_empty() {
        return Err(ClientError::Closed);
    }
    Json::parse(line.trim()).map_err(|e| ClientError::BadJson(e.to_string()))
}

fn read_response_frame(reader: &mut impl Read) -> Result<(u64, Json), ClientError> {
    let f = match frame::read_frame(reader) {
        Ok(f) => f,
        Err(frame::FrameError::Eof) => return Err(ClientError::Closed),
        Err(frame::FrameError::Io(e)) => return Err(ClientError::Recv(e)),
        Err(other) => return Err(ClientError::Proto(other.to_string())),
    };
    let text = std::str::from_utf8(&f.payload)
        .map_err(|e| ClientError::BadJson(format!("non-UTF-8 payload: {e}")))?;
    let json = Json::parse(text).map_err(|e| ClientError::BadJson(e.to_string()))?;
    Ok((f.id, json))
}

/// The submit half of a split v2 connection (see
/// [`Connection::into_split`]).
#[derive(Debug)]
pub struct SendHalf {
    writer: TcpStream,
    next_id: u64,
}

impl SendHalf {
    /// Writes one request frame and returns its id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Send`] when the write fails.
    pub fn submit(&mut self, line: &str) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        frame::write_frame(&mut self.writer, id, line_tag(line), line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(ClientError::Send)?;
        Ok(id)
    }
}

/// The collect half of a split v2 connection.
#[derive(Debug)]
pub struct RecvHalf {
    reader: BufReader<TcpStream>,
}

impl RecvHalf {
    /// Reads the next completion in arrival order.
    ///
    /// # Errors
    ///
    /// As [`Connection::collect`].
    pub fn collect(&mut self) -> Result<(u64, Json), ClientError> {
        read_response_frame(&mut self.reader)
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, ClientError> {
    addr.to_socket_addrs()
        .map_err(ClientError::Connect)?
        .next()
        .ok_or_else(|| ClientError::Connect(std::io::Error::other("address resolved to nothing")))
}

/// One request/response exchange on a fresh v1 connection.
///
/// # Errors
///
/// Any [`ClientError`] from connecting or the exchange.
pub fn request_once(addr: &str, line: &str) -> Result<Json, ClientError> {
    Connection::connect(addr)?.request(line)
}

/// One request/response exchange on a fresh connection speaking `proto`.
///
/// # Errors
///
/// Any [`ClientError`] from connecting or the exchange.
pub fn request_once_with(addr: &str, line: &str, proto: Proto) -> Result<Json, ClientError> {
    Connection::connect_with(addr, proto)?.request(line)
}

/// A small keep-alive connection pool: checked-in idle connections are
/// reused (after a liveness check) instead of paying a TCP connect plus
/// v2 preamble per request — the per-job coordination cost this PR
/// exists to remove from the fleet's dispatch path.
///
/// Reconnection is transparent: a checkout that finds only dead idle
/// connections dials a fresh one, and [`ConnectionPool::request`]
/// retries once on a fresh connection when a *reused* connection turns
/// out to be stale mid-request.
#[derive(Debug)]
pub struct ConnectionPool {
    proto: Proto,
    connect_timeout: Duration,
    max_idle_per_addr: usize,
    idle: Mutex<std::collections::HashMap<String, Vec<Connection>>>,
    checkouts: AtomicU64,
    reuses: AtomicU64,
    dials: AtomicU64,
    redials: AtomicU64,
}

/// A snapshot of a [`ConnectionPool`]'s lifetime counters, for the
/// metrics exposition of whoever owns the pool (the fleet coordinator
/// exports them as `capsule_fleet_pool_*` families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCounters {
    /// Connections checked out (reused + freshly dialed).
    pub checkouts: u64,
    /// Checkouts satisfied by a pooled keep-alive connection.
    pub reuses: u64,
    /// Fresh TCP dials (includes redials).
    pub dials: u64,
    /// Dials forced by a reused connection that died mid-request.
    pub redials: u64,
}

impl ConnectionPool {
    /// A pool dialing `proto` connections with `connect_timeout`,
    /// keeping at most 8 idle connections per address.
    pub fn new(proto: Proto, connect_timeout: Duration) -> ConnectionPool {
        ConnectionPool {
            proto,
            connect_timeout,
            max_idle_per_addr: 8,
            idle: Mutex::new(std::collections::HashMap::new()),
            checkouts: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            dials: AtomicU64::new(0),
            redials: AtomicU64::new(0),
        }
    }

    /// The pool's lifetime counters.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            dials: self.dials.load(Ordering::Relaxed),
            redials: self.redials.load(Ordering::Relaxed),
        }
    }

    /// The protocol this pool's connections speak.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Idle connections currently pooled for `addr`.
    pub fn idle_count(&self, addr: &str) -> usize {
        self.idle
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(addr)
            .map_or(0, Vec::len)
    }

    /// Checks out a connection to `addr`: a live pooled one when
    /// available (dead ones are discarded), a fresh dial otherwise. The
    /// returned guard checks the connection back in on drop if it is
    /// still clean.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] / [`ClientError::Proto`] from dialing
    /// when no pooled connection is usable.
    pub fn checkout(&self, addr: &str) -> Result<PooledConnection<'_>, ClientError> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        loop {
            let pooled = {
                let mut idle = self.idle.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                idle.get_mut(addr).and_then(Vec::pop)
            };
            match pooled {
                Some(conn) if conn.is_live() => {
                    self.reuses.fetch_add(1, Ordering::Relaxed);
                    return Ok(PooledConnection {
                        pool: self,
                        addr: addr.to_string(),
                        conn: Some(conn),
                        reused: true,
                        poisoned: false,
                    });
                }
                Some(_dead) => continue,
                None => break,
            }
        }
        self.dials.fetch_add(1, Ordering::Relaxed);
        let conn = Connection::connect_timeout_with(addr, self.connect_timeout, self.proto)?;
        Ok(PooledConnection {
            pool: self,
            addr: addr.to_string(),
            conn: Some(conn),
            reused: false,
            poisoned: false,
        })
    }

    /// One request/response over a pooled connection, with a transparent
    /// one-shot reconnect when a reused keep-alive connection turns out
    /// to have died since it was pooled (send failure or close before
    /// any response — faults that prove the request went nowhere).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the exchange (after the retry, if one
    /// applied).
    pub fn request(&self, addr: &str, line: &str) -> Result<Json, ClientError> {
        self.request_timeout(addr, line, None)
    }

    /// [`ConnectionPool::request`] with a per-request read timeout.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the exchange (after the retry, if one
    /// applied).
    pub fn request_timeout(
        &self,
        addr: &str,
        line: &str,
        read_timeout: Option<Duration>,
    ) -> Result<Json, ClientError> {
        let mut guard = self.checkout(addr)?;
        guard.set_read_timeout(read_timeout)?;
        let reused = guard.reused;
        match guard.request(line) {
            Err(ClientError::Send(_) | ClientError::Closed) if reused => {
                drop(guard);
                let mut fresh = self.checkout_fresh(addr)?;
                fresh.set_read_timeout(read_timeout)?;
                fresh.request(line)
            }
            other => other,
        }
    }

    /// Dials a fresh connection, bypassing the idle pool (the retry
    /// path after a stale reuse).
    fn checkout_fresh(&self, addr: &str) -> Result<PooledConnection<'_>, ClientError> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        self.dials.fetch_add(1, Ordering::Relaxed);
        self.redials.fetch_add(1, Ordering::Relaxed);
        let conn = Connection::connect_timeout_with(addr, self.connect_timeout, self.proto)?;
        Ok(PooledConnection {
            pool: self,
            addr: addr.to_string(),
            conn: Some(conn),
            reused: false,
            poisoned: false,
        })
    }

    fn checkin(&self, addr: String, conn: Connection) {
        // Only clean connections go back: idle (no orphaned responses
        // in flight) and with any per-request read timeout cleared.
        if !conn.is_idle() || conn.set_read_timeout(None).is_err() {
            return;
        }
        let mut idle = self.idle.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = idle.entry(addr).or_default();
        if slot.len() < self.max_idle_per_addr {
            slot.push(conn);
        }
    }
}

/// A checked-out pooled connection. Dropping it returns the connection
/// to the pool unless a transport fault poisoned it (structured
/// `ok:false` responses are *not* faults and keep it reusable).
#[derive(Debug)]
pub struct PooledConnection<'a> {
    pool: &'a ConnectionPool,
    addr: String,
    conn: Option<Connection>,
    reused: bool,
    poisoned: bool,
}

impl PooledConnection<'_> {
    /// Whether this checkout reused a pooled keep-alive connection (as
    /// opposed to dialing fresh).
    pub fn reused(&self) -> bool {
        self.reused
    }

    fn conn(&mut self) -> &mut Connection {
        self.conn.as_mut().expect("connection present until drop")
    }

    /// [`Connection::set_read_timeout`], poisoning on failure.
    ///
    /// # Errors
    ///
    /// As [`Connection::set_read_timeout`].
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        let r = self.conn().set_read_timeout(timeout);
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    /// [`Connection::request`], poisoning the connection on transport
    /// faults so it is not returned to the pool.
    ///
    /// # Errors
    ///
    /// As [`Connection::request`].
    pub fn request(&mut self, line: &str) -> Result<Json, ClientError> {
        let r = self.conn().request(line);
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    /// [`Connection::submit`], poisoning on failure.
    ///
    /// # Errors
    ///
    /// As [`Connection::submit`].
    pub fn submit(&mut self, line: &str) -> Result<u64, ClientError> {
        let r = self.conn().submit(line);
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    /// [`Connection::recv_for`], poisoning on failure.
    ///
    /// # Errors
    ///
    /// As [`Connection::recv_for`].
    pub fn recv_for(&mut self, id: u64) -> Result<Json, ClientError> {
        let r = self.conn().recv_for(id);
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }
}

impl Drop for PooledConnection<'_> {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            if !self.poisoned {
                self.pool.checkin(std::mem::take(&mut self.addr), conn);
            }
        }
    }
}

/// What a `stats` probe learned about one endpoint — the slice of the
/// full `stats` response that dispatch decisions need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerProbe {
    /// Size of the endpoint's worker pool (its max concurrent jobs).
    pub workers: usize,
    /// Bounded queue depth behind the pool.
    pub queue_capacity: usize,
    /// Jobs running on the endpoint right now (self-reported).
    pub jobs_in_flight: u64,
    /// Completed-job total, for liveness/progress monitoring.
    pub jobs_completed: u64,
}

impl ServerProbe {
    /// Extracts a probe from a full `stats` response; `None` when the
    /// response is not an ok `capsule-serve/1` stats object.
    pub fn from_stats(stats: &Json) -> Option<ServerProbe> {
        if stats.get("ok").and_then(Json::as_bool) != Some(true) {
            return None;
        }
        Some(ServerProbe {
            workers: stats.get("workers")?.as_u64()? as usize,
            queue_capacity: stats.get("queue_capacity")?.as_u64()? as usize,
            jobs_in_flight: stats.get("jobs_in_flight")?.as_u64()?,
            jobs_completed: stats.get("counters")?.get("jobs_completed").and_then(Json::as_u64)?,
        })
    }
}

/// Probes `addr` with a `stats` request under tight timeouts: connect
/// within `connect_timeout`, answer within `read_timeout`. This is the
/// fleet coordinator's backend health check — a backend that cannot
/// answer `stats` promptly is not a backend jobs should be routed to.
///
/// # Errors
///
/// [`ClientError`] on any transport fault; `BadJson` doubles as the
/// error for a well-transported but malformed stats object.
pub fn probe(
    addr: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<ServerProbe, ClientError> {
    let mut conn = Connection::connect_timeout(addr, connect_timeout)?;
    conn.set_read_timeout(Some(read_timeout))?;
    let stats = conn.request(r#"{"op":"stats"}"#)?;
    ServerProbe::from_stats(&stats)
        .ok_or_else(|| ClientError::BadJson("stats response missing pool fields".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_extracts_pool_geometry_from_a_stats_response() {
        let stats = Json::parse(
            r#"{"schema":"capsule-serve/1","op":"stats","ok":true,
                "workers":3,"queue_capacity":16,"cache_capacity":64,"cache_entries":2,
                "jobs_in_flight":1,
                "counters":{"jobs_completed":41,"jobs_failed":0}}"#,
        )
        .unwrap();
        assert_eq!(
            ServerProbe::from_stats(&stats),
            Some(ServerProbe {
                workers: 3,
                queue_capacity: 16,
                jobs_in_flight: 1,
                jobs_completed: 41
            })
        );
    }

    #[test]
    fn probe_rejects_non_ok_and_malformed_responses() {
        let not_ok = Json::parse(r#"{"op":"stats","ok":false,"workers":3}"#).unwrap();
        assert_eq!(ServerProbe::from_stats(&not_ok), None);
        let missing = Json::parse(r#"{"op":"stats","ok":true,"workers":3}"#).unwrap();
        assert_eq!(ServerProbe::from_stats(&missing), None);
    }

    #[test]
    fn connecting_to_a_dead_endpoint_is_a_connect_error() {
        // Port 1 on localhost is essentially never listening.
        let err = request_once("127.0.0.1:1", r#"{"op":"stats"}"#).unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
        let err =
            Connection::connect_timeout("127.0.0.1:1", Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
        let err = ConnectionPool::new(Proto::V2, Duration::from_millis(200))
            .request("127.0.0.1:1", r#"{"op":"stats"}"#)
            .unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
    }

    #[test]
    fn pool_counters_track_checkouts_and_dials() {
        let pool = ConnectionPool::new(Proto::V1, Duration::from_millis(200));
        assert_eq!(pool.counters(), PoolCounters { checkouts: 0, reuses: 0, dials: 0, redials: 0 });
        // A failed dial still counts the checkout and the dial attempt.
        let _ = pool.request("127.0.0.1:1", r#"{"op":"stats"}"#);
        let c = pool.counters();
        assert_eq!((c.checkouts, c.reuses, c.dials, c.redials), (1, 0, 1, 0));
    }

    #[test]
    fn proto_parses_its_flag_spellings() {
        assert_eq!(Proto::parse("v1"), Some(Proto::V1));
        assert_eq!(Proto::parse("v2"), Some(Proto::V2));
        assert_eq!(Proto::parse("v3"), None);
        assert_eq!(Proto::parse(""), None);
        assert_eq!(Proto::V2.name(), "v2");
        assert_eq!(Proto::default(), Proto::V1);
    }

    #[test]
    fn request_lines_map_to_their_op_tags() {
        assert_eq!(line_tag(r#"{"op":"run","scenario":"x"}"#), frame::tag::RUN);
        assert_eq!(line_tag(r#"{"op":"stats"}"#), frame::tag::STATS);
        // Unknown ops and unparseable lines frame as the error tag; the
        // server answers them as bad frames.
        assert_eq!(line_tag(r#"{"op":"frobnicate"}"#), frame::tag::ERROR);
        assert_eq!(line_tag("not json"), frame::tag::ERROR);
    }
}
