//! Reusable `capsule-serve/1` client plumbing: a line-oriented JSON
//! connection, one-shot request helpers, and the health probe the fleet
//! coordinator polls backends with.
//!
//! Everything that talks *to* a capsule-serve endpoint — `capsule-client`,
//! `capsule-loadgen`, the `capsule-fleet` coordinator and the e2e tests —
//! goes through [`Connection`], so timeout handling and error
//! classification live in exactly one place.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use capsule_core::output::Json;

/// Why a request over a [`Connection`] failed.
///
/// The variants matter to the fleet's retry policy: every one of them is
/// a *transport* fault of the endpoint (retryable on another backend),
/// as opposed to a structured `ok:false` response, which is a statement
/// about the job itself.
#[derive(Debug)]
pub enum ClientError {
    /// TCP connect (or address resolution) failed.
    Connect(std::io::Error),
    /// Writing the request line failed.
    Send(std::io::Error),
    /// Reading the response line failed (includes read timeouts).
    Recv(std::io::Error),
    /// The endpoint closed the connection without responding.
    Closed,
    /// The response line was not valid JSON.
    BadJson(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Send(e) => write!(f, "send: {e}"),
            ClientError::Recv(e) => write!(f, "recv: {e}"),
            ClientError::Closed => f.write_str("connection closed before a response arrived"),
            ClientError::BadJson(e) => write!(f, "unparseable response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One line-oriented JSON connection to a `capsule-serve/1` endpoint.
#[derive(Debug)]
pub struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Connects to `addr` (a `HOST:PORT` string).
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when resolution or the TCP connect fails.
    pub fn connect(addr: &str) -> Result<Connection, ClientError> {
        Connection::from_stream(TcpStream::connect(addr).map_err(ClientError::Connect)?)
    }

    /// Connects to `addr` giving up after `timeout`, so probing a dead
    /// backend cannot hang the caller.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] on resolution failure or timeout.
    pub fn connect_timeout(addr: &str, timeout: Duration) -> Result<Connection, ClientError> {
        let resolved = resolve(addr)?;
        let stream =
            TcpStream::connect_timeout(&resolved, timeout).map_err(ClientError::Connect)?;
        Connection::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> Result<Connection, ClientError> {
        let read_half = stream.try_clone().map_err(ClientError::Connect)?;
        Ok(Connection { writer: stream, reader: BufReader::new(read_half) })
    }

    /// Caps how long [`Connection::recv`] may block (`None` removes the
    /// cap). Transport-level insurance for talking to a wedged endpoint.
    ///
    /// # Errors
    ///
    /// [`ClientError::Recv`] when the socket rejects the option.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout).map_err(ClientError::Recv)
    }

    /// Writes one request line without waiting for the reply — the
    /// deferred half of [`Connection::request`], for callers that want to
    /// do other work (or cancel the job) while it runs.
    ///
    /// # Errors
    ///
    /// [`ClientError::Send`] when the write fails.
    pub fn send(&mut self, line: &str) -> Result<(), ClientError> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        self.writer.write_all(&bytes).and_then(|()| self.writer.flush()).map_err(ClientError::Send)
    }

    /// Reads and parses the next response line.
    ///
    /// # Errors
    ///
    /// [`ClientError::Recv`] on read failure, [`ClientError::Closed`] on
    /// EOF, [`ClientError::BadJson`] when the line does not parse.
    pub fn recv(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(ClientError::Recv)?;
        if n == 0 || line.trim().is_empty() {
            return Err(ClientError::Closed);
        }
        Json::parse(line.trim()).map_err(|e| ClientError::BadJson(e.to_string()))
    }

    /// Sends one request line and reads the matching response.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] from the send or receive half.
    pub fn request(&mut self, line: &str) -> Result<Json, ClientError> {
        self.send(line)?;
        self.recv()
    }
}

fn resolve(addr: &str) -> Result<SocketAddr, ClientError> {
    addr.to_socket_addrs()
        .map_err(ClientError::Connect)?
        .next()
        .ok_or_else(|| ClientError::Connect(std::io::Error::other("address resolved to nothing")))
}

/// One request/response exchange on a fresh connection.
///
/// # Errors
///
/// Any [`ClientError`] from connecting or the exchange.
pub fn request_once(addr: &str, line: &str) -> Result<Json, ClientError> {
    Connection::connect(addr)?.request(line)
}

/// What a `stats` probe learned about one endpoint — the slice of the
/// full `stats` response that dispatch decisions need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerProbe {
    /// Size of the endpoint's worker pool (its max concurrent jobs).
    pub workers: usize,
    /// Bounded queue depth behind the pool.
    pub queue_capacity: usize,
    /// Jobs running on the endpoint right now (self-reported).
    pub jobs_in_flight: u64,
    /// Completed-job total, for liveness/progress monitoring.
    pub jobs_completed: u64,
}

impl ServerProbe {
    /// Extracts a probe from a full `stats` response; `None` when the
    /// response is not an ok `capsule-serve/1` stats object.
    pub fn from_stats(stats: &Json) -> Option<ServerProbe> {
        if stats.get("ok").and_then(Json::as_bool) != Some(true) {
            return None;
        }
        Some(ServerProbe {
            workers: stats.get("workers")?.as_u64()? as usize,
            queue_capacity: stats.get("queue_capacity")?.as_u64()? as usize,
            jobs_in_flight: stats.get("jobs_in_flight")?.as_u64()?,
            jobs_completed: stats.get("counters")?.get("jobs_completed").and_then(Json::as_u64)?,
        })
    }
}

/// Probes `addr` with a `stats` request under tight timeouts: connect
/// within `connect_timeout`, answer within `read_timeout`. This is the
/// fleet coordinator's backend health check — a backend that cannot
/// answer `stats` promptly is not a backend jobs should be routed to.
///
/// # Errors
///
/// [`ClientError`] on any transport fault; `BadJson` doubles as the
/// error for a well-transported but malformed stats object.
pub fn probe(
    addr: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> Result<ServerProbe, ClientError> {
    let mut conn = Connection::connect_timeout(addr, connect_timeout)?;
    conn.set_read_timeout(Some(read_timeout))?;
    let stats = conn.request(r#"{"op":"stats"}"#)?;
    ServerProbe::from_stats(&stats)
        .ok_or_else(|| ClientError::BadJson("stats response missing pool fields".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_extracts_pool_geometry_from_a_stats_response() {
        let stats = Json::parse(
            r#"{"schema":"capsule-serve/1","op":"stats","ok":true,
                "workers":3,"queue_capacity":16,"cache_capacity":64,"cache_entries":2,
                "jobs_in_flight":1,
                "counters":{"jobs_completed":41,"jobs_failed":0}}"#,
        )
        .unwrap();
        assert_eq!(
            ServerProbe::from_stats(&stats),
            Some(ServerProbe {
                workers: 3,
                queue_capacity: 16,
                jobs_in_flight: 1,
                jobs_completed: 41
            })
        );
    }

    #[test]
    fn probe_rejects_non_ok_and_malformed_responses() {
        let not_ok = Json::parse(r#"{"op":"stats","ok":false,"workers":3}"#).unwrap();
        assert_eq!(ServerProbe::from_stats(&not_ok), None);
        let missing = Json::parse(r#"{"op":"stats","ok":true,"workers":3}"#).unwrap();
        assert_eq!(ServerProbe::from_stats(&missing), None);
    }

    #[test]
    fn connecting_to_a_dead_endpoint_is_a_connect_error() {
        // Port 1 on localhost is essentially never listening.
        let err = request_once("127.0.0.1:1", r#"{"op":"stats"}"#).unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
        let err =
            Connection::connect_timeout("127.0.0.1:1", Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, ClientError::Connect(_)), "{err}");
    }
}
