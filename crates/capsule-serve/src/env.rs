//! Environment-driven configuration parsing that complains out loud.
//!
//! `ServerOptions::from_env` and the fleet coordinator's
//! `FleetOptions::from_env` read their sizing knobs from
//! `CAPSULE_SERVE_*` / `CAPSULE_FLEET_*`. A malformed value (a typo'd
//! number, an empty string) must not silently become the default — an
//! operator who set `CAPSULE_SERVE_WORKERS=1O` believes they configured
//! one worker more than they did. The helpers here warn on stderr and
//! then fall back, so misconfiguration is visible without being fatal.

use std::fmt::Display;
use std::str::FromStr;

/// Parses `raw` (the value of environment variable `name`) as a `T`.
///
/// `raw = None` means the variable is unset: the default applies
/// silently. A present-but-unparseable value returns the default plus a
/// warning message describing the fallback. Split from [`env_parsed`] so
/// the warning policy is testable without mutating the process
/// environment.
pub fn parse_env<T: FromStr + Display>(
    name: &str,
    raw: Option<&str>,
    default: T,
) -> (T, Option<String>) {
    match raw {
        None => (default, None),
        Some(raw) => match raw.trim().parse::<T>() {
            Ok(v) => (v, None),
            Err(_) => {
                let warning = format!(
                    "warning: ignoring {name}={raw:?}: not a valid value, using default {default}"
                );
                (default, Some(warning))
            }
        },
    }
}

/// [`parse_env`] against the live process environment, printing any
/// warning to stderr.
pub fn env_parsed<T: FromStr + Display>(name: &str, default: T) -> T {
    let raw = std::env::var(name).ok();
    let (value, warning) = parse_env(name, raw.as_deref(), default);
    if let Some(w) = warning {
        eprintln!("{w}");
    }
    value
}

/// [`env_parsed`] for the common `usize` sizing knobs.
pub fn env_usize(name: &str, default: usize) -> usize {
    env_parsed(name, default)
}

/// [`env_parsed`] for millisecond-valued knobs.
pub fn env_u64(name: &str, default: u64) -> u64 {
    env_parsed(name, default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_variables_default_silently() {
        let (v, warning) = parse_env::<usize>("CAPSULE_TEST_UNSET", None, 7);
        assert_eq!(v, 7);
        assert_eq!(warning, None);
    }

    #[test]
    fn well_formed_values_parse_without_warning() {
        let (v, warning) = parse_env::<usize>("CAPSULE_TEST_OK", Some("12"), 7);
        assert_eq!(v, 12);
        assert_eq!(warning, None);
        // Surrounding whitespace is tolerated.
        let (v, warning) = parse_env::<u64>("CAPSULE_TEST_WS", Some(" 250 "), 0);
        assert_eq!(v, 250);
        assert_eq!(warning, None);
    }

    #[test]
    fn malformed_values_warn_and_fall_back() {
        for bad in ["1O", "", "-3", "4.5", "lots"] {
            let (v, warning) = parse_env::<usize>("CAPSULE_SERVE_WORKERS", Some(bad), 2);
            assert_eq!(v, 2, "{bad:?}");
            let w = warning.expect("malformed value must warn");
            assert!(w.contains("CAPSULE_SERVE_WORKERS"), "{w}");
            assert!(w.contains("using default 2"), "{w}");
        }
    }

    #[test]
    fn env_parsed_reads_the_process_environment() {
        // Unique variable names per assertion: tests run concurrently and
        // the process environment is shared.
        std::env::set_var("CAPSULE_TEST_ENV_PARSED_GOOD", "31");
        assert_eq!(env_usize("CAPSULE_TEST_ENV_PARSED_GOOD", 1), 31);
        std::env::set_var("CAPSULE_TEST_ENV_PARSED_BAD", "not-a-number");
        assert_eq!(env_u64("CAPSULE_TEST_ENV_PARSED_BAD", 9), 9);
        assert_eq!(env_usize("CAPSULE_TEST_ENV_PARSED_ABSENT", 4), 4);
    }
}
