//! One-shot `capsule-serve/1` client.
//!
//! Usage:
//!   capsule-client ADDR '{"op":"run","scenario":"table1_config"}'
//!   capsule-client ADDR run SCENARIO [SCALE] [BUDGET]
//!   capsule-client ADDR trace TRACE_ID
//!   capsule-client ADDR stats|list|cancel|shutdown|metrics
//!
//! Sends one request line and prints the server's response line
//! (pretty-printed unless `--compact`). Exits nonzero when the server
//! reports `ok: false`.

use capsule_core::output::Json;
use capsule_serve::client::request_once;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let compact = if let Some(i) = args.iter().position(|a| a == "--compact") {
        args.remove(i);
        true
    } else {
        false
    };
    if args.len() < 2 {
        eprintln!("usage: capsule-client ADDR REQUEST... (see --help in docs/SERVER.md)");
        std::process::exit(2);
    }
    let addr = args.remove(0);
    let line = build_request(&args);

    let json = request_once(&addr, &line).unwrap_or_else(|e| {
        eprintln!("{addr}: {e}");
        std::process::exit(1);
    });
    if compact {
        println!("{}", json.to_string_compact());
    } else {
        println!("{}", json.to_string_pretty());
    }
    let ok = json.get("ok").and_then(Json::as_bool).unwrap_or(false);
    std::process::exit(if ok { 0 } else { 1 });
}

fn build_request(args: &[String]) -> String {
    if args[0].trim_start().starts_with('{') {
        return args[0].clone();
    }
    match args[0].as_str() {
        "stats" | "list" | "cancel" | "shutdown" | "metrics" => {
            format!(r#"{{"op":"{}"}}"#, args[0])
        }
        "trace" => {
            let Some(id) = args.get(1) else {
                eprintln!("trace needs a trace id (submitted earlier via a run's trace_id)");
                std::process::exit(2);
            };
            let mut req = Json::object();
            req.push("op", "trace").push("trace_id", id.as_str());
            req.to_string_compact()
        }
        "run" => {
            let Some(scenario) = args.get(1) else {
                eprintln!("run needs a scenario name (see `capsule-client ADDR list`)");
                std::process::exit(2);
            };
            let mut req = Json::object();
            req.push("op", "run").push("scenario", scenario.as_str());
            if let Some(scale) = args.get(2) {
                req.push("scale", scale.as_str());
            }
            if let Some(budget) = args.get(3) {
                let b: u64 = budget.parse().unwrap_or_else(|_| {
                    eprintln!("budget must be an integer, got {budget:?}");
                    std::process::exit(2);
                });
                req.push("budget", b);
            }
            req.to_string_compact()
        }
        other => {
            eprintln!(
                "unknown request {other:?} (run, trace, stats, list, cancel, shutdown, metrics \
                 or raw json)"
            );
            std::process::exit(2);
        }
    }
}
