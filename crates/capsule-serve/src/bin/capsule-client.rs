//! One-shot capsule-serve client.
//!
//! Usage:
//!   capsule-client [--proto v1|v2] ADDR '{"op":"run","scenario":"table1_config"}'
//!   capsule-client ADDR run SCENARIO [SCALE] [BUDGET]
//!   capsule-client ADDR trace TRACE_ID
//!   capsule-client ADDR preempt CACHE_KEY
//!   capsule-client ADDR resume TOKEN
//!   capsule-client ADDR health [KEY]
//!   capsule-client ADDR stats|list|cancel|shutdown|metrics|dump
//!
//! Sends one request and prints the server's response (pretty-printed
//! unless `--compact`). Exits nonzero when the server reports
//! `ok: false`. `--proto` picks the wire protocol — `v1` newline JSON
//! (default) or the framed `capsule-serve/2` (docs/SERVER.md); the
//! response is byte-identical either way, which CI checks. The
//! `CAPSULE_CLIENT_PROTO` environment variable sets the default.
//!
//! `preempt` parks the checkpointable job whose `cache_key` matches (the
//! key is echoed by the parked job's `preempted` response and by
//! `run`). `resume` first asks the endpoint for the parked job's
//! canonical request via `checkpoint-fetch`, then replays it with
//! `resume_from` so the job continues from its last checkpoint
//! (docs/CHECKPOINT.md).

use capsule_core::output::Json;
use capsule_serve::client::{request_once, request_once_with, Proto};
use capsule_serve::env::env_parsed;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let compact = if let Some(i) = args.iter().position(|a| a == "--compact") {
        args.remove(i);
        true
    } else {
        false
    };
    let mut proto: Proto = env_parsed("CAPSULE_CLIENT_PROTO", Proto::V1);
    if let Some(i) = args.iter().position(|a| a == "--proto") {
        args.remove(i);
        if i >= args.len() {
            eprintln!("--proto expects a value (v1 or v2)");
            std::process::exit(2);
        }
        let v = args.remove(i);
        proto = Proto::parse(&v).unwrap_or_else(|| {
            eprintln!("--proto expects v1 or v2, got {v:?}");
            std::process::exit(2);
        });
    }
    if args.len() < 2 {
        eprintln!("usage: capsule-client [--proto v1|v2] ADDR REQUEST... (see docs/SERVER.md)");
        std::process::exit(2);
    }
    let addr = args.remove(0);
    let line = build_request(&addr, &args);

    let json = request_once_with(&addr, &line, proto).unwrap_or_else(|e| {
        eprintln!("{addr}: {e}");
        std::process::exit(1);
    });
    if compact {
        println!("{}", json.to_string_compact());
    } else {
        println!("{}", json.to_string_pretty());
    }
    let ok = json.get("ok").and_then(Json::as_bool).unwrap_or(false);
    std::process::exit(if ok { 0 } else { 1 });
}

fn build_request(addr: &str, args: &[String]) -> String {
    if args[0].trim_start().starts_with('{') {
        return args[0].clone();
    }
    match args[0].as_str() {
        "stats" | "list" | "cancel" | "shutdown" | "metrics" | "dump" => {
            format!(r#"{{"op":"{}"}}"#, args[0])
        }
        "health" => {
            let mut req = Json::object();
            req.push("op", "health");
            if let Some(key) = args.get(1) {
                req.push("key", key.as_str());
            }
            req.to_string_compact()
        }
        "trace" => {
            let Some(id) = args.get(1) else {
                eprintln!("trace needs a trace id (submitted earlier via a run's trace_id)");
                std::process::exit(2);
            };
            let mut req = Json::object();
            req.push("op", "trace").push("trace_id", id.as_str());
            req.to_string_compact()
        }
        "preempt" => {
            let Some(key) = args.get(1) else {
                eprintln!("preempt needs the job's cache_key (16 hex digits, echoed by `run`)");
                std::process::exit(2);
            };
            let mut req = Json::object();
            req.push("op", "preempt").push("cache_key", key.as_str());
            req.to_string_compact()
        }
        "resume" => {
            let Some(token) = args.get(1) else {
                eprintln!("resume needs a checkpoint token (the parked job's cache_key)");
                std::process::exit(2);
            };
            // The canonical run the checkpoint belongs to lives next to
            // the blob; fetch it, then replay it with `resume_from` so
            // the endpoint continues from the checkpoint.
            let mut fetch = Json::object();
            fetch.push("op", "checkpoint-fetch").push("token", token.as_str());
            let reply = request_once(addr, &fetch.to_string_compact()).unwrap_or_else(|e| {
                eprintln!("{addr}: {e}");
                std::process::exit(1);
            });
            if reply.get("ok").and_then(Json::as_bool) != Some(true) {
                eprintln!("{}", reply.to_string_pretty());
                std::process::exit(1);
            }
            let Some(canonical) = reply.get("canonical").and_then(Json::as_str) else {
                eprintln!("checkpoint-fetch answered without a canonical request");
                std::process::exit(1);
            };
            let mut req = Json::parse(canonical).unwrap_or_else(|e| {
                eprintln!("stored canonical request is not valid json: {e}");
                std::process::exit(1);
            });
            req.push("resume_from", token.as_str());
            req.to_string_compact()
        }
        "run" => {
            let Some(scenario) = args.get(1) else {
                eprintln!("run needs a scenario name (see `capsule-client ADDR list`)");
                std::process::exit(2);
            };
            let mut req = Json::object();
            req.push("op", "run").push("scenario", scenario.as_str());
            if let Some(scale) = args.get(2) {
                req.push("scale", scale.as_str());
            }
            if let Some(budget) = args.get(3) {
                let b: u64 = budget.parse().unwrap_or_else(|_| {
                    eprintln!("budget must be an integer, got {budget:?}");
                    std::process::exit(2);
                });
                req.push("budget", b);
            }
            req.to_string_compact()
        }
        other => {
            eprintln!(
                "unknown request {other:?} (run, trace, preempt, resume, health, stats, list, \
                 cancel, shutdown, metrics, dump or raw json)"
            );
            std::process::exit(2);
        }
    }
}
