//! Deterministic load generator for `capsule-serve` and `capsule-fleet`.
//!
//! Usage: `capsule-loadgen ADDR [--jobs N] [--threads T] [--fleet]
//!         [--proto v1|v2] [--open-loop RATE] [--zipf S] [--seed N]
//!         [--deterministic] [--parity ADDR2] [--trace] [--scrape FILE]
//!         [--preempt-rate N] [--fuzz N]`
//!
//! Fires N `run` requests (default 12) from T keep-alive connections
//! (default 4), cycling the full scenario catalog at smoke scale, and
//! classifies each response as ok / queue-full / error. Queue-full
//! rejections are an expected outcome of backpressure, not a failure.
//! The end-of-run summary includes the observed p50/p90/p99 request
//! latency (power-of-two bucket upper bounds from
//! `capsule_core::stats::Histogram`).
//!
//! `--proto v1|v2` selects the wire protocol (default v1); v2 uses the
//! framed pipelined `capsule-serve/2` (docs/SERVER.md).
//!
//! `--open-loop RATE` switches from the closed loop above to Poisson
//! arrivals at RATE requests/second, with scenario popularity drawn
//! from a Zipf distribution (`--zipf S`, default 0 = uniform), seeded
//! by `--seed` (default 1). Offered load is then independent of server
//! completions — the shape that actually provokes queue-full
//! backpressure. `--deterministic` drops pacing and timing from the run
//! and the summary, leaving only counts and the order-insensitive
//! report digest, so two runs of one seed print byte-identical
//! summaries (CI compares them, over both protocols).
//!
//! Every flag in this paragraph has a `CAPSULE_LOADGEN_*` environment
//! equivalent (`PROTO`, `OPEN_LOOP`, `ZIPF`, `SEED`) read through the
//! warn-on-malformed parser in [`capsule_serve::env`]; explicit flags
//! win over the environment.
//!
//! `--fleet` sizes the batch to exactly one job per catalog entry (the
//! canonical fleet smoke sweep) unless `--jobs` is given explicitly.
//! `--parity ADDR2` then replays every distinct scenario of the batch
//! against a second endpoint and requires each report to be
//! byte-identical — the fleet-vs-direct-server determinism check CI
//! runs. Afterwards one scenario is replayed on a fresh connection to
//! assert the second response is a cache hit carrying a byte-identical
//! report. Exits nonzero if any request errored or a check failed.
//!
//! `--trace` attaches a `trace_id` (`lg-<job>`) to every request and
//! names the p99-tail jobs' trace ids in the latency summary, so the
//! slowest requests of a load run can be pulled apart immediately with
//! the server's `trace` op (docs/OBSERVABILITY.md).
//!
//! `--scrape FILE` polls the `metrics` op during the run and writes one
//! JSON object per scrape to FILE:
//! `{"seq":N,"source":S,"metrics":{..}}`. Against a coordinator the
//! scraper discovers the fleet's backends through `health` and each
//! cycle scrapes the coordinator plus every backend — `source` is
//! `"coordinator"` or the backend's stable name (`b0`, `b1`, ...), and
//! all lines of one cycle share a `seq`; against a plain server the
//! source is `"server"`. Lines carry sequence numbers, never wall-clock
//! timestamps, so two runs of the same workload produce structurally
//! identical series.
//!
//! `--preempt-rate N` preempts roughly one in N jobs mid-run (seeded
//! in-tree rng keyed by the job index, so the *same jobs* are picked on
//! every run): a sidecar thread fires `preempt` at the job's cache key
//! until a backend parks it, and a `preempted` answer is resumed via
//! `resume_from` — exercising the checkpoint swap path under mixed
//! traffic (docs/CHECKPOINT.md). Against a fleet endpoint the
//! coordinator migrates the job itself and the run answer comes back
//! already resumed. Requires checkpointing enabled on the backends
//! (`CAPSULE_SERVE_CHECKPOINT_CYCLES`); without it the preempts answer
//! `not-running` and the jobs simply complete.
//!
//! `--fuzz N` switches to the differential fuzz phase instead of the
//! catalog mix: N `fuzz_gen` jobs with seeded machine-config overrides
//! are sent to the endpoint, while the *same* scenario batch is executed
//! in-process with the same overrides; the server's report must be
//! byte-identical to the local run, the second submission of each job
//! must be a cache hit with identical bytes, and one job runs under a
//! preempt sidecar so a checkpointed/resumed server run is compared
//! against the uninterrupted local one (docs/FUZZ.md).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use capsule_bench::catalog;
use capsule_core::output::Json;
use capsule_core::rng::{Rng, Xoshiro256StarStar};
use capsule_core::stats::Histogram;
use capsule_serve::client::{request_once, Connection, Proto};
use capsule_serve::env::env_parsed;
use capsule_serve::load::{self, DriveOptions};
use capsule_serve::protocol::{cache_key, Request};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        eprintln!(
            "usage: capsule-loadgen ADDR [--jobs N] [--threads T] [--fleet] [--proto v1|v2] \
             [--open-loop RATE] [--zipf S] [--seed N] [--deterministic] [--parity ADDR2] \
             [--trace] [--scrape FILE] [--preempt-rate N] [--fuzz N]"
        );
        std::process::exit(2);
    };
    let mut jobs: Option<usize> = None;
    let mut threads = 4usize;
    let mut fleet = false;
    let mut parity: Option<String> = None;
    let mut trace = false;
    let mut scrape: Option<String> = None;
    let mut preempt_rate = 0usize;
    let mut fuzz = 0usize;
    // Environment defaults (warn-on-malformed); flags override below.
    let mut proto: Proto = env_parsed("CAPSULE_LOADGEN_PROTO", Proto::V1);
    let mut open_loop: f64 = env_parsed("CAPSULE_LOADGEN_OPEN_LOOP", 0.0);
    let mut zipf: f64 = env_parsed("CAPSULE_LOADGEN_ZIPF", 0.0);
    let mut seed: u64 = env_parsed("CAPSULE_LOADGEN_SEED", 1);
    let mut deterministic = false;
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("{arg} expects a value");
                std::process::exit(2);
            })
        };
        let int = |v: String, what: &str| {
            v.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("{what} expects an integer, got {v:?}");
                std::process::exit(2);
            })
        };
        let float = |v: String, what: &str| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("{what} expects a number, got {v:?}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--jobs" => jobs = Some(int(value(), "--jobs").max(1)),
            "--threads" => threads = int(value(), "--threads").max(1),
            "--fleet" => fleet = true,
            "--proto" => {
                let v = value();
                proto = Proto::parse(&v).unwrap_or_else(|| {
                    eprintln!("--proto expects v1 or v2, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--open-loop" => open_loop = float(value(), "--open-loop"),
            "--zipf" => zipf = float(value(), "--zipf"),
            "--seed" => seed = int(value(), "--seed") as u64,
            "--deterministic" => deterministic = true,
            "--parity" => parity = Some(value()),
            "--trace" => trace = true,
            "--scrape" => scrape = Some(value()),
            "--preempt-rate" => preempt_rate = int(value(), "--preempt-rate"),
            "--fuzz" => fuzz = int(value(), "--fuzz").max(1),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if fuzz > 0 {
        if !fuzz_phase(&addr, fuzz) {
            std::process::exit(1);
        }
        return;
    }
    if open_loop > 0.0 {
        let n = jobs.unwrap_or(64);
        if !open_loop_phase(&addr, n, threads, proto, open_loop, zipf, seed, deterministic) {
            std::process::exit(1);
        }
        return;
    }
    // The job mix is the catalog itself, in figure/table order, at smoke
    // scale: every endpoint smoke sweep exercises every entry.
    let mix: Vec<&'static str> = catalog::names();
    let jobs = jobs.unwrap_or(if fleet { mix.len() } else { 12 });

    let ok = Arc::new(AtomicUsize::new(0));
    let queue_full = Arc::new(AtomicUsize::new(0));
    let errors = Arc::new(AtomicUsize::new(0));
    let preempted = Arc::new(AtomicUsize::new(0));
    let next = Arc::new(AtomicUsize::new(0));
    let latency = Arc::new(Mutex::new(Histogram::new()));
    let reports = Arc::new(Mutex::new(BTreeMap::<String, String>::new()));
    // `(latency_us, trace_id)` per successful traced request, for the
    // p99-tail attribution in the summary.
    let samples = Arc::new(Mutex::new(Vec::<(u64, String)>::new()));

    let scraper = scrape.as_ref().map(|path| start_scraper(&addr, path.clone()));

    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let addr = addr.clone();
            let mix = mix.clone();
            let (ok, queue_full, errors, next) =
                (ok.clone(), queue_full.clone(), errors.clone(), next.clone());
            let (latency, reports, samples) = (latency.clone(), reports.clone(), samples.clone());
            let preempted = preempted.clone();
            std::thread::spawn(move || {
                // One keep-alive connection per worker thread, redialed
                // only after a transport fault: the steady-state cost
                // per job is one round-trip, not connect + round-trip.
                let mut conn: Option<Connection> = None;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let scenario = mix[i % mix.len()];
                    let trace_id = trace.then(|| format!("lg-{i}"));
                    let req = run_line_traced(scenario, trace_id.as_deref());
                    // Preempt selection is keyed by the job index alone,
                    // so the same jobs are swapped on every run of the
                    // same workload, whatever the thread interleaving.
                    let swap = preempt_rate > 0
                        && Xoshiro256StarStar::seed_from_u64(0x10ad_6e5e ^ i as u64)
                            .u64_below(preempt_rate as u64)
                            == 0;
                    let started = Instant::now();
                    let result = if swap {
                        run_with_preempt(&addr, &req, &preempted)
                    } else {
                        request_keepalive(&addr, proto, &mut conn, &req)
                    };
                    match result {
                        Ok(json) => {
                            if json.get("ok").and_then(Json::as_bool) == Some(true) {
                                let us = started.elapsed().as_micros() as u64;
                                latency.lock().unwrap().record(us);
                                if let Some(id) = trace_id {
                                    samples.lock().unwrap().push((us, id));
                                }
                                ok.fetch_add(1, Ordering::Relaxed);
                                if let Some(report) =
                                    json.get("report").map(Json::to_string_compact)
                                {
                                    let mut seen = reports.lock().unwrap();
                                    if let Some(prev) = seen.get(scenario) {
                                        if *prev != report {
                                            eprintln!(
                                                "job {i} ({scenario}): report differs from an \
                                                 earlier run of the same scenario"
                                            );
                                            errors.fetch_add(1, Ordering::Relaxed);
                                        }
                                    } else {
                                        seen.insert(scenario.to_string(), report);
                                    }
                                }
                            } else if json.get("error").and_then(Json::as_str) == Some("queue-full")
                            {
                                queue_full.fetch_add(1, Ordering::Relaxed);
                            } else {
                                eprintln!(
                                    "job {i} ({scenario}) failed: {}",
                                    json.to_string_compact()
                                );
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => {
                            eprintln!("job {i} ({scenario}) failed: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }

    println!(
        "loadgen: {} ok, {} queue-full, {} errors, {} preempted-and-resumed over {} jobs / {} \
         threads",
        ok.load(Ordering::Relaxed),
        queue_full.load(Ordering::Relaxed),
        errors.load(Ordering::Relaxed),
        preempted.load(Ordering::Relaxed),
        jobs,
        threads
    );
    print_latency(&latency.lock().unwrap());
    if trace {
        print_tail_traces(&latency.lock().unwrap(), &samples.lock().unwrap());
    }
    if let Some(s) = scraper {
        s.finish();
    }

    let mut failed = errors.load(Ordering::Relaxed) > 0;
    failed |= !check_cache_identity(&addr);
    if let Some(other) = &parity {
        failed |= !check_parity(&reports.lock().unwrap(), other);
    }
    if failed {
        std::process::exit(1);
    }
}

/// The differential fuzz phase (`--fuzz N`): seeded `fuzz_gen` jobs
/// with machine-config overrides, each executed both through the
/// endpoint and in-process with the identical scenario batch. Checks,
/// per job: the server report is byte-identical to the local run, and a
/// resubmission is a cache hit carrying the same bytes. Job 1 (when
/// `n >= 2`) additionally runs under a preempt sidecar, so a server run
/// that parks at a checkpoint and resumes must still match the local
/// uninterrupted execution.
fn fuzz_phase(addr: &str, n: usize) -> bool {
    use capsule_bench::catalog::Scale;
    use capsule_core::config::DivisionMode;
    use capsule_serve::ConfigOverrides;

    let entry = catalog::find("fuzz_gen").expect("fuzz_gen catalog entry exists");
    let runner = capsule_bench::BatchRunner::with_workers(2);
    let preempted = AtomicUsize::new(0);
    let mut failures = 0usize;

    for i in 0..n {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xf0_22ed ^ i as u64);
        // Contexts never drop below 4 so static-variant fuzz programs
        // (at most 4 loader threads) still boot everywhere.
        let contexts = [4usize, 6, 8][rng.u64_below(3) as usize];
        let (mode_name, mode) = [
            ("greedy_throttled", DivisionMode::GreedyThrottled),
            ("greedy", DivisionMode::Greedy),
            ("never", DivisionMode::Never),
        ][rng.u64_below(3) as usize];
        let death_window = [16u64, 64, 128][rng.u64_below(3) as usize];
        let overrides = ConfigOverrides {
            contexts: Some(contexts),
            death_window: Some(death_window),
            swap_counter_threshold: None,
            division_mode: Some(mode),
        };

        let mut cfg = Json::object();
        cfg.push("contexts", contexts)
            .push("death_window", death_window)
            .push("division_mode", mode_name);
        let mut req = Json::object();
        req.push("op", "run")
            .push("scenario", "fuzz_gen")
            .push("scale", "smoke")
            .push("config", cfg);
        let line = req.to_string_compact();

        // The local truth: the same batch the server will build, run
        // in-process with the same overrides.
        let mut scenarios = entry.scenarios(Scale::Smoke);
        for sc in &mut scenarios {
            overrides.apply(&mut sc.config);
        }
        let local = runner.run(entry.title, scenarios).to_json().to_string_compact();

        let result = if i == 1 {
            run_with_preempt(addr, &line, &preempted)
        } else {
            request_once(addr, &line).map_err(|e| e.to_string())
        };
        let tag = format!("fuzz job {i} (contexts {contexts}, {mode_name}, dw {death_window})");
        let server = match result {
            Ok(json) if json.get("ok").and_then(Json::as_bool) == Some(true) => json,
            Ok(json) => {
                eprintln!("{tag}: server error: {}", json.to_string_compact());
                failures += 1;
                continue;
            }
            Err(e) => {
                eprintln!("{tag}: transport error: {e}");
                failures += 1;
                continue;
            }
        };
        let server_report = server.get("report").map(Json::to_string_compact);
        if server_report.as_deref() != Some(local.as_str()) {
            eprintln!("{tag}: server report differs from the in-process run");
            failures += 1;
            continue;
        }
        // Resubmission must be answered from the cache, byte-identically.
        match request_once(addr, &line) {
            Ok(again) if again.get("ok").and_then(Json::as_bool) == Some(true) => {
                if again.get("cache_hit").and_then(Json::as_bool) != Some(true) {
                    eprintln!("{tag}: resubmission was not a cache hit");
                    failures += 1;
                } else if again.get("report").map(Json::to_string_compact).as_deref()
                    != Some(local.as_str())
                {
                    eprintln!("{tag}: cached report differs from the in-process run");
                    failures += 1;
                }
            }
            Ok(json) => {
                eprintln!("{tag}: resubmission failed: {}", json.to_string_compact());
                failures += 1;
            }
            Err(e) => {
                eprintln!("{tag}: resubmission transport error: {e}");
                failures += 1;
            }
        }
    }
    println!(
        "fuzz phase: {}/{n} jobs byte-identical to in-process runs ({} preempted-and-resumed){}",
        n - failures,
        preempted.load(Ordering::Relaxed),
        if failures == 0 { "" } else { " [FAILED]" }
    );
    failures == 0
}

fn run_line(scenario: &str) -> String {
    format!(r#"{{"op":"run","scenario":"{scenario}","scale":"smoke"}}"#)
}

/// One request over the thread's keep-alive connection, dialing (or
/// redialing after a transport fault) at most once per call.
fn request_keepalive(
    addr: &str,
    proto: Proto,
    conn: &mut Option<Connection>,
    line: &str,
) -> Result<Json, String> {
    let reused = conn.is_some();
    if conn.is_none() {
        *conn = Some(Connection::connect_with(addr, proto).map_err(|e| e.to_string())?);
    }
    match conn.as_mut().expect("connection just ensured").request(line) {
        Ok(json) => Ok(json),
        Err(first) => {
            // A reused connection may simply have been closed by the
            // server side while idle; one fresh dial gets the verdict.
            *conn = None;
            if !reused {
                return Err(first.to_string());
            }
            let mut fresh = Connection::connect_with(addr, proto).map_err(|e| e.to_string())?;
            let json = fresh.request(line).map_err(|e| e.to_string())?;
            *conn = Some(fresh);
            Ok(json)
        }
    }
}

/// The open-loop mode (`--open-loop RATE`): a seeded Poisson/Zipf
/// schedule over the catalog, replayed by [`capsule_serve::load`].
/// Returns false when any job hit a transport or structured error
/// (queue-full rejections are backpressure working, not failures).
#[allow(clippy::too_many_arguments)]
fn open_loop_phase(
    addr: &str,
    jobs: usize,
    threads: usize,
    proto: Proto,
    rate: f64,
    zipf: f64,
    seed: u64,
    deterministic: bool,
) -> bool {
    let mix: Vec<&'static str> = catalog::names();
    let plan = load::schedule(seed, jobs, rate, zipf, mix.len());
    let lines: Vec<String> = plan.iter().map(|j| run_line(mix[j.scenario_index])).collect();
    let options = DriveOptions { proto, connections: threads, deterministic, read_timeout: None };
    let outcome = match load::drive(addr, &plan, &lines, &options) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("open-loop: cannot connect to {addr}: {e}");
            return false;
        }
    };
    if deterministic {
        // Counts and digest only — byte-identical across runs of one
        // seed (cache hits are excluded: a warmed server answers more
        // of them without changing the work's bytes).
        println!(
            "open-loop[deterministic]: {} ok, {} queue-full, {} errors over {} jobs ({proto}, \
             seed {seed}, zipf {zipf}) digest={:016x}",
            outcome.ok, outcome.queue_full, outcome.errors, jobs, outcome.report_digest
        );
    } else {
        let wall_s = outcome.wall.as_secs_f64().max(1e-9);
        println!(
            "open-loop: {} ok, {} queue-full, {} errors, {} cache-hits over {} jobs ({proto}, \
             offered {rate:.0}/s, zipf {zipf}, seed {seed})",
            outcome.ok, outcome.queue_full, outcome.errors, outcome.cache_hits, jobs
        );
        println!(
            "open-loop: achieved {:.0}/s, p50 {}us, p99 {}us, queue-full rate {:.3}",
            (outcome.ok + outcome.queue_full + outcome.errors) as f64 / wall_s,
            outcome.latency_percentile_us(50.0),
            outcome.latency_percentile_us(99.0),
            outcome.queue_full_rate()
        );
    }
    outcome.errors == 0
}

/// Sends a run while a sidecar thread fires `preempt` at its cache key
/// until a backend parks the job (or the run completes first — e.g. a
/// cache hit, or a fleet that migrated and finished it). A direct
/// server's `preempted` answer is resumed via `resume_from`; if the
/// resume is rejected (checkpoint evicted, or a duplicate scenario got
/// there first) the job falls back to one plain rerun, so the job count
/// and the report-consistency checks stay intact either way.
fn run_with_preempt(addr: &str, req: &str, preempted: &AtomicUsize) -> Result<Json, String> {
    let Ok(Request::Run(run)) = Request::parse_line(req) else {
        return Err("loadgen built a non-run request".to_string());
    };
    let canonical = run.canonical();
    let key = cache_key(&canonical);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let pinger = {
        let addr = addr.to_string();
        let line = format!(r#"{{"op":"preempt","cache_key":"{key}"}}"#);
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if let Ok(json) = request_once(&addr, &line) {
                    if json.get("ok").and_then(Json::as_bool) == Some(true) {
                        return;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        })
    };
    let first = request_once(addr, req).map_err(|e| e.to_string());
    stop.store(true, Ordering::SeqCst);
    let _ = pinger.join();

    let first = first?;
    if first.get("error").and_then(Json::as_str) != Some("preempted") {
        return Ok(first);
    }
    preempted.fetch_add(1, Ordering::Relaxed);
    let mut resume = Json::parse(&canonical).map_err(|e| format!("bad canonical: {e}"))?;
    resume.push("resume_from", key.as_str());
    let resumed = request_once(addr, &resume.to_string_compact()).map_err(|e| e.to_string())?;
    if resumed.get("ok").and_then(Json::as_bool) == Some(true) {
        return Ok(resumed);
    }
    request_once(addr, req).map_err(|e| e.to_string())
}

fn run_line_traced(scenario: &str, trace_id: Option<&str>) -> String {
    match trace_id {
        None => run_line(scenario),
        Some(id) => {
            format!(r#"{{"op":"run","scenario":"{scenario}","scale":"smoke","trace_id":"{id}"}}"#)
        }
    }
}

/// Names the trace ids of the p99-tail requests: everything at or above
/// the p99 latency bucket bound, slowest first, capped at five. These are
/// the ids worth feeding straight into the endpoint's `trace` op.
fn print_tail_traces(h: &Histogram, samples: &[(u64, String)]) {
    let Some(bound) = h.quantile_bound(0.99) else {
        println!("p99-tail traces: none (no successful requests)");
        return;
    };
    // The bound is a bucket upper bound, so use the p99 bucket's *lower*
    // edge as the cut: everything in or above the p99 bucket qualifies.
    let cut = (bound / 2).saturating_add(1);
    let mut tail: Vec<&(u64, String)> = samples.iter().filter(|(us, _)| *us >= cut).collect();
    tail.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    tail.truncate(5);
    if tail.is_empty() {
        println!("p99-tail traces: none");
        return;
    }
    let rendered: Vec<String> = tail.iter().map(|(us, id)| format!("{id} ({us}us)")).collect();
    println!("p99-tail traces: {}", rendered.join(", "));
}

/// Background metrics scraper: polls the `metrics` op until stopped,
/// then writes one JSON object per scrape as JSONL. Sequence numbers,
/// never timestamps, order the series. A coordinator endpoint is fanned
/// out: each cycle scrapes the coordinator and every backend the fleet's
/// `health` op lists, tagging lines with a `source` so one file holds
/// the whole fleet's series.
struct Scraper {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<Vec<Json>>,
    path: String,
}

/// The `(source, addr)` pairs one scrape cycle visits. A fleet is
/// recognized by the backend ranking in its `health` answer; backends
/// are scraped under their stable names, sorted so the per-cycle line
/// order does not wobble with the live ranking. Anything else is a
/// single `server` source.
fn scrape_targets(addr: &str) -> Vec<(String, String)> {
    if let Ok(health) = request_once(addr, r#"{"op":"health"}"#) {
        if let Some(rows) = health.get("backends").and_then(Json::as_array) {
            let mut named: Vec<(String, String)> = rows
                .iter()
                .filter_map(|r| {
                    let name = r.get("name").and_then(Json::as_str)?;
                    let baddr = r.get("addr").and_then(Json::as_str)?;
                    Some((name.to_string(), baddr.to_string()))
                })
                .collect();
            named.sort();
            let mut targets = vec![("coordinator".to_string(), addr.to_string())];
            targets.extend(named);
            return targets;
        }
    }
    vec![("server".to_string(), addr.to_string())]
}

fn start_scraper(addr: &str, path: String) -> Scraper {
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let handle = {
        let addr = addr.to_string();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let targets = scrape_targets(&addr);
            let mut out = Vec::new();
            let mut seq = 0usize;
            loop {
                let done = stop.load(Ordering::SeqCst);
                for (source, taddr) in &targets {
                    // A backend that died mid-run simply stops answering;
                    // its lines drop out while the rest of the cycle
                    // keeps scraping.
                    if let Some(metrics) = scrape_once(taddr) {
                        let mut line = Json::object();
                        line.push("seq", seq)
                            .push("source", source.as_str())
                            .push("metrics", metrics);
                        out.push(line);
                    }
                }
                seq += 1;
                // One final scrape after the stop flag, so the series
                // always ends with the workload's settled counters.
                if done {
                    return out;
                }
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
        })
    };
    Scraper { stop, handle, path }
}

impl Scraper {
    fn finish(self) {
        self.stop.store(true, Ordering::SeqCst);
        let lines = self.handle.join().unwrap_or_default();
        let mut text = String::new();
        for l in &lines {
            text.push_str(&l.to_string_compact());
            text.push('\n');
        }
        match std::fs::write(&self.path, text) {
            Ok(()) => println!("scrape: wrote {} sample(s) to {}", lines.len(), self.path),
            Err(e) => eprintln!("scrape: cannot write {}: {e}", self.path),
        }
    }
}

/// One `metrics` request, with the text exposition parsed back into a
/// JSON object (`key -> value`) for structured JSONL.
fn scrape_once(addr: &str) -> Option<Json> {
    let reply = request_once(addr, r#"{"op":"metrics"}"#).ok()?;
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    let text = reply.get("exposition").and_then(Json::as_str)?;
    let mut obj = Json::object();
    for line in text.lines() {
        if let Some((key, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<u64>() {
                obj.push(key, v);
            }
        }
    }
    Some(obj)
}

/// End-of-run latency summary over successful requests. Quantiles are
/// bucket upper bounds ([`Histogram::quantile_bound`]) — conservative,
/// and cheap enough to compute from the same histogram the servers keep.
fn print_latency(h: &Histogram) {
    if h.count() == 0 {
        println!("latency_us: no successful requests");
        return;
    }
    let q = |q: f64| h.quantile_bound(q).unwrap_or(0);
    println!(
        "latency_us: n={} mean={:.0} p50<={} p90<={} p99<={} max={}",
        h.count(),
        h.mean(),
        q(0.50),
        q(0.90),
        q(0.99),
        h.max().unwrap_or(0)
    );
}

/// Replays every distinct scenario of the batch against `other` and
/// requires byte-identical reports — the determinism contract that makes
/// a fleet transparent: any backend (or a direct server) answers the
/// same bytes.
fn check_parity(reports: &BTreeMap<String, String>, other: &str) -> bool {
    if reports.is_empty() {
        eprintln!("parity check: no reports to compare");
        return false;
    }
    let mut matched = 0usize;
    for (scenario, report) in reports {
        match request_once(other, &run_line(scenario)) {
            Ok(json) if json.get("ok").and_then(Json::as_bool) == Some(true) => {
                match json.get("report").map(Json::to_string_compact) {
                    Some(r) if r == *report => matched += 1,
                    _ => eprintln!("parity check: {scenario}: reports differ"),
                }
            }
            Ok(json) => {
                eprintln!(
                    "parity check: {scenario} failed on {other}: {}",
                    json.to_string_compact()
                );
            }
            Err(e) => eprintln!("parity check: {scenario} transport error on {other}: {e}"),
        }
    }
    let all = matched == reports.len();
    println!(
        "parity check: {matched}/{} scenarios byte-identical vs {other}{}",
        reports.len(),
        if all { "" } else { " [FAILED]" }
    );
    all
}

/// Replay the same request twice; the second response must be a cache
/// hit whose report renders byte-identically to the first.
fn check_cache_identity(addr: &str) -> bool {
    let req = run_line("table1_config");
    let (first, second) = match (request_once(addr, &req), request_once(addr, &req)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("cache check: request failed: {e}");
            return false;
        }
    };
    if first.get("ok").and_then(Json::as_bool) != Some(true)
        || second.get("ok").and_then(Json::as_bool) != Some(true)
    {
        eprintln!("cache check: run did not succeed");
        return false;
    }
    if second.get("cache_hit").and_then(Json::as_bool) != Some(true) {
        eprintln!("cache check: second response was not a cache hit");
        return false;
    }
    let a = first.get("report").map(Json::to_string_compact);
    let b = second.get("report").map(Json::to_string_compact);
    if a.is_none() || a != b {
        eprintln!("cache check: cached report is not byte-identical");
        return false;
    }
    println!("cache check: hit with byte-identical report");
    true
}
