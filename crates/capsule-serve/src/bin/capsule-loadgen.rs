//! Deterministic load generator for `capsule-serve`.
//!
//! Usage: `capsule-loadgen ADDR [--jobs N] [--threads T]`
//!
//! Fires N `run` requests (default 12) from T connections (default 4),
//! cycling a fixed list of smoke-scale scenarios, and classifies each
//! response as ok / queue-full / error. Queue-full rejections are an
//! expected outcome of backpressure, not a failure. Afterwards it
//! replays one scenario twice on a fresh connection and checks that the
//! second response is a cache hit carrying a byte-identical report.
//! Exits nonzero if any request errored or the cache check fails.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use capsule_core::output::Json;

/// Smoke-scale scenarios cheap enough to hammer in a load test.
const MIX: [&str; 4] =
    ["table1_config", "toolchain_overhead", "fig7_throttling", "table3_divisions"];

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else {
        eprintln!("usage: capsule-loadgen ADDR [--jobs N] [--threads T]");
        std::process::exit(2);
    };
    let mut jobs = 12usize;
    let mut threads = 4usize;
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next().and_then(|v| v.parse::<usize>().ok()).unwrap_or_else(|| {
                eprintln!("{arg} expects an integer value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--jobs" => jobs = value().max(1),
            "--threads" => threads = value().max(1),
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let ok = Arc::new(AtomicUsize::new(0));
    let queue_full = Arc::new(AtomicUsize::new(0));
    let errors = Arc::new(AtomicUsize::new(0));
    let next = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let addr = addr.clone();
            let (ok, queue_full, errors, next) =
                (ok.clone(), queue_full.clone(), errors.clone(), next.clone());
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let scenario = MIX[i % MIX.len()];
                let req = format!(r#"{{"op":"run","scenario":"{scenario}","scale":"smoke"}}"#);
                match request(&addr, &req) {
                    Ok(json) => {
                        if json.get("ok").and_then(Json::as_bool) == Some(true) {
                            ok.fetch_add(1, Ordering::Relaxed);
                        } else if json.get("error").and_then(Json::as_str) == Some("queue-full") {
                            queue_full.fetch_add(1, Ordering::Relaxed);
                        } else {
                            eprintln!("job {i} ({scenario}) failed: {}", json.to_string_compact());
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(e) => {
                        eprintln!("job {i} ({scenario}) transport error: {e}");
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }

    println!(
        "loadgen: {} ok, {} queue-full, {} errors over {} jobs / {} threads",
        ok.load(Ordering::Relaxed),
        queue_full.load(Ordering::Relaxed),
        errors.load(Ordering::Relaxed),
        jobs,
        threads
    );

    let cache_ok = check_cache_identity(&addr);
    if errors.load(Ordering::Relaxed) > 0 || !cache_ok {
        std::process::exit(1);
    }
}

/// Replay the same request twice; the second response must be a cache
/// hit whose report renders byte-identically to the first.
fn check_cache_identity(addr: &str) -> bool {
    let req = r#"{"op":"run","scenario":"table1_config","scale":"smoke"}"#;
    let first = match request(addr, req) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cache check: first request failed: {e}");
            return false;
        }
    };
    let second = match request(addr, req) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cache check: second request failed: {e}");
            return false;
        }
    };
    if first.get("ok").and_then(Json::as_bool) != Some(true)
        || second.get("ok").and_then(Json::as_bool) != Some(true)
    {
        eprintln!("cache check: run did not succeed");
        return false;
    }
    if second.get("cache_hit").and_then(Json::as_bool) != Some(true) {
        eprintln!("cache check: second response was not a cache hit");
        return false;
    }
    let a = first.get("report").map(Json::to_string_compact);
    let b = second.get("report").map(Json::to_string_compact);
    if a.is_none() || a != b {
        eprintln!("cache check: cached report is not byte-identical");
        return false;
    }
    println!("cache check: hit with byte-identical report");
    true
}

fn request(addr: &str, line: &str) -> Result<Json, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .write_all(format!("{line}\n").as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    BufReader::new(&stream).read_line(&mut response).map_err(|e| format!("recv: {e}"))?;
    if response.trim().is_empty() {
        return Err("empty response".to_string());
    }
    Json::parse(response.trim()).map_err(|e| format!("parse: {e}"))
}
