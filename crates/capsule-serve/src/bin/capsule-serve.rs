//! The `capsule-serve` daemon: binds a TCP address and serves
//! `capsule-serve/1` requests until a `shutdown` request arrives.
//!
//! Usage: `capsule-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!         [--traces N] [--flight N]`
//!
//! Defaults come from `CAPSULE_SERVE_WORKERS` / `CAPSULE_SERVE_QUEUE` /
//! `CAPSULE_SERVE_CACHE` / `CAPSULE_SERVE_TRACES` /
//! `CAPSULE_SERVE_FLIGHT`; `--addr 127.0.0.1:0` picks an ephemeral
//! port. `--flight 0` disables the flight recorder
//! (docs/OBSERVABILITY.md).
//! The resolved address is printed as `listening on HOST:PORT` so
//! scripts can scrape it.

use capsule_serve::{Server, ServerOptions};

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut opts = ServerOptions::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => opts.workers = parse_usize(&value("--workers"), "--workers").max(1),
            "--queue" => opts.queue = parse_usize(&value("--queue"), "--queue").max(1),
            "--cache" => opts.cache = parse_usize(&value("--cache"), "--cache"),
            "--traces" => opts.traces = parse_usize(&value("--traces"), "--traces"),
            "--flight" => opts.flight = parse_usize(&value("--flight"), "--flight"),
            "--help" | "-h" => {
                println!(
                    "usage: capsule-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] \
                     [--traces N] [--flight N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let server = match Server::start(&addr, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    println!("workers {}, queue depth {}, cache capacity {}", opts.workers, opts.queue, opts.cache);
    server.join();
    println!("shut down");
}

fn parse_usize(v: &str, name: &str) -> usize {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{name} expects an integer, got {v:?}");
        std::process::exit(2);
    })
}
