//! Server-throughput benchmark: offered-load legs over the v1 and v2
//! wire protocols against a fresh in-process server, written to
//! `BENCH_serve.json` (`capsule-bench-serve/1`), the tracked record of
//! the serving-path perf trajectory. See docs/PERF.md.
//!
//! ```text
//! bench_serve [--loads R1,R2] [--jobs N] [--connections N] [--zipf S]
//!             [--seed N] [--out PATH] [--baseline PATH] [--compare PATH]
//!             [--noise FRAC] [--overhead-probes N] [--deterministic]
//!             [--flight-off]
//! ```
//!
//! Each leg starts a fresh server, replays the same seeded Poisson/Zipf
//! schedule (a fast four-scenario smoke mix) through
//! [`capsule_serve::load`], and records throughput, latency percentiles
//! and the queue-full rate. The v1 leg drives keep-alive newline-JSON
//! connections; the v2 leg pipelines frames. `protocol_overhead_us` is
//! measured separately against the leg's warmed cache, each protocol
//! paying its own client model's per-job cost: v1 one connection per
//! request (what one-shot clients pay), v2 one keep-alive framed
//! connection — the per-job saving the v2 protocol exists to buy.
//!
//! - `--baseline PATH` folds a previous `BENCH_serve.json` in: each
//!   entry gains `baseline_throughput_rps` and `speedup`.
//! - `--compare PATH` gates on a previous `BENCH_serve.json`: prints a
//!   per-entry `throughput_rps` speedup table and exits nonzero if any
//!   entry regressed beyond the `--noise` fraction (default 0.15). The
//!   output file is still written before the gate exits.
//! - `--deterministic` omits every host-timing field so two runs produce
//!   byte-identical JSON, sizes the queue to the job count so nothing is
//!   rejected, and exits nonzero if any load's v1 and v2 report digests
//!   disagree (the cross-protocol parity self-check).
//! - `--flight-off` starts each leg's server with the flight recorder
//!   disabled (`flight: 0`). The flag changes only what the server does,
//!   never what the benchmark writes: the output file is byte-identical
//!   in shape either way, so CI can gate the recorder's overhead by
//!   running with and without it under the same `--compare`/`--noise`
//!   settings (docs/OBSERVABILITY.md).

use capsule_bench::benchfile::{compare_field, read_entry_field, round3};
use capsule_core::output::Json;
use capsule_serve::client::{request_once, Connection, Proto};
use capsule_serve::load::{self, DriveOptions, DriveOutcome};
use capsule_serve::server::{Server, ServerOptions};
use std::time::Instant;

/// Fast catalog subset: every scenario finishes in milliseconds at smoke
/// scale, so the legs measure the serving path rather than the simulator.
const MIX: [&str; 4] =
    ["table1_config", "toolchain_overhead", "fig6_division_tree", "table3_divisions"];

struct Args {
    loads: Vec<f64>,
    jobs: usize,
    connections: usize,
    zipf: f64,
    seed: u64,
    out: String,
    baseline: Option<String>,
    compare: Option<String>,
    noise: f64,
    overhead_probes: usize,
    deterministic: bool,
    flight_off: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        loads: vec![40.0, 160.0],
        jobs: 60,
        connections: 2,
        zipf: 0.8,
        seed: 1,
        out: "BENCH_serve.json".to_string(),
        baseline: None,
        compare: None,
        noise: 0.15,
        overhead_probes: 100,
        deterministic: false,
        flight_off: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        let bad = |flag: &str, v: &str| -> ! {
            eprintln!("{flag} got unparsable value {v:?}");
            std::process::exit(2);
        };
        match a.as_str() {
            "--loads" => {
                let v = value("--loads");
                args.loads = v
                    .split(',')
                    .map(|s| {
                        let r: f64 = s.trim().parse().unwrap_or_else(|_| bad("--loads", &v));
                        if r <= 0.0 {
                            bad("--loads", &v);
                        }
                        r
                    })
                    .collect();
            }
            "--jobs" => {
                let v = value("--jobs");
                args.jobs = v.parse().unwrap_or_else(|_| bad("--jobs", &v));
            }
            "--connections" => {
                let v = value("--connections");
                args.connections = v.parse().unwrap_or_else(|_| bad("--connections", &v));
            }
            "--zipf" => {
                let v = value("--zipf");
                args.zipf = v.parse().unwrap_or_else(|_| bad("--zipf", &v));
            }
            "--seed" => {
                let v = value("--seed");
                args.seed = v.parse().unwrap_or_else(|_| bad("--seed", &v));
            }
            "--out" => args.out = value("--out"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--compare" => args.compare = Some(value("--compare")),
            "--noise" => {
                let v = value("--noise");
                args.noise = v.parse().unwrap_or_else(|_| bad("--noise", &v));
            }
            "--overhead-probes" => {
                let v = value("--overhead-probes");
                args.overhead_probes = v.parse().unwrap_or_else(|_| bad("--overhead-probes", &v));
            }
            "--deterministic" => args.deterministic = true,
            "--flight-off" => args.flight_off = true,
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

struct Leg {
    entry: String,
    proto: Proto,
    offered_rps: f64,
    outcome: DriveOutcome,
    overhead_us: Option<f64>,
}

fn run_line(scenario: &str) -> String {
    format!(r#"{{"op":"run","scenario":"{scenario}","scale":"smoke"}}"#)
}

/// One offered-load leg against its own fresh server: replay the seeded
/// schedule, then (timed mode) probe per-job protocol overhead against
/// the now-warm cache.
fn run_leg(args: &Args, rate: f64, proto: Proto) -> Leg {
    let opts = ServerOptions {
        // Deterministic legs must never hit backpressure: a queue-full
        // rejection depends on host timing and would change the digest.
        queue: if args.deterministic { args.jobs.max(16) } else { ServerOptions::default().queue },
        flight: if args.flight_off { 0 } else { ServerOptions::default().flight },
        ..ServerOptions::default()
    };
    let server = Server::start("127.0.0.1:0", opts).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        std::process::exit(1);
    });
    let addr = server.local_addr().to_string();

    let plan = load::schedule(args.seed, args.jobs, rate, args.zipf, MIX.len());
    let lines: Vec<String> = plan.iter().map(|j| run_line(MIX[j.scenario_index])).collect();
    let options = DriveOptions {
        proto,
        connections: args.connections,
        deterministic: args.deterministic,
        read_timeout: None,
    };
    let outcome = load::drive(&addr, &plan, &lines, &options).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });

    let overhead_us =
        (!args.deterministic).then(|| measure_overhead(&addr, proto, args.overhead_probes));
    server.shutdown();
    Leg {
        entry: format!("load{rate:.0}_{}", proto.name()),
        proto,
        offered_rps: rate,
        outcome,
        overhead_us,
    }
}

/// Mean round-trip for a cache-hit request, each protocol paying its own
/// client model's per-job cost (v1: fresh connection per request, v2:
/// keep-alive framed connection).
fn measure_overhead(addr: &str, proto: Proto, probes: usize) -> f64 {
    let line = run_line(MIX[0]);
    // Make sure the probe scenario is cached even if the Zipf draw
    // skipped it, so every probe is a pure protocol round-trip.
    let _ = request_once(addr, &line);
    let mut conn = match proto {
        Proto::V1 => None,
        Proto::V2 => Some(Connection::connect_with(addr, proto).unwrap_or_else(|e| {
            eprintln!("overhead probe cannot connect to {addr}: {e}");
            std::process::exit(1);
        })),
    };
    let start = Instant::now();
    for _ in 0..probes {
        let reply = match conn.as_mut() {
            Some(c) => c.request(&line).map_err(|e| e.to_string()),
            None => request_once(addr, &line).map_err(|e| e.to_string()),
        };
        match reply {
            Ok(json) if json.get("ok").and_then(Json::as_bool) == Some(true) => {}
            Ok(json) => {
                eprintln!("overhead probe failed: {}", json.to_string_compact());
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("overhead probe failed: {e}");
                std::process::exit(1);
            }
        }
    }
    start.elapsed().as_secs_f64() * 1e6 / probes.max(1) as f64
}

fn main() {
    let args = parse_args();
    println!(
        "server throughput, {} jobs/leg over {} scenario(s), zipf {}, seed {}{}\n",
        args.jobs,
        MIX.len(),
        args.zipf,
        args.seed,
        if args.flight_off { " (flight recorder off)" } else { "" }
    );
    if args.deterministic {
        println!(
            "  {:<14} {:>9} {:>5} {:>7} {:>7}  digest",
            "entry", "offered", "ok", "q-full", "errors"
        );
    } else {
        println!(
            "  {:<14} {:>9} {:>5} {:>7} {:>7} {:>9} {:>9} {:>9} {:>12}",
            "entry", "offered", "ok", "q-full", "errors", "rps", "p50 us", "p99 us", "overhead us"
        );
    }

    let mut legs: Vec<Leg> = Vec::new();
    let mut parity_failures = 0usize;
    for &rate in &args.loads {
        let v1 = run_leg(&args, rate, Proto::V1);
        let v2 = run_leg(&args, rate, Proto::V2);
        if args.deterministic && v1.outcome.report_digest != v2.outcome.report_digest {
            eprintln!(
                "parity failure at load {rate}: v1 digest {:016x} != v2 digest {:016x}",
                v1.outcome.report_digest, v2.outcome.report_digest
            );
            parity_failures += 1;
        }
        for leg in [v1, v2] {
            let o = &leg.outcome;
            if args.deterministic {
                println!(
                    "  {:<14} {:>9.0} {:>5} {:>7} {:>7}  {:016x}",
                    leg.entry, leg.offered_rps, o.ok, o.queue_full, o.errors, o.report_digest
                );
            } else {
                let secs = o.wall.as_secs_f64().max(1e-9);
                println!(
                    "  {:<14} {:>9.0} {:>5} {:>7} {:>7} {:>9.0} {:>9} {:>9} {:>12.1}",
                    leg.entry,
                    leg.offered_rps,
                    o.ok,
                    o.queue_full,
                    o.errors,
                    o.ok as f64 / secs,
                    o.latency_percentile_us(50.0),
                    o.latency_percentile_us(99.0),
                    leg.overhead_us.unwrap_or(0.0)
                );
            }
            legs.push(leg);
        }
    }

    let baseline = args.baseline.as_deref().map(|p| read_entry_field(p, "throughput_rps"));
    let mut root = Json::object();
    root.push("schema", "capsule-bench-serve/1");
    root.push("jobs", args.jobs).push("zipf", args.zipf).push("seed", args.seed);
    let mut rows = Vec::with_capacity(legs.len());
    for leg in &legs {
        let o = &leg.outcome;
        let mut row = Json::object();
        row.push("entry", leg.entry.as_str())
            .push("proto", leg.proto.name())
            .push("offered_rps", leg.offered_rps)
            .push("ok", o.ok)
            .push("queue_full", o.queue_full)
            .push("errors", o.errors);
        if args.deterministic {
            row.push("digest", format!("{:016x}", o.report_digest).as_str());
        } else {
            let secs = o.wall.as_secs_f64().max(1e-9);
            row.push("wall_ms", round3(o.wall.as_secs_f64() * 1e3))
                .push("throughput_rps", round3(o.ok as f64 / secs))
                .push("p50_us", o.latency_percentile_us(50.0))
                .push("p99_us", o.latency_percentile_us(99.0))
                .push("queue_full_rate", round3(o.queue_full_rate()))
                .push("protocol_overhead_us", round3(leg.overhead_us.unwrap_or(0.0)));
            if let Some(base) = &baseline {
                if let Some((_, base_rps)) = base.iter().find(|(n, _)| *n == leg.entry) {
                    let rps = o.ok as f64 / secs;
                    row.push("baseline_throughput_rps", round3(*base_rps))
                        .push("speedup", round3(rps / base_rps.max(1e-9)));
                }
            }
        }
        rows.push(row);
    }
    root.push("entries", Json::Array(rows));
    std::fs::write(&args.out, root.to_string_pretty()).expect("write BENCH_serve.json");
    println!("\nwrote {}", args.out);

    if parity_failures > 0 {
        eprintln!("{parity_failures} load(s) failed v1/v2 digest parity");
        std::process::exit(1);
    }
    if let Some(path) = &args.compare {
        let current: Vec<(String, f64)> = legs
            .iter()
            .map(|l| {
                let secs = l.outcome.wall.as_secs_f64().max(1e-9);
                (l.entry.clone(), l.outcome.ok as f64 / secs)
            })
            .collect();
        if compare_field(path, "throughput_rps", "rps", args.noise, &current) > 0 {
            std::process::exit(1);
        }
    }
}
