//! `capsule-serve`: a long-running simulation job server over the shared
//! scenario catalog.
//!
//! The server speaks two protocols over TCP (std::net only, no external
//! dependencies), negotiated from the first byte on the wire:
//!
//! - `capsule-serve/1` — newline-delimited JSON, one request per
//!   round-trip (fully preserved for backward compatibility);
//! - `capsule-serve/2` — length-prefixed binary frames ([`frame`]) with
//!   per-connection pipelining: many in-flight requests per socket,
//!   responses tagged by id and allowed out of order.
//!
//! A request names a [`capsule_bench::catalog`] scenario plus optional
//! machine-config overrides and a cycle budget; the response carries the
//! same `capsule-bench-report/1` object the evaluation binaries emit,
//! plus job metadata (queue wait, run time, cache hit), and renders
//! byte-identically over both protocols.
//!
//! Three properties matter and are tested end to end:
//!
//! - **Backpressure**: a bounded queue feeds the worker pool; when it is
//!   full, clients get a structured `queue-full` rejection immediately.
//! - **Cancellation**: operator `cancel` (and shutdown) trips a
//!   [`capsule_sim::CancelToken`] polled in the machine's cycle loop, so
//!   in-flight jobs stop promptly with a `cancelled` response.
//! - **Determinism**: reports contain only simulated quantities, so a
//!   result-cache hit returns the byte-identical report.
//!
//! See docs/SERVER.md for the wire schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod env;
pub mod frame;
pub mod load;
pub mod protocol;
pub mod server;

pub use cache::ResultCache;
pub use client::{
    probe, request_once, request_once_with, ClientError, Connection, ConnectionPool, Proto,
};
pub use client::{PooledConnection, ServerProbe};
pub use protocol::{ConfigOverrides, Request, RequestError, RunRequest, SCHEMA};
pub use server::{Server, ServerOptions};
