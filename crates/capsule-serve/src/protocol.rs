//! The `capsule-serve/1` wire protocol: newline-delimited JSON requests
//! and responses over TCP.
//!
//! A client sends one JSON object per line and reads one JSON object per
//! line back, in order. Requests are strict: unknown operations, unknown
//! fields and ill-typed values are rejected with a `bad-request`
//! response rather than guessed at, because the canonical form of a run
//! request doubles as the result-cache key (see [`RunRequest::canonical`]
//! and docs/SERVER.md).

use capsule_bench::catalog::{self, Scale};
use capsule_core::config::{DivisionMode, MachineConfig};
use capsule_core::output::Json;

/// Schema tag carried by every response.
pub const SCHEMA: &str = "capsule-serve/1";

/// The common response prefix: schema tag, echoed op, and `ok`.
pub fn response_head(op: &str, ok: bool) -> Json {
    let mut r = Json::object();
    r.push("schema", SCHEMA).push("op", op).push("ok", ok);
    r
}

/// An `ok:false` response carrying a stable `error` code and an optional
/// human-readable `detail`.
pub fn error_response(op: &str, error: &str, detail: Option<&str>) -> Json {
    let mut r = response_head(op, false);
    r.push("error", error);
    if let Some(d) = detail {
        r.push("detail", d);
    }
    r
}

/// The `list` response: supported scales plus the scenario catalog.
/// Served identically by a single server and by the fleet coordinator —
/// both expose the same catalog, so clients need not care which they
/// reached.
pub fn list_response() -> Json {
    let mut scenarios = Vec::new();
    for e in catalog::entries() {
        let mut s = Json::object();
        s.push("name", e.name).push("title", e.title).push("about", e.about);
        scenarios.push(s);
    }
    let mut r = response_head("list", true);
    r.push("scales", Json::Array(vec!["smoke".into(), "quick".into(), "full".into()]))
        .push("scenarios", Json::Array(scenarios));
    r
}

/// A request the server failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// What was wrong, for the `detail` field of the error response.
    pub message: String,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RequestError {}

fn bad(message: impl Into<String>) -> RequestError {
    RequestError { message: message.into() }
}

/// Machine-configuration overrides of a run request, applied on top of
/// each scenario's own configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfigOverrides {
    /// Hardware context count.
    pub contexts: Option<usize>,
    /// Death-rate throttle window, in cycles.
    pub death_window: Option<u64>,
    /// Swap-out counter threshold.
    pub swap_counter_threshold: Option<i64>,
    /// Division policy.
    pub division_mode: Option<DivisionMode>,
}

impl ConfigOverrides {
    /// True when no field is overridden.
    pub fn is_empty(&self) -> bool {
        *self == ConfigOverrides::default()
    }

    /// Applies the overridden fields to `cfg`.
    pub fn apply(&self, cfg: &mut MachineConfig) {
        if let Some(v) = self.contexts {
            cfg.contexts = v;
        }
        if let Some(v) = self.death_window {
            cfg.death_window = v;
        }
        if let Some(v) = self.swap_counter_threshold {
            cfg.swap_counter_threshold = v;
        }
        if let Some(v) = self.division_mode {
            cfg.division_mode = v;
        }
    }
}

fn division_mode_name(mode: DivisionMode) -> &'static str {
    match mode {
        DivisionMode::Never => "never",
        DivisionMode::Greedy => "greedy",
        DivisionMode::GreedyThrottled => "greedy_throttled",
    }
}

/// Validates a `trace_id` value: a non-empty string of at most 128
/// visible characters (no control characters), so ids are safe to echo
/// in responses, logs and metrics labels.
fn parse_trace_id(v: &Json) -> Result<String, RequestError> {
    let s = v.as_str().ok_or_else(|| bad("\"trace_id\" must be a string"))?;
    if s.is_empty() {
        return Err(bad("\"trace_id\" must not be empty"));
    }
    if s.chars().count() > 128 {
        return Err(bad("\"trace_id\" must be at most 128 characters"));
    }
    if s.chars().any(char::is_control) {
        return Err(bad("\"trace_id\" must not contain control characters"));
    }
    Ok(s.to_string())
}

/// Validates a `health` affinity key: same shape rules as a trace id
/// (non-empty, at most 128 visible characters). The key is only hashed
/// for rendezvous ordering, so any printable string is meaningful.
fn parse_health_key(v: &Json) -> Result<String, RequestError> {
    let s = v.as_str().ok_or_else(|| bad("\"key\" must be a string"))?;
    if s.is_empty() {
        return Err(bad("\"key\" must not be empty"));
    }
    if s.chars().count() > 128 {
        return Err(bad("\"key\" must be at most 128 characters"));
    }
    if s.chars().any(char::is_control) {
        return Err(bad("\"key\" must not contain control characters"));
    }
    Ok(s.to_string())
}

fn parse_division_mode(s: &str) -> Option<DivisionMode> {
    match s {
        "never" => Some(DivisionMode::Never),
        "greedy" => Some(DivisionMode::Greedy),
        "greedy_throttled" => Some(DivisionMode::GreedyThrottled),
        _ => None,
    }
}

/// A fully validated `run` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRequest {
    /// Catalog entry name (validated to exist).
    pub scenario: String,
    /// Data-set scale.
    pub scale: Scale,
    /// Per-run cycle budget.
    pub budget: u64,
    /// Machine-configuration overrides.
    pub overrides: ConfigOverrides,
    /// Client-chosen trace id: when present the server records a span
    /// tree for this job, retrievable via the `trace` op. Observation
    /// only — deliberately **excluded** from [`RunRequest::canonical`],
    /// so traced and untraced requests for the same work share one
    /// cache entry and one fleet affinity target.
    pub trace_id: Option<String>,
    /// Return the per-stage [`capsule_sim::StageProfile`] alongside the
    /// report. Also excluded from the canonical form; a profiled request
    /// bypasses the cache lookup (the profile must come from a real run)
    /// but still stores its byte-identical report for later hits.
    pub profile: bool,
    /// Resume a previously preempted job from its stored checkpoint:
    /// the 16-hex checkpoint token (equal to the job's `cache_key`).
    /// Excluded from the canonical form — a resumed run does the same
    /// work as a fresh one and produces byte-identical report bytes, so
    /// it must share the same cache entry and fleet affinity target.
    pub resume_from: Option<String>,
}

impl RunRequest {
    /// The canonical compact-JSON form of the request: field order is
    /// fixed, defaults are resolved, and absent overrides are omitted,
    /// so two requests for the same work render to the same bytes. This
    /// string keys the server's result cache; its FNV-1a hash is the
    /// `cache_key` reported to clients.
    ///
    /// Observability and resumption fields (`trace_id`, `profile`,
    /// `resume_from`) never appear here: they do not change the work, so
    /// they must not change the key. In particular a resumed run hashes
    /// to the same `cache_key` as the original — that key *is* the
    /// checkpoint token.
    pub fn canonical(&self) -> String {
        let mut root = Json::object();
        root.push("op", "run")
            .push("scenario", self.scenario.as_str())
            .push("scale", self.scale.name())
            .push("budget", self.budget);
        if !self.overrides.is_empty() {
            let mut cfg = Json::object();
            if let Some(v) = self.overrides.contexts {
                cfg.push("contexts", v);
            }
            if let Some(v) = self.overrides.death_window {
                cfg.push("death_window", v);
            }
            if let Some(v) = self.overrides.swap_counter_threshold {
                cfg.push("swap_counter_threshold", v);
            }
            if let Some(v) = self.overrides.division_mode {
                cfg.push("division_mode", division_mode_name(v));
            }
            root.push("config", cfg);
        }
        root.to_string_compact()
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run a catalog scenario batch.
    Run(RunRequest),
    /// Server counters and latency histograms.
    Stats,
    /// The scenario catalog.
    List,
    /// Cancel every in-flight job.
    Cancel,
    /// Stop accepting work and shut the server down.
    Shutdown,
    /// The recorded span tree of a traced job (see
    /// [`RunRequest::trace_id`]).
    Trace {
        /// The id the job was submitted with.
        trace_id: String,
    },
    /// The deterministic metrics exposition (docs/OBSERVABILITY.md).
    Metrics,
    /// Health gauges: EWMA latencies, occupancy and the deterministic
    /// `predicted_wait_us` estimator. On the fleet coordinator this
    /// ranks the backends (optionally rendezvous-adjusted for `key`).
    Health {
        /// Optional cache key / affinity key: the fleet breaks
        /// predicted-wait ties by rendezvous preference for this key.
        key: Option<String>,
    },
    /// The `capsule-dump/1` post-mortem artifact: flight ring, retained
    /// traces, gauges and counters in one versioned JSON object.
    Dump,
    /// Park the running job with this `cache_key` at its next checkpoint
    /// boundary; the parked blob lands in the server's checkpoint store
    /// under the same token.
    Preempt {
        /// The `cache_key` the job was admitted under.
        cache_key: String,
    },
    /// Retrieve a stored checkpoint blob (the fleet uses this to migrate
    /// a parked job off a pressured backend).
    CheckpointFetch {
        /// Checkpoint token (= the job's `cache_key`).
        token: String,
    },
    /// Insert a checkpoint blob fetched from another server, so a `run`
    /// with `resume_from` can continue the job here.
    CheckpointPut {
        /// Checkpoint token; must equal the FNV-1a hash of `canonical`.
        token: String,
        /// Canonical form of the job the blob belongs to.
        canonical: String,
        /// The checkpoint blob bytes (hex on the wire).
        blob: Vec<u8>,
    },
}

impl Request {
    /// The wire name of this request's op — what the request's `"op"`
    /// field held. The v2 framing layer uses it to cross-check a
    /// frame's op tag against its payload.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Run(_) => "run",
            Request::Stats => "stats",
            Request::List => "list",
            Request::Cancel => "cancel",
            Request::Shutdown => "shutdown",
            Request::Trace { .. } => "trace",
            Request::Metrics => "metrics",
            Request::Health { .. } => "health",
            Request::Dump => "dump",
            Request::Preempt { .. } => "preempt",
            Request::CheckpointFetch { .. } => "checkpoint-fetch",
            Request::CheckpointPut { .. } => "checkpoint-put",
        }
    }
}

/// Validates a checkpoint token / cache key: exactly 16 lowercase hex
/// digits, the rendering of [`fnv1a64`] the server reports.
fn parse_token(field: &str, v: &Json) -> Result<String, RequestError> {
    let s = v.as_str().ok_or_else(|| bad(format!("{field:?} must be a string")))?;
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()) {
        return Err(bad(format!("{field:?} must be 16 lowercase hex digits")));
    }
    Ok(s.to_string())
}

/// Renders bytes as lowercase hex, the wire form of checkpoint blobs.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a lowercase-hex string back into bytes.
///
/// # Errors
///
/// [`RequestError`] on odd length or a non-hex character.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, RequestError> {
    if !s.len().is_multiple_of(2) {
        return Err(bad("hex blob has odd length"));
    }
    let nibble = |b: u8| -> Result<u8, RequestError> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            _ => Err(bad("hex blob contains a non-hex character")),
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

impl Request {
    /// Parses and validates one request line.
    ///
    /// # Errors
    ///
    /// [`RequestError`] with a message suitable for the `detail` field
    /// of a `bad-request` response.
    pub fn parse_line(line: &str) -> Result<Request, RequestError> {
        let json = Json::parse(line).map_err(|e| bad(format!("invalid json: {e}")))?;
        let obj = json.as_object().ok_or_else(|| bad("request must be a json object"))?;
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string field \"op\""))?;
        match op {
            "run" => Request::parse_run(obj, &json),
            "trace" => {
                for (key, _) in obj {
                    if key != "op" && key != "trace_id" {
                        return Err(bad(format!("unknown field {key:?} for op \"trace\"")));
                    }
                }
                let id = json
                    .get("trace_id")
                    .ok_or_else(|| bad("trace requires a string field \"trace_id\""))?;
                Ok(Request::Trace { trace_id: parse_trace_id(id)? })
            }
            "preempt" => {
                for (key, _) in obj {
                    if key != "op" && key != "cache_key" {
                        return Err(bad(format!("unknown field {key:?} for op \"preempt\"")));
                    }
                }
                let key = json
                    .get("cache_key")
                    .ok_or_else(|| bad("preempt requires a string field \"cache_key\""))?;
                Ok(Request::Preempt { cache_key: parse_token("cache_key", key)? })
            }
            "checkpoint-fetch" => {
                for (key, _) in obj {
                    if key != "op" && key != "token" {
                        return Err(bad(format!(
                            "unknown field {key:?} for op \"checkpoint-fetch\""
                        )));
                    }
                }
                let tok = json
                    .get("token")
                    .ok_or_else(|| bad("checkpoint-fetch requires a string field \"token\""))?;
                Ok(Request::CheckpointFetch { token: parse_token("token", tok)? })
            }
            "checkpoint-put" => {
                for (key, _) in obj {
                    match key.as_str() {
                        "op" | "token" | "canonical" | "blob" => {}
                        other => {
                            return Err(bad(format!(
                                "unknown field {other:?} for op \"checkpoint-put\""
                            )))
                        }
                    }
                }
                let tok = json
                    .get("token")
                    .ok_or_else(|| bad("checkpoint-put requires a string field \"token\""))?;
                let token = parse_token("token", tok)?;
                let canonical = json
                    .get("canonical")
                    .and_then(Json::as_str)
                    .filter(|s| !s.is_empty())
                    .ok_or_else(|| {
                        bad("checkpoint-put requires a non-empty string field \"canonical\"")
                    })?
                    .to_string();
                let blob = json
                    .get("blob")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("checkpoint-put requires a hex string field \"blob\""))?;
                Ok(Request::CheckpointPut { token, canonical, blob: hex_decode(blob)? })
            }
            "health" => {
                for (key, _) in obj {
                    if key != "op" && key != "key" {
                        return Err(bad(format!("unknown field {key:?} for op \"health\"")));
                    }
                }
                let key = match json.get("key") {
                    None => None,
                    Some(v) => Some(parse_health_key(v)?),
                };
                Ok(Request::Health { key })
            }
            "stats" | "list" | "cancel" | "shutdown" | "metrics" | "dump" => {
                for (key, _) in obj {
                    if key != "op" {
                        return Err(bad(format!("unknown field {key:?} for op {op:?}")));
                    }
                }
                Ok(match op {
                    "stats" => Request::Stats,
                    "list" => Request::List,
                    "cancel" => Request::Cancel,
                    "metrics" => Request::Metrics,
                    "dump" => Request::Dump,
                    _ => Request::Shutdown,
                })
            }
            other => Err(bad(format!(
                "unknown op {other:?} (expected run, stats, list, cancel, shutdown, trace, \
                 metrics, health, dump, preempt, checkpoint-fetch or checkpoint-put)"
            ))),
        }
    }

    fn parse_run(obj: &[(String, Json)], json: &Json) -> Result<Request, RequestError> {
        for (key, _) in obj {
            match key.as_str() {
                "op" | "scenario" | "scale" | "budget" | "config" | "trace_id" | "profile"
                | "resume_from" => {}
                other => return Err(bad(format!("unknown field {other:?} for op \"run\""))),
            }
        }
        let scenario = json
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("run requires a string field \"scenario\""))?;
        if catalog::find(scenario).is_none() {
            let known: Vec<&str> = catalog::entries().iter().map(|e| e.name).collect();
            return Err(bad(format!(
                "unknown scenario {scenario:?} (catalog: {})",
                known.join(", ")
            )));
        }
        let scale = match json.get("scale") {
            None => Scale::Quick,
            Some(v) => {
                let name = v.as_str().ok_or_else(|| bad("\"scale\" must be a string"))?;
                Scale::parse(name)
                    .ok_or_else(|| bad(format!("unknown scale {name:?} (smoke, quick or full)")))?
            }
        };
        let budget = match json.get("budget") {
            None => capsule_bench::BUDGET,
            Some(v) => {
                let b =
                    v.as_u64().ok_or_else(|| bad("\"budget\" must be a non-negative integer"))?;
                if b == 0 {
                    return Err(bad("\"budget\" must be positive"));
                }
                b
            }
        };
        let overrides = match json.get("config") {
            None => ConfigOverrides::default(),
            Some(cfg) => Self::parse_overrides(cfg)?,
        };
        let trace_id = json.get("trace_id").map(parse_trace_id).transpose()?;
        let profile = match json.get("profile") {
            None => false,
            Some(v) => v.as_bool().ok_or_else(|| bad("\"profile\" must be a boolean"))?,
        };
        let resume_from =
            json.get("resume_from").map(|v| parse_token("resume_from", v)).transpose()?;
        Ok(Request::Run(RunRequest {
            scenario: scenario.to_string(),
            scale,
            budget,
            overrides,
            trace_id,
            profile,
            resume_from,
        }))
    }

    fn parse_overrides(cfg: &Json) -> Result<ConfigOverrides, RequestError> {
        let obj = cfg.as_object().ok_or_else(|| bad("\"config\" must be a json object"))?;
        let mut out = ConfigOverrides::default();
        for (key, value) in obj {
            match key.as_str() {
                "contexts" => {
                    let v = value
                        .as_u64()
                        .filter(|&v| (1..=64).contains(&v))
                        .ok_or_else(|| bad("\"contexts\" must be an integer in 1..=64"))?;
                    out.contexts = Some(v as usize);
                }
                "death_window" => {
                    let v = value
                        .as_u64()
                        .filter(|&v| v > 0)
                        .ok_or_else(|| bad("\"death_window\" must be a positive integer"))?;
                    out.death_window = Some(v);
                }
                "swap_counter_threshold" => {
                    let v = value
                        .as_i64()
                        .ok_or_else(|| bad("\"swap_counter_threshold\" must be an integer"))?;
                    out.swap_counter_threshold = Some(v);
                }
                "division_mode" => {
                    let name =
                        value.as_str().ok_or_else(|| bad("\"division_mode\" must be a string"))?;
                    let mode = parse_division_mode(name).ok_or_else(|| {
                        bad(format!(
                            "unknown division_mode {name:?} (never, greedy or greedy_throttled)"
                        ))
                    })?;
                    out.division_mode = Some(mode);
                }
                other => return Err(bad(format!("unknown config override {other:?}"))),
            }
        }
        Ok(out)
    }
}

/// 64-bit FNV-1a over `bytes`; the reported `cache_key` is this hash of
/// the canonical request string, rendered as 16 hex digits. (The same
/// hash the snapshot format uses — see [`capsule_core::codec::fnv1a64`].)
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    capsule_core::codec::fnv1a64(bytes)
}

/// The 16-hex `cache_key` of a canonical request string — also the
/// job's checkpoint token.
pub fn cache_key(canonical: &str) -> String {
    format!("{:016x}", fnv1a64(canonical.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_run_request() {
        let r = Request::parse_line(r#"{"op":"run","scenario":"table1_config"}"#).unwrap();
        let Request::Run(run) = r else { panic!("expected run") };
        assert_eq!(run.scenario, "table1_config");
        assert_eq!(run.scale, Scale::Quick);
        assert_eq!(run.budget, capsule_bench::BUDGET);
        assert!(run.overrides.is_empty());
    }

    #[test]
    fn parses_a_fully_specified_run_request() {
        let line = r#"{"op":"run","scenario":"fig6_division_tree","scale":"smoke","budget":5000,
            "config":{"contexts":4,"death_window":256,"swap_counter_threshold":128,
                      "division_mode":"greedy"}}"#
            .replace('\n', " ");
        let Request::Run(run) = Request::parse_line(&line).unwrap() else { panic!("run") };
        assert_eq!(run.scale, Scale::Smoke);
        assert_eq!(run.budget, 5000);
        assert_eq!(run.overrides.contexts, Some(4));
        assert_eq!(run.overrides.death_window, Some(256));
        assert_eq!(run.overrides.swap_counter_threshold, Some(128));
        assert_eq!(run.overrides.division_mode, Some(DivisionMode::Greedy));
    }

    #[test]
    fn canonical_form_resolves_defaults_and_field_order() {
        let a = Request::parse_line(r#"{"op":"run","scenario":"table1_config"}"#).unwrap();
        let b = Request::parse_line(&format!(
            r#"{{"scale":"quick","scenario":"table1_config","op":"run","budget":{}}}"#,
            capsule_bench::BUDGET
        ))
        .unwrap();
        let (Request::Run(a), Request::Run(b)) = (a, b) else { panic!("runs") };
        assert_eq!(a.canonical(), b.canonical());
        assert!(a.canonical().contains("\"budget\""));
        // No overrides -> no config object in the canonical form.
        assert!(!a.canonical().contains("\"config\""));
    }

    #[test]
    fn canonical_form_distinguishes_different_work() {
        let parse = |line: &str| {
            let Request::Run(r) = Request::parse_line(line).unwrap() else { panic!("run") };
            r
        };
        let base = parse(r#"{"op":"run","scenario":"table1_config","scale":"smoke"}"#);
        let other_scale = parse(r#"{"op":"run","scenario":"table1_config","scale":"quick"}"#);
        let other_cfg = parse(
            r#"{"op":"run","scenario":"table1_config","scale":"smoke","config":{"contexts":4}}"#,
        );
        assert_ne!(base.canonical(), other_scale.canonical());
        assert_ne!(base.canonical(), other_cfg.canonical());
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("nonsense", "invalid json"),
            ("[1,2]", "must be a json object"),
            (r#"{"scenario":"table1_config"}"#, "missing string field"),
            (r#"{"op":"fly"}"#, "unknown op"),
            (r#"{"op":"run"}"#, "requires a string field \"scenario\""),
            (r#"{"op":"run","scenario":"nope"}"#, "unknown scenario"),
            (r#"{"op":"run","scenario":"table1_config","scale":"huge"}"#, "unknown scale"),
            (r#"{"op":"run","scenario":"table1_config","budget":0}"#, "must be positive"),
            (r#"{"op":"run","scenario":"table1_config","budget":-4}"#, "non-negative"),
            (r#"{"op":"run","scenario":"table1_config","turbo":true}"#, "unknown field"),
            (
                r#"{"op":"run","scenario":"table1_config","config":{"fetch_width":9}}"#,
                "unknown config override",
            ),
            (r#"{"op":"run","scenario":"table1_config","config":{"contexts":0}}"#, "in 1..=64"),
            (
                r#"{"op":"run","scenario":"table1_config","config":{"division_mode":"evil"}}"#,
                "unknown division_mode",
            ),
            (r#"{"op":"stats","extra":1}"#, "unknown field"),
            (r#"{"op":"metrics","extra":1}"#, "unknown field"),
            (r#"{"op":"run","scenario":"table1_config","trace_id":7}"#, "must be a string"),
            (r#"{"op":"run","scenario":"table1_config","trace_id":""}"#, "must not be empty"),
            (r#"{"op":"run","scenario":"table1_config","profile":"yes"}"#, "must be a boolean"),
            (r#"{"op":"trace"}"#, "requires a string field \"trace_id\""),
            (r#"{"op":"trace","trace_id":"t","scale":"smoke"}"#, "unknown field"),
            (r#"{"op":"trace","trace_id":"a\nb"}"#, "control characters"),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert!(err.message.contains(needle), "{line}: {}", err.message);
        }
        // Over-long ids are rejected too.
        let long = "x".repeat(129);
        let err = Request::parse_line(&format!(r#"{{"op":"trace","trace_id":"{long}"}}"#))
            .expect_err("long id");
        assert!(err.message.contains("at most 128"), "{}", err.message);
    }

    #[test]
    fn parses_trace_and_metrics_ops() {
        assert_eq!(
            Request::parse_line(r#"{"op":"trace","trace_id":"job-42"}"#).unwrap(),
            Request::Trace { trace_id: "job-42".to_string() }
        );
        assert_eq!(Request::parse_line(r#"{"op":"metrics"}"#).unwrap(), Request::Metrics);
    }

    #[test]
    fn parses_health_and_dump_ops() {
        assert_eq!(
            Request::parse_line(r#"{"op":"health"}"#).unwrap(),
            Request::Health { key: None }
        );
        assert_eq!(
            Request::parse_line(r#"{"op":"health","key":"b51742894a5ff828"}"#).unwrap(),
            Request::Health { key: Some("b51742894a5ff828".to_string()) }
        );
        assert_eq!(Request::parse_line(r#"{"op":"dump"}"#).unwrap(), Request::Dump);
        assert_eq!(Request::Health { key: None }.op(), "health");
        assert_eq!(Request::Dump.op(), "dump");
        for (line, needle) in [
            (r#"{"op":"health","key":""}"#, "must not be empty"),
            (r#"{"op":"health","key":7}"#, "must be a string"),
            (r#"{"op":"health","cache_key":"x"}"#, "unknown field"),
            (r#"{"op":"dump","deep":true}"#, "unknown field"),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert!(err.message.contains(needle), "{line}: {}", err.message);
        }
    }

    #[test]
    fn observability_fields_do_not_change_the_canonical_form() {
        // trace_id and profile are observation-only: two requests for the
        // same work must share a cache entry regardless of them.
        let parse = |line: &str| {
            let Request::Run(r) = Request::parse_line(line).unwrap() else { panic!("run") };
            r
        };
        let plain = parse(r#"{"op":"run","scenario":"table1_config","scale":"smoke"}"#);
        let traced = parse(
            r#"{"op":"run","scenario":"table1_config","scale":"smoke","trace_id":"t1","profile":true}"#,
        );
        assert_eq!(traced.trace_id.as_deref(), Some("t1"));
        assert!(traced.profile);
        assert_eq!(plain.canonical(), traced.canonical());
        assert!(!traced.canonical().contains("trace_id"));
        assert!(!traced.canonical().contains("profile"));
    }

    #[test]
    fn overrides_apply_onto_a_config() {
        let mut cfg = MachineConfig::table1_somt();
        let o = ConfigOverrides {
            contexts: Some(4),
            death_window: Some(512),
            swap_counter_threshold: Some(64),
            division_mode: Some(DivisionMode::Greedy),
        };
        o.apply(&mut cfg);
        assert_eq!(cfg.contexts, 4);
        assert_eq!(cfg.death_window, 512);
        assert_eq!(cfg.swap_counter_threshold, 64);
        assert_eq!(cfg.division_mode, DivisionMode::Greedy);
    }

    #[test]
    fn cache_key_is_stable_across_field_ordering() {
        // The same work spelled with every field order (and override
        // order) must canonicalise — and therefore hash — identically,
        // or the result caches (server LRU, fleet affinity) go cold on
        // spelling differences.
        let spellings = [
            r#"{"op":"run","scenario":"fig7_throttling","scale":"smoke","budget":9000,
                "config":{"contexts":4,"division_mode":"greedy"}}"#,
            r#"{"scale":"smoke","config":{"division_mode":"greedy","contexts":4},
                "budget":9000,"scenario":"fig7_throttling","op":"run"}"#,
            r#"{"budget":9000,"op":"run","config":{"contexts":4,"division_mode":"greedy"},
                "scenario":"fig7_throttling","scale":"smoke"}"#,
        ];
        let keys: Vec<String> = spellings
            .iter()
            .map(|s| {
                let line = s.replace('\n', " ");
                let Request::Run(run) = Request::parse_line(&line).unwrap() else { panic!("run") };
                format!("{:016x}", fnv1a64(run.canonical().as_bytes()))
            })
            .collect();
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[0], keys[2]);
        // Regression pin: this is the wire `cache_key` deployed clients
        // and fleet routing rely on. Changing the canonical rendering
        // invalidates every warm cache — do it knowingly or not at all.
        assert_eq!(keys[0], "b51742894a5ff828");
    }

    #[test]
    fn parses_checkpoint_ops() {
        assert_eq!(
            Request::parse_line(r#"{"op":"preempt","cache_key":"b51742894a5ff828"}"#).unwrap(),
            Request::Preempt { cache_key: "b51742894a5ff828".to_string() }
        );
        assert_eq!(
            Request::parse_line(r#"{"op":"checkpoint-fetch","token":"b51742894a5ff828"}"#).unwrap(),
            Request::CheckpointFetch { token: "b51742894a5ff828".to_string() }
        );
        let put = Request::parse_line(
            r#"{"op":"checkpoint-put","token":"b51742894a5ff828","canonical":"{}","blob":"00ff10"}"#,
        )
        .unwrap();
        assert_eq!(
            put,
            Request::CheckpointPut {
                token: "b51742894a5ff828".to_string(),
                canonical: "{}".to_string(),
                blob: vec![0x00, 0xff, 0x10],
            }
        );
    }

    #[test]
    fn rejects_malformed_checkpoint_ops() {
        for (line, needle) in [
            (r#"{"op":"preempt"}"#, "requires a string field \"cache_key\""),
            (r#"{"op":"preempt","cache_key":"short"}"#, "16 lowercase hex"),
            (r#"{"op":"preempt","cache_key":"B51742894A5FF828"}"#, "16 lowercase hex"),
            (r#"{"op":"preempt","cache_key":"b51742894a5ff828","x":1}"#, "unknown field"),
            (r#"{"op":"checkpoint-fetch"}"#, "requires a string field \"token\""),
            (r#"{"op":"checkpoint-fetch","token":7}"#, "must be a string"),
            (r#"{"op":"checkpoint-put","token":"b51742894a5ff828"}"#, "canonical"),
            (
                r#"{"op":"checkpoint-put","token":"b51742894a5ff828","canonical":"{}","blob":"0g"}"#,
                "non-hex",
            ),
            (
                r#"{"op":"checkpoint-put","token":"b51742894a5ff828","canonical":"{}","blob":"0"}"#,
                "odd length",
            ),
            (r#"{"op":"run","scenario":"table1_config","resume_from":"xyz"}"#, "16 lowercase hex"),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert!(err.message.contains(needle), "{line}: {}", err.message);
        }
    }

    #[test]
    fn resume_from_does_not_change_the_canonical_form() {
        let parse = |line: &str| {
            let Request::Run(r) = Request::parse_line(line).unwrap() else { panic!("run") };
            r
        };
        let plain = parse(r#"{"op":"run","scenario":"table1_config","scale":"smoke"}"#);
        let resumed = parse(
            r#"{"op":"run","scenario":"table1_config","scale":"smoke","resume_from":"b51742894a5ff828"}"#,
        );
        assert_eq!(resumed.resume_from.as_deref(), Some("b51742894a5ff828"));
        assert_eq!(plain.canonical(), resumed.canonical());
        assert!(!resumed.canonical().contains("resume_from"));
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex.len(), 512);
        assert_eq!(hex_decode(&hex).unwrap(), bytes);
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("zz").is_err());
        assert!(hex_decode("abc").is_err());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
