//! Open-loop load generation: Poisson arrival schedules with Zipf
//! scenario popularity, and a driver that replays a schedule against a
//! server over either wire protocol.
//!
//! Closed-loop load (what `capsule-loadgen` did exclusively before this
//! module) measures a server that is never offered more work than it
//! has just finished — latency under load is invisible. The open-loop
//! shape here offers work at a *fixed rate* regardless of completions:
//! arrivals are Poisson (exponential inter-arrival times at `rate`
//! requests/second) and each arrival picks a scenario by Zipf rank, so
//! a few scenarios dominate the way a real job mix does and the result
//! cache sees realistic skew. Everything is seeded through
//! [`capsule_core::rng`], so a schedule is a pure function of
//! `(seed, jobs, rate, zipf_s, scenarios)`.
//!
//! [`drive`] replays a schedule over `capsule-serve/2` (a few pipelined
//! connections, a submitter and a collector thread each) or
//! `capsule-serve/1` (keep-alive connections, one in-flight request
//! each — the protocol cannot pipeline, which is exactly the difference
//! `bench_serve` exists to measure). In deterministic mode pacing and
//! timing are skipped and the outcome carries an order-insensitive
//! digest of the report bytes, so two runs — or a v1 and a v2 run — of
//! the same schedule must produce byte-identical work.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use capsule_core::codec::Fnv64;
use capsule_core::output::Json;
use capsule_core::rng::{Rng, Xoshiro256StarStar};

use crate::client::{ClientError, Connection, Proto};

/// One scheduled arrival: when to submit (microseconds from the start
/// of the run) and which scenario the request names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopJob {
    /// Submission time, microseconds from schedule start.
    pub at_us: u64,
    /// Index into the caller's scenario list (0 = most popular rank).
    pub scenario_index: usize,
}

/// Builds a deterministic open-loop schedule: `jobs` Poisson arrivals
/// at `rate` requests/second, each naming one of `scenarios` scenarios
/// drawn from a Zipf distribution with exponent `zipf_s` (0 = uniform;
/// larger = more skew toward index 0).
///
/// # Panics
///
/// Panics when `rate` is not finite-positive or `scenarios` is 0.
pub fn schedule(
    seed: u64,
    jobs: usize,
    rate: f64,
    zipf_s: f64,
    scenarios: usize,
) -> Vec<OpenLoopJob> {
    assert!(rate.is_finite() && rate > 0.0, "offered load must be positive, got {rate}");
    assert!(scenarios > 0, "schedule needs at least one scenario");
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    // Zipf CDF over ranks 1..=scenarios: weight(k) = k^-s.
    let mut cdf = Vec::with_capacity(scenarios);
    let mut total = 0.0f64;
    for k in 1..=scenarios {
        total += (k as f64).powf(-zipf_s);
        cdf.push(total);
    }
    let mut at = 0.0f64; // microseconds, accumulated exactly once per job
    let mut out = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        // Exponential inter-arrival: -ln(1-u)/rate seconds. unit_f64 is
        // in [0,1), so 1-u is in (0,1] and the log is finite.
        let u = rng.unit_f64();
        at += -(1.0 - u).ln() / rate * 1_000_000.0;
        let draw = rng.unit_f64() * total;
        let scenario_index = cdf.partition_point(|&c| c < draw).min(scenarios - 1);
        out.push(OpenLoopJob { at_us: at as u64, scenario_index });
    }
    out
}

/// How [`drive`] should replay a schedule.
#[derive(Debug, Clone)]
pub struct DriveOptions {
    /// Wire protocol for every connection.
    pub proto: Proto,
    /// Concurrent connections (v2: each pipelined; v1: each keep-alive
    /// with one request in flight). Clamped to at least 1.
    pub connections: usize,
    /// Skip pacing and wall-clock measurement; the outcome then carries
    /// only counts and the report digest, and must be byte-reproducible.
    pub deterministic: bool,
    /// Per-response read timeout (`None` waits forever).
    pub read_timeout: Option<Duration>,
}

/// What replaying a schedule produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriveOutcome {
    /// Responses with `ok:true`.
    pub ok: u64,
    /// Structured `queue-full` rejections (the backpressure signal the
    /// open-loop mode exists to provoke).
    pub queue_full: u64,
    /// Transport faults plus structured errors other than `queue-full`.
    pub errors: u64,
    /// Of the ok responses, how many were result-cache hits.
    pub cache_hits: u64,
    /// Per-job latency, submit to response, in submission order. Empty
    /// in deterministic mode.
    pub latencies_us: Vec<u64>,
    /// Wall-clock time for the whole replay. Zero in deterministic mode.
    pub wall: Duration,
    /// FNV-1a digest over every response's report bytes (with the job
    /// index), folded order-insensitively so pipelined completion order
    /// cannot change it. Two replays of one schedule — on either
    /// protocol — must agree.
    pub report_digest: u64,
}

impl DriveOutcome {
    /// Latency percentile `p` in [0,100] over the recorded latencies,
    /// or 0 when none were recorded.
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Fraction of jobs answered `queue-full`.
    pub fn queue_full_rate(&self) -> f64 {
        let total = self.ok + self.queue_full + self.errors;
        if total == 0 {
            0.0
        } else {
            self.queue_full as f64 / total as f64
        }
    }

    fn absorb_response(&mut self, job_index: usize, response: &Json) {
        let ok = response.get("ok").and_then(Json::as_bool) == Some(true);
        if ok {
            self.ok += 1;
            if response.get("cache_hit").and_then(Json::as_bool) == Some(true) {
                self.cache_hits += 1;
            }
        } else if response.get("error").and_then(Json::as_str) == Some("queue-full") {
            self.queue_full += 1;
        } else {
            self.errors += 1;
        }
        // Digest the report bytes (or the structured error name) keyed
        // by job index; XOR-fold so arrival order is irrelevant.
        let mut h = Fnv64::new();
        h.write_u64(job_index as u64);
        match response.get("report") {
            Some(report) => h.write(report.to_string_compact().as_bytes()),
            None => h.write(
                response.get("error").and_then(Json::as_str).unwrap_or("no-report").as_bytes(),
            ),
        }
        self.report_digest ^= h.finish();
    }

    fn absorb_transport_error(&mut self, job_index: usize) {
        self.errors += 1;
        let mut h = Fnv64::new();
        h.write_u64(job_index as u64);
        h.write(b"transport-error");
        self.report_digest ^= h.finish();
    }

    fn merge(&mut self, other: &DriveOutcome) {
        self.ok += other.ok;
        self.queue_full += other.queue_full;
        self.errors += other.errors;
        self.cache_hits += other.cache_hits;
        self.latencies_us.extend_from_slice(&other.latencies_us);
        self.report_digest ^= other.report_digest;
    }
}

/// Replays `jobs` against `addr`: job `k` submits `lines[k]` at
/// `jobs[k].at_us` (immediately in deterministic mode). Jobs are
/// distributed round-robin across `options.connections` connections.
///
/// # Errors
///
/// [`ClientError`] only when a connection cannot be *established*;
/// per-request faults are folded into [`DriveOutcome::errors`] so one
/// bad response cannot abort a measurement run.
///
/// # Panics
///
/// Panics when `lines` is shorter than `jobs`.
pub fn drive(
    addr: &str,
    jobs: &[OpenLoopJob],
    lines: &[String],
    options: &DriveOptions,
) -> Result<DriveOutcome, ClientError> {
    assert!(lines.len() >= jobs.len(), "every scheduled job needs a request line");
    if jobs.is_empty() {
        return Ok(DriveOutcome::default());
    }
    let connections = options.connections.max(1).min(jobs.len());
    let started = Instant::now();
    let outcomes: Vec<Result<DriveOutcome, ClientError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                // Connection c owns jobs c, c+connections, c+2*connections…
                let share: Vec<(usize, &OpenLoopJob, &str)> = jobs
                    .iter()
                    .enumerate()
                    .skip(c)
                    .step_by(connections)
                    .map(|(k, job)| (k, job, lines[k].as_str()))
                    .collect();
                scope.spawn(move || match options.proto {
                    Proto::V2 => drive_pipelined(addr, &share, options, started),
                    Proto::V1 => drive_keepalive(addr, &share, options, started),
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver thread panicked")).collect()
    });
    let mut total = DriveOutcome::default();
    for outcome in outcomes {
        total.merge(&outcome?);
    }
    if !options.deterministic {
        total.wall = started.elapsed();
    }
    Ok(total)
}

/// Sleeps until `at_us` past `started` (no-op when already there).
fn pace(started: Instant, at_us: u64) {
    let target = Duration::from_micros(at_us);
    let elapsed = started.elapsed();
    if elapsed < target {
        thread::sleep(target - elapsed);
    }
}

/// One pipelined v2 connection: a submitter thread paces requests onto
/// the wire while the collector drains completions as they arrive, so
/// a slow job never blocks the offered load behind it.
/// Per-request submission record: (job index, submit instant), slot j
/// belonging to the request with id j+1.
type SubmitSlots = Arc<Mutex<Vec<Option<(usize, Instant)>>>>;

fn drive_pipelined(
    addr: &str,
    share: &[(usize, &OpenLoopJob, &str)],
    options: &DriveOptions,
    started: Instant,
) -> Result<DriveOutcome, ClientError> {
    let conn = Connection::connect_with(addr, Proto::V2)?;
    conn.set_read_timeout(options.read_timeout)?;
    let (mut tx, mut rx) = conn.into_split()?;
    // Slot j holds (job index, submit instant) for the request whose id
    // is j+1 — ids are assigned sequentially by the send half — written
    // before the frame hits the wire, so the collector can never see a
    // completion whose slot is still empty.
    let submitted: SubmitSlots = Arc::new(Mutex::new(vec![None; share.len()]));
    let deterministic = options.deterministic;
    let expected = share.len();
    thread::scope(|scope| {
        let submit_slots = Arc::clone(&submitted);
        let submitter = scope.spawn(move || -> Result<(), ClientError> {
            for (slot, (job_index, job, line)) in share.iter().enumerate() {
                if !deterministic {
                    pace(started, job.at_us);
                }
                submit_slots.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[slot] =
                    Some((*job_index, Instant::now()));
                tx.submit(line)?;
            }
            Ok(())
        });
        let mut outcome = DriveOutcome::default();
        for _ in 0..expected {
            let (id, response) = match rx.collect() {
                Ok(done) => done,
                Err(_) => break, // remaining jobs become transport errors below
            };
            let slot = (id - 1) as usize;
            let (job_index, submitted_at) =
                submitted.lock().unwrap_or_else(std::sync::PoisonError::into_inner)[slot]
                    .take()
                    .expect("completion for a request that was never submitted");
            if !deterministic {
                outcome.latencies_us.push(submitted_at.elapsed().as_micros() as u64);
            }
            outcome.absorb_response(job_index, &response);
        }
        let send_failed = submitter.join().expect("submitter panicked").is_err();
        // Anything still in the slot table got no response (collector
        // broke early or the submit itself failed).
        for slot in submitted.lock().unwrap_or_else(std::sync::PoisonError::into_inner).iter_mut() {
            if let Some((job_index, _)) = slot.take() {
                outcome.absorb_transport_error(job_index);
            }
        }
        let _ = send_failed; // already accounted per-job via empty slots
        Ok(outcome)
    })
}

/// One keep-alive v1 connection: requests are serialized (the line
/// protocol answers in order), but the TCP connect and its latency are
/// paid once instead of per job.
fn drive_keepalive(
    addr: &str,
    share: &[(usize, &OpenLoopJob, &str)],
    options: &DriveOptions,
    started: Instant,
) -> Result<DriveOutcome, ClientError> {
    let mut conn = Connection::connect(addr)?;
    conn.set_read_timeout(options.read_timeout)?;
    let mut outcome = DriveOutcome::default();
    for (job_index, job, line) in share {
        if !options.deterministic {
            pace(started, job.at_us);
        }
        let submitted_at = Instant::now();
        match conn.request(line) {
            Ok(response) => {
                if !options.deterministic {
                    outcome.latencies_us.push(submitted_at.elapsed().as_micros() as u64);
                }
                outcome.absorb_response(*job_index, &response);
            }
            Err(_) => {
                outcome.absorb_transport_error(*job_index);
                // The line protocol cannot resync after a fault; dial a
                // fresh connection for the remaining jobs.
                match Connection::connect(addr) {
                    Ok(fresh) => {
                        let _ = fresh.set_read_timeout(options.read_timeout);
                        conn = fresh;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_schedule_is_a_pure_function_of_its_seed() {
        let a = schedule(7, 50, 200.0, 1.0, 4);
        let b = schedule(7, 50, 200.0, 1.0, 4);
        assert_eq!(a, b);
        let c = schedule(8, 50, 200.0, 1.0, 4);
        assert_ne!(a, c, "a different seed must move the schedule");
    }

    #[test]
    fn arrivals_are_monotone_and_match_the_offered_rate() {
        let jobs = schedule(42, 2000, 500.0, 0.0, 3);
        assert_eq!(jobs.len(), 2000);
        for pair in jobs.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us, "arrival times must be nondecreasing");
        }
        // 2000 arrivals at 500/s should span about 4 seconds; Poisson
        // noise at n=2000 stays well within ±20%.
        let span_s = jobs.last().unwrap().at_us as f64 / 1e6;
        assert!((3.2..=4.8).contains(&span_s), "span {span_s}s for 2000 jobs at 500/s");
    }

    #[test]
    fn zipf_skews_popularity_toward_rank_zero() {
        let jobs = schedule(1, 4000, 100.0, 1.5, 5);
        let mut counts = [0usize; 5];
        for j in &jobs {
            counts[j.scenario_index] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "every rank should appear: {counts:?}");
        for pair in counts.windows(2) {
            assert!(pair[0] > pair[1], "rank popularity must decrease: {counts:?}");
        }
        // At s=1.5 rank 0 carries roughly half the mass.
        assert!(counts[0] > jobs.len() / 3, "rank 0 got {} of {}", counts[0], jobs.len());
    }

    #[test]
    fn zipf_zero_is_uniform() {
        let jobs = schedule(9, 6000, 100.0, 0.0, 3);
        let mut counts = [0usize; 3];
        for j in &jobs {
            counts[j.scenario_index] += 1;
        }
        for &c in &counts {
            let share = c as f64 / jobs.len() as f64;
            assert!((0.28..=0.39).contains(&share), "uniform draw skewed: {counts:?}");
        }
    }

    #[test]
    fn percentiles_and_rates_handle_edges() {
        let empty = DriveOutcome::default();
        assert_eq!(empty.latency_percentile_us(99.0), 0);
        assert!((empty.queue_full_rate() - 0.0).abs() < f64::EPSILON);
        let outcome = DriveOutcome {
            ok: 3,
            queue_full: 1,
            latencies_us: vec![40, 10, 30, 20],
            ..DriveOutcome::default()
        };
        assert_eq!(outcome.latency_percentile_us(0.0), 10);
        assert_eq!(outcome.latency_percentile_us(100.0), 40);
        assert_eq!(outcome.latency_percentile_us(50.0), 30);
        assert!((outcome.queue_full_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn the_digest_ignores_arrival_order() {
        let a = Json::parse(r#"{"ok":true,"report":{"cycles":1}}"#).unwrap();
        let b = Json::parse(r#"{"ok":true,"report":{"cycles":2}}"#).unwrap();
        let mut in_order = DriveOutcome::default();
        in_order.absorb_response(0, &a);
        in_order.absorb_response(1, &b);
        let mut reversed = DriveOutcome::default();
        reversed.absorb_response(1, &b);
        reversed.absorb_response(0, &a);
        assert_eq!(in_order.report_digest, reversed.report_digest);
        // …but a report landing on the wrong job index is visible.
        let mut swapped = DriveOutcome::default();
        swapped.absorb_response(1, &a);
        swapped.absorb_response(0, &b);
        assert_ne!(in_order.report_digest, swapped.report_digest);
    }
}
