//! `capsule-serve/2` wire framing: length-prefixed binary frames with a
//! versioned magic preamble, built on [`capsule_core::codec`].
//!
//! The v2 framing exists to make per-job protocol overhead cheap — the
//! serving-layer analogue of the paper's handful-of-cycles probe/grant
//! dispatch. A connection is negotiated once (five preamble bytes each
//! way) and then carries many concurrent requests: each frame is tagged
//! with a client-chosen request id, responses may arrive out of order,
//! and a per-connection writer serializes completions as workers finish.
//!
//! Wire grammar (all integers little-endian):
//!
//! ```text
//! preamble  = "CAPS" version:u8            # both directions, once
//! frame     = len:u32 id:u64 tag:u8 payload # len counts id+tag+payload
//! payload   = the same JSON object a v1 line carries (no newline)
//! ```
//!
//! `len` is capped at [`MAX_FRAME_LEN`]; an oversized prefix is rejected
//! *without* reading the body (a bounded read), and answered with a
//! structured `bad-frame` error frame instead of a dropped connection.
//! Response objects still carry `"schema":"capsule-serve/1"` — the frame
//! layer is versioned independently of the JSON schema precisely so that
//! v1 and v2 responses stay byte-identical.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;

use capsule_core::codec::{Reader, Writer};
use capsule_core::output::Json;

use crate::protocol::error_response;

/// The four magic bytes opening every v2 connection. The first byte
/// (`C`) can never open a v1 request line (those start with `{` or
/// whitespace), which is what lets a listener negotiate the protocol
/// from the first byte on the wire.
pub const MAGIC: [u8; 4] = *b"CAPS";

/// The framing version this module speaks.
pub const VERSION: u8 = 2;

/// Hard cap on the frame length prefix: 64 MiB, comfortably above the
/// largest checkpoint-put payload and far below anything a well-formed
/// client sends by accident.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Bytes of frame header counted inside `len` (id + tag).
pub const FRAME_HEADER_LEN: usize = 9;

/// Op tags, one per `capsule-serve/1` op. Tag 0 is reserved for
/// responses to requests whose frame could not be interpreted.
pub mod tag {
    /// Response-only: the request frame itself was malformed.
    pub const ERROR: u8 = 0;
    /// `run`
    pub const RUN: u8 = 1;
    /// `stats`
    pub const STATS: u8 = 2;
    /// `list`
    pub const LIST: u8 = 3;
    /// `cancel`
    pub const CANCEL: u8 = 4;
    /// `shutdown`
    pub const SHUTDOWN: u8 = 5;
    /// `trace`
    pub const TRACE: u8 = 6;
    /// `metrics`
    pub const METRICS: u8 = 7;
    /// `preempt`
    pub const PREEMPT: u8 = 8;
    /// `checkpoint-fetch`
    pub const CHECKPOINT_FETCH: u8 = 9;
    /// `checkpoint-put`
    pub const CHECKPOINT_PUT: u8 = 10;
    /// `health`
    pub const HEALTH: u8 = 11;
    /// `dump`
    pub const DUMP: u8 = 12;
}

/// The op name for a request tag, `None` for unknown tags (including
/// the response-only [`tag::ERROR`]).
pub fn tag_op(t: u8) -> Option<&'static str> {
    Some(match t {
        tag::RUN => "run",
        tag::STATS => "stats",
        tag::LIST => "list",
        tag::CANCEL => "cancel",
        tag::SHUTDOWN => "shutdown",
        tag::TRACE => "trace",
        tag::METRICS => "metrics",
        tag::PREEMPT => "preempt",
        tag::CHECKPOINT_FETCH => "checkpoint-fetch",
        tag::CHECKPOINT_PUT => "checkpoint-put",
        tag::HEALTH => "health",
        tag::DUMP => "dump",
        _ => return None,
    })
}

/// The frame tag for an op name, `None` for unknown ops.
pub fn op_tag(op: &str) -> Option<u8> {
    Some(match op {
        "run" => tag::RUN,
        "stats" => tag::STATS,
        "list" => tag::LIST,
        "cancel" => tag::CANCEL,
        "shutdown" => tag::SHUTDOWN,
        "trace" => tag::TRACE,
        "metrics" => tag::METRICS,
        "preempt" => tag::PREEMPT,
        "checkpoint-fetch" => tag::CHECKPOINT_FETCH,
        "checkpoint-put" => tag::CHECKPOINT_PUT,
        "health" => tag::HEALTH,
        "dump" => tag::DUMP,
        _ => return None,
    })
}

/// One decoded frame: a request id chosen by the sender, the op tag,
/// and the JSON payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sender-chosen request id; responses echo it.
    pub id: u64,
    /// Op tag ([`tag`]); responses echo the request tag, or
    /// [`tag::ERROR`] when the request frame could not be interpreted.
    pub tag: u8,
    /// JSON payload bytes (a `capsule-serve/1` object, no newline).
    pub payload: Vec<u8>,
}

/// Why reading from a v2 stream failed.
#[derive(Debug)]
pub enum FrameError {
    /// Transport fault (includes mid-frame EOF).
    Io(std::io::Error),
    /// Clean EOF on a frame boundary: the peer is done.
    Eof,
    /// The length prefix exceeds [`MAX_FRAME_LEN`]; the body was *not*
    /// read, so the stream cannot be resynchronized.
    Oversized(u32),
    /// The length prefix is shorter than the id+tag header; the bogus
    /// body was consumed, so the stream is still in sync.
    Truncated(u32),
    /// The preamble did not open with [`MAGIC`].
    BadMagic([u8; 4]),
    /// Magic matched but the version byte is not [`VERSION`].
    BadVersion(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io: {e}"),
            FrameError::Eof => f.write_str("end of stream"),
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::Truncated(len) => {
                write!(f, "frame length {len} is shorter than the {FRAME_HEADER_LEN}-byte header")
            }
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported framing version {v}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes the five-byte `CAPS` + version preamble.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_preamble(w: &mut impl Write) -> std::io::Result<()> {
    let mut bytes = [0u8; 5];
    bytes[..4].copy_from_slice(&MAGIC);
    bytes[4] = VERSION;
    w.write_all(&bytes)
}

/// Reads and validates the peer's preamble.
///
/// # Errors
///
/// [`FrameError::BadMagic`] / [`FrameError::BadVersion`] on a preamble
/// mismatch, [`FrameError::Io`] on transport faults.
pub fn read_preamble(r: &mut impl Read) -> Result<(), FrameError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(FrameError::Io)?;
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version).map_err(FrameError::Io)?;
    if version[0] != VERSION {
        return Err(FrameError::BadVersion(version[0]));
    }
    Ok(())
}

/// Encodes one frame (length prefix, id, tag, payload) into bytes.
#[must_use]
pub fn encode_frame(id: u64, t: u8, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32((FRAME_HEADER_LEN + payload.len()) as u32);
    w.u64(id);
    w.u8(t);
    w.raw(payload);
    w.into_bytes()
}

/// Writes one frame.
///
/// # Errors
///
/// `InvalidInput` when the payload would exceed [`MAX_FRAME_LEN`];
/// otherwise the underlying write error.
pub fn write_frame(w: &mut impl Write, id: u64, t: u8, payload: &[u8]) -> std::io::Result<()> {
    if FRAME_HEADER_LEN + payload.len() > MAX_FRAME_LEN as usize {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("payload of {} bytes exceeds the frame cap", payload.len()),
        ));
    }
    w.write_all(&encode_frame(id, t, payload))
}

/// Reads one frame, enforcing the length cap *before* reading the body.
///
/// # Errors
///
/// [`FrameError::Eof`] on a clean close between frames; see
/// [`FrameError`] for the rest.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut len_buf = [0u8; 4];
    // The first byte distinguishes a clean close from a torn frame.
    loop {
        match r.read(&mut len_buf[..1]) {
            Ok(0) => return Err(FrameError::Eof),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    r.read_exact(&mut len_buf[1..]).map_err(FrameError::Io)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameError::Io)?;
    if (len as usize) < FRAME_HEADER_LEN {
        // The body (if any) was consumed: the caller may keep reading.
        return Err(FrameError::Truncated(len));
    }
    let mut rd = Reader::new(&body);
    let id = rd.u64().map_err(|_| FrameError::Truncated(len))?;
    let t = rd.u8().map_err(|_| FrameError::Truncated(len))?;
    Ok(Frame { id, tag: t, payload: body[FRAME_HEADER_LEN..].to_vec() })
}

/// A clonable handle for queueing response frames onto a connection's
/// writer thread. Worker threads finish jobs in any order; each send
/// enqueues one complete frame, and the writer serializes them onto the
/// socket as they arrive.
#[derive(Debug, Clone)]
pub struct ReplySink {
    tx: mpsc::Sender<Frame>,
}

impl ReplySink {
    /// Queues a rendered JSON payload; false when the connection's
    /// writer is gone (the response is dropped, like a v1 client that
    /// hung up).
    pub fn send_str(&self, id: u64, t: u8, payload: &str) -> bool {
        self.tx.send(Frame { id, tag: t, payload: payload.as_bytes().to_vec() }).is_ok()
    }

    /// Queues a JSON object as a compact payload.
    pub fn send_json(&self, id: u64, t: u8, json: &Json) -> bool {
        self.send_str(id, t, &json.to_string_compact())
    }

    /// Queues a structured `bad-frame` error answer ([`tag::ERROR`]).
    pub fn send_bad_frame(&self, id: u64, detail: &str) -> bool {
        self.send_json(id, tag::ERROR, &error_response("?", "bad-frame", Some(detail)))
    }
}

/// What the per-frame handler asks the read loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFlow {
    /// Keep reading frames.
    Continue,
    /// Stop reading; pending responses still drain through the writer.
    Close,
}

/// Serves one v2 connection: validates the client preamble, answers
/// with the server preamble, spawns the per-connection writer thread,
/// and feeds every well-framed request to `on_frame` together with a
/// [`ReplySink`] it may answer from any thread.
///
/// Frame-level faults are answered inline: an oversized length prefix
/// gets a `bad-frame` error and closes the connection (the body was
/// never read, so the stream cannot be resynced); a truncated header
/// gets a `bad-frame` error and the connection survives. A preamble
/// mismatch is answered with the server preamble plus a `bad-frame`
/// error so a confused v2 client sees *why*, then the connection
/// closes.
///
/// # Errors
///
/// Propagates socket-clone failures; read-side faults end the loop
/// without error (mirroring the v1 line loop).
pub fn serve_v2<F>(stream: TcpStream, mut on_frame: F) -> std::io::Result<()>
where
    F: FnMut(Frame, &ReplySink) -> FrameFlow,
{
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let (tx, rx) = mpsc::channel::<Frame>();
    let sink = ReplySink { tx };

    match read_preamble(&mut reader) {
        Ok(()) => {}
        Err(e @ (FrameError::BadMagic(_) | FrameError::BadVersion(_))) => {
            let _ = write_preamble(&mut writer);
            let payload = error_response("?", "bad-frame", Some(&e.to_string()));
            let _ = write_frame(&mut writer, 0, tag::ERROR, payload.to_string_compact().as_bytes());
            let _ = writer.flush();
            return Ok(());
        }
        Err(_) => return Ok(()),
    }
    write_preamble(&mut writer)?;
    writer.flush()?;

    let writer_thread = std::thread::spawn(move || {
        while let Ok(frame) = rx.recv() {
            if write_frame(&mut writer, frame.id, frame.tag, &frame.payload)
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
        }
        // Drain (and drop) anything still queued so late senders never
        // block; the channel is unbounded, so this is belt-and-braces.
        while rx.try_recv().is_ok() {}
    });

    loop {
        match read_frame(&mut reader) {
            Ok(frame) => {
                if on_frame(frame, &sink) == FrameFlow::Close {
                    break;
                }
            }
            Err(e @ FrameError::Oversized(_)) => {
                sink.send_bad_frame(0, &e.to_string());
                break;
            }
            Err(e @ FrameError::Truncated(_)) => {
                sink.send_bad_frame(0, &e.to_string());
            }
            Err(_) => break,
        }
    }
    // In-flight jobs may still hold sink clones; the writer exits once
    // the last one resolves. The reader half is done.
    drop(sink);
    let _ = writer_thread.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let payload = br#"{"op":"stats"}"#;
        let bytes = encode_frame(42, tag::STATS, payload);
        assert_eq!(bytes.len(), 4 + FRAME_HEADER_LEN + payload.len());
        let frame = read_frame(&mut &bytes[..]).expect("decode");
        assert_eq!(frame, Frame { id: 42, tag: tag::STATS, payload: payload.to_vec() });
        // An empty payload is legal framing (the handler rejects it as
        // a bad request, not a bad frame).
        let empty = encode_frame(7, tag::RUN, b"");
        let frame = read_frame(&mut &empty[..]).expect("decode empty");
        assert_eq!(frame.id, 7);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn a_dribbled_frame_decodes_identically() {
        // read_frame must tolerate arbitrary segmentation: a reader
        // that returns one byte at a time is the worst case.
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                buf[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let payload = br#"{"op":"run","scenario":"table1_config","scale":"smoke"}"#;
        let bytes = encode_frame(9, tag::RUN, payload);
        let frame = read_frame(&mut OneByte(&bytes)).expect("decode dribbled");
        assert_eq!(frame, Frame { id: 9, tag: tag::RUN, payload: payload.to_vec() });
    }

    #[test]
    fn an_oversized_length_prefix_is_rejected_without_reading_the_body() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cursor = &bytes[..];
        match read_frame(&mut cursor) {
            Err(FrameError::Oversized(len)) => assert_eq!(len, MAX_FRAME_LEN + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The bounded read stopped at the prefix: the body is unread.
        assert_eq!(cursor.len(), 16);
        // And the writer refuses to produce such a frame in the first
        // place.
        let huge = vec![0u8; MAX_FRAME_LEN as usize];
        let err = write_frame(&mut Vec::new(), 0, tag::RUN, &huge).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
    }

    #[test]
    fn a_short_length_prefix_is_truncated_but_resyncs() {
        // len = 4 < header: the 4 junk bytes are consumed, and the next
        // frame on the stream still decodes.
        let mut bytes = 4u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        bytes.extend_from_slice(&encode_frame(3, tag::LIST, b"{}"));
        let mut cursor = &bytes[..];
        match read_frame(&mut cursor) {
            Err(FrameError::Truncated(len)) => assert_eq!(len, 4),
            other => panic!("expected Truncated, got {other:?}"),
        }
        let next = read_frame(&mut cursor).expect("resynced frame");
        assert_eq!(next.id, 3);
        assert_eq!(next.tag, tag::LIST);
    }

    #[test]
    fn eof_between_frames_is_clean_but_mid_frame_is_io() {
        assert!(matches!(read_frame(&mut &[][..]), Err(FrameError::Eof)));
        let bytes = encode_frame(1, tag::STATS, b"{}");
        let torn = &bytes[..bytes.len() - 1];
        assert!(matches!(read_frame(&mut &torn[..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn preamble_round_trips_and_rejects_mismatches() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        assert_eq!(buf, b"CAPS\x02");
        read_preamble(&mut &buf[..]).expect("valid preamble");

        let wrong_magic = b"CAPX\x02";
        match read_preamble(&mut &wrong_magic[..]) {
            Err(FrameError::BadMagic(m)) => assert_eq!(&m, b"CAPX"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
        let wrong_version = b"CAPS\x07";
        match read_preamble(&mut &wrong_version[..]) {
            Err(FrameError::BadVersion(v)) => assert_eq!(v, 7),
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn op_tags_and_names_are_a_bijection() {
        let ops = [
            "run",
            "stats",
            "list",
            "cancel",
            "shutdown",
            "trace",
            "metrics",
            "preempt",
            "checkpoint-fetch",
            "checkpoint-put",
            "health",
            "dump",
        ];
        for op in ops {
            let t = op_tag(op).expect(op);
            assert_eq!(tag_op(t), Some(op));
            assert_ne!(t, tag::ERROR, "{op} must not collide with the error tag");
        }
        assert_eq!(op_tag("frobnicate"), None);
        assert_eq!(tag_op(tag::ERROR), None);
        assert_eq!(tag_op(200), None);
    }
}
