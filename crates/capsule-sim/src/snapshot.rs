//! Versioned binary snapshots of a running [`Machine`](crate::Machine).
//!
//! A snapshot captures the complete machine state at a cycle boundary —
//! arena columns, per-context architectural and rename state, RUU/LSQ
//! occupancy, the completion event heap, predictor tables, the lock
//! table, the LIFO context stack, cache and memory contents, the
//! division-policy death window, and all statistics — so that
//! `restore` + `run` is cycle-for-cycle identical to an uninterrupted
//! run. The blob is self-describing: a fixed header carries a magic
//! word, the format version, and an FNV-1a hash of the machine
//! configuration and the loaded program, so a blob can only be restored
//! into a machine prepared with the same config and program.
//!
//! Layout: `MAGIC (u64) | FORMAT_VERSION (u32) | sig (u64) | body`.
//! The body is the machine's field-by-field encoding (see
//! `Machine::encode_state`); every section is length-prefixed and
//! validated on decode, so truncated or corrupted blobs surface as
//! [`SimError::SnapshotMismatch`], never a panic.

use capsule_core::codec::{CodecError, Fnv64, Reader, Writer};
use capsule_core::config::{CacheParams, DivisionMode, MachineConfig};
use capsule_isa::program::Program;

use crate::outcome::{SimError, StageCount, StageProfile};

/// Magic prefix of every snapshot blob (`"CAPSNAP1"` as a
/// little-endian u64).
pub const MAGIC: u64 = u64::from_le_bytes(*b"CAPSNAP1");

/// Current snapshot format version. Bump on any layout change; restore
/// rejects other versions.
pub const FORMAT_VERSION: u32 = 1;

/// Maps a codec failure inside the snapshot body to the structured
/// restore error.
pub(crate) fn reject(e: CodecError) -> SimError {
    SimError::SnapshotMismatch { reason: e.to_string() }
}

/// Writes the snapshot header.
pub(crate) fn write_header(w: &mut Writer, sig: u64) {
    w.u64(MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(sig);
}

/// Validates the snapshot header against this machine's identity hash.
///
/// # Errors
///
/// [`SimError::SnapshotMismatch`] on a truncated header, wrong magic,
/// unsupported format version, or config/program hash mismatch.
pub(crate) fn check_header(r: &mut Reader<'_>, sig: u64) -> Result<(), SimError> {
    let magic = r.u64().map_err(|_| SimError::SnapshotMismatch {
        reason: "blob shorter than the snapshot header".to_string(),
    })?;
    if magic != MAGIC {
        return Err(SimError::SnapshotMismatch {
            reason: "not a capsule snapshot (bad magic)".to_string(),
        });
    }
    let version = r.u32().map_err(reject)?;
    if version != FORMAT_VERSION {
        return Err(SimError::SnapshotMismatch {
            reason: format!("format version {version}, this build reads {FORMAT_VERSION}"),
        });
    }
    let got = r.u64().map_err(reject)?;
    if got != sig {
        return Err(SimError::SnapshotMismatch {
            reason: "config/program hash mismatch".to_string(),
        });
    }
    Ok(())
}

/// FNV-1a identity hash of a (configuration, program) pair. A snapshot
/// taken on one machine restores only into a machine whose hash
/// matches — same timing model, same text, same data image.
pub(crate) fn machine_sig(cfg: &MachineConfig, program: &Program) -> u64 {
    let mut h = Fnv64::new();
    hash_config(&mut h, cfg);
    hash_program(&mut h, program);
    h.finish()
}

fn hash_cache(h: &mut Fnv64, c: &CacheParams) {
    h.write_u64(c.size_bytes as u64);
    h.write_u64(c.line_bytes as u64);
    h.write_u64(c.assoc as u64);
    h.write_u64(c.latency);
    h.write_u64(c.ports as u64);
}

fn hash_config(h: &mut Fnv64, cfg: &MachineConfig) {
    h.write_u64(cfg.contexts as u64);
    h.write_u64(cfg.fetch_width as u64);
    h.write_u64(cfg.fetch_threads as u64);
    h.write_u64(cfg.fetch_per_thread as u64);
    h.write_u64(cfg.decode_width as u64);
    h.write_u64(cfg.issue_width as u64);
    h.write_u64(cfg.commit_width as u64);
    h.write_u64(cfg.ruu_size as u64);
    h.write_u64(cfg.lsq_size as u64);
    h.write_u64(cfg.fus.ialu as u64);
    h.write_u64(cfg.fus.imult as u64);
    h.write_u64(cfg.fus.fpalu as u64);
    h.write_u64(cfg.fus.fpmult as u64);
    h.write_u64(cfg.predictor.meta_entries as u64);
    h.write_u64(cfg.predictor.bimodal_entries as u64);
    h.write_u64(cfg.predictor.twolevel_entries as u64);
    h.write_u64(cfg.predictor.history_bits as u64);
    h.write_u64(cfg.predictor.mispredict_penalty);
    hash_cache(h, &cfg.l1i);
    hash_cache(h, &cfg.l1d);
    hash_cache(h, &cfg.l2);
    h.write_u64(cfg.mem_latency);
    h.write_u64(match cfg.division_mode {
        DivisionMode::Never => 0,
        DivisionMode::Greedy => 1,
        DivisionMode::GreedyThrottled => 2,
    });
    h.write_u64(cfg.death_window);
    h.write_u64(cfg.division_latency);
    h.write_u64(cfg.allow_divide_to_stack as u64);
    h.write_u64(cfg.context_stack_entries as u64);
    h.write_u64(cfg.swap_latency);
    h.write_u64(cfg.swap_load_window as u64);
    h.write_u64(cfg.swap_counter_threshold as u64);
    h.write_u64(cfg.lock_table_entries as u64);
    h.write_u64(cfg.cores as u64);
    h.write_u64(cfg.remote_division_latency);
    h.write_u64(cfg.lock_squash_penalty);
}

fn hash_program(h: &mut Fnv64, program: &Program) {
    h.write_u64(program.text.len() as u64);
    for instr in &program.text {
        match capsule_isa::encode::encode(instr) {
            Ok([a, b]) => {
                h.write_u64(a);
                h.write_u64(b);
            }
            // Unencodable instructions cannot come from the assembler;
            // fall back to the debug form so the hash stays total.
            Err(_) => h.write(format!("{instr:?}").as_bytes()),
        }
    }
    h.write_u64(program.data.len() as u64);
    h.write(&program.data);
    h.write_u64(program.mem_size as u64);
    h.write_u64(program.threads.len() as u64);
    for t in &program.threads {
        h.write_u64(t.pc as u64);
        h.write_u64(t.int_regs.len() as u64);
        for &(r, v) in &t.int_regs {
            h.write_u64(r.index() as u64);
            h.write_u64(v as u64);
        }
        h.write_u64(t.fp_regs.len() as u64);
        for &(f, v) in &t.fp_regs {
            h.write_u64(f.index() as u64);
            h.write_u64(v.to_bits());
        }
    }
}

pub(crate) fn encode_stage_profile(w: &mut Writer, p: &StageProfile) {
    for c in [&p.fetch, &p.dispatch, &p.issue, &p.complete, &p.commit] {
        w.u64(c.active_cycles);
        w.u64(c.units);
    }
    w.u64(p.stepped_cycles);
    w.u64(p.fast_forwards);
    w.u64(p.skipped_cycles);
}

pub(crate) fn decode_stage_profile(r: &mut Reader<'_>) -> Result<StageProfile, CodecError> {
    let mut p = StageProfile::default();
    for c in [&mut p.fetch, &mut p.dispatch, &mut p.issue, &mut p.complete, &mut p.commit] {
        *c = StageCount { active_cycles: r.u64()?, units: r.u64()? };
    }
    p.stepped_cycles = r.u64()?;
    p.fast_forwards = r.u64()?;
    p.skipped_cycles = r.u64()?;
    Ok(p)
}
