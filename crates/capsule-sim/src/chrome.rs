//! Chrome trace-event export of a simulated run's CAPSULE timeline.
//!
//! Converts a [`Trace`] (divisions, deaths, swaps, locks, sections) into
//! the Chrome trace-event JSON format that `chrome://tracing` and
//! Perfetto load: one timeline lane per hardware context carrying the
//! worker residency intervals, one lane for division decisions (grants
//! as well as `deny:*` outcomes, as instant events), and one lane for
//! `mark.*` section begin/end pairs. Timestamps are simulated cycles,
//! presented in the viewer's microsecond field (1 cycle = 1 µs on
//! screen; only relative durations matter).
//!
//! The export is a pure function of the trace — it replays the event log
//! and never touches the machine, so it cannot perturb simulated
//! numbers. Worker→slot placement is reconstructed from the swap/death
//! events themselves: the event that closes a residency interval names
//! the slot, so the replay only has to remember when each worker last
//! became resident.

use std::collections::HashMap;

use capsule_core::ids::WorkerId;
use capsule_core::output::Json;

use crate::outcome::StageProfile;
use crate::trace::{Trace, TraceKind};

/// The fixed process id used for all lanes (one simulated machine).
const PID: u64 = 1;

fn event(name: &str, ph: &str, ts: u64, tid: u64) -> Json {
    let mut o = Json::object();
    o.push("name", name).push("ph", ph).push("ts", ts).push("pid", PID).push("tid", tid);
    o
}

fn instant(name: &str, ts: u64, tid: u64, args: Json) -> Json {
    let mut o = event(name, "i", ts, tid);
    o.push("s", "t").push("args", args);
    o
}

fn thread_name(tid: u64, name: &str) -> Json {
    let mut args = Json::object();
    args.push("name", name);
    let mut o = event("thread_name", "M", 0, tid);
    o.push("args", args);
    o
}

/// Renders `trace` as a Chrome trace-event JSON document for a machine
/// with `contexts` hardware contexts, optionally embedding the run's
/// [`StageProfile`] as an instant event at time zero.
///
/// Layout: lanes (`tid`) `0..contexts` are the hardware contexts (named
/// `ctx0`, `ctx1`, ...); lane `contexts` is `divisions` (instant events
/// `divide:context`, `divide:stack`, `deny:resource`, `deny:throttle`,
/// `deny:disabled`, plus `halt` and the optional `stage_profile`); lane
/// `contexts + 1` is `sections` (`B`/`E` pairs per `mark.*` id). Worker
/// residency shows as complete (`X`) events named `w<id>` on the slot's
/// lane. Lock traffic (`lock:acquire`, `lock:block`, `lock:transfer`)
/// lands on the slot lane it happened on. The `otherData` object carries
/// the retained/dropped event counts so truncation is never silent.
pub fn chrome_trace(trace: &Trace, contexts: usize, profile: Option<&StageProfile>) -> Json {
    let divisions_lane = contexts as u64;
    let sections_lane = contexts as u64 + 1;
    let mut events: Vec<Json> = Vec::with_capacity(trace.events().len() + contexts + 4);

    {
        let mut args = Json::object();
        args.push("name", "capsule-sim");
        let mut o = event("process_name", "M", 0, 0);
        o.push("args", args);
        events.push(o);
    }
    for ctx in 0..contexts {
        events.push(thread_name(ctx as u64, &format!("ctx{ctx}")));
    }
    events.push(thread_name(divisions_lane, "divisions"));
    events.push(thread_name(sections_lane, "sections"));

    if let Some(p) = profile {
        events.push(instant("stage_profile", 0, divisions_lane, p.to_json()));
    }

    // Worker → cycle at which it last became resident in some context
    // (slot learned from the closing swap-out/death event). Loader
    // workers never get an explicit "placed" event, so an untracked
    // worker is assumed resident since cycle 0.
    let mut resident_since: HashMap<WorkerId, u64> = HashMap::new();
    let mut final_cycle = 0u64;

    for e in trace.events() {
        final_cycle = final_cycle.max(e.cycle);
        match &e.kind {
            TraceKind::Division { parent, child, outcome } => {
                let name = match child {
                    Some(_) => format!("divide:{outcome}"),
                    None => (*outcome).to_string(),
                };
                let mut args = Json::object();
                args.push("parent", parent.0)
                    .push("child", child.map_or(Json::Null, |c| Json::UInt(c.0 as u64)))
                    .push("outcome", *outcome);
                events.push(instant(&name, e.cycle, divisions_lane, args));
                if let (Some(c), "context") = (child, *outcome) {
                    resident_since.insert(*c, e.cycle);
                }
            }
            TraceKind::Death { worker, slot } | TraceKind::SwapOut { worker, slot } => {
                let since = resident_since.remove(worker).unwrap_or(0);
                let mut args = Json::object();
                args.push("worker", worker.0);
                let mut o = event(&worker.to_string(), "X", since, *slot as u64);
                o.push("dur", e.cycle.saturating_sub(since)).push("args", args);
                events.push(o);
                if matches!(e.kind, TraceKind::Death { .. }) {
                    let mut args = Json::object();
                    args.push("worker", worker.0);
                    events.push(instant("death", e.cycle, *slot as u64, args));
                }
            }
            TraceKind::SwapIn { worker, slot: _ } => {
                resident_since.insert(*worker, e.cycle);
            }
            TraceKind::LockAcquire { slot, addr } => {
                let mut args = Json::object();
                args.push("addr", format!("{addr:#x}").as_str());
                events.push(instant("lock:acquire", e.cycle, *slot as u64, args));
            }
            TraceKind::LockBlock { slot, addr } => {
                let mut args = Json::object();
                args.push("addr", format!("{addr:#x}").as_str());
                events.push(instant("lock:block", e.cycle, *slot as u64, args));
            }
            TraceKind::LockTransfer { to, addr } => {
                let mut args = Json::object();
                args.push("addr", format!("{addr:#x}").as_str());
                events.push(instant("lock:transfer", e.cycle, *to as u64, args));
            }
            TraceKind::Mark { id, enter } => {
                let ph = if *enter { "B" } else { "E" };
                events.push(event(&format!("section {id}"), ph, e.cycle, sections_lane));
            }
            TraceKind::Halt => {
                events.push(instant("halt", e.cycle, divisions_lane, Json::object()));
            }
        }
    }

    // Workers still resident when the trace ended (the halting ancestor,
    // or victims of log truncation): no closing event ever named their
    // slot, so they cannot be drawn as intervals. Surface the count
    // instead of dropping it silently.
    let unplaced = resident_since.len();

    let mut other = Json::object();
    other
        .push("retained_events", trace.events().len() as u64)
        .push("dropped_events", trace.dropped())
        .push("contexts", contexts)
        .push("final_cycle", final_cycle)
        .push("open_residencies", unplaced);

    let mut out = Json::object();
    out.push("traceEvents", Json::Array(events)).push("otherData", other);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_names(doc: &Json) -> Vec<(u64, String)> {
        doc.get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .map(|e| {
                (
                    e.get("tid").unwrap().as_u64().unwrap(),
                    e.get("args").unwrap().get("name").unwrap().as_str().unwrap().to_string(),
                )
            })
            .collect()
    }

    #[test]
    fn lanes_intervals_and_instants() {
        let mut t = Trace::new(64);
        t.push(
            5,
            TraceKind::Division {
                parent: WorkerId(0),
                child: Some(WorkerId(1)),
                outcome: "context",
            },
        );
        t.push(7, TraceKind::LockBlock { slot: 2, addr: 0x40 });
        t.push(
            9,
            TraceKind::Division { parent: WorkerId(1), child: None, outcome: "deny:throttle" },
        );
        t.push(12, TraceKind::Mark { id: 3, enter: true });
        t.push(20, TraceKind::Mark { id: 3, enter: false });
        t.push(30, TraceKind::Death { worker: WorkerId(1), slot: 4 });
        t.push(40, TraceKind::Halt);
        let doc = chrome_trace(&t, 8, None);

        // One named lane per context plus divisions + sections.
        let lanes = lane_names(&doc);
        assert_eq!(lanes.len(), 10);
        assert!(lanes.contains(&(0, "ctx0".into())));
        assert!(lanes.contains(&(7, "ctx7".into())));
        assert!(lanes.contains(&(8, "divisions".into())));
        assert!(lanes.contains(&(9, "sections".into())));

        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // w1: resident from its context-grant at cycle 5 to death at 30,
        // drawn on the slot its death named (ctx4).
        let w1 = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .expect("one residency interval");
        assert_eq!(w1.get("name").unwrap().as_str(), Some("w1"));
        assert_eq!(w1.get("ts").unwrap().as_u64(), Some(5));
        assert_eq!(w1.get("dur").unwrap().as_u64(), Some(25));
        assert_eq!(w1.get("tid").unwrap().as_u64(), Some(4));

        // The deny shows as an instant on the divisions lane.
        let deny = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("deny:throttle"))
            .expect("deny instant");
        assert_eq!(deny.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(deny.get("tid").unwrap().as_u64(), Some(8));
        assert_eq!(deny.get("args").unwrap().get("child").unwrap(), &Json::Null);

        // Sections render as a B/E pair; locks on their context lane.
        assert!(events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("B")
            && e.get("name").and_then(Json::as_str) == Some("section 3")));
        assert!(events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("E")));
        let lock = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("lock:block"))
            .unwrap();
        assert_eq!(lock.get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(lock.get("args").unwrap().get("addr").unwrap().as_str(), Some("0x40"));

        let other = doc.get("otherData").unwrap();
        assert_eq!(other.get("retained_events").unwrap().as_u64(), Some(7));
        assert_eq!(other.get("dropped_events").unwrap().as_u64(), Some(0));
        assert_eq!(other.get("final_cycle").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn truncation_is_reported_not_silent() {
        let mut t = Trace::new(2);
        t.push(1, TraceKind::Mark { id: 0, enter: true });
        t.push(2, TraceKind::Mark { id: 0, enter: false });
        t.push(3, TraceKind::Halt);
        let doc = chrome_trace(&t, 4, None);
        let other = doc.get("otherData").unwrap();
        assert_eq!(other.get("retained_events").unwrap().as_u64(), Some(2));
        assert_eq!(other.get("dropped_events").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn profile_embeds_as_instant() {
        let p = StageProfile { stepped_cycles: 17, ..Default::default() };
        let doc = chrome_trace(&Trace::new(4), 2, Some(&p));
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let sp = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("stage_profile"))
            .expect("profile instant");
        assert_eq!(sp.get("args").unwrap().get("stepped_cycles").unwrap().as_u64(), Some(17));
        // It sits on the divisions lane of a 2-context machine.
        assert_eq!(sp.get("tid").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn document_parses_back_as_json() {
        let mut t = Trace::new(8);
        t.push(1, TraceKind::SwapIn { worker: WorkerId(2), slot: 1 });
        t.push(6, TraceKind::SwapOut { worker: WorkerId(2), slot: 1 });
        let doc = chrome_trace(&t, 2, None);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).expect("chrome export is valid JSON");
        assert_eq!(
            back.get("traceEvents").unwrap().as_array().unwrap().len(),
            doc.get("traceEvents").unwrap().as_array().unwrap().len()
        );
    }
}
