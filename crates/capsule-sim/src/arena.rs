//! Generational struct-of-arrays arena for in-flight window entries.
//!
//! The RUU/LSQ entries of every thread live here as parallel `Vec`s
//! indexed by a dense slot id: the wakeup chains, the completion event
//! heap and the per-thread ready lists all carry plain `u32` indices, so
//! the hot stages (dispatch renaming, completion chain walks, issue
//! arbitration, commit) are straight array loads — no per-entry heap
//! nodes and none of the `binary_search`-by-sequence lookups the
//! per-thread `VecDeque<Entry>` layout needed.
//!
//! Retired slots go on a free list and are reused; each slot carries a
//! generation counter bumped at retirement, so a stale reference from a
//! previous occupancy (a last-writer table entry, a `WaitBranch` state)
//! can never be confused with the slot's current tenant: an [`EntryRef`]
//! whose generation no longer matches denotes a retired — hence
//! complete — entry.

use capsule_core::codec::{CodecError, Reader, Writer};
use capsule_isa::instr::FuClass;

/// Entry flag: issued to a functional unit (or born issued, for inert
/// entries with [`FuClass::None`]).
const F_ISSUED: u8 = 1 << 0;
/// Entry flag: execution complete (dependents may issue).
const F_COMPLETED: u8 = 1 << 1;
/// Entry flag: load.
const F_LOAD: u8 = 1 << 2;
/// Entry flag: occupies an LSQ slot.
const F_MEM: u8 = 1 << 3;

/// A link in a producer's wakeup chain: the waiting consumer's arena
/// index and the consumer dependency slot the chain threads through
/// (the SimpleScalar `RS_link` idiom, allocation-free). Chain links are
/// created at dispatch and consumed when the producer completes; a
/// consumer cannot issue — so cannot retire — while still linked, so a
/// bare index is always valid inside a chain.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    /// Arena index of the waiting (consumer) entry.
    pub entry: u32,
    /// Dependency slot of the consumer that waits on this producer.
    pub slot: u8,
}

/// A generation-checked reference to an arena entry, safe to hold across
/// the referent's retirement (e.g. in the per-register last-writer
/// tables): once the slot is reused the generation no longer matches and
/// the reference reads as retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EntryRef {
    /// Arena index.
    pub idx: u32,
    /// Generation the slot had when the reference was taken.
    pub gen: u32,
}

/// Hard cap on a deserialized arena's entry count — far above any window
/// a valid configuration can fill, so a corrupted length prefix cannot
/// drive an allocation.
const MAX_ENTRIES: usize = 1 << 24;

fn fu_tag(fu: FuClass) -> u8 {
    match fu {
        FuClass::None => 0,
        FuClass::IntAlu => 1,
        FuClass::IntMult => 2,
        FuClass::FpAlu => 3,
        FuClass::FpMult => 4,
        FuClass::Mem => 5,
    }
}

fn fu_from_tag(tag: u8) -> Result<FuClass, CodecError> {
    Ok(match tag {
        0 => FuClass::None,
        1 => FuClass::IntAlu,
        2 => FuClass::IntMult,
        3 => FuClass::FpAlu,
        4 => FuClass::FpMult,
        5 => FuClass::Mem,
        _ => return Err(CodecError::Invalid("bad functional-unit tag")),
    })
}

fn encode_waiter(w: &mut Writer, waiter: Option<Waiter>) {
    match waiter {
        None => w.u8(0),
        Some(Waiter { entry, slot }) => {
            w.u8(1);
            w.u32(entry);
            w.u8(slot);
        }
    }
}

fn decode_waiter(r: &mut Reader<'_>, n: usize) -> Result<Option<Waiter>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let entry = r.u32()?;
            let slot = r.u8()?;
            if entry as usize >= n || slot >= 4 {
                return Err(CodecError::Invalid("waiter out of range"));
            }
            Ok(Some(Waiter { entry, slot }))
        }
        _ => Err(CodecError::Invalid("bad waiter tag")),
    }
}

impl EntryRef {
    pub(crate) fn encode(self, w: &mut Writer) {
        w.u32(self.idx);
        w.u32(self.gen);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<EntryRef, CodecError> {
        Ok(EntryRef { idx: r.u32()?, gen: r.u32()? })
    }
}

/// The arena. All state of one in-flight entry lives at the same index
/// across the parallel vectors (struct-of-arrays).
#[derive(Debug, Default)]
pub(crate) struct EntryArena {
    /// Global age (dispatch order), unique per entry.
    seq: Vec<u64>,
    /// Generation of the slot's current (or next) occupancy.
    gen: Vec<u32>,
    fu: Vec<FuClass>,
    /// Execution latency excluding memory.
    latency: Vec<u64>,
    /// Source operands still waiting on an incomplete producer.
    unready: Vec<u8>,
    flags: Vec<u8>,
    /// Valid once issued (or immediately for inert entries).
    complete_at: Vec<u64>,
    /// Data address; valid only for memory entries.
    mem_addr: Vec<u64>,
    /// Head of the chain of entries waiting on this entry.
    head_waiter: Vec<Option<Waiter>>,
    /// Per dependency slot: the next waiter in that producer's chain.
    next_waiter: Vec<[Option<Waiter>; 4]>,
    /// Retired slots available for reuse.
    free: Vec<u32>,
}

impl EntryArena {
    /// Allocates a slot for a freshly dispatched entry and returns its
    /// index. Inert entries (no functional unit) are born issued and
    /// completed, with `complete_at = now`.
    pub fn alloc(
        &mut self,
        seq: u64,
        fu: FuClass,
        latency: u64,
        is_load: bool,
        is_mem: bool,
        now: u64,
    ) -> u32 {
        let inert = fu == FuClass::None;
        let mut flags = 0u8;
        if inert {
            flags |= F_ISSUED | F_COMPLETED;
        }
        if is_load {
            flags |= F_LOAD;
        }
        if is_mem {
            flags |= F_MEM;
        }
        if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            self.seq[i] = seq;
            self.fu[i] = fu;
            self.latency[i] = latency;
            self.unready[i] = 0;
            self.flags[i] = flags;
            self.complete_at[i] = now;
            self.mem_addr[i] = 0;
            debug_assert!(self.head_waiter[i].is_none());
            debug_assert!(self.next_waiter[i].iter().all(Option::is_none));
            idx
        } else {
            let idx = self.seq.len() as u32;
            self.seq.push(seq);
            self.gen.push(0);
            self.fu.push(fu);
            self.latency.push(latency);
            self.unready.push(0);
            self.flags.push(flags);
            self.complete_at.push(now);
            self.mem_addr.push(0);
            self.head_waiter.push(None);
            self.next_waiter.push([None; 4]);
            idx
        }
    }

    /// Returns a retired slot to the free list, bumping its generation so
    /// outstanding [`EntryRef`]s to the old occupancy read as retired.
    pub fn retire(&mut self, idx: u32) {
        let i = idx as usize;
        debug_assert!(self.head_waiter[i].is_none(), "retiring entry with live waiters");
        debug_assert!(
            self.next_waiter[i].iter().all(Option::is_none),
            "retiring entry still linked in a wakeup chain"
        );
        self.gen[i] = self.gen[i].wrapping_add(1);
        self.free.push(idx);
    }

    /// Empties the arena, keeping the allocated capacity (machine reset).
    pub fn clear(&mut self) {
        self.seq.clear();
        self.gen.clear();
        self.fu.clear();
        self.latency.clear();
        self.unready.clear();
        self.flags.clear();
        self.complete_at.clear();
        self.mem_addr.clear();
        self.head_waiter.clear();
        self.next_waiter.clear();
        self.free.clear();
    }

    /// Number of allocated slots (live or on the free list).
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// A generation-checked reference to the entry currently at `idx`.
    pub fn entry_ref(&self, idx: u32) -> EntryRef {
        EntryRef { idx, gen: self.gen[idx as usize] }
    }

    /// Whether `r` still names its original entry (not yet retired).
    pub fn is_live(&self, r: EntryRef) -> bool {
        self.gen.get(r.idx as usize) == Some(&r.gen)
    }

    /// Whether the entry `r` refers to has completed — true also when it
    /// already retired (commit only retires completed entries).
    pub fn done(&self, r: EntryRef) -> bool {
        !self.is_live(r) || self.is_completed(r.idx)
    }

    pub fn seq(&self, idx: u32) -> u64 {
        self.seq[idx as usize]
    }

    pub fn fu(&self, idx: u32) -> FuClass {
        self.fu[idx as usize]
    }

    pub fn latency(&self, idx: u32) -> u64 {
        self.latency[idx as usize]
    }

    pub fn unready(&self, idx: u32) -> u8 {
        self.unready[idx as usize]
    }

    pub fn is_issued(&self, idx: u32) -> bool {
        self.flags[idx as usize] & F_ISSUED != 0
    }

    pub fn is_completed(&self, idx: u32) -> bool {
        self.flags[idx as usize] & F_COMPLETED != 0
    }

    pub fn is_load(&self, idx: u32) -> bool {
        self.flags[idx as usize] & F_LOAD != 0
    }

    pub fn is_mem(&self, idx: u32) -> bool {
        self.flags[idx as usize] & F_MEM != 0
    }

    pub fn mem_addr(&self, idx: u32) -> u64 {
        self.mem_addr[idx as usize]
    }

    pub fn set_mem_addr(&mut self, idx: u32, addr: u64) {
        self.mem_addr[idx as usize] = addr;
    }

    /// Marks the entry issued with its completion cycle.
    pub fn mark_issued(&mut self, idx: u32, complete_at: u64) {
        let i = idx as usize;
        debug_assert!(self.flags[i] & F_ISSUED == 0);
        self.flags[i] |= F_ISSUED;
        self.complete_at[i] = complete_at;
    }

    /// If the producer `p` is still in flight and incomplete, links
    /// `consumer` (through dependency slot `dslot`) into its wakeup
    /// chain, bumps the consumer's unready count, and returns true.
    /// Producers already complete or retired need no watching.
    pub fn link_if_pending(&mut self, p: EntryRef, consumer: u32, dslot: u8) -> bool {
        if !self.is_live(p) {
            return false;
        }
        let pi = p.idx as usize;
        if self.flags[pi] & F_COMPLETED != 0 {
            return false;
        }
        self.next_waiter[consumer as usize][dslot as usize] =
            self.head_waiter[pi].replace(Waiter { entry: consumer, slot: dslot });
        self.unready[consumer as usize] += 1;
        true
    }

    /// Serializes every column plus the free list for checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        let n = self.seq.len();
        w.usize(n);
        for i in 0..n {
            w.u64(self.seq[i]);
            w.u32(self.gen[i]);
            w.u8(fu_tag(self.fu[i]));
            w.u64(self.latency[i]);
            w.u8(self.unready[i]);
            w.u8(self.flags[i]);
            w.u64(self.complete_at[i]);
            w.u64(self.mem_addr[i]);
            encode_waiter(w, self.head_waiter[i]);
            for &nw in &self.next_waiter[i] {
                encode_waiter(w, nw);
            }
        }
        w.usize(self.free.len());
        for &f in &self.free {
            w.u32(f);
        }
    }

    /// Restores state written by [`EntryArena::encode`], reusing this
    /// arena's allocations.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or ill-formed input (dangling waiter
    /// or free-list indices, unknown tags).
    pub fn decode_into(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        self.clear();
        let n = r.usize()?;
        if n > MAX_ENTRIES {
            return Err(CodecError::Invalid("arena too large"));
        }
        for _ in 0..n {
            self.seq.push(r.u64()?);
            self.gen.push(r.u32()?);
            self.fu.push(fu_from_tag(r.u8()?)?);
            self.latency.push(r.u64()?);
            self.unready.push(r.u8()?);
            self.flags.push(r.u8()?);
            self.complete_at.push(r.u64()?);
            self.mem_addr.push(r.u64()?);
            self.head_waiter.push(decode_waiter(r, n)?);
            let mut nw = [None; 4];
            for slot in &mut nw {
                *slot = decode_waiter(r, n)?;
            }
            self.next_waiter.push(nw);
        }
        let nfree = r.usize()?;
        if nfree > n {
            return Err(CodecError::Invalid("free list larger than arena"));
        }
        for _ in 0..nfree {
            let f = r.u32()?;
            if f as usize >= n {
                return Err(CodecError::Invalid("free index out of range"));
            }
            self.free.push(f);
        }
        Ok(())
    }

    /// Marks the entry complete and walks its wakeup chain: every waiter
    /// loses one unready operand; those reaching zero are pushed onto
    /// `ready` (each enters exactly once — a consumer has one chain link
    /// per pending operand).
    pub fn complete(&mut self, idx: u32, ready: &mut Vec<u32>) {
        let i = idx as usize;
        debug_assert!(self.flags[i] & F_ISSUED != 0 && self.flags[i] & F_COMPLETED == 0);
        self.flags[i] |= F_COMPLETED;
        let mut w = self.head_waiter[i].take();
        while let Some(Waiter { entry, slot }) = w {
            let e = entry as usize;
            w = self.next_waiter[e][slot as usize].take();
            self.unready[e] -= 1;
            if self.unready[e] == 0 {
                ready.push(entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(arena: &mut EntryArena, seq: u64) -> u32 {
        arena.alloc(seq, FuClass::IntAlu, 1, false, false, 0)
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut a = EntryArena::default();
        let e0 = alu(&mut a, 0);
        let e1 = alu(&mut a, 1);
        assert_ne!(e0, e1);
        // Retire the first (completed) entry; its slot is reused by the
        // next allocation instead of growing the arrays.
        a.complete_inert_for_test(e0);
        a.retire(e0);
        let e2 = alu(&mut a, 2);
        assert_eq!(e2, e0, "retired slot is reused");
        assert_eq!(a.seq(e2), 2);
        assert!(!a.is_completed(e2), "reused slot starts fresh");
    }

    #[test]
    fn generation_counter_protects_stale_refs() {
        let mut a = EntryArena::default();
        let e0 = alu(&mut a, 0);
        let stale = a.entry_ref(e0);
        assert!(a.is_live(stale));
        assert!(!a.done(stale), "in-flight and incomplete");
        a.complete_inert_for_test(e0);
        assert!(a.done(stale), "completed counts as done");
        a.retire(e0);
        assert!(!a.is_live(stale), "retired slot no longer matches");
        assert!(a.done(stale), "retired counts as done");
        // The slot's next tenant must not be confused with the old one.
        let e1 = alu(&mut a, 7);
        assert_eq!(e1, e0);
        assert!(!a.is_live(stale), "stale ref stays dead across reuse");
        assert!(a.is_live(a.entry_ref(e1)));
        // A stale link would otherwise make this incomplete entry look
        // done; the generation check prevents exactly that.
        assert!(!a.done(a.entry_ref(e1)));
    }

    #[test]
    fn wakeup_chain_wakes_each_consumer_once() {
        let mut a = EntryArena::default();
        let p = alu(&mut a, 0);
        let c1 = alu(&mut a, 1);
        let c2 = alu(&mut a, 2);
        // c1 waits on p through two operand slots, c2 through one.
        assert!(a.link_if_pending(a.entry_ref(p), c1, 0));
        assert!(a.link_if_pending(a.entry_ref(p), c1, 1));
        assert!(a.link_if_pending(a.entry_ref(p), c2, 0));
        assert_eq!(a.unready(c1), 2);
        assert_eq!(a.unready(c2), 1);

        a.mark_issued(p, 5);
        let mut ready = Vec::new();
        a.complete(p, &mut ready);
        assert_eq!(a.unready(c1), 0);
        assert_eq!(a.unready(c2), 0);
        // Both consumers become ready exactly once, despite c1's two links.
        ready.sort_unstable();
        assert_eq!(ready, vec![c1, c2]);
    }

    #[test]
    fn chain_integrity_survives_producer_retirement() {
        let mut a = EntryArena::default();
        let p = alu(&mut a, 0);
        let c = alu(&mut a, 1);
        assert!(a.link_if_pending(a.entry_ref(p), c, 0));

        let mut ready = Vec::new();
        a.mark_issued(p, 1);
        a.complete(p, &mut ready);
        assert_eq!(ready, vec![c]);

        // Retire the producer and reuse its slot: the old chain links were
        // consumed at completion, so the new tenant starts with an empty
        // chain and linking against the *new* entry works normally.
        a.retire(p);
        let p2 = alu(&mut a, 2);
        assert_eq!(p2, p);
        let c2 = alu(&mut a, 3);
        assert!(a.link_if_pending(a.entry_ref(p2), c2, 0));
        a.mark_issued(p2, 2);
        ready.clear();
        a.complete(p2, &mut ready);
        assert_eq!(ready, vec![c2]);

        // A completed-then-retired producer is never linked against.
        a.retire(p2);
        let stale = EntryRef { idx: p2, gen: 1 };
        let c3 = alu(&mut a, 4);
        assert!(!a.link_if_pending(stale, c3, 0), "stale producer ref links nothing");
        assert_eq!(a.unready(c3), 0);
    }

    #[test]
    fn clear_keeps_nothing_live() {
        let mut a = EntryArena::default();
        let e = alu(&mut a, 0);
        let r = a.entry_ref(e);
        a.clear();
        assert!(!a.is_live(r), "cleared arena holds no entries");
        let e2 = alu(&mut a, 1);
        assert_eq!(e2, 0, "indices restart after clear");
    }

    impl EntryArena {
        /// Test helper: issue + complete with no waiters.
        fn complete_inert_for_test(&mut self, idx: u32) {
            self.mark_issued(idx, 0);
            let mut ready = Vec::new();
            self.complete(idx, &mut ready);
            assert!(ready.is_empty());
        }
    }
}
