//! Run results and errors of the cycle-level machine.

use capsule_core::codec::{CodecError, Reader, Writer};
use capsule_core::output::Json;
use capsule_core::stats::{DivisionTree, SectionTracker, SimStats};
use capsule_isa::program::ProgramError;
use capsule_mem::CacheStats;

use crate::exec::{OutValue, TrapKind};
use crate::trace::Trace;

/// Why a simulation ended abnormally.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The program failed validation.
    Program(ProgramError),
    /// The machine configuration failed validation.
    Config(String),
    /// More loader threads than hardware contexts.
    TooManyThreads {
        /// Threads requested by the program.
        requested: usize,
        /// Hardware contexts available.
        contexts: usize,
    },
    /// A thread trapped.
    Trap {
        /// Cycle of the trap.
        cycle: u64,
        /// Hardware context slot.
        slot: usize,
        /// PC of the faulting instruction.
        pc: u32,
        /// Cause.
        kind: TrapKind,
    },
    /// The cycle budget elapsed without `halt`.
    Timeout {
        /// Budget that elapsed.
        cycles: u64,
    },
    /// A [`crate::cancel::CancelToken`] was tripped while the run was in
    /// flight (operator cancel or server shutdown).
    Cancelled {
        /// Cycle at which the cancellation was observed.
        cycle: u64,
    },
    /// Every worker died with no `halt` (missing join or deadlock).
    AllThreadsDead {
        /// Cycle at which the machine emptied.
        cycle: u64,
    },
    /// A snapshot blob was rejected by
    /// [`Machine::restore_snapshot`](crate::Machine::restore_snapshot):
    /// wrong magic/format version, config/program mismatch, or a
    /// truncated/corrupted payload.
    SnapshotMismatch {
        /// What was wrong with the blob.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Program(e) => write!(f, "invalid program: {e}"),
            SimError::Config(e) => write!(f, "invalid machine config: {e}"),
            SimError::TooManyThreads { requested, contexts } => {
                write!(
                    f,
                    "program wants {requested} loader threads, machine has {contexts} contexts"
                )
            }
            SimError::Trap { cycle, slot, pc, kind } => {
                write!(f, "cycle {cycle}: context {slot} trapped at pc {pc}: {kind}")
            }
            SimError::Timeout { cycles } => write!(f, "no halt within {cycles} cycles"),
            SimError::Cancelled { cycle } => write!(f, "cancelled at cycle {cycle}"),
            SimError::AllThreadsDead { cycle } => {
                write!(f, "all workers dead at cycle {cycle} without halt")
            }
            SimError::SnapshotMismatch { reason } => {
                write!(f, "snapshot rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ProgramError> for SimError {
    fn from(e: ProgramError) -> Self {
        SimError::Program(e)
    }
}

/// Everything a completed (halted) run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Pipeline and CAPSULE counters.
    pub stats: SimStats,
    /// Values emitted by `out`/`outf` in dispatch order.
    pub output: Vec<OutValue>,
    /// Componentized-section accounting (`mark.*`).
    pub sections: SectionTracker,
    /// Worker division genealogy (Figure 6).
    pub tree: DivisionTree,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Main-memory accesses.
    pub mem_accesses: u64,
    /// Per-stage self-profile, when enabled via
    /// [`Machine::enable_profile`](crate::Machine::enable_profile).
    pub profile: Option<StageProfile>,
    /// The CAPSULE event trace, when enabled via
    /// [`Machine::enable_trace`](crate::Machine::enable_trace) —
    /// consumed by [`crate::chrome::chrome_trace`] for timeline export.
    pub trace: Option<Trace>,
}

/// Work counters of one pipeline stage (see [`StageProfile`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCount {
    /// Cycles in which the stage processed at least one entry.
    pub active_cycles: u64,
    /// Total entries processed (instructions fetched, dispatched, issued,
    /// completed or committed, depending on the stage).
    pub units: u64,
}

impl StageCount {
    /// Folds one cycle's work into the counter.
    pub(crate) fn record(&mut self, units: u64) {
        if units > 0 {
            self.active_cycles += 1;
            self.units += units;
        }
    }
}

/// Lightweight per-stage self-profile of a run, for diagnosing hot-path
/// regressions without an external profiler. Enabled via
/// [`Machine::enable_profile`](crate::Machine::enable_profile); collecting
/// it does not perturb any simulated number.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageProfile {
    /// Fetch-stage work.
    pub fetch: StageCount,
    /// Dispatch-stage work.
    pub dispatch: StageCount,
    /// Issue-stage work.
    pub issue: StageCount,
    /// Complete-stage work (entries leaving the event heap).
    pub complete: StageCount,
    /// Commit-stage work.
    pub commit: StageCount,
    /// Cycles actually stepped through the full stage pipeline.
    pub stepped_cycles: u64,
    /// Idle fast-forward jumps taken.
    pub fast_forwards: u64,
    /// Cycles skipped by fast-forward (still counted in `stats.cycles`).
    pub skipped_cycles: u64,
}

impl StageProfile {
    /// The profile as a JSON object (stage → `{active_cycles, units}`
    /// plus the stepped/fast-forward counters) — the shape returned by
    /// `capsule-serve` for `profile: true` requests and embedded in
    /// Chrome-trace exports.
    pub fn to_json(&self) -> Json {
        let stage = |c: &StageCount| {
            let mut o = Json::object();
            o.push("active_cycles", c.active_cycles).push("units", c.units);
            o
        };
        let mut o = Json::object();
        o.push("fetch", stage(&self.fetch))
            .push("dispatch", stage(&self.dispatch))
            .push("issue", stage(&self.issue))
            .push("complete", stage(&self.complete))
            .push("commit", stage(&self.commit))
            .push("stepped_cycles", self.stepped_cycles)
            .push("fast_forwards", self.fast_forwards)
            .push("skipped_cycles", self.skipped_cycles);
        o
    }
}

impl SimOutcome {
    /// Total cycles of the run.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Serializes the complete outcome — stats, output, sections, tree,
    /// cache counters, and the optional profile/trace — with the shared
    /// byte codec. Used by checkpoint blobs to carry already-finished
    /// runs across a preemption.
    pub fn encode(&self, w: &mut Writer) {
        self.stats.encode(w);
        w.usize(self.output.len());
        for v in &self.output {
            match v {
                OutValue::Int(i) => {
                    w.u8(0);
                    w.i64(*i);
                }
                OutValue::Float(x) => {
                    w.u8(1);
                    w.f64(*x);
                }
            }
        }
        self.sections.encode(w);
        self.tree.encode(w);
        for c in [&self.l1i, &self.l1d, &self.l2] {
            w.u64(c.accesses);
            w.u64(c.hits);
            w.u64(c.misses);
        }
        w.u64(self.mem_accesses);
        match &self.profile {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                crate::snapshot::encode_stage_profile(w, p);
            }
        }
        match &self.trace {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                t.encode(w);
            }
        }
    }

    /// Decodes an outcome written by [`SimOutcome::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a truncated or malformed buffer.
    pub fn decode(r: &mut Reader<'_>) -> Result<SimOutcome, CodecError> {
        let stats = SimStats::decode(r)?;
        let n = r.usize()?;
        if n > (1 << 24) {
            return Err(CodecError::Invalid("implausible output count"));
        }
        let mut output = Vec::with_capacity(n);
        for _ in 0..n {
            output.push(match r.u8()? {
                0 => OutValue::Int(r.i64()?),
                1 => OutValue::Float(r.f64()?),
                _ => return Err(CodecError::Invalid("bad output value tag")),
            });
        }
        let sections = SectionTracker::decode(r)?;
        let tree = DivisionTree::decode(r)?;
        let mut caches = [CacheStats::default(); 3];
        for c in &mut caches {
            c.accesses = r.u64()?;
            c.hits = r.u64()?;
            c.misses = r.u64()?;
        }
        let [l1i, l1d, l2] = caches;
        let mem_accesses = r.u64()?;
        let profile = match r.u8()? {
            0 => None,
            1 => Some(crate::snapshot::decode_stage_profile(r)?),
            _ => return Err(CodecError::Invalid("bad profile tag")),
        };
        let trace = match r.u8()? {
            0 => None,
            1 => Some(Trace::decode(r)?),
            _ => return Err(CodecError::Invalid("bad trace tag")),
        };
        Ok(SimOutcome { stats, output, sections, tree, l1i, l1d, l2, mem_accesses, profile, trace })
    }

    /// Integer output values, ignoring floats.
    pub fn ints(&self) -> Vec<i64> {
        self.output.iter().filter_map(OutValue::as_int).collect()
    }

    /// Float output values, ignoring ints.
    pub fn floats(&self) -> Vec<f64> {
        self.output.iter().filter_map(OutValue::as_float).collect()
    }
}
