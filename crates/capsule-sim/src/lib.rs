//! Cycle-level simulator of the paper's SOMT (Self-Organized
//! Multi-Threaded) processor, plus the plain SMT and superscalar baselines.
//!
//! The machine implements the paper's hardware support for component
//! programs: conditional thread division (`nthr`), worker death (`kthr`),
//! the death-rate division throttle, a LIFO context stack with a
//! load-latency swap heuristic, and the fast lock table
//! (`mlock`/`munlock`). Timing follows the SimpleScalar discipline the
//! paper's own simulator was built on.
//!
//! Two execution engines share one set of architectural semantics
//! ([`exec`]):
//!
//! - [`machine::Machine`] — the cycle-level model (Table 1 configuration),
//! - [`interp::Interp`] — a fast functional reference used for
//!   differential testing and workload validation.
//!
//! # Example
//!
//! ```
//! use capsule_core::config::MachineConfig;
//! use capsule_isa::asm::Asm;
//! use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
//! use capsule_isa::reg::Reg;
//! use capsule_sim::machine::Machine;
//!
//! let mut a = Asm::new();
//! a.li(Reg(1), 42);
//! a.out(Reg(1));
//! a.halt();
//! let prog = Program::new(a.assemble()?, DataBuilder::new().build(), 4096)
//!     .with_thread(ThreadSpec::at(0));
//! let mut m = Machine::new(MachineConfig::table1_somt(), &prog).unwrap();
//! let outcome = m.run(10_000).unwrap();
//! assert_eq!(outcome.ints(), vec![42]);
//! # Ok::<(), capsule_isa::asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod cancel;
pub mod chrome;
pub mod exec;
pub mod interp;
pub mod locks;
pub mod machine;
pub mod outcome;
mod pipeline;
pub mod predictor;
pub mod snapshot;
pub mod trace;

pub use cancel::CancelToken;
pub use chrome::chrome_trace;
pub use exec::{ArchState, Memory, OutValue, TrapKind};
pub use interp::{Interp, InterpConfig, InterpError, InterpOutcome};
pub use machine::{Machine, WarmMachine};
pub use outcome::{SimError, SimOutcome, StageCount, StageProfile};
pub use trace::{Trace, TraceEvent, TraceKind};
