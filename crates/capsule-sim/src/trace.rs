//! Selective event tracing: the machine's CAPSULE-level decisions
//! (divisions, deaths, swaps, locks, sections) as a readable timeline —
//! the Figure 1 narrative ("on step 1, the architecture lets the first
//! component replicate ... on step 2, the architecture denies the
//! replication") reconstructed from a real run.
//!
//! Tracing is off by default; enable it with
//! [`crate::machine::Machine::enable_trace`] before running.

use std::fmt;

use capsule_core::codec::{CodecError, Reader, Writer};
use capsule_core::ids::WorkerId;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event happened.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// Event kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// An `nthr` request and its outcome.
    Division {
        /// Requesting worker.
        parent: WorkerId,
        /// The child, when granted.
        child: Option<WorkerId>,
        /// `"context"`, `"stack"`, `"deny:resource"`, `"deny:throttle"`,
        /// or `"deny:disabled"`.
        outcome: &'static str,
    },
    /// A worker's `kthr` completed.
    Death {
        /// The worker.
        worker: WorkerId,
        /// Its context slot.
        slot: usize,
    },
    /// A thread left its context for the stack.
    SwapOut {
        /// The worker.
        worker: WorkerId,
        /// The vacated slot.
        slot: usize,
    },
    /// A parked thread took a context.
    SwapIn {
        /// The worker.
        worker: WorkerId,
        /// The slot it received.
        slot: usize,
    },
    /// A lock was acquired immediately.
    LockAcquire {
        /// Acquiring slot.
        slot: usize,
        /// Locked address.
        addr: u64,
    },
    /// A lock attempt blocked.
    LockBlock {
        /// Blocked slot.
        slot: usize,
        /// Contended address.
        addr: u64,
    },
    /// Ownership moved to the oldest waiter.
    LockTransfer {
        /// New owner slot.
        to: usize,
        /// Address.
        addr: u64,
    },
    /// Section instrumentation.
    Mark {
        /// Section id.
        id: u16,
        /// Enter (true) or leave.
        enter: bool,
    },
    /// The machine halted.
    Halt,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>10}  ", self.cycle)?;
        match &self.kind {
            TraceKind::Division { parent, child: Some(c), outcome } => {
                write!(f, "{parent} divides -> {c} ({outcome})")
            }
            TraceKind::Division { parent, child: None, outcome } => {
                write!(f, "{parent} probe denied ({outcome})")
            }
            TraceKind::Death { worker, slot } => write!(f, "{worker} dies (ctx{slot})"),
            TraceKind::SwapOut { worker, slot } => {
                write!(f, "{worker} swapped out of ctx{slot}")
            }
            TraceKind::SwapIn { worker, slot } => write!(f, "{worker} swapped into ctx{slot}"),
            TraceKind::LockAcquire { slot, addr } => {
                write!(f, "ctx{slot} locks {addr:#x}")
            }
            TraceKind::LockBlock { slot, addr } => {
                write!(f, "ctx{slot} blocks on {addr:#x}")
            }
            TraceKind::LockTransfer { to, addr } => {
                write!(f, "lock {addr:#x} handed to ctx{to}")
            }
            TraceKind::Mark { id, enter: true } => write!(f, "section {id} enter"),
            TraceKind::Mark { id, enter: false } => write!(f, "section {id} leave"),
            TraceKind::Halt => write!(f, "halt"),
        }
    }
}

/// A bounded event log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    limit: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a log retaining at most `limit` events.
    pub fn new(limit: usize) -> Self {
        Trace { events: Vec::new(), limit, dropped: 0 }
    }

    /// Records an event (dropped silently past the limit, counted).
    pub fn push(&mut self, cycle: u64, kind: TraceKind) {
        if self.events.len() < self.limit {
            self.events.push(TraceEvent { cycle, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped because the limit was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retention limit this log was created with.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Serializes the log for checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.limit);
        w.u64(self.dropped);
        w.usize(self.events.len());
        for e in &self.events {
            w.u64(e.cycle);
            encode_kind(w, &e.kind);
        }
    }

    /// Inverse of [`Trace::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or ill-formed input.
    pub fn decode(r: &mut Reader<'_>) -> Result<Trace, CodecError> {
        let limit = r.usize()?;
        let dropped = r.u64()?;
        let n = r.usize()?;
        if n > limit {
            return Err(CodecError::Invalid("trace longer than its limit"));
        }
        let mut events = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let cycle = r.u64()?;
            events.push(TraceEvent { cycle, kind: decode_kind(r)? });
        }
        Ok(Trace { events, limit, dropped })
    }

    /// Renders the timeline.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:>10}  event", "cycle");
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        if self.dropped > 0 {
            let _ =
                writeln!(out, "... {} further events dropped (limit {})", self.dropped, self.limit);
        }
        out
    }
}

/// The division outcomes, in tag order. The trace stores them as
/// `&'static str` for zero-cost rendering; the codec maps them to and
/// from these indices.
const DIVISION_OUTCOMES: [&str; 5] =
    ["context", "stack", "deny:resource", "deny:throttle", "deny:disabled"];

fn encode_kind(w: &mut Writer, kind: &TraceKind) {
    match kind {
        TraceKind::Division { parent, child, outcome } => {
            w.u8(0);
            w.u32(parent.0);
            match child {
                None => w.u8(0),
                Some(c) => {
                    w.u8(1);
                    w.u32(c.0);
                }
            }
            let tag = DIVISION_OUTCOMES
                .iter()
                .position(|&o| o == *outcome)
                .expect("every division outcome is in the table");
            w.u8(tag as u8);
        }
        TraceKind::Death { worker, slot } => {
            w.u8(1);
            w.u32(worker.0);
            w.usize(*slot);
        }
        TraceKind::SwapOut { worker, slot } => {
            w.u8(2);
            w.u32(worker.0);
            w.usize(*slot);
        }
        TraceKind::SwapIn { worker, slot } => {
            w.u8(3);
            w.u32(worker.0);
            w.usize(*slot);
        }
        TraceKind::LockAcquire { slot, addr } => {
            w.u8(4);
            w.usize(*slot);
            w.u64(*addr);
        }
        TraceKind::LockBlock { slot, addr } => {
            w.u8(5);
            w.usize(*slot);
            w.u64(*addr);
        }
        TraceKind::LockTransfer { to, addr } => {
            w.u8(6);
            w.usize(*to);
            w.u64(*addr);
        }
        TraceKind::Mark { id, enter } => {
            w.u8(7);
            w.u32(*id as u32);
            w.bool(*enter);
        }
        TraceKind::Halt => w.u8(8),
    }
}

fn decode_kind(r: &mut Reader<'_>) -> Result<TraceKind, CodecError> {
    Ok(match r.u8()? {
        0 => {
            let parent = WorkerId(r.u32()?);
            let child = match r.u8()? {
                0 => None,
                1 => Some(WorkerId(r.u32()?)),
                _ => return Err(CodecError::Invalid("bad child tag")),
            };
            let tag = r.u8()? as usize;
            let outcome = *DIVISION_OUTCOMES
                .get(tag)
                .ok_or(CodecError::Invalid("bad division outcome tag"))?;
            TraceKind::Division { parent, child, outcome }
        }
        1 => TraceKind::Death { worker: WorkerId(r.u32()?), slot: r.usize()? },
        2 => TraceKind::SwapOut { worker: WorkerId(r.u32()?), slot: r.usize()? },
        3 => TraceKind::SwapIn { worker: WorkerId(r.u32()?), slot: r.usize()? },
        4 => TraceKind::LockAcquire { slot: r.usize()?, addr: r.u64()? },
        5 => TraceKind::LockBlock { slot: r.usize()?, addr: r.u64()? },
        6 => TraceKind::LockTransfer { to: r.usize()?, addr: r.u64()? },
        7 => {
            let id = r.u32()?;
            if id > u16::MAX as u32 {
                return Err(CodecError::Invalid("mark id out of range"));
            }
            TraceKind::Mark { id: id as u16, enter: r.bool()? }
        }
        8 => TraceKind::Halt,
        _ => return Err(CodecError::Invalid("bad trace event tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_render_and_limit() {
        let mut t = Trace::new(2);
        t.push(1, TraceKind::Halt);
        t.push(2, TraceKind::Mark { id: 3, enter: true });
        t.push(3, TraceKind::Halt);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        let r = t.render();
        assert!(r.contains("halt"));
        assert!(r.contains("section 3 enter"));
        assert!(r.contains("dropped"));
    }

    #[test]
    fn event_display_forms() {
        let cases: Vec<(TraceKind, &str)> = vec![
            (
                TraceKind::Division {
                    parent: WorkerId(0),
                    child: Some(WorkerId(1)),
                    outcome: "context",
                },
                "w0 divides -> w1 (context)",
            ),
            (
                TraceKind::Division { parent: WorkerId(2), child: None, outcome: "deny:throttle" },
                "w2 probe denied (deny:throttle)",
            ),
            (TraceKind::Death { worker: WorkerId(1), slot: 3 }, "w1 dies (ctx3)"),
            (TraceKind::SwapOut { worker: WorkerId(4), slot: 0 }, "w4 swapped out of ctx0"),
            (TraceKind::LockBlock { slot: 2, addr: 0x1000 }, "ctx2 blocks on 0x1000"),
        ];
        for (kind, want) in cases {
            let e = TraceEvent { cycle: 7, kind };
            assert!(e.to_string().contains(want), "{e}");
        }
    }
}
