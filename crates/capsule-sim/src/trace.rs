//! Selective event tracing: the machine's CAPSULE-level decisions
//! (divisions, deaths, swaps, locks, sections) as a readable timeline —
//! the Figure 1 narrative ("on step 1, the architecture lets the first
//! component replicate ... on step 2, the architecture denies the
//! replication") reconstructed from a real run.
//!
//! Tracing is off by default; enable it with
//! [`crate::machine::Machine::enable_trace`] before running.

use std::fmt;

use capsule_core::ids::WorkerId;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event happened.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// Event kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// An `nthr` request and its outcome.
    Division {
        /// Requesting worker.
        parent: WorkerId,
        /// The child, when granted.
        child: Option<WorkerId>,
        /// `"context"`, `"stack"`, `"deny:resource"`, `"deny:throttle"`,
        /// or `"deny:disabled"`.
        outcome: &'static str,
    },
    /// A worker's `kthr` completed.
    Death {
        /// The worker.
        worker: WorkerId,
        /// Its context slot.
        slot: usize,
    },
    /// A thread left its context for the stack.
    SwapOut {
        /// The worker.
        worker: WorkerId,
        /// The vacated slot.
        slot: usize,
    },
    /// A parked thread took a context.
    SwapIn {
        /// The worker.
        worker: WorkerId,
        /// The slot it received.
        slot: usize,
    },
    /// A lock was acquired immediately.
    LockAcquire {
        /// Acquiring slot.
        slot: usize,
        /// Locked address.
        addr: u64,
    },
    /// A lock attempt blocked.
    LockBlock {
        /// Blocked slot.
        slot: usize,
        /// Contended address.
        addr: u64,
    },
    /// Ownership moved to the oldest waiter.
    LockTransfer {
        /// New owner slot.
        to: usize,
        /// Address.
        addr: u64,
    },
    /// Section instrumentation.
    Mark {
        /// Section id.
        id: u16,
        /// Enter (true) or leave.
        enter: bool,
    },
    /// The machine halted.
    Halt,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>10}  ", self.cycle)?;
        match &self.kind {
            TraceKind::Division { parent, child: Some(c), outcome } => {
                write!(f, "{parent} divides -> {c} ({outcome})")
            }
            TraceKind::Division { parent, child: None, outcome } => {
                write!(f, "{parent} probe denied ({outcome})")
            }
            TraceKind::Death { worker, slot } => write!(f, "{worker} dies (ctx{slot})"),
            TraceKind::SwapOut { worker, slot } => {
                write!(f, "{worker} swapped out of ctx{slot}")
            }
            TraceKind::SwapIn { worker, slot } => write!(f, "{worker} swapped into ctx{slot}"),
            TraceKind::LockAcquire { slot, addr } => {
                write!(f, "ctx{slot} locks {addr:#x}")
            }
            TraceKind::LockBlock { slot, addr } => {
                write!(f, "ctx{slot} blocks on {addr:#x}")
            }
            TraceKind::LockTransfer { to, addr } => {
                write!(f, "lock {addr:#x} handed to ctx{to}")
            }
            TraceKind::Mark { id, enter: true } => write!(f, "section {id} enter"),
            TraceKind::Mark { id, enter: false } => write!(f, "section {id} leave"),
            TraceKind::Halt => write!(f, "halt"),
        }
    }
}

/// A bounded event log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    limit: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a log retaining at most `limit` events.
    pub fn new(limit: usize) -> Self {
        Trace { events: Vec::new(), limit, dropped: 0 }
    }

    /// Records an event (dropped silently past the limit, counted).
    pub fn push(&mut self, cycle: u64, kind: TraceKind) {
        if self.events.len() < self.limit {
            self.events.push(TraceEvent { cycle, kind });
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped because the limit was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retention limit this log was created with.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Renders the timeline.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:>10}  event", "cycle");
        for e in &self.events {
            let _ = writeln!(out, "{e}");
        }
        if self.dropped > 0 {
            let _ =
                writeln!(out, "... {} further events dropped (limit {})", self.dropped, self.limit);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_render_and_limit() {
        let mut t = Trace::new(2);
        t.push(1, TraceKind::Halt);
        t.push(2, TraceKind::Mark { id: 3, enter: true });
        t.push(3, TraceKind::Halt);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        let r = t.render();
        assert!(r.contains("halt"));
        assert!(r.contains("section 3 enter"));
        assert!(r.contains("dropped"));
    }

    #[test]
    fn event_display_forms() {
        let cases: Vec<(TraceKind, &str)> = vec![
            (
                TraceKind::Division {
                    parent: WorkerId(0),
                    child: Some(WorkerId(1)),
                    outcome: "context",
                },
                "w0 divides -> w1 (context)",
            ),
            (
                TraceKind::Division { parent: WorkerId(2), child: None, outcome: "deny:throttle" },
                "w2 probe denied (deny:throttle)",
            ),
            (TraceKind::Death { worker: WorkerId(1), slot: 3 }, "w1 dies (ctx3)"),
            (TraceKind::SwapOut { worker: WorkerId(4), slot: 0 }, "w4 swapped out of ctx0"),
            (TraceKind::LockBlock { slot: 2, addr: 0x1000 }, "ctx2 blocks on 0x1000"),
        ];
        for (kind, want) in cases {
            let e = TraceEvent { cycle: 7, kind };
            assert!(e.to_string().contains(want), "{e}");
        }
    }
}
