//! Internal pipeline structures of the SOMT machine: hardware-context
//! slots, per-thread front-end and window bookkeeping, and the LIFO
//! context stack. The in-flight entries themselves live in the machine's
//! [`crate::arena::EntryArena`]; threads hold dense arena indices.

use std::collections::VecDeque;

use capsule_core::codec::{CodecError, Reader, Writer};

use crate::arena::EntryRef;
use crate::exec::ArchState;

/// Capacity of one thread's fetch queue (the paper uses a double
/// 16-instruction buffer shared by 4 fetching threads).
pub(crate) const FETCH_QUEUE_CAP: usize = 16;

/// What a draining thread does once its in-flight instructions retire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AfterDrain {
    /// `kthr`: free the context, record the death.
    Die,
    /// Swap policy: exchange this thread with the top of the context stack.
    SwapOut,
}

/// State of one hardware context slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotState {
    /// No thread resident.
    Free,
    /// Fetching and dispatching.
    Active,
    /// Dispatch stalled until the mispredicted branch entry completes;
    /// fetch is flushed and resumes at `resume_pc`.
    WaitBranch {
        /// The mispredicted branch entry (generation-checked: if it
        /// retires before the check, it necessarily completed).
        entry: EntryRef,
        /// Correct continuation pc.
        resume_pc: u32,
    },
    /// Blocked in the lock table; woken by an ownership transfer.
    WaitLock {
        /// Cycle at which the stall began (for stall-cycle accounting).
        since: u64,
    },
    /// Child thread waiting for the division register copy.
    WaitCopy {
        /// First cycle at which the thread may fetch.
        until: u64,
    },
    /// Thread being restored from the context stack.
    SwapIn {
        /// First cycle at which the thread may fetch.
        until: u64,
    },
    /// No longer fetching; when the last in-flight entry retires the
    /// action is taken.
    Draining(AfterDrain),
}

impl SlotState {
    /// Serializes the state for checkpoints.
    pub fn encode(self, w: &mut Writer) {
        match self {
            SlotState::Free => w.u8(0),
            SlotState::Active => w.u8(1),
            SlotState::WaitBranch { entry, resume_pc } => {
                w.u8(2);
                entry.encode(w);
                w.u32(resume_pc);
            }
            SlotState::WaitLock { since } => {
                w.u8(3);
                w.u64(since);
            }
            SlotState::WaitCopy { until } => {
                w.u8(4);
                w.u64(until);
            }
            SlotState::SwapIn { until } => {
                w.u8(5);
                w.u64(until);
            }
            SlotState::Draining(AfterDrain::Die) => w.u8(6),
            SlotState::Draining(AfterDrain::SwapOut) => w.u8(7),
        }
    }

    /// Inverse of [`SlotState::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated input or an unknown tag.
    pub fn decode(r: &mut Reader<'_>) -> Result<SlotState, CodecError> {
        Ok(match r.u8()? {
            0 => SlotState::Free,
            1 => SlotState::Active,
            2 => SlotState::WaitBranch { entry: EntryRef::decode(r)?, resume_pc: r.u32()? },
            3 => SlotState::WaitLock { since: r.u64()? },
            4 => SlotState::WaitCopy { until: r.u64()? },
            5 => SlotState::SwapIn { until: r.u64()? },
            6 => SlotState::Draining(AfterDrain::Die),
            7 => SlotState::Draining(AfterDrain::SwapOut),
            _ => return Err(CodecError::Invalid("bad slot state tag")),
        })
    }
}

/// One instruction fetched but not yet dispatched.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fetched {
    pub pc: u32,
    /// For conditional branches: the direction fetch predicted.
    pub predicted_taken: bool,
}

/// A thread resident in a hardware context slot.
#[derive(Debug, Clone)]
pub(crate) struct Thread {
    pub arch: ArchState,
    /// Next pc to fetch; `None` while fetch is stalled (indirect jump,
    /// mispredict flush, death).
    pub fetch_pc: Option<u32>,
    pub fetch_queue: VecDeque<Fetched>,
    /// Global branch history for the predictor.
    pub bp_history: u64,
    /// Arena indices of in-flight entries, in program order.
    pub in_flight: VecDeque<u32>,
    /// Arena indices of in-flight entries whose operands are all
    /// complete but which have not issued yet (waiting for issue
    /// bandwidth or a functional unit). Maintained by the wakeup chains;
    /// an entry enters exactly once.
    pub ready: Vec<u32>,
    /// Per-register last writer (renaming). Generation-checked: a
    /// reference whose entry retired reads as complete.
    pub last_writer_int: [Option<EntryRef>; 32],
    pub last_writer_fp: [Option<EntryRef>; 32],
    /// Dispatch suppressed until this cycle (division copy stall, lock
    /// squash penalty).
    pub dispatch_block_until: u64,
    /// Fetch suppressed until this cycle (I-cache miss, redirect penalty).
    pub fetch_block_until: u64,
    /// Slow-load counter of the swap heuristic.
    pub slow_counter: i64,
    /// Locks currently owned by this thread. A thread holding hardware
    /// locks is not eligible for swap-out: ownership lives in the lock
    /// table per context slot, and the slot is about to be handed to
    /// another thread.
    pub locks_held: u32,
}

impl Thread {
    pub fn new(arch: ArchState) -> Self {
        let pc = arch.pc;
        Thread {
            arch,
            fetch_pc: Some(pc),
            fetch_queue: VecDeque::new(),
            bp_history: 0,
            in_flight: VecDeque::new(),
            ready: Vec::new(),
            last_writer_int: [None; 32],
            last_writer_fp: [None; 32],
            dispatch_block_until: 0,
            fetch_block_until: 0,
            slow_counter: 0,
            locks_held: 0,
        }
    }

    /// Front-end occupancy used by the ICount fetch policy.
    pub fn icount(&self) -> usize {
        self.fetch_queue.len() + self.in_flight.len()
    }

    /// Flushes the fetch queue (mispredict recovery, death).
    pub fn flush_frontend(&mut self) {
        self.fetch_queue.clear();
        self.fetch_pc = None;
    }

    /// Serializes the complete thread image for checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        self.arch.encode(w);
        w.opt_u64(self.fetch_pc.map(u64::from));
        w.usize(self.fetch_queue.len());
        for f in &self.fetch_queue {
            w.u32(f.pc);
            w.bool(f.predicted_taken);
        }
        w.u64(self.bp_history);
        w.usize(self.in_flight.len());
        for &idx in &self.in_flight {
            w.u32(idx);
        }
        w.usize(self.ready.len());
        for &idx in &self.ready {
            w.u32(idx);
        }
        for table in [&self.last_writer_int, &self.last_writer_fp] {
            for lw in table {
                match lw {
                    None => w.u8(0),
                    Some(e) => {
                        w.u8(1);
                        e.encode(w);
                    }
                }
            }
        }
        w.u64(self.dispatch_block_until);
        w.u64(self.fetch_block_until);
        w.i64(self.slow_counter);
        w.u32(self.locks_held);
    }

    /// Inverse of [`Thread::encode`]; `arena_len` bounds the window
    /// indices the thread may reference.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or ill-formed input (dangling arena
    /// indices, oversized queues).
    pub fn decode(r: &mut Reader<'_>, arena_len: usize) -> Result<Thread, CodecError> {
        let arch = ArchState::decode(r)?;
        let fetch_pc = match r.opt_u64()? {
            None => None,
            Some(pc) => {
                Some(u32::try_from(pc).map_err(|_| CodecError::Invalid("fetch pc out of range"))?)
            }
        };
        let nq = r.usize()?;
        if nq > FETCH_QUEUE_CAP {
            return Err(CodecError::Invalid("fetch queue over capacity"));
        }
        let mut fetch_queue = VecDeque::with_capacity(nq);
        for _ in 0..nq {
            fetch_queue.push_back(Fetched { pc: r.u32()?, predicted_taken: r.bool()? });
        }
        let bp_history = r.u64()?;
        let idx_list = |r: &mut Reader<'_>| -> Result<Vec<u32>, CodecError> {
            let n = r.usize()?;
            if n > arena_len {
                return Err(CodecError::Invalid("window list larger than arena"));
            }
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let idx = r.u32()?;
                if idx as usize >= arena_len {
                    return Err(CodecError::Invalid("window index out of range"));
                }
                v.push(idx);
            }
            Ok(v)
        };
        let in_flight: VecDeque<u32> = idx_list(r)?.into();
        let ready = idx_list(r)?;
        let mut last_writer_int = [None; 32];
        let mut last_writer_fp = [None; 32];
        for table in [&mut last_writer_int, &mut last_writer_fp] {
            for lw in table.iter_mut() {
                *lw = match r.u8()? {
                    0 => None,
                    1 => Some(EntryRef::decode(r)?),
                    _ => return Err(CodecError::Invalid("bad last-writer tag")),
                };
            }
        }
        Ok(Thread {
            arch,
            fetch_pc,
            fetch_queue,
            bp_history,
            in_flight,
            ready,
            last_writer_int,
            last_writer_fp,
            dispatch_block_until: r.u64()?,
            fetch_block_until: r.u64()?,
            slow_counter: r.i64()?,
            locks_held: r.u32()?,
        })
    }
}

/// A thread image parked on the LIFO context stack.
#[derive(Debug, Clone)]
pub(crate) struct SavedThread {
    pub arch: ArchState,
}

/// The LIFO context stack of the paper (16 entries, ~4 kB).
#[derive(Debug, Clone)]
pub(crate) struct ContextStack {
    entries: Vec<SavedThread>,
    capacity: usize,
}

impl ContextStack {
    pub fn new(capacity: usize) -> Self {
        ContextStack { entries: Vec::new(), capacity }
    }

    pub fn free_slots(&self) -> usize {
        self.capacity - self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pushes a saved thread.
    ///
    /// # Panics
    ///
    /// Panics if the stack is full; callers must check [`free_slots`]
    /// first (the paper notes a full design would trap to memory).
    ///
    /// [`free_slots`]: ContextStack::free_slots
    pub fn push(&mut self, t: SavedThread) {
        assert!(self.entries.len() < self.capacity, "context stack overflow");
        self.entries.push(t);
    }

    /// Pops the most recently pushed thread (LIFO).
    pub fn pop(&mut self) -> Option<SavedThread> {
        self.entries.pop()
    }

    /// Serializes the parked thread images, bottom first.
    pub fn encode(&self, w: &mut Writer) {
        w.usize(self.capacity);
        w.usize(self.entries.len());
        for t in &self.entries {
            t.arch.encode(w);
        }
    }

    /// Restores a stack written by [`ContextStack::encode`] into a stack
    /// of the same capacity.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] on capacity mismatch or overflow, or on
    /// truncated input.
    pub fn decode_into(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        let capacity = r.usize()?;
        if capacity != self.capacity {
            return Err(CodecError::Invalid("context stack capacity mismatch"));
        }
        let n = r.usize()?;
        if n > capacity {
            return Err(CodecError::Invalid("context stack overflow"));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push(SavedThread { arch: ArchState::decode(r)? });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::ids::WorkerId;

    #[test]
    fn icount_counts_frontend_and_window() {
        let mut t = Thread::new(ArchState::new(0, WorkerId(0)));
        t.fetch_queue.push_back(Fetched { pc: 0, predicted_taken: false });
        t.in_flight.push_back(3);
        assert_eq!(t.icount(), 2);
    }

    #[test]
    fn context_stack_is_lifo_and_bounded() {
        let mut s = ContextStack::new(2);
        assert_eq!(s.free_slots(), 2);
        s.push(SavedThread { arch: ArchState::new(1, WorkerId(1)) });
        s.push(SavedThread { arch: ArchState::new(2, WorkerId(2)) });
        assert_eq!(s.free_slots(), 0);
        assert_eq!(s.pop().unwrap().arch.pc, 2);
        assert_eq!(s.pop().unwrap().arch.pc, 1);
        assert!(s.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn context_stack_overflow_panics() {
        let mut s = ContextStack::new(1);
        s.push(SavedThread { arch: ArchState::new(0, WorkerId(0)) });
        s.push(SavedThread { arch: ArchState::new(1, WorkerId(1)) });
    }

    #[test]
    fn flush_frontend_clears_queue_and_pc() {
        let mut t = Thread::new(ArchState::new(0, WorkerId(0)));
        t.fetch_queue.push_back(Fetched { pc: 0, predicted_taken: true });
        t.flush_frontend();
        assert!(t.fetch_queue.is_empty());
        assert_eq!(t.fetch_pc, None);
    }
}
