//! Internal pipeline structures of the SOMT machine: hardware-context
//! slots, per-thread front-end and window bookkeeping, and the LIFO
//! context stack. The in-flight entries themselves live in the machine's
//! [`crate::arena::EntryArena`]; threads hold dense arena indices.

use std::collections::VecDeque;

use crate::arena::EntryRef;
use crate::exec::ArchState;

/// Capacity of one thread's fetch queue (the paper uses a double
/// 16-instruction buffer shared by 4 fetching threads).
pub(crate) const FETCH_QUEUE_CAP: usize = 16;

/// What a draining thread does once its in-flight instructions retire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AfterDrain {
    /// `kthr`: free the context, record the death.
    Die,
    /// Swap policy: exchange this thread with the top of the context stack.
    SwapOut,
}

/// State of one hardware context slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotState {
    /// No thread resident.
    Free,
    /// Fetching and dispatching.
    Active,
    /// Dispatch stalled until the mispredicted branch entry completes;
    /// fetch is flushed and resumes at `resume_pc`.
    WaitBranch {
        /// The mispredicted branch entry (generation-checked: if it
        /// retires before the check, it necessarily completed).
        entry: EntryRef,
        /// Correct continuation pc.
        resume_pc: u32,
    },
    /// Blocked in the lock table; woken by an ownership transfer.
    WaitLock {
        /// Cycle at which the stall began (for stall-cycle accounting).
        since: u64,
    },
    /// Child thread waiting for the division register copy.
    WaitCopy {
        /// First cycle at which the thread may fetch.
        until: u64,
    },
    /// Thread being restored from the context stack.
    SwapIn {
        /// First cycle at which the thread may fetch.
        until: u64,
    },
    /// No longer fetching; when the last in-flight entry retires the
    /// action is taken.
    Draining(AfterDrain),
}

/// One instruction fetched but not yet dispatched.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fetched {
    pub pc: u32,
    /// For conditional branches: the direction fetch predicted.
    pub predicted_taken: bool,
}

/// A thread resident in a hardware context slot.
#[derive(Debug, Clone)]
pub(crate) struct Thread {
    pub arch: ArchState,
    /// Next pc to fetch; `None` while fetch is stalled (indirect jump,
    /// mispredict flush, death).
    pub fetch_pc: Option<u32>,
    pub fetch_queue: VecDeque<Fetched>,
    /// Global branch history for the predictor.
    pub bp_history: u64,
    /// Arena indices of in-flight entries, in program order.
    pub in_flight: VecDeque<u32>,
    /// Arena indices of in-flight entries whose operands are all
    /// complete but which have not issued yet (waiting for issue
    /// bandwidth or a functional unit). Maintained by the wakeup chains;
    /// an entry enters exactly once.
    pub ready: Vec<u32>,
    /// Per-register last writer (renaming). Generation-checked: a
    /// reference whose entry retired reads as complete.
    pub last_writer_int: [Option<EntryRef>; 32],
    pub last_writer_fp: [Option<EntryRef>; 32],
    /// Dispatch suppressed until this cycle (division copy stall, lock
    /// squash penalty).
    pub dispatch_block_until: u64,
    /// Fetch suppressed until this cycle (I-cache miss, redirect penalty).
    pub fetch_block_until: u64,
    /// Slow-load counter of the swap heuristic.
    pub slow_counter: i64,
    /// Locks currently owned by this thread. A thread holding hardware
    /// locks is not eligible for swap-out: ownership lives in the lock
    /// table per context slot, and the slot is about to be handed to
    /// another thread.
    pub locks_held: u32,
}

impl Thread {
    pub fn new(arch: ArchState) -> Self {
        let pc = arch.pc;
        Thread {
            arch,
            fetch_pc: Some(pc),
            fetch_queue: VecDeque::new(),
            bp_history: 0,
            in_flight: VecDeque::new(),
            ready: Vec::new(),
            last_writer_int: [None; 32],
            last_writer_fp: [None; 32],
            dispatch_block_until: 0,
            fetch_block_until: 0,
            slow_counter: 0,
            locks_held: 0,
        }
    }

    /// Front-end occupancy used by the ICount fetch policy.
    pub fn icount(&self) -> usize {
        self.fetch_queue.len() + self.in_flight.len()
    }

    /// Flushes the fetch queue (mispredict recovery, death).
    pub fn flush_frontend(&mut self) {
        self.fetch_queue.clear();
        self.fetch_pc = None;
    }
}

/// A thread image parked on the LIFO context stack.
#[derive(Debug, Clone)]
pub(crate) struct SavedThread {
    pub arch: ArchState,
}

/// The LIFO context stack of the paper (16 entries, ~4 kB).
#[derive(Debug, Clone)]
pub(crate) struct ContextStack {
    entries: Vec<SavedThread>,
    capacity: usize,
}

impl ContextStack {
    pub fn new(capacity: usize) -> Self {
        ContextStack { entries: Vec::new(), capacity }
    }

    pub fn free_slots(&self) -> usize {
        self.capacity - self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pushes a saved thread.
    ///
    /// # Panics
    ///
    /// Panics if the stack is full; callers must check [`free_slots`]
    /// first (the paper notes a full design would trap to memory).
    ///
    /// [`free_slots`]: ContextStack::free_slots
    pub fn push(&mut self, t: SavedThread) {
        assert!(self.entries.len() < self.capacity, "context stack overflow");
        self.entries.push(t);
    }

    /// Pops the most recently pushed thread (LIFO).
    pub fn pop(&mut self) -> Option<SavedThread> {
        self.entries.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::ids::WorkerId;

    #[test]
    fn icount_counts_frontend_and_window() {
        let mut t = Thread::new(ArchState::new(0, WorkerId(0)));
        t.fetch_queue.push_back(Fetched { pc: 0, predicted_taken: false });
        t.in_flight.push_back(3);
        assert_eq!(t.icount(), 2);
    }

    #[test]
    fn context_stack_is_lifo_and_bounded() {
        let mut s = ContextStack::new(2);
        assert_eq!(s.free_slots(), 2);
        s.push(SavedThread { arch: ArchState::new(1, WorkerId(1)) });
        s.push(SavedThread { arch: ArchState::new(2, WorkerId(2)) });
        assert_eq!(s.free_slots(), 0);
        assert_eq!(s.pop().unwrap().arch.pc, 2);
        assert_eq!(s.pop().unwrap().arch.pc, 1);
        assert!(s.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn context_stack_overflow_panics() {
        let mut s = ContextStack::new(1);
        s.push(SavedThread { arch: ArchState::new(0, WorkerId(0)) });
        s.push(SavedThread { arch: ArchState::new(1, WorkerId(1)) });
    }

    #[test]
    fn flush_frontend_clears_queue_and_pc() {
        let mut t = Thread::new(ArchState::new(0, WorkerId(0)));
        t.fetch_queue.push_back(Fetched { pc: 0, predicted_taken: true });
        t.flush_frontend();
        assert!(t.fetch_queue.is_empty());
        assert_eq!(t.fetch_pc, None);
    }
}
