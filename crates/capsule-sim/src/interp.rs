//! Functional reference interpreter.
//!
//! Executes a program architecturally with round-robin thread scheduling
//! and a configurable worker cap, but **no timing model**. It shares the
//! instruction semantics of [`crate::exec`] with the cycle-level machine,
//! so it serves as the golden reference for differential tests: a correct
//! component program must produce the same output on both (the component
//! contract makes results schedule-independent).

use std::collections::{HashMap, VecDeque};

use capsule_core::ids::WorkerId;
use capsule_isa::program::{Program, ProgramError};

use crate::exec::{step, ArchState, Effect, Memory, OutValue, TrapKind};

/// Interpreter knobs.
#[derive(Debug, Clone, Copy)]
pub struct InterpConfig {
    /// `nthr` is granted while fewer than this many workers are live.
    pub max_workers: usize,
    /// When false, every `nthr` is denied (sequential-semantics check).
    pub allow_division: bool,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig { max_workers: 8, allow_division: true }
    }
}

/// How an interpreter run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// The program failed validation.
    Program(ProgramError),
    /// A thread trapped.
    Trap {
        /// Thread index.
        thread: usize,
        /// PC of the faulting instruction.
        pc: u32,
        /// Trap cause.
        kind: TrapKind,
    },
    /// `max_steps` elapsed without a `halt`.
    Timeout,
    /// Every thread died or blocked with no `halt` (deadlock or missing
    /// join).
    NoRunnableThreads,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Program(e) => write!(f, "invalid program: {e}"),
            InterpError::Trap { thread, pc, kind } => {
                write!(f, "thread {thread} trapped at pc {pc}: {kind}")
            }
            InterpError::Timeout => write!(f, "interpreter step budget exhausted"),
            InterpError::NoRunnableThreads => write!(f, "all threads dead or blocked"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<ProgramError> for InterpError {
    fn from(e: ProgramError) -> Self {
        InterpError::Program(e)
    }
}

/// Result of a completed (halted) run.
#[derive(Debug, Clone)]
pub struct InterpOutcome {
    /// Values emitted by `out`/`outf`, in execution order.
    pub output: Vec<OutValue>,
    /// Instructions executed.
    pub steps: u64,
    /// Division requests observed.
    pub divisions_requested: u64,
    /// Division requests granted.
    pub divisions_granted: u64,
    /// Largest number of simultaneously live workers.
    pub max_live_workers: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    Blocked,
    Dead,
}

#[derive(Debug)]
struct IThread {
    arch: ArchState,
    state: TState,
}

/// The interpreter.
#[derive(Debug)]
pub struct Interp {
    text: Vec<capsule_isa::instr::Instr>,
    mem: Memory,
    threads: Vec<IThread>,
    locks: HashMap<u64, (usize, VecDeque<usize>)>,
    output: Vec<OutValue>,
    cfg: InterpConfig,
    steps: u64,
    divisions_requested: u64,
    divisions_granted: u64,
    next_worker: u32,
    max_live: usize,
}

impl Interp {
    /// Loads `program`.
    ///
    /// # Errors
    ///
    /// Propagates [`ProgramError`] from validation.
    pub fn new(program: &Program, cfg: InterpConfig) -> Result<Self, InterpError> {
        program.validate()?;
        let mem = Memory::new(program.mem_size, capsule_isa::DATA_BASE, &program.data);
        let mut threads = Vec::new();
        for (i, t) in program.threads.iter().enumerate() {
            let mut arch = ArchState::new(t.pc, WorkerId(i as u32));
            for &(r, v) in &t.int_regs {
                arch.set(r, v);
            }
            for &(f, v) in &t.fp_regs {
                arch.setf(f, v);
            }
            threads.push(IThread { arch, state: TState::Runnable });
        }
        let n = threads.len();
        Ok(Interp {
            text: program.text.clone(),
            mem,
            threads,
            locks: HashMap::new(),
            output: Vec::new(),
            cfg,
            steps: 0,
            divisions_requested: 0,
            divisions_granted: 0,
            next_worker: n as u32,
            max_live: n,
        })
    }

    fn live(&self) -> usize {
        self.threads.iter().filter(|t| t.state != TState::Dead).count()
    }

    /// Runs until `halt`, a trap, deadlock, or `max_steps`.
    ///
    /// # Errors
    ///
    /// See [`InterpError`].
    pub fn run(&mut self, max_steps: u64) -> Result<InterpOutcome, InterpError> {
        loop {
            let mut progressed = false;
            for idx in 0..self.threads.len() {
                if self.threads[idx].state != TState::Runnable {
                    continue;
                }
                progressed = true;
                if self.steps >= max_steps {
                    return Err(InterpError::Timeout);
                }
                self.steps += 1;
                let pc = self.threads[idx].arch.pc;
                let instr = *self.text.get(pc as usize).ok_or(InterpError::Trap {
                    thread: idx,
                    pc,
                    kind: TrapKind::BadPc(pc),
                })?;
                let out = step(&mut self.threads[idx].arch, &instr, &mut self.mem)
                    .map_err(|kind| InterpError::Trap { thread: idx, pc, kind })?;
                match out.effect {
                    Effect::None => {}
                    Effect::Out(v) => self.output.push(v),
                    Effect::Halt => {
                        return Ok(InterpOutcome {
                            output: std::mem::take(&mut self.output),
                            steps: self.steps,
                            divisions_requested: self.divisions_requested,
                            divisions_granted: self.divisions_granted,
                            max_live_workers: self.max_live,
                        });
                    }
                    Effect::Kthr => {
                        self.threads[idx].state = TState::Dead;
                    }
                    Effect::Nthr { rd, target } => {
                        self.divisions_requested += 1;
                        let grant = self.cfg.allow_division && self.live() < self.cfg.max_workers;
                        if grant {
                            self.divisions_granted += 1;
                            let mut child = self.threads[idx].arch.clone();
                            child.pc = target;
                            child.set(rd, 1);
                            child.worker = WorkerId(self.next_worker);
                            self.next_worker += 1;
                            self.threads[idx].arch.set(rd, 0);
                            self.threads.push(IThread { arch: child, state: TState::Runnable });
                            self.max_live = self.max_live.max(self.live());
                        } else {
                            self.threads[idx].arch.set(rd, -1);
                        }
                    }
                    Effect::Mlock(addr) => match self.locks.get_mut(&addr) {
                        None => {
                            self.locks.insert(addr, (idx, VecDeque::new()));
                        }
                        Some((owner, waiters)) => {
                            if *owner == idx {
                                return Err(InterpError::Trap {
                                    thread: idx,
                                    pc,
                                    kind: TrapKind::RelockOwned(addr),
                                });
                            }
                            waiters.push_back(idx);
                            self.threads[idx].state = TState::Blocked;
                        }
                    },
                    Effect::Munlock(addr) => match self.locks.get_mut(&addr) {
                        Some((owner, waiters)) if *owner == idx => {
                            if let Some(next) = waiters.pop_front() {
                                *owner = next;
                                self.threads[next].state = TState::Runnable;
                            } else {
                                self.locks.remove(&addr);
                            }
                        }
                        _ => {
                            return Err(InterpError::Trap {
                                thread: idx,
                                pc,
                                kind: TrapKind::BadUnlock(addr),
                            });
                        }
                    },
                    Effect::Nctx(rd) => {
                        let free = self.cfg.max_workers.saturating_sub(self.live());
                        self.threads[idx].arch.set(rd, free as i64);
                    }
                    Effect::MarkStart(_) | Effect::MarkEnd(_) => {}
                }
            }
            if !progressed {
                return Err(InterpError::NoRunnableThreads);
            }
        }
    }

    /// Read access to data memory (result checking).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_isa::asm::Asm;
    use capsule_isa::program::{DataBuilder, ThreadSpec};
    use capsule_isa::reg::Reg;

    fn prog(build: impl FnOnce(&mut Asm), threads: Vec<ThreadSpec>) -> Program {
        let mut a = Asm::new();
        build(&mut a);
        let mut p = Program::new(a.assemble().unwrap(), DataBuilder::new().build(), 1 << 16);
        p.threads = threads;
        p
    }

    #[test]
    fn loop_sums_correctly() {
        let p = prog(
            |a| {
                a.li(Reg(1), 10);
                a.li(Reg(2), 0);
                a.bind("loop");
                a.add(Reg(2), Reg(2), Reg(1));
                a.addi(Reg(1), Reg(1), -1);
                a.bne(Reg(1), Reg::ZERO, "loop");
                a.out(Reg(2));
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        let out = Interp::new(&p, InterpConfig::default()).unwrap().run(10_000).unwrap();
        assert_eq!(out.output, vec![OutValue::Int(55)]);
    }

    #[test]
    fn division_grants_until_cap() {
        // Each worker divides once; with cap 4 we should see 3 grants
        // (1 -> 2 -> 3 -> 4 live).
        let p = prog(
            |a| {
                a.bind("worker");
                a.nthr(Reg(9), "worker");
                // Fall through for parent/denied; child re-enters worker and
                // immediately tries to divide again.
                a.li(Reg(1), 0);
                a.bind("spin");
                a.addi(Reg(1), Reg(1), 1);
                a.slti(Reg(2), Reg(1), 50);
                a.bne(Reg(2), Reg::ZERO, "spin");
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        let mut i = Interp::new(&p, InterpConfig { max_workers: 4, allow_division: true }).unwrap();
        let out = i.run(100_000).unwrap();
        assert_eq!(out.divisions_granted, 3);
        assert_eq!(out.max_live_workers, 4);
    }

    #[test]
    fn division_denied_writes_minus_one() {
        let p = prog(
            |a| {
                a.nthr(Reg(5), "child");
                a.out(Reg(5));
                a.halt();
                a.bind("child");
                a.kthr();
            },
            vec![ThreadSpec::at(0)],
        );
        let mut i =
            Interp::new(&p, InterpConfig { max_workers: 8, allow_division: false }).unwrap();
        let out = i.run(1000).unwrap();
        assert_eq!(out.output, vec![OutValue::Int(-1)]);
        assert_eq!(out.divisions_requested, 1);
        assert_eq!(out.divisions_granted, 0);
    }

    #[test]
    fn locks_serialize_increments() {
        // Two loader threads each add 1 to a counter 100 times under a lock.
        let mut d = DataBuilder::new();
        let counter = d.word(0);
        let done = d.word(0);
        let mut a = Asm::new();
        let (rc, rv, ri, rd_, r_done) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        a.bind("worker");
        a.li(rc, counter as i64);
        a.li(ri, 100);
        a.bind("loop");
        a.mlock(rc);
        a.ld(rv, 0, rc);
        a.addi(rv, rv, 1);
        a.st(rv, 0, rc);
        a.munlock(rc);
        a.addi(ri, ri, -1);
        a.bne(ri, Reg::ZERO, "loop");
        // Signal completion.
        a.li(rd_, done as i64);
        a.mlock(rd_);
        a.ld(r_done, 0, rd_);
        a.addi(r_done, r_done, 1);
        a.st(r_done, 0, rd_);
        a.munlock(rd_);
        // First finisher spins; thread 0 waits for done == 2 then halts.
        a.tid(Reg(6));
        a.bne(Reg(6), Reg::ZERO, "park");
        a.bind("wait");
        a.ld(r_done, 0, rd_);
        a.li(Reg(7), 2);
        a.bne(r_done, Reg(7), "wait");
        a.ld(rv, 0, rc);
        a.out(rv);
        a.halt();
        a.bind("park");
        a.kthr();
        let mut p = Program::new(a.assemble().unwrap(), d.build(), 1 << 16);
        p.threads = vec![ThreadSpec::at(0), ThreadSpec::at(0)];

        let out = Interp::new(&p, InterpConfig::default()).unwrap().run(1_000_000).unwrap();
        assert_eq!(out.output, vec![OutValue::Int(200)]);
    }

    #[test]
    fn deadlock_detected() {
        let p = prog(
            |a| {
                a.kthr();
            },
            vec![ThreadSpec::at(0)],
        );
        let e = Interp::new(&p, InterpConfig::default()).unwrap().run(1000);
        assert_eq!(e.unwrap_err(), InterpError::NoRunnableThreads);
    }

    #[test]
    fn timeout_detected() {
        let p = prog(
            |a| {
                a.bind("x");
                a.j("x");
            },
            vec![ThreadSpec::at(0)],
        );
        let e = Interp::new(&p, InterpConfig::default()).unwrap().run(100);
        assert_eq!(e.unwrap_err(), InterpError::Timeout);
    }

    #[test]
    fn trap_reports_pc() {
        let p = prog(
            |a| {
                a.li(Reg(1), 0);
                a.ld(Reg(2), 0, Reg(1));
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        match Interp::new(&p, InterpConfig::default()).unwrap().run(100) {
            Err(InterpError::Trap { pc: 1, kind: TrapKind::BadAddress(0), .. }) => {}
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn relock_is_a_trap() {
        let mut d = DataBuilder::new();
        let x = d.word(0);
        let p = {
            let mut a = Asm::new();
            a.li(Reg(1), x as i64);
            a.mlock(Reg(1));
            a.mlock(Reg(1));
            a.halt();
            let mut p = Program::new(a.assemble().unwrap(), d.build(), 1 << 16);
            p.threads = vec![ThreadSpec::at(0)];
            p
        };
        match Interp::new(&p, InterpConfig::default()).unwrap().run(100) {
            Err(InterpError::Trap { kind: TrapKind::RelockOwned(_), .. }) => {}
            other => panic!("expected relock trap, got {other:?}"),
        }
    }
}
