//! The fast lock table (paper §3.1, "Fast thread synchronization").
//!
//! `mlock` acquires a lock on a base address; when the lock is held by
//! another thread, the requester stalls and is queued. `munlock` hands the
//! lock to the **oldest** waiter, as in the paper ("when the locking thread
//! releases the lock, the oldest waiting thread becomes the new owner").

use std::collections::{HashMap, VecDeque};

use capsule_core::codec::{CodecError, Reader, Writer};

/// Result of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireResult {
    /// Lock acquired immediately.
    Acquired,
    /// Lock held by another thread; the requester is queued and must stall.
    Queued,
    /// The requester already owns this lock (a program bug — the paper's
    /// workers never re-lock).
    AlreadyOwner,
    /// The table is full; the paper's table is fixed-size, so this is a
    /// structural trap.
    TableFull,
}

/// Result of a release.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseResult {
    /// Released; nobody was waiting.
    Released,
    /// Released and ownership transferred to the oldest waiter (context
    /// slot returned).
    Transferred(usize),
    /// The releaser does not own this lock (program bug).
    NotOwner,
}

#[derive(Debug, Clone)]
struct LockEntry {
    owner: usize,
    waiters: VecDeque<usize>,
}

/// The fixed-capacity lock table.
#[derive(Debug, Clone)]
pub struct LockTable {
    entries: HashMap<u64, LockEntry>,
    capacity: usize,
}

impl LockTable {
    /// Builds a table with room for `capacity` simultaneously-locked
    /// addresses.
    pub fn new(capacity: usize) -> Self {
        LockTable { entries: HashMap::new(), capacity }
    }

    /// Attempts to acquire the lock on `addr` for thread `slot`.
    pub fn acquire(&mut self, addr: u64, slot: usize) -> AcquireResult {
        if let Some(e) = self.entries.get_mut(&addr) {
            if e.owner == slot {
                return AcquireResult::AlreadyOwner;
            }
            e.waiters.push_back(slot);
            return AcquireResult::Queued;
        }
        if self.entries.len() >= self.capacity {
            return AcquireResult::TableFull;
        }
        self.entries.insert(addr, LockEntry { owner: slot, waiters: VecDeque::new() });
        AcquireResult::Acquired
    }

    /// Releases the lock on `addr` held by `slot`.
    pub fn release(&mut self, addr: u64, slot: usize) -> ReleaseResult {
        match self.entries.get_mut(&addr) {
            None => ReleaseResult::NotOwner,
            Some(e) if e.owner != slot => ReleaseResult::NotOwner,
            Some(e) => match e.waiters.pop_front() {
                Some(next) => {
                    e.owner = next;
                    ReleaseResult::Transferred(next)
                }
                None => {
                    self.entries.remove(&addr);
                    ReleaseResult::Released
                }
            },
        }
    }

    /// Current owner of the lock on `addr`.
    pub fn owner(&self, addr: u64) -> Option<usize> {
        self.entries.get(&addr).map(|e| e.owner)
    }

    /// Number of addresses currently locked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no lock is held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total threads queued across all locks (for invariants).
    pub fn waiting(&self) -> usize {
        self.entries.values().map(|e| e.waiters.len()).sum()
    }

    /// Removes a thread from every waiter queue (used when a waiter is
    /// killed externally; does not affect owned locks).
    pub fn cancel_waiter(&mut self, slot: usize) {
        for e in self.entries.values_mut() {
            e.waiters.retain(|&w| w != slot);
        }
    }

    /// Serializes the held locks for checkpoints, sorted by address so
    /// the byte stream is deterministic regardless of hash order.
    pub fn encode(&self, w: &mut Writer) {
        let mut addrs: Vec<u64> = self.entries.keys().copied().collect();
        addrs.sort_unstable();
        w.usize(addrs.len());
        for addr in addrs {
            let e = &self.entries[&addr];
            w.u64(addr);
            w.usize(e.owner);
            w.usize(e.waiters.len());
            for &s in &e.waiters {
                w.usize(s);
            }
        }
    }

    /// Restores state written by [`LockTable::encode`] into a table of
    /// the same capacity.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] when the recorded locks exceed this
    /// table's capacity, or on truncated/ill-formed input.
    pub fn decode_into(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        self.entries.clear();
        let n = r.usize()?;
        if n > self.capacity {
            return Err(CodecError::Invalid("lock table over capacity"));
        }
        for _ in 0..n {
            let addr = r.u64()?;
            let owner = r.usize()?;
            let nw = r.usize()?;
            if nw > MAX_WAITERS {
                return Err(CodecError::Invalid("lock waiter list too large"));
            }
            let mut waiters = VecDeque::with_capacity(nw);
            for _ in 0..nw {
                waiters.push_back(r.usize()?);
            }
            if self.entries.insert(addr, LockEntry { owner, waiters }).is_some() {
                return Err(CodecError::Invalid("duplicate lock address"));
            }
        }
        Ok(())
    }
}

/// More waiters than any machine has context slots marks a corrupt blob.
const MAX_WAITERS: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut t = LockTable::new(4);
        assert_eq!(t.acquire(0x100, 0), AcquireResult::Acquired);
        assert_eq!(t.owner(0x100), Some(0));
        assert_eq!(t.release(0x100, 0), ReleaseResult::Released);
        assert!(t.is_empty());
    }

    #[test]
    fn contention_queues_and_transfers_fifo() {
        let mut t = LockTable::new(4);
        t.acquire(0x100, 0);
        assert_eq!(t.acquire(0x100, 1), AcquireResult::Queued);
        assert_eq!(t.acquire(0x100, 2), AcquireResult::Queued);
        // Oldest waiter (1) becomes the new owner.
        assert_eq!(t.release(0x100, 0), ReleaseResult::Transferred(1));
        assert_eq!(t.owner(0x100), Some(1));
        assert_eq!(t.release(0x100, 1), ReleaseResult::Transferred(2));
        assert_eq!(t.release(0x100, 2), ReleaseResult::Released);
    }

    #[test]
    fn reacquire_by_owner_detected() {
        let mut t = LockTable::new(4);
        t.acquire(0x100, 0);
        assert_eq!(t.acquire(0x100, 0), AcquireResult::AlreadyOwner);
    }

    #[test]
    fn release_by_non_owner_detected() {
        let mut t = LockTable::new(4);
        t.acquire(0x100, 0);
        assert_eq!(t.release(0x100, 1), ReleaseResult::NotOwner);
        assert_eq!(t.release(0x200, 0), ReleaseResult::NotOwner);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = LockTable::new(2);
        assert_eq!(t.acquire(1, 0), AcquireResult::Acquired);
        assert_eq!(t.acquire(2, 1), AcquireResult::Acquired);
        assert_eq!(t.acquire(3, 2), AcquireResult::TableFull);
        // Queuing on an existing lock is still possible when full.
        assert_eq!(t.acquire(1, 3), AcquireResult::Queued);
    }

    #[test]
    fn distinct_addresses_do_not_contend() {
        let mut t = LockTable::new(4);
        assert_eq!(t.acquire(0x100, 0), AcquireResult::Acquired);
        assert_eq!(t.acquire(0x108, 1), AcquireResult::Acquired);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cancel_waiter_removes_from_queues() {
        let mut t = LockTable::new(4);
        t.acquire(0x100, 0);
        t.acquire(0x100, 1);
        t.acquire(0x100, 2);
        t.cancel_waiter(1);
        assert_eq!(t.waiting(), 1);
        assert_eq!(t.release(0x100, 0), ReleaseResult::Transferred(2));
    }
}
