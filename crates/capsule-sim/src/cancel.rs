//! Cooperative cancellation of in-flight simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the code
//! driving a [`crate::machine::Machine`] and an external controller (a
//! job server, a timeout watchdog, a Ctrl-C handler). The machine polls
//! the token once per simulated cycle and aborts with
//! [`crate::SimError::Cancelled`] as soon as it is tripped, so a
//! long-running job stops within one cycle's worth of host work rather
//! than at its cycle budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning yields a handle to the same flag;
/// cancellation is sticky (there is no reset — make a new token instead).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token: every machine polling any clone of it stops at
    /// its next cycle boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        a.cancel();
        assert!(!CancelToken::new().is_cancelled());
    }
}
