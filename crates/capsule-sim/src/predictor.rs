//! Combined branch predictor (Table 1: 1K meta table choosing between a
//! 4K-entry bimodal table and an 8K-entry two-level, history-indexed
//! table).
//!
//! Global history is kept *per hardware context* by the machine (an SMT
//! sharing one history register across threads destroys it); the predictor
//! itself is stateless with respect to threads and takes the history as an
//! argument.

use capsule_core::codec::{CodecError, Reader, Writer};
use capsule_core::config::PredictorConfig;

/// Saturating 2-bit counter helpers.
fn bump(c: &mut u8, up: bool) {
    if up {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

fn taken(c: u8) -> bool {
    c >= 2
}

/// The combined predictor.
#[derive(Debug, Clone)]
pub struct Predictor {
    bimodal: Vec<u8>,
    two_level: Vec<u8>,
    meta: Vec<u8>,
    history_mask: u64,
    cfg: PredictorConfig,
}

impl Predictor {
    /// Builds the predictor described by `cfg`.
    ///
    /// All 2-bit counters initialize to weakly-taken (2), the conventional
    /// SimpleScalar reset state.
    pub fn new(cfg: PredictorConfig) -> Self {
        Predictor {
            bimodal: vec![2; cfg.bimodal_entries],
            two_level: vec![2; cfg.twolevel_entries],
            meta: vec![2; cfg.meta_entries],
            history_mask: (1u64 << cfg.history_bits.min(63)) - 1,
            cfg,
        }
    }

    fn bi_index(&self, pc: u32) -> usize {
        pc as usize % self.bimodal.len()
    }

    fn tl_index(&self, pc: u32, history: u64) -> usize {
        ((pc as u64) ^ (history & self.history_mask)) as usize % self.two_level.len()
    }

    fn meta_index(&self, pc: u32) -> usize {
        pc as usize % self.meta.len()
    }

    /// Predicts the direction of the conditional branch at `pc` under the
    /// thread's global `history`.
    pub fn predict(&self, pc: u32, history: u64) -> bool {
        let use_two_level = taken(self.meta[self.meta_index(pc)]);
        if use_two_level {
            taken(self.two_level[self.tl_index(pc, history)])
        } else {
            taken(self.bimodal[self.bi_index(pc)])
        }
    }

    /// Trains all tables with the resolved outcome, and returns the new
    /// history the thread should carry.
    pub fn update(&mut self, pc: u32, history: u64, was_taken: bool) -> u64 {
        let bi = self.bi_index(pc);
        let tl = self.tl_index(pc, history);
        let bi_correct = taken(self.bimodal[bi]) == was_taken;
        let tl_correct = taken(self.two_level[tl]) == was_taken;
        // Meta trains toward the component that was right when they differ.
        if bi_correct != tl_correct {
            let m = self.meta_index(pc);
            bump(&mut self.meta[m], tl_correct);
        }
        bump(&mut self.bimodal[bi], was_taken);
        bump(&mut self.two_level[tl], was_taken);
        ((history << 1) | was_taken as u64) & self.history_mask
    }

    /// Extra cycles charged on a misprediction, from the configuration.
    pub fn mispredict_penalty(&self) -> u64 {
        self.cfg.mispredict_penalty
    }

    /// Serializes the three counter tables for checkpoints (the
    /// configuration is rebuilt by the restoring machine).
    pub fn encode(&self, w: &mut Writer) {
        for table in [&self.bimodal, &self.two_level, &self.meta] {
            w.bytes(table);
        }
    }

    /// Restores tables written by [`Predictor::encode`] into a predictor
    /// of the same configuration.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] on table-size mismatch or a counter value
    /// outside the 2-bit range, or on truncated input.
    pub fn decode_into(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        for table in [&mut self.bimodal, &mut self.two_level, &mut self.meta] {
            let bytes = r.bytes()?;
            if bytes.len() != table.len() {
                return Err(CodecError::Invalid("predictor table size mismatch"));
            }
            if bytes.iter().any(|&b| b > 3) {
                return Err(CodecError::Invalid("predictor counter out of range"));
            }
            table.copy_from_slice(bytes);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::config::PredictorConfig;

    fn p() -> Predictor {
        Predictor::new(PredictorConfig::table1())
    }

    #[test]
    fn learns_always_taken() {
        let mut pred = p();
        let mut h = 0;
        for _ in 0..8 {
            h = pred.update(100, h, true);
        }
        assert!(pred.predict(100, h));
    }

    #[test]
    fn learns_always_not_taken() {
        let mut pred = p();
        let mut h = 0;
        for _ in 0..8 {
            h = pred.update(100, h, false);
        }
        assert!(!pred.predict(100, h));
    }

    #[test]
    fn two_level_learns_alternating_pattern() {
        // A strict T/N/T/N pattern is hopeless for bimodal but trivial for
        // a history-indexed table; the meta chooser must migrate to it.
        let mut pred = p();
        let mut h = 0;
        let mut outcome = true;
        for _ in 0..256 {
            h = pred.update(42, h, outcome);
            outcome = !outcome;
        }
        let mut correct = 0;
        for _ in 0..64 {
            if pred.predict(42, h) == outcome {
                correct += 1;
            }
            h = pred.update(42, h, outcome);
            outcome = !outcome;
        }
        assert!(correct >= 60, "only {correct}/64 correct on alternating pattern");
    }

    #[test]
    fn history_is_masked() {
        let pred = p();
        let big = u64::MAX;
        // Must not panic or index out of bounds.
        let _ = pred.predict(7, big);
    }

    #[test]
    fn update_returns_shifted_history() {
        let mut pred = p();
        let h = pred.update(1, 0, true);
        assert_eq!(h & 1, 1);
        let h2 = pred.update(1, h, false);
        assert_eq!(h2 & 1, 0);
        assert_eq!((h2 >> 1) & 1, 1);
    }

    #[test]
    fn distinct_pcs_do_not_alias_in_small_test() {
        let mut pred = p();
        let mut h = 0;
        for _ in 0..8 {
            h = pred.update(10, h, true);
        }
        let mut h2 = 0;
        for _ in 0..8 {
            h2 = pred.update(11, h2, false);
        }
        assert!(pred.predict(10, 0b1111_1111 & h));
        assert!(!pred.predict(11, h2));
    }
}
