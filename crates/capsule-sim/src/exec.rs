//! Architectural (functional) execution of CAP64 instructions.
//!
//! Both the cycle-level machine and the reference interpreter execute
//! instructions through [`step`], so their architectural semantics cannot
//! diverge — the timing model only decides *when* things happen and how
//! thread-division requests are answered.

use capsule_core::codec::{CodecError, Reader, Writer};
use capsule_core::ids::WorkerId;
use capsule_isa::instr::Instr;
use capsule_isa::reg::{FReg, Reg};

/// Architectural state of one thread (31 writable INT + 31 FP registers
/// plus PC — the paper's 62-register swap image).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Program counter (instruction index).
    pub pc: u32,
    /// Integer registers; index 0 is hardwired zero.
    pub iregs: [i64; 32],
    /// FP registers.
    pub fregs: [f64; 32],
    /// The worker this thread embodies.
    pub worker: WorkerId,
}

impl ArchState {
    /// Fresh state at `pc` for `worker`.
    pub fn new(pc: u32, worker: WorkerId) -> Self {
        ArchState { pc, iregs: [0; 32], fregs: [0.0; 32], worker }
    }

    /// Reads an integer register (`r0` reads zero).
    pub fn get(&self, r: Reg) -> i64 {
        self.iregs[r.index()]
    }

    /// Writes an integer register (`r0` writes are dropped).
    pub fn set(&mut self, r: Reg, v: i64) {
        if !r.is_zero() {
            self.iregs[r.index()] = v;
        }
    }

    /// Reads an FP register.
    pub fn getf(&self, f: FReg) -> f64 {
        self.fregs[f.index()]
    }

    /// Writes an FP register.
    pub fn setf(&mut self, f: FReg, v: f64) {
        self.fregs[f.index()] = v;
    }

    /// Serializes the full register image for checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.pc);
        for &v in &self.iregs {
            w.i64(v);
        }
        for &v in &self.fregs {
            w.f64(v);
        }
        w.u32(self.worker.0);
    }

    /// Inverse of [`ArchState::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated input.
    pub fn decode(r: &mut Reader<'_>) -> Result<ArchState, CodecError> {
        let pc = r.u32()?;
        let mut iregs = [0i64; 32];
        for v in &mut iregs {
            *v = r.i64()?;
        }
        let mut fregs = [0f64; 32];
        for v in &mut fregs {
            *v = r.f64()?;
        }
        let worker = WorkerId(r.u32()?);
        Ok(ArchState { pc, iregs, fregs, worker })
    }
}

pub use capsule_core::output::OutValue;

/// Why a thread trapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// Data access below the data base or beyond the memory size.
    BadAddress(u64),
    /// PC left the text section.
    BadPc(u32),
    /// `mlock` re-acquired by its owner.
    RelockOwned(u64),
    /// `munlock` of a lock the thread does not own.
    BadUnlock(u64),
    /// The hardware lock table overflowed.
    LockTableFull(u64),
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrapKind::BadAddress(a) => write!(f, "bad data address {a:#x}"),
            TrapKind::BadPc(pc) => write!(f, "pc {pc} outside text"),
            TrapKind::RelockOwned(a) => write!(f, "mlock on already-owned address {a:#x}"),
            TrapKind::BadUnlock(a) => write!(f, "munlock on address {a:#x} not owned"),
            TrapKind::LockTableFull(a) => write!(f, "lock table full locking {a:#x}"),
        }
    }
}

/// Flat data memory with bounds-checked accessors.
///
/// Addresses below [`capsule_isa::DATA_BASE`] trap, catching null and
/// wild-pointer dereferences in workload programs.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    base: u64,
}

impl Memory {
    /// Builds memory of `size` bytes with `data` loaded at `base`.
    pub fn new(size: usize, base: u64, data: &[u8]) -> Self {
        Memory::recycled(Vec::new(), size, base, data)
    }

    /// [`Memory::new`] reusing a previously allocated buffer (warmed
    /// machine reset): the contents are indistinguishable from a fresh
    /// build — the buffer is zeroed to `size` before `data` is loaded —
    /// only the allocation is reused.
    pub fn recycled(mut bytes: Vec<u8>, size: usize, base: u64, data: &[u8]) -> Self {
        bytes.clear();
        bytes.resize(size, 0);
        let b = base as usize;
        bytes[b..b + data.len()].copy_from_slice(data);
        Memory { bytes, base }
    }

    /// Takes the backing buffer for reuse by [`Memory::recycled`].
    pub fn into_buffer(self) -> Vec<u8> {
        self.bytes
    }

    fn check(&self, addr: u64, len: u64) -> Result<usize, TrapKind> {
        // `addr + len` can wrap for addresses near u64::MAX and slip past
        // the bounds test; checked_add turns the wrap into the trap.
        let end = addr.checked_add(len).ok_or(TrapKind::BadAddress(addr))?;
        if addr < self.base || end > self.bytes.len() as u64 {
            Err(TrapKind::BadAddress(addr))
        } else {
            Ok(addr as usize)
        }
    }

    /// Reads a 64-bit little-endian word.
    pub fn read_i64(&self, addr: u64) -> Result<i64, TrapKind> {
        let i = self.check(addr, 8)?;
        Ok(i64::from_le_bytes(self.bytes[i..i + 8].try_into().expect("len 8")))
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_i64(&mut self, addr: u64, v: i64) -> Result<(), TrapKind> {
        let i = self.check(addr, 8)?;
        self.bytes[i..i + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Reads one byte (zero-extended).
    pub fn read_u8(&self, addr: u64) -> Result<u8, TrapKind> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), TrapKind> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = v;
        Ok(())
    }

    /// Reads an f64.
    pub fn read_f64(&self, addr: u64) -> Result<f64, TrapKind> {
        Ok(f64::from_bits(self.read_i64(addr)? as u64))
    }

    /// Writes an f64.
    pub fn write_f64(&mut self, addr: u64, v: f64) -> Result<(), TrapKind> {
        self.write_i64(addr, v.to_bits() as i64)
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Always false; memory has at least the data base reserved.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serializes base and contents for checkpoints.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.base);
        w.bytes(&self.bytes);
    }

    /// Restores contents written by [`Memory::encode`] into a memory of
    /// the same shape.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] when base or size differ from this
    /// memory's, or on truncated input.
    pub fn decode_into(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        let base = r.u64()?;
        if base != self.base {
            return Err(CodecError::Invalid("memory base mismatch"));
        }
        let bytes = r.bytes()?;
        if bytes.len() != self.bytes.len() {
            return Err(CodecError::Invalid("memory size mismatch"));
        }
        self.bytes.copy_from_slice(bytes);
        Ok(())
    }
}

/// Side effects [`step`] leaves to the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// Plain instruction, fully handled.
    None,
    /// Emit a value.
    Out(OutValue),
    /// Stop the machine.
    Halt,
    /// Worker death.
    Kthr,
    /// Division request; the host decides and calls the policy. `rd` must
    /// be set by the host (−1 denied / 0 parent / 1 child).
    Nthr {
        /// Probe-result register.
        rd: Reg,
        /// Child entry point.
        target: u32,
    },
    /// Lock acquisition on the address.
    Mlock(u64),
    /// Lock release on the address.
    Munlock(u64),
    /// Probe for free contexts; host writes the count to the register.
    Nctx(Reg),
    /// Section enter.
    MarkStart(u16),
    /// Section leave.
    MarkEnd(u16),
}

/// Branch resolution information for the timing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether a *conditional* branch was taken (unconditional transfers
    /// report `taken = true`).
    pub taken: bool,
    /// Whether this was a conditional branch (predictor-relevant).
    pub conditional: bool,
    /// The architecturally correct next pc.
    pub next_pc: u32,
}

/// Everything the timing layer needs to know about one executed
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOut {
    /// Host-handled side effect.
    pub effect: Effect,
    /// Data address touched, for cache timing (loads and stores).
    pub mem_addr: Option<u64>,
    /// Control-transfer resolution, if the instruction was one.
    pub branch: Option<BranchOutcome>,
}

impl StepOut {
    fn plain() -> Self {
        StepOut { effect: Effect::None, mem_addr: None, branch: None }
    }
}

/// Executes one instruction architecturally.
///
/// Advances `arch.pc`, updates registers and memory, and reports what the
/// host must still do (division, locks, output, marks). `tid` is written by
/// the `tid` instruction from `arch.worker`.
///
/// # Errors
///
/// Returns a [`TrapKind`] on memory violations; lock misuse is reported by
/// the host when it processes the lock effects.
pub fn step(arch: &mut ArchState, instr: &Instr, mem: &mut Memory) -> Result<StepOut, TrapKind> {
    let mut out = StepOut::plain();
    let next = arch.pc + 1;
    arch.pc = next;
    match *instr {
        Instr::Nop => {}
        Instr::Alu { op, rd, rs1, rs2 } => {
            let v = op.apply(arch.get(rs1), arch.get(rs2));
            arch.set(rd, v);
        }
        Instr::AluI { op, rd, rs1, imm } => {
            let v = op.apply(arch.get(rs1), imm);
            arch.set(rd, v);
        }
        Instr::Li { rd, imm } => arch.set(rd, imm),
        Instr::Ld { rd, base, off } => {
            let addr = (arch.get(base) + off) as u64;
            arch.set(rd, mem.read_i64(addr)?);
            out.mem_addr = Some(addr);
        }
        Instr::St { rs, base, off } => {
            let addr = (arch.get(base) + off) as u64;
            mem.write_i64(addr, arch.get(rs))?;
            out.mem_addr = Some(addr);
        }
        Instr::Ldb { rd, base, off } => {
            let addr = (arch.get(base) + off) as u64;
            arch.set(rd, mem.read_u8(addr)? as i64);
            out.mem_addr = Some(addr);
        }
        Instr::Stb { rs, base, off } => {
            let addr = (arch.get(base) + off) as u64;
            mem.write_u8(addr, arch.get(rs) as u8)?;
            out.mem_addr = Some(addr);
        }
        Instr::FLd { fd, base, off } => {
            let addr = (arch.get(base) + off) as u64;
            arch.setf(fd, mem.read_f64(addr)?);
            out.mem_addr = Some(addr);
        }
        Instr::FSt { fs, base, off } => {
            let addr = (arch.get(base) + off) as u64;
            mem.write_f64(addr, arch.getf(fs))?;
            out.mem_addr = Some(addr);
        }
        Instr::Br { cond, rs1, rs2, target } => {
            let taken = cond.holds(arch.get(rs1), arch.get(rs2));
            if taken {
                arch.pc = target;
            }
            out.branch = Some(BranchOutcome { taken, conditional: true, next_pc: arch.pc });
        }
        Instr::J { target } => {
            arch.pc = target;
            out.branch = Some(BranchOutcome { taken: true, conditional: false, next_pc: target });
        }
        Instr::Jal { rd, target } => {
            arch.set(rd, next as i64);
            arch.pc = target;
            out.branch = Some(BranchOutcome { taken: true, conditional: false, next_pc: target });
        }
        Instr::Jr { rs } => {
            let t = arch.get(rs) as u32;
            arch.pc = t;
            out.branch = Some(BranchOutcome { taken: true, conditional: false, next_pc: t });
        }
        Instr::Jalr { rd, rs } => {
            let t = arch.get(rs) as u32;
            arch.set(rd, next as i64);
            arch.pc = t;
            out.branch = Some(BranchOutcome { taken: true, conditional: false, next_pc: t });
        }
        Instr::FAlu { op, fd, fs1, fs2 } => {
            let v = op.apply(arch.getf(fs1), arch.getf(fs2));
            arch.setf(fd, v);
        }
        Instr::FLi { fd, imm } => arch.setf(fd, imm),
        Instr::FCmp { op, rd, fs1, fs2 } => {
            let v = op.apply(arch.getf(fs1), arch.getf(fs2));
            arch.set(rd, v as i64);
        }
        Instr::CvtIF { fd, rs } => arch.setf(fd, arch.get(rs) as f64),
        Instr::CvtFI { rd, fs } => arch.set(rd, arch.getf(fs) as i64),
        Instr::Nthr { rd, target } => out.effect = Effect::Nthr { rd, target },
        Instr::Kthr => out.effect = Effect::Kthr,
        Instr::Mlock { rs } => out.effect = Effect::Mlock(arch.get(rs) as u64),
        Instr::Munlock { rs } => out.effect = Effect::Munlock(arch.get(rs) as u64),
        Instr::Nctx { rd } => out.effect = Effect::Nctx(rd),
        Instr::Tid { rd } => arch.set(rd, arch.worker.0 as i64),
        Instr::MarkStart { id } => out.effect = Effect::MarkStart(id),
        Instr::MarkEnd { id } => out.effect = Effect::MarkEnd(id),
        Instr::Out { rs } => out.effect = Effect::Out(OutValue::Int(arch.get(rs))),
        Instr::OutF { fs } => out.effect = Effect::Out(OutValue::Float(arch.getf(fs))),
        Instr::Halt => out.effect = Effect::Halt,
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_isa::instr::{AluOp, BrCond};
    use capsule_isa::DATA_BASE;

    fn mem() -> Memory {
        Memory::new(8192, DATA_BASE, &[])
    }

    fn arch() -> ArchState {
        ArchState::new(0, WorkerId(0))
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut a = arch();
        a.set(Reg::ZERO, 99);
        assert_eq!(a.get(Reg::ZERO), 0);
    }

    #[test]
    fn alu_and_pc_advance() {
        let mut a = arch();
        let mut m = mem();
        a.set(Reg(1), 5);
        let i = Instr::AluI { op: AluOp::Add, rd: Reg(2), rs1: Reg(1), imm: 3 };
        let out = step(&mut a, &i, &mut m).unwrap();
        assert_eq!(a.get(Reg(2)), 8);
        assert_eq!(a.pc, 1);
        assert_eq!(out, StepOut::plain());
    }

    #[test]
    fn load_store_roundtrip() {
        let mut a = arch();
        let mut m = mem();
        a.set(Reg(1), DATA_BASE as i64);
        a.set(Reg(2), -12345);
        step(&mut a, &Instr::St { rs: Reg(2), base: Reg(1), off: 16 }, &mut m).unwrap();
        let out = step(&mut a, &Instr::Ld { rd: Reg(3), base: Reg(1), off: 16 }, &mut m).unwrap();
        assert_eq!(a.get(Reg(3)), -12345);
        assert_eq!(out.mem_addr, Some(DATA_BASE + 16));
    }

    #[test]
    fn near_max_address_traps_instead_of_wrapping() {
        // Regression: `addr + len` used to wrap for addresses near
        // u64::MAX, passing the bounds test and indexing out of range.
        let m = mem();
        for addr in [u64::MAX, u64::MAX - 7, u64::MAX - 4096] {
            assert_eq!(m.read_i64(addr), Err(TrapKind::BadAddress(addr)), "addr {addr:#x}");
        }
        let mut wm = mem();
        assert_eq!(wm.write_i64(u64::MAX - 3, 1), Err(TrapKind::BadAddress(u64::MAX - 3)));
    }

    #[test]
    fn byte_access_zero_extends() {
        let mut a = arch();
        let mut m = mem();
        a.set(Reg(1), DATA_BASE as i64);
        a.set(Reg(2), 0x1ff); // low byte 0xff
        step(&mut a, &Instr::Stb { rs: Reg(2), base: Reg(1), off: 0 }, &mut m).unwrap();
        step(&mut a, &Instr::Ldb { rd: Reg(3), base: Reg(1), off: 0 }, &mut m).unwrap();
        assert_eq!(a.get(Reg(3)), 0xff);
    }

    #[test]
    fn fp_roundtrip_through_memory() {
        let mut a = arch();
        let mut m = mem();
        a.set(Reg(1), DATA_BASE as i64);
        a.setf(FReg(1), 2.75);
        step(&mut a, &Instr::FSt { fs: FReg(1), base: Reg(1), off: 8 }, &mut m).unwrap();
        step(&mut a, &Instr::FLd { fd: FReg(2), base: Reg(1), off: 8 }, &mut m).unwrap();
        assert_eq!(a.getf(FReg(2)), 2.75);
    }

    #[test]
    fn null_and_oob_accesses_trap() {
        let mut a = arch();
        let mut m = mem();
        a.set(Reg(1), 0);
        let e = step(&mut a, &Instr::Ld { rd: Reg(2), base: Reg(1), off: 0 }, &mut m);
        assert_eq!(e, Err(TrapKind::BadAddress(0)));
        a.set(Reg(1), 1 << 40);
        let e = step(&mut a, &Instr::St { rs: Reg(2), base: Reg(1), off: 0 }, &mut m);
        assert!(matches!(e, Err(TrapKind::BadAddress(_))));
    }

    #[test]
    fn taken_and_untaken_branches() {
        let mut a = arch();
        let mut m = mem();
        a.set(Reg(1), 1);
        let br = Instr::Br { cond: BrCond::Eq, rs1: Reg(1), rs2: Reg::ZERO, target: 10 };
        let out = step(&mut a, &br, &mut m).unwrap();
        assert_eq!(a.pc, 1); // not taken
        assert_eq!(out.branch, Some(BranchOutcome { taken: false, conditional: true, next_pc: 1 }));

        a.set(Reg(1), 0);
        let out = step(&mut a, &br, &mut m).unwrap();
        assert_eq!(a.pc, 10);
        assert!(out.branch.unwrap().taken);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let mut a = arch();
        let mut m = mem();
        a.pc = 4;
        step(&mut a, &Instr::Jal { rd: Reg::RA, target: 20 }, &mut m).unwrap();
        assert_eq!(a.pc, 20);
        assert_eq!(a.get(Reg::RA), 5);
        step(&mut a, &Instr::Jr { rs: Reg::RA }, &mut m).unwrap();
        assert_eq!(a.pc, 5);
    }

    #[test]
    fn effects_surface_to_host() {
        let mut a = arch();
        let mut m = mem();
        a.set(Reg(1), 0x2000);
        let out = step(&mut a, &Instr::Mlock { rs: Reg(1) }, &mut m).unwrap();
        assert_eq!(out.effect, Effect::Mlock(0x2000));
        let out = step(&mut a, &Instr::Nthr { rd: Reg(2), target: 7 }, &mut m).unwrap();
        assert_eq!(out.effect, Effect::Nthr { rd: Reg(2), target: 7 });
        let out = step(&mut a, &Instr::Halt, &mut m).unwrap();
        assert_eq!(out.effect, Effect::Halt);
        let out = step(&mut a, &Instr::Kthr, &mut m).unwrap();
        assert_eq!(out.effect, Effect::Kthr);
    }

    #[test]
    fn tid_reads_worker_id() {
        let mut a = ArchState::new(0, WorkerId(7));
        let mut m = mem();
        step(&mut a, &Instr::Tid { rd: Reg(1) }, &mut m).unwrap();
        assert_eq!(a.get(Reg(1)), 7);
    }

    #[test]
    fn out_values() {
        let mut a = arch();
        let mut m = mem();
        a.set(Reg(1), 42);
        a.setf(FReg(1), 1.5);
        let o1 = step(&mut a, &Instr::Out { rs: Reg(1) }, &mut m).unwrap();
        let o2 = step(&mut a, &Instr::OutF { fs: FReg(1) }, &mut m).unwrap();
        assert_eq!(o1.effect, Effect::Out(OutValue::Int(42)));
        assert_eq!(o2.effect, Effect::Out(OutValue::Float(1.5)));
        assert_eq!(OutValue::Int(42).as_int(), Some(42));
        assert_eq!(OutValue::Float(1.5).as_float(), Some(1.5));
        assert_eq!(OutValue::Int(42).as_float(), None);
    }

    #[test]
    fn cvt_roundtrip() {
        let mut a = arch();
        let mut m = mem();
        a.set(Reg(1), -7);
        step(&mut a, &Instr::CvtIF { fd: FReg(1), rs: Reg(1) }, &mut m).unwrap();
        assert_eq!(a.getf(FReg(1)), -7.0);
        step(&mut a, &Instr::CvtFI { rd: Reg(2), fs: FReg(1) }, &mut m).unwrap();
        assert_eq!(a.get(Reg(2)), -7);
    }
}
