//! The cycle-level SOMT/SMT/superscalar machine.
//!
//! Timing follows the SimpleScalar `sim-outorder` discipline the paper
//! built on: instructions execute **functionally at dispatch, in program
//! order per thread**, while a register-update-unit (RUU) and load/store
//! queue model issue, execution and commit timing. See DESIGN.md for the
//! documented simplifications (wrong-path instructions are fetched but not
//! dispatched; lock stalls halt dispatch instead of replaying squashed
//! instructions).
//!
//! CAPSULE behaviour implemented here:
//!
//! - `nthr` consults the [`DivisionPolicy`] at dispatch. A granted request
//!   seizes a free hardware context (child stalls for the register-copy
//!   latency; parent stalls one cycle) or, when enabled, parks the child on
//!   the LIFO context stack. A denied request writes −1 and falls through.
//! - `kthr` drains the thread and frees its context; deaths feed the
//!   division throttle (deaths within 128 cycles ≥ contexts/2 ⇒ deny).
//! - Threads whose loads run slower than the moving average of the last
//!   1000 loads accumulate a counter; past the threshold they are swapped
//!   out to the context stack (when contexts are contended), as in §3.1.
//! - `mlock`/`munlock` drive the fast lock table; a blocked thread stops
//!   dispatching and pays a squash penalty when ownership arrives.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use capsule_core::codec::{CodecError, Reader, Writer};
use capsule_core::config::MachineConfig;
use capsule_core::policy::{DivisionDecision, DivisionPolicy, DivisionRequest};
use capsule_core::stats::{BirthPlace, DivisionTree, SectionTracker, SimStats};
use capsule_isa::decode::{decode_text, DecodedText, FetchClass, NO_REG};
use capsule_isa::instr::{FuClass, INSTR_BYTES};
use capsule_isa::program::Program;
use capsule_mem::{Hierarchy, ServedBy};

use crate::arena::{EntryArena, EntryRef};
use crate::cancel::CancelToken;
use crate::exec::{step, ArchState, Effect, Memory, OutValue};
use crate::locks::{AcquireResult, LockTable, ReleaseResult};
use crate::outcome::{SimError, SimOutcome, StageProfile};
use crate::pipeline::{
    AfterDrain, ContextStack, Fetched, SavedThread, SlotState, Thread, FETCH_QUEUE_CAP,
};
use crate::predictor::Predictor;
use crate::trace::{Trace, TraceKind};

/// Maximum memory instructions issued per cycle (per L1-D port).
const MEM_ISSUE_PER_PORT: usize = 1;

#[derive(Debug)]
struct Slot {
    state: SlotState,
    thread: Option<Thread>,
}

/// A pending completion event: `(complete_at, slot, seq, arena_idx)`,
/// min-ordered by cycle in the machine's event heap. An entry that blocks
/// completion also blocks commit, so the slot's thread cannot die or swap
/// before the event fires and its arena slot cannot be reused. The
/// sequence number is unique, so the trailing arena index never takes
/// part in an ordering decision — pop order is identical to the historic
/// `(complete_at, slot, seq)` key.
type CompletionEvent = Reverse<(u64, usize, u64, u32)>;

/// Reusable per-cycle buffers, hoisted out of the stage loops so the
/// steady-state cycle loop performs no heap allocation.
#[derive(Debug, Default)]
struct Scratch {
    /// issue: `(seq, slot, arena_idx)` candidates gathered from
    /// per-thread ready lists.
    candidates: Vec<(u64, usize, u32)>,
    /// commit/dispatch: per-core bandwidth budgets.
    budgets: Vec<usize>,
    /// commit: slots whose drain completed this cycle.
    drained: Vec<usize>,
    /// fetch: `(icount, slot)` eligibility list of one core.
    eligible: Vec<(usize, usize)>,
    /// issue: per-core issue bandwidth and functional-unit pools.
    issue_budget: Vec<usize>,
    ialu: Vec<usize>,
    imult: Vec<usize>,
    fpalu: Vec<usize>,
    fpmult: Vec<usize>,
    mem_issues: Vec<usize>,
}

/// What the machine can do next, as seen by the idle fast-forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wakeup {
    /// Some stage can make progress in the next cycle: step normally.
    Busy,
    /// Nothing can happen before this cycle: jump straight to it.
    At(u64),
    /// No future event exists (every thread is deadlocked or stuck): the
    /// run can only end by exhausting its cycle budget.
    Never,
}

/// The machine.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    /// FNV-1a identity of (config, program); snapshots only restore into
    /// a machine with the same signature.
    sig: u64,
    /// Decoded program text: per-pc pre-extracted metadata shared (and
    /// cached) across machines running the same program.
    text: Arc<DecodedText>,
    mem: Memory,
    hier: Hierarchy,
    pred: Predictor,
    slots: Vec<Slot>,
    stack: ContextStack,
    locks: LockTable,
    policy: DivisionPolicy,

    cycle: u64,
    seq: u64,
    halted: bool,

    /// Per-core RUU / LSQ occupancy (a CMP core owns its own window).
    ruu_used: Vec<usize>,
    lsq_used: Vec<usize>,

    /// Struct-of-arrays storage for every in-flight window entry; threads
    /// hold dense `u32` indices into it.
    arena: EntryArena,

    output: Vec<OutValue>,
    stats: SimStats,
    sections: SectionTracker,
    tree: DivisionTree,
    live_workers: u64,

    load_lat_window: VecDeque<u64>,
    load_lat_sum: u64,

    /// Pending completion events, min-ordered by cycle. Filled at issue,
    /// drained by `complete_stage`.
    completions: BinaryHeap<CompletionEvent>,
    /// Reusable per-cycle stage buffers (no steady-state allocation).
    scratch: Scratch,
    /// `log2(line_bytes)` when the line size is a power of two (it always
    /// is for the paper's configs); lets fetch compute line numbers with a
    /// shift instead of a division.
    line_shift: Option<u32>,
    /// Per-stage self-profile, when enabled.
    profile: Option<Box<StageProfile>>,

    trace: Option<Trace>,
    cancel: Option<CancelToken>,
}

/// Heap allocations scavenged from a retired machine and threaded into
/// the next one by [`Machine::reset`]: the construction path is identical
/// to a fresh machine, only the backing buffers are reused.
#[derive(Debug, Default)]
struct Recycled {
    mem: Vec<u8>,
    arena: EntryArena,
    completions: BinaryHeap<CompletionEvent>,
    scratch: Scratch,
    output: Vec<OutValue>,
    load_lat_window: VecDeque<u64>,
}

impl Machine {
    /// Loads `program` onto a machine configured by `cfg`.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] / [`SimError::Program`] on validation failures,
    /// [`SimError::TooManyThreads`] when the program asks for more loader
    /// threads than the machine has contexts.
    pub fn new(cfg: MachineConfig, program: &Program) -> Result<Self, SimError> {
        Self::validate(&cfg, program)?;
        Ok(Self::build(cfg, program, Recycled::default()))
    }

    /// Rebuilds this machine in place for a new run of `program` under
    /// `cfg`, reusing the retired machine's heap allocations (data memory,
    /// entry arena, event heap, stage scratch). The resulting state is
    /// constructed exactly like [`Machine::new`]'s, so a reset machine is
    /// cycle-for-cycle identical to a fresh one; only allocator traffic
    /// differs. Profile/trace enablement and any cancel token are cleared.
    ///
    /// On a validation error the machine is left untouched.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::new`].
    pub fn reset(&mut self, cfg: MachineConfig, program: &Program) -> Result<(), SimError> {
        Self::validate(&cfg, program)?;
        let recycled = Recycled {
            mem: std::mem::replace(&mut self.mem, Memory::new(0, 0, &[])).into_buffer(),
            arena: std::mem::take(&mut self.arena),
            completions: std::mem::take(&mut self.completions),
            scratch: std::mem::take(&mut self.scratch),
            output: std::mem::take(&mut self.output),
            load_lat_window: std::mem::take(&mut self.load_lat_window),
        };
        *self = Self::build(cfg, program, recycled);
        Ok(())
    }

    fn validate(cfg: &MachineConfig, program: &Program) -> Result<(), SimError> {
        cfg.validate().map_err(SimError::Config)?;
        program.validate()?;
        if program.threads.len() > cfg.contexts {
            return Err(SimError::TooManyThreads {
                requested: program.threads.len(),
                contexts: cfg.contexts,
            });
        }
        Ok(())
    }

    fn build(cfg: MachineConfig, program: &Program, mut recycled: Recycled) -> Self {
        let mem =
            Memory::recycled(recycled.mem, program.mem_size, capsule_isa::DATA_BASE, &program.data);
        recycled.arena.clear();
        recycled.completions.clear();
        recycled.output.clear();
        recycled.load_lat_window.clear();
        let hier = Hierarchy::new_cmp(&cfg, cfg.cores);
        let pred = Predictor::new(cfg.predictor);
        let policy = DivisionPolicy::from_config(&cfg);
        let stack = ContextStack::new(cfg.context_stack_entries);
        let locks = LockTable::new(cfg.lock_table_entries);

        let mut slots: Vec<Slot> =
            (0..cfg.contexts).map(|_| Slot { state: SlotState::Free, thread: None }).collect();
        let mut tree = DivisionTree::new();
        for (i, t) in program.threads.iter().enumerate() {
            let worker = tree.record_birth(None, 0, BirthPlace::Loader);
            let mut arch = ArchState::new(t.pc, worker);
            for &(r, v) in &t.int_regs {
                arch.set(r, v);
            }
            for &(f, v) in &t.fp_regs {
                arch.setf(f, v);
            }
            slots[i] = Slot { state: SlotState::Active, thread: Some(Thread::new(arch)) };
        }
        let live = program.threads.len() as u64;

        let mut stats = SimStats::new();
        stats.max_live_workers = live;
        let cores = cfg.cores;
        let line_bytes = hier.line_bytes();
        let line_shift = line_bytes.is_power_of_two().then(|| line_bytes.trailing_zeros());

        Machine {
            sig: crate::snapshot::machine_sig(&cfg, program),
            cfg,
            text: decode_text(&program.text),
            mem,
            hier,
            pred,
            slots,
            stack,
            locks,
            policy,
            cycle: 0,
            seq: 0,
            halted: false,
            ruu_used: vec![0; cores],
            lsq_used: vec![0; cores],
            arena: recycled.arena,
            output: recycled.output,
            stats,
            sections: SectionTracker::new(),
            tree,
            live_workers: live,
            load_lat_window: recycled.load_lat_window,
            load_lat_sum: 0,
            completions: recycled.completions,
            scratch: recycled.scratch,
            line_shift,
            profile: None,
            trace: None,
            cancel: None,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// True once `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Read access to data memory (result extraction).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Division genealogy so far.
    pub fn tree(&self) -> &DivisionTree {
        &self.tree
    }

    /// Enables CAPSULE-event tracing (divisions, deaths, swaps, locks,
    /// sections), retaining at most `limit` events. Call before `run`.
    pub fn enable_trace(&mut self, limit: usize) {
        self.trace = Some(Trace::new(limit));
    }

    /// The event trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn trace_event(&mut self, kind: TraceKind) {
        if let Some(tr) = self.trace.as_mut() {
            tr.push(self.cycle, kind);
        }
    }

    /// Enables the per-stage self-profile: cycles with work and entries
    /// processed per pipeline stage, plus idle fast-forward counters,
    /// reported in [`SimOutcome::profile`]. Call before `run`.
    pub fn enable_profile(&mut self) {
        self.profile = Some(Box::default());
    }

    /// Installs a cancellation token, polled once per cycle by [`run`].
    /// Tripping it makes an in-flight `run` return
    /// [`SimError::Cancelled`] at the next cycle boundary.
    ///
    /// [`run`]: Machine::run
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Runs until `halt` or until `max_cycles` have elapsed.
    ///
    /// # Errors
    ///
    /// See [`SimError`]; on error the machine state is left at the failing
    /// cycle for inspection.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimOutcome, SimError> {
        match self.run_until(max_cycles, u64::MAX) {
            Ok(Some(outcome)) => Ok(outcome),
            // The timeout check precedes the pause check, so a pause at
            // u64::MAX can never be reached.
            Ok(None) => unreachable!("run never pauses"),
            Err(e) => Err(e),
        }
    }

    /// Runs like [`Machine::run`] but pauses once the cycle counter
    /// reaches `pause_at`, returning `Ok(None)` with the machine parked
    /// at a cycle boundary — ready to be [snapshotted](Machine::snapshot)
    /// and later resumed (here or in a restored machine) with the same
    /// budget. A resumed run is cycle-for-cycle identical to one that
    /// never paused.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`].
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        pause_at: u64,
    ) -> Result<Option<SimOutcome>, SimError> {
        while !self.halted {
            if let Some(tok) = &self.cancel {
                if tok.is_cancelled() {
                    return Err(SimError::Cancelled { cycle: self.cycle });
                }
            }
            if self.cycle >= max_cycles {
                return Err(SimError::Timeout { cycles: max_cycles });
            }
            if self.cycle >= pause_at {
                return Ok(None);
            }
            self.step_cycle()?;
            if !self.halted {
                if self.machine_empty() {
                    return Err(SimError::AllThreadsDead { cycle: self.cycle });
                }
                self.fast_forward(max_cycles);
            }
        }
        Ok(Some(self.outcome()))
    }

    /// Idle-cycle fast-forward: when no stage can make progress before a
    /// known future cycle, jump straight there, accounting statistics
    /// exactly as if the idle cycles had been stepped one by one (nothing
    /// happens in them, so only `cycles` and the active-context integral
    /// advance).
    fn fast_forward(&mut self, max_cycles: u64) {
        let target = match self.next_wakeup() {
            Wakeup::Busy => return,
            Wakeup::At(t) => t.min(max_cycles),
            // No future event at all (e.g. every thread deadlocked on a
            // lock): the run can only end by exhausting its budget, which
            // surfaces as the same `Timeout` the stepped loop reaches.
            Wakeup::Never => max_cycles,
        };
        if target <= self.cycle {
            return;
        }
        let skip = target - self.cycle;
        let active = self.slots.iter().filter(|s| s.state == SlotState::Active).count() as u64;
        self.stats.active_context_cycles += active * skip;
        self.cycle = target;
        self.stats.cycles = self.cycle;
        if let Some(p) = self.profile.as_deref_mut() {
            p.fast_forwards += 1;
            p.skipped_cycles += skip;
        }
    }

    /// Earliest cycle at which any stage could make progress.
    ///
    /// Conservative by construction: anything that might act *next cycle*
    /// reports [`Wakeup::Busy`]. The only sources of future work are
    /// timers (`WaitCopy`/`SwapIn`, fetch/dispatch block cycles) and the
    /// completion event heap; `swap_check` cannot newly fire during idle
    /// cycles because slow counters only change when loads issue.
    fn next_wakeup(&self) -> Wakeup {
        let now = self.cycle;
        let mut next: Option<u64> = None;
        let bump = |next: &mut Option<u64>, at: u64| {
            *next = Some(next.map_or(at, |n| n.min(at)));
        };

        if let Some(&Reverse((at, _, _, _))) = self.completions.peek() {
            if at <= now {
                return Wakeup::Busy;
            }
            bump(&mut next, at);
        }

        let per_core = self.per_core();
        for (i, slot) in self.slots.iter().enumerate() {
            if let SlotState::WaitCopy { until } | SlotState::SwapIn { until } = slot.state {
                if until <= now {
                    return Wakeup::Busy;
                }
                bump(&mut next, until);
            }
            let Some(t) = slot.thread.as_ref() else { continue };
            // Issue or commit work pending.
            if !t.ready.is_empty() {
                return Wakeup::Busy;
            }
            if t.in_flight.front().is_some_and(|&idx| self.arena.is_completed(idx)) {
                return Wakeup::Busy;
            }
            if slot.state != SlotState::Active {
                // WaitBranch/WaitLock/Draining wake via completions or
                // another thread's dispatch — both covered elsewhere.
                continue;
            }
            if t.fetch_pc.is_some() && t.fetch_queue.len() < FETCH_QUEUE_CAP {
                if t.fetch_block_until <= now {
                    return Wakeup::Busy;
                }
                bump(&mut next, t.fetch_block_until);
            }
            if let Some(f) = t.fetch_queue.front() {
                if t.dispatch_block_until > now {
                    bump(&mut next, t.dispatch_block_until);
                } else {
                    let core = i / per_core;
                    let is_mem = self.text.meta(f.pc as usize).is_mem();
                    if self.ruu_used[core] < self.cfg.ruu_size
                        && (!is_mem || self.lsq_used[core] < self.cfg.lsq_size)
                    {
                        return Wakeup::Busy;
                    }
                    // Window full: freed by a commit, which a completion
                    // event already in the heap precedes.
                }
            }
        }
        match next {
            Some(t) => Wakeup::At(t),
            None => Wakeup::Never,
        }
    }

    /// Advances the machine by one cycle.
    ///
    /// # Errors
    ///
    /// Propagates traps from dispatch.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        self.expire_states();
        self.complete_stage();
        self.commit_stage();
        self.issue_stage();
        self.dispatch_stage()?;
        if self.halted {
            return Ok(());
        }
        self.fetch_stage();
        self.swap_check();

        self.stats.active_context_cycles +=
            self.slots.iter().filter(|s| s.state == SlotState::Active).count() as u64;
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        if let Some(p) = self.profile.as_deref_mut() {
            p.stepped_cycles += 1;
        }
        Ok(())
    }

    fn per_core(&self) -> usize {
        self.cfg.contexts / self.cfg.cores
    }

    fn machine_empty(&self) -> bool {
        self.stack.is_empty() && self.slots.iter().all(|s| s.state == SlotState::Free)
    }

    fn free_slot_count(&self) -> usize {
        self.slots.iter().filter(|s| s.state == SlotState::Free).count()
    }

    fn outcome(&self) -> SimOutcome {
        SimOutcome {
            stats: self.stats.clone(),
            output: self.output.clone(),
            sections: self.sections.clone(),
            tree: self.tree.clone(),
            l1i: self.hier.l1i_stats(),
            l1d: self.hier.l1d_stats(),
            l2: self.hier.l2_stats(),
            mem_accesses: self.hier.mem_accesses(),
            profile: self.profile.as_deref().cloned(),
            trace: self.trace.clone(),
        }
    }

    // ------------------------------------------------------------------
    // snapshot / restore
    // ------------------------------------------------------------------

    /// Serializes the complete machine state at the current cycle
    /// boundary into a versioned, self-describing blob (see
    /// [`crate::snapshot`] for the format). Restoring the blob into a
    /// machine prepared with the same config and program — via
    /// [`Machine::restore_snapshot`] — continues the run cycle-for-cycle
    /// identically to one that was never interrupted.
    ///
    /// Call only between cycles (never from inside a stage); any point
    /// where [`Machine::run_until`] paused qualifies.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        crate::snapshot::write_header(&mut w, self.sig);
        self.encode_state(&mut w);
        w.into_bytes()
    }

    /// Restores state captured by [`Machine::snapshot`] into this
    /// machine, which must have been prepared (via [`Machine::new`] or
    /// [`Machine::reset`]) with the same configuration and program.
    /// Profile and trace enablement are taken from the blob; an
    /// installed cancel token is kept.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotMismatch`] on wrong magic or format version,
    /// config/program hash mismatch, or a truncated/corrupted body. On
    /// error the machine state is unspecified; reset it before reuse.
    pub fn restore_snapshot(&mut self, blob: &[u8]) -> Result<(), SimError> {
        let mut r = Reader::new(blob);
        crate::snapshot::check_header(&mut r, self.sig)?;
        self.decode_state(&mut r).map_err(crate::snapshot::reject)?;
        if !r.is_empty() {
            return Err(SimError::SnapshotMismatch {
                reason: "trailing bytes after snapshot body".to_string(),
            });
        }
        Ok(())
    }

    fn encode_state(&self, w: &mut Writer) {
        self.arena.encode(w);
        self.mem.encode(w);
        self.hier.encode(w);
        self.pred.encode(w);
        w.usize(self.slots.len());
        for slot in &self.slots {
            slot.state.encode(w);
            match &slot.thread {
                None => w.u8(0),
                Some(t) => {
                    w.u8(1);
                    t.encode(w);
                }
            }
        }
        self.stack.encode(w);
        self.locks.encode(w);
        self.policy.encode_state(w);
        w.u64(self.cycle);
        w.u64(self.seq);
        w.bool(self.halted);
        for used in [&self.ruu_used, &self.lsq_used] {
            w.usize(used.len());
            for &u in used {
                w.usize(u);
            }
        }
        w.usize(self.output.len());
        for v in &self.output {
            match v {
                OutValue::Int(i) => {
                    w.u8(0);
                    w.i64(*i);
                }
                OutValue::Float(x) => {
                    w.u8(1);
                    w.f64(*x);
                }
            }
        }
        self.stats.encode(w);
        self.sections.encode(w);
        self.tree.encode(w);
        w.u64(self.live_workers);
        w.usize(self.load_lat_window.len());
        for &l in &self.load_lat_window {
            w.u64(l);
        }
        w.u64(self.load_lat_sum);
        // The heap iterates in arbitrary order; sort so identical machine
        // states always produce identical snapshot bytes.
        let mut events: Vec<(u64, usize, u64, u32)> =
            self.completions.iter().map(|&Reverse(e)| e).collect();
        events.sort_unstable();
        w.usize(events.len());
        for (at, slot, seqno, idx) in events {
            w.u64(at);
            w.usize(slot);
            w.u64(seqno);
            w.u32(idx);
        }
        match self.profile.as_deref() {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                crate::snapshot::encode_stage_profile(w, p);
            }
        }
        match &self.trace {
            None => w.u8(0),
            Some(t) => {
                w.u8(1);
                t.encode(w);
            }
        }
    }

    fn decode_state(&mut self, r: &mut Reader<'_>) -> Result<(), CodecError> {
        self.arena.decode_into(r)?;
        let arena_len = self.arena.len();
        self.mem.decode_into(r)?;
        self.hier.decode_into(r)?;
        self.pred.decode_into(r)?;
        let nslots = r.usize()?;
        if nslots != self.slots.len() {
            return Err(CodecError::Invalid("context count mismatch"));
        }
        for slot in &mut self.slots {
            slot.state = SlotState::decode(r)?;
            slot.thread = match r.u8()? {
                0 => None,
                1 => Some(Thread::decode(r, arena_len)?),
                _ => return Err(CodecError::Invalid("bad thread tag")),
            };
        }
        self.stack.decode_into(r)?;
        self.locks.decode_into(r)?;
        self.policy.restore_state(r)?;
        self.cycle = r.u64()?;
        self.seq = r.u64()?;
        self.halted = r.bool()?;
        for used in [&mut self.ruu_used, &mut self.lsq_used] {
            let n = r.usize()?;
            if n != used.len() {
                return Err(CodecError::Invalid("core count mismatch"));
            }
            for u in used.iter_mut() {
                *u = r.usize()?;
            }
        }
        let nout = r.usize()?;
        self.output.clear();
        for _ in 0..nout {
            self.output.push(match r.u8()? {
                0 => OutValue::Int(r.i64()?),
                1 => OutValue::Float(r.f64()?),
                _ => return Err(CodecError::Invalid("bad output tag")),
            });
        }
        self.stats = SimStats::decode(r)?;
        self.sections = SectionTracker::decode(r)?;
        self.tree = DivisionTree::decode(r)?;
        self.live_workers = r.u64()?;
        let nlat = r.usize()?;
        if nlat > self.cfg.swap_load_window {
            return Err(CodecError::Invalid("load window over capacity"));
        }
        self.load_lat_window.clear();
        for _ in 0..nlat {
            self.load_lat_window.push_back(r.u64()?);
        }
        self.load_lat_sum = r.u64()?;
        let nev = r.usize()?;
        if nev > arena_len {
            return Err(CodecError::Invalid("more completions than window entries"));
        }
        self.completions.clear();
        for _ in 0..nev {
            let at = r.u64()?;
            let slot = r.usize()?;
            let seqno = r.u64()?;
            let idx = r.u32()?;
            if slot >= self.slots.len() || idx as usize >= arena_len {
                return Err(CodecError::Invalid("completion event out of range"));
            }
            self.completions.push(Reverse((at, slot, seqno, idx)));
        }
        self.profile = match r.u8()? {
            0 => None,
            1 => Some(Box::new(crate::snapshot::decode_stage_profile(r)?)),
            _ => return Err(CodecError::Invalid("bad profile tag")),
        };
        self.trace = match r.u8()? {
            0 => None,
            1 => Some(Trace::decode(r)?),
            _ => return Err(CodecError::Invalid("bad trace tag")),
        };
        Ok(())
    }

    // ------------------------------------------------------------------
    // cycle stages
    // ------------------------------------------------------------------

    fn expire_states(&mut self) {
        for slot in &mut self.slots {
            match slot.state {
                SlotState::WaitCopy { until } | SlotState::SwapIn { until }
                    if until <= self.cycle =>
                {
                    slot.state = SlotState::Active;
                }
                _ => {}
            }
        }
    }

    fn complete_stage(&mut self) {
        let now = self.cycle;
        // Pop every completion event due this cycle and walk the producer's
        // wakeup chain: each waiter loses one unready operand; at zero it
        // enters its thread's ready list (exactly once).
        let mut units = 0u64;
        while let Some(&Reverse((at, slot, _seq, idx))) = self.completions.peek() {
            if at > now {
                break;
            }
            self.completions.pop();
            let t = self.slots[slot].thread.as_mut().expect("completing slot has thread");
            self.arena.complete(idx, &mut t.ready);
            units += 1;
        }
        if let Some(p) = self.profile.as_deref_mut() {
            p.complete.record(units);
        }
        // Mispredicted-branch resolution (the branch entry completed; a
        // retired entry necessarily completed, which `done` covers).
        let arena = &self.arena;
        for slot in &mut self.slots {
            let Some(t) = slot.thread.as_mut() else { continue };
            if let SlotState::WaitBranch { entry, resume_pc } = slot.state {
                if arena.done(entry) {
                    slot.state = SlotState::Active;
                    t.fetch_pc = Some(resume_pc);
                    t.fetch_block_until =
                        t.fetch_block_until.max(now + self.pred.mispredict_penalty());
                }
            }
        }
    }

    fn commit_stage(&mut self) {
        // Per-core commit bandwidth (a CMP commits on every core).
        let n = self.slots.len();
        let per_core = self.per_core();
        let mut budgets = std::mem::take(&mut self.scratch.budgets);
        budgets.clear();
        budgets.resize(self.cfg.cores, self.cfg.commit_width);
        let start = (self.cycle as usize) % n.max(1);
        let mut drained = std::mem::take(&mut self.scratch.drained);
        drained.clear();
        let mut units = 0u64;
        for k in 0..n {
            let i = (start + k) % n;
            let core = i / per_core;
            let budget = &mut budgets[core];
            let slot = &mut self.slots[i];
            let Some(t) = slot.thread.as_mut() else { continue };
            while *budget > 0 {
                match t.in_flight.front() {
                    Some(&idx) if self.arena.is_completed(idx) => {
                        t.in_flight.pop_front();
                        *budget -= 1;
                        self.stats.committed += 1;
                        units += 1;
                        self.ruu_used[core] -= 1;
                        if self.arena.is_mem(idx) {
                            self.lsq_used[core] -= 1;
                        }
                        self.arena.retire(idx);
                    }
                    _ => break,
                }
            }
            if matches!(slot.state, SlotState::Draining(_)) && t.in_flight.is_empty() {
                drained.push(i);
            }
        }
        self.scratch.budgets = budgets;
        if let Some(p) = self.profile.as_deref_mut() {
            p.commit.record(units);
        }
        for &i in &drained {
            self.finalize_drain(i);
        }
        drained.clear();
        self.scratch.drained = drained;
    }

    fn finalize_drain(&mut self, i: usize) {
        let SlotState::Draining(action) = self.slots[i].state else { return };
        match action {
            AfterDrain::Die => {
                let t = self.slots[i].thread.take().expect("draining slot has thread");
                self.policy.record_death(self.cycle);
                self.stats.deaths += 1;
                self.tree.record_death(t.arch.worker, self.cycle);
                self.trace_event(TraceKind::Death { worker: t.arch.worker, slot: i });
                self.live_workers -= 1;
                self.refill_slot(i);
            }
            AfterDrain::SwapOut => {
                if let Some(incoming) = self.stack.pop() {
                    let outgoing = self.slots[i].thread.take().expect("draining slot has thread");
                    self.trace_event(TraceKind::SwapOut { worker: outgoing.arch.worker, slot: i });
                    self.trace_event(TraceKind::SwapIn { worker: incoming.arch.worker, slot: i });
                    self.stack.push(SavedThread { arch: outgoing.arch });
                    self.stats.swaps_out += 1;
                    self.stats.swaps_in += 1;
                    self.install(
                        i,
                        incoming.arch,
                        SlotState::SwapIn { until: self.cycle + self.cfg.swap_latency },
                    );
                } else {
                    // Nobody to exchange with: resume in place.
                    let t = self.slots[i].thread.as_mut().expect("draining slot has thread");
                    t.fetch_pc = Some(t.arch.pc);
                    self.slots[i].state = SlotState::Active;
                }
            }
        }
    }

    /// A context slot just became empty; pull a parked thread in, else
    /// mark it free.
    fn refill_slot(&mut self, i: usize) {
        if let Some(saved) = self.stack.pop() {
            self.stats.swaps_in += 1;
            self.trace_event(TraceKind::SwapIn { worker: saved.arch.worker, slot: i });
            self.install(
                i,
                saved.arch,
                SlotState::SwapIn { until: self.cycle + self.cfg.swap_latency },
            );
        } else {
            self.slots[i] = Slot { state: SlotState::Free, thread: None };
        }
    }

    fn install(&mut self, i: usize, arch: ArchState, state: SlotState) {
        self.slots[i] = Slot { state, thread: Some(Thread::new(arch)) };
    }

    fn issue_stage(&mut self) {
        // Gather candidates from the per-thread ready lists (entries land
        // there exactly once, when their last operand completes).
        let mut candidates = std::mem::take(&mut self.scratch.candidates);
        candidates.clear();
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(t) = slot.thread.as_ref() else { continue };
            for &idx in &t.ready {
                candidates.push((self.arena.seq(idx), i, idx));
            }
        }
        if candidates.is_empty() {
            self.scratch.candidates = candidates;
            return;
        }
        candidates.sort_unstable();

        // Per-core issue bandwidth and functional-unit pools.
        let cores = self.cfg.cores;
        let per_core = self.per_core();
        let mut budget = std::mem::take(&mut self.scratch.issue_budget);
        budget.clear();
        budget.resize(cores, self.cfg.issue_width);
        let mut ialu = std::mem::take(&mut self.scratch.ialu);
        ialu.clear();
        ialu.resize(cores, self.cfg.fus.ialu);
        let mut imult = std::mem::take(&mut self.scratch.imult);
        imult.clear();
        imult.resize(cores, self.cfg.fus.imult);
        let mut fpalu = std::mem::take(&mut self.scratch.fpalu);
        fpalu.clear();
        fpalu.resize(cores, self.cfg.fus.fpalu);
        let mut fpmult = std::mem::take(&mut self.scratch.fpmult);
        fpmult.clear();
        fpmult.resize(cores, self.cfg.fus.fpmult);
        let mut mem_issues = std::mem::take(&mut self.scratch.mem_issues);
        mem_issues.clear();
        mem_issues.resize(cores, self.cfg.l1d.ports * MEM_ISSUE_PER_PORT);

        let mut units = 0u64;
        for &(seqno, i, idx) in &candidates {
            let core = i / per_core;
            if budget[core] == 0 {
                continue;
            }
            let fu = self.arena.fu(idx);
            let unit = match fu {
                FuClass::IntAlu => &mut ialu[core],
                FuClass::IntMult => &mut imult[core],
                FuClass::FpAlu => &mut fpalu[core],
                FuClass::FpMult => &mut fpmult[core],
                FuClass::Mem => &mut mem_issues[core],
                FuClass::None => unreachable!("inert entries never enter ready lists"),
            };
            if *unit == 0 {
                continue;
            }
            *unit -= 1;
            budget[core] -= 1;
            units += 1;

            let complete_at = if fu == FuClass::Mem {
                let addr = self.arena.mem_addr(idx);
                let access = self.hier.access_data_on(core, addr, self.cycle);
                if self.arena.is_load(idx) {
                    self.observe_load_latency(i, access.latency);
                    self.cycle + access.latency
                } else {
                    // Stores retire from the store buffer; dependents do
                    // not wait for the miss (the line fill is charged to
                    // the cache state only).
                    self.cycle + 1
                }
            } else {
                self.cycle + self.arena.latency(idx)
            };
            self.arena.mark_issued(idx, complete_at);
            self.completions.push(Reverse((complete_at, i, seqno, idx)));
        }

        // Entries that lost arbitration (bandwidth / FU exhausted) stay
        // ready; drop the issued ones from each touched ready list.
        let arena = &self.arena;
        for slot in &mut self.slots {
            let Some(t) = slot.thread.as_mut() else { continue };
            if t.ready.is_empty() {
                continue;
            }
            t.ready.retain(|&idx| !arena.is_issued(idx));
        }

        self.scratch.candidates = candidates;
        self.scratch.issue_budget = budget;
        self.scratch.ialu = ialu;
        self.scratch.imult = imult;
        self.scratch.fpalu = fpalu;
        self.scratch.fpmult = fpmult;
        self.scratch.mem_issues = mem_issues;
        if let Some(p) = self.profile.as_deref_mut() {
            p.issue.record(units);
        }
    }

    fn observe_load_latency(&mut self, slot_idx: usize, lat: u64) {
        let window = self.cfg.swap_load_window;
        self.load_lat_window.push_back(lat);
        self.load_lat_sum += lat;
        if self.load_lat_window.len() > window {
            let old = self.load_lat_window.pop_front().expect("non-empty");
            self.load_lat_sum -= old;
        }
        let avg = self.load_lat_sum as f64 / self.load_lat_window.len() as f64;
        let t = self.slots[slot_idx].thread.as_mut().expect("issuing slot has thread");
        if (lat as f64) > avg {
            t.slow_counter += 1;
        } else {
            t.slow_counter = (t.slow_counter - 1).max(-self.cfg.swap_counter_threshold);
        }
    }

    fn swap_check(&mut self) {
        if self.stack.is_empty() || self.free_slot_count() > 0 {
            return;
        }
        let threshold = self.cfg.swap_counter_threshold;
        for slot in &mut self.slots {
            if slot.state != SlotState::Active {
                continue;
            }
            let Some(t) = slot.thread.as_mut() else { continue };
            // A lock holder must not migrate: lock ownership is per slot.
            if t.slow_counter >= threshold && t.locks_held == 0 {
                t.slow_counter = 0;
                t.flush_frontend();
                slot.state = SlotState::Draining(AfterDrain::SwapOut);
            }
        }
    }

    fn dispatch_stage(&mut self) -> Result<(), SimError> {
        let n = self.slots.len();
        let per_core = self.per_core();
        let start = (self.cycle as usize) % n.max(1);
        let mut budgets = std::mem::take(&mut self.scratch.budgets);
        budgets.clear();
        budgets.resize(self.cfg.cores, self.cfg.decode_width);
        let mut units = 0u64;
        let mut progressed = true;
        while progressed && !self.halted {
            progressed = false;
            for k in 0..n {
                if self.halted {
                    break;
                }
                let i = (start + k) % n;
                let core = i / per_core;
                if budgets[core] == 0 {
                    continue;
                }
                match self.try_dispatch_one(i) {
                    Ok(true) => {
                        budgets[core] -= 1;
                        units += 1;
                        progressed = true;
                    }
                    Ok(false) => {}
                    Err(e) => {
                        self.scratch.budgets = budgets;
                        return Err(e);
                    }
                }
            }
            if budgets.iter().all(|&b| b == 0) {
                break;
            }
        }
        self.scratch.budgets = budgets;
        if let Some(p) = self.profile.as_deref_mut() {
            p.dispatch.record(units);
        }
        Ok(())
    }

    /// Attempts to dispatch one instruction from slot `i`; returns whether
    /// one was dispatched.
    fn try_dispatch_one(&mut self, i: usize) -> Result<bool, SimError> {
        if self.slots[i].state != SlotState::Active {
            return Ok(false);
        }
        let now = self.cycle;
        {
            let t = self.slots[i].thread.as_ref().expect("active slot has thread");
            if t.dispatch_block_until > now || t.fetch_queue.is_empty() {
                return Ok(false);
            }
        }
        // Peek resource needs.
        let (fetched, meta) = {
            let t = self.slots[i].thread.as_ref().expect("active slot has thread");
            let f = *t.fetch_queue.front().expect("checked non-empty");
            (f, *self.text.meta(f.pc as usize))
        };
        let is_mem = meta.is_mem();
        let core = i / self.per_core();
        if self.ruu_used[core] >= self.cfg.ruu_size
            || (is_mem && self.lsq_used[core] >= self.cfg.lsq_size)
        {
            return Ok(false);
        }

        let t = self.slots[i].thread.as_mut().expect("active slot has thread");
        t.fetch_queue.pop_front();

        // Defensive: fetch should always track the architectural path.
        if fetched.pc != t.arch.pc {
            t.flush_frontend();
            t.fetch_pc = Some(t.arch.pc);
            return Ok(false);
        }

        // Capture dependencies before renaming the destination.
        let mut deps: [Option<EntryRef>; 4] = [None; 4];
        let mut d = 0;
        for r in meta.src_int {
            if r != NO_REG {
                deps[d] = t.last_writer_int[r as usize];
                d += 1;
            }
        }
        for f in meta.src_fp {
            if f != NO_REG {
                deps[d] = t.last_writer_fp[f as usize];
                d += 1;
            }
        }

        // Functional execution (in program order).
        let pc = fetched.pc;
        let instr = self.text.instr(pc as usize);
        let out = step(&mut t.arch, instr, &mut self.mem).map_err(|kind| SimError::Trap {
            cycle: now,
            slot: i,
            pc,
            kind,
        })?;

        // Create the window entry. Readiness is resolved here, once: each
        // source operand whose producer is still in flight and incomplete
        // links this entry into that producer's wakeup chain; anything
        // already complete (or retired) never needs watching again.
        let seqno = self.seq;
        self.seq += 1;
        let fu = meta.fu;
        let inert = fu == FuClass::None;
        let idx = self.arena.alloc(seqno, fu, meta.latency as u64, meta.is_load(), is_mem, now);
        if let Some(addr) = out.mem_addr {
            self.arena.set_mem_addr(idx, addr);
        }
        if !inert {
            for (dslot, dep) in deps.into_iter().enumerate() {
                let Some(p) = dep else { continue };
                self.arena.link_if_pending(p, idx, dslot as u8);
            }
            if self.arena.unready(idx) == 0 {
                t.ready.push(idx);
            }
        }
        if meta.dest_int != NO_REG {
            t.last_writer_int[meta.dest_int as usize] = Some(self.arena.entry_ref(idx));
        }
        if meta.dest_fp != NO_REG {
            t.last_writer_fp[meta.dest_fp as usize] = Some(self.arena.entry_ref(idx));
        }
        t.in_flight.push_back(idx);
        self.ruu_used[core] += 1;
        if is_mem {
            self.lsq_used[core] += 1;
        }
        self.stats.dispatched += 1;

        // Control flow bookkeeping.
        if let Some(b) = out.branch {
            if b.conditional {
                self.stats.branches += 1;
                let t = self.slots[i].thread.as_mut().expect("active slot has thread");
                t.bp_history = self.pred.update(pc, t.bp_history, b.taken);
                if fetched.predicted_taken != b.taken {
                    self.stats.branch_mispredicts += 1;
                    t.flush_frontend();
                    self.slots[i].state = SlotState::WaitBranch {
                        entry: self.arena.entry_ref(idx),
                        resume_pc: b.next_pc,
                    };
                }
            } else if meta.is_indirect() {
                // Indirect jump: fetch stalled at it; redirect now.
                let t = self.slots[i].thread.as_mut().expect("active slot has thread");
                t.fetch_pc = Some(b.next_pc);
                t.fetch_block_until = t.fetch_block_until.max(now + 1);
            }
        }

        // Host-side effects.
        match out.effect {
            Effect::None => {}
            Effect::Out(v) => self.output.push(v),
            Effect::Halt => {
                self.halted = true;
                self.cycle += 1;
                self.stats.cycles = self.cycle;
                if let Some(p) = self.profile.as_deref_mut() {
                    // The halt cycle ends mid-pipeline; count it stepped.
                    p.stepped_cycles += 1;
                }
                self.sections.finish(self.cycle);
                // In-flight instructions were architecturally executed at
                // dispatch; count them as committed so instruction totals
                // (e.g. Table 3's insts-per-division) reflect real work.
                let in_flight: u64 = self
                    .slots
                    .iter()
                    .filter_map(|s| s.thread.as_ref())
                    .map(|t| t.in_flight.len() as u64)
                    .sum();
                self.stats.committed += in_flight;
                self.trace_event(TraceKind::Halt);
            }
            Effect::Kthr => {
                let t = self.slots[i].thread.as_mut().expect("active slot has thread");
                t.flush_frontend();
                self.slots[i].state = SlotState::Draining(AfterDrain::Die);
            }
            Effect::Nthr { rd, target } => self.handle_nthr(i, rd, target),
            Effect::Mlock(addr) => match self.locks.acquire(addr, i) {
                AcquireResult::Acquired => {
                    self.stats.lock_acquires += 1;
                    let t = self.slots[i].thread.as_mut().expect("active slot has thread");
                    t.locks_held += 1;
                    self.trace_event(TraceKind::LockAcquire { slot: i, addr });
                }
                AcquireResult::Queued => {
                    self.stats.lock_stalls += 1;
                    self.slots[i].state = SlotState::WaitLock { since: now };
                    self.trace_event(TraceKind::LockBlock { slot: i, addr });
                }
                AcquireResult::AlreadyOwner => {
                    return Err(SimError::Trap {
                        cycle: now,
                        slot: i,
                        pc,
                        kind: crate::exec::TrapKind::RelockOwned(addr),
                    });
                }
                AcquireResult::TableFull => {
                    return Err(SimError::Trap {
                        cycle: now,
                        slot: i,
                        pc,
                        kind: crate::exec::TrapKind::LockTableFull(addr),
                    });
                }
            },
            Effect::Munlock(addr) => match self.locks.release(addr, i) {
                ReleaseResult::Released => {
                    let t = self.slots[i].thread.as_mut().expect("active slot has thread");
                    t.locks_held = t.locks_held.saturating_sub(1);
                }
                ReleaseResult::Transferred(next) => {
                    self.stats.lock_acquires += 1;
                    let t = self.slots[i].thread.as_mut().expect("active slot has thread");
                    t.locks_held = t.locks_held.saturating_sub(1);
                    if let SlotState::WaitLock { since } = self.slots[next].state {
                        self.stats.lock_stall_cycles += now.saturating_sub(since);
                        self.slots[next].state = SlotState::Active;
                        let nt = self.slots[next].thread.as_mut().expect("waiting slot has thread");
                        nt.dispatch_block_until = now + 1 + self.cfg.lock_squash_penalty;
                        nt.locks_held += 1;
                        self.trace_event(TraceKind::LockTransfer { to: next, addr });
                    }
                }
                ReleaseResult::NotOwner => {
                    return Err(SimError::Trap {
                        cycle: now,
                        slot: i,
                        pc,
                        kind: crate::exec::TrapKind::BadUnlock(addr),
                    });
                }
            },
            Effect::Nctx(rd) => {
                let free = self.free_slot_count() as i64;
                let t = self.slots[i].thread.as_mut().expect("active slot has thread");
                t.arch.set(rd, free);
            }
            Effect::MarkStart(id) => {
                self.sections.enter(id, now);
                self.trace_event(TraceKind::Mark { id, enter: true });
            }
            Effect::MarkEnd(id) => {
                self.sections.leave(id, now);
                self.trace_event(TraceKind::Mark { id, enter: false });
            }
        }
        Ok(true)
    }

    fn handle_nthr(&mut self, parent: usize, rd: capsule_isa::reg::Reg, target: u32) {
        self.stats.divisions_requested += 1;
        let req = DivisionRequest {
            free_contexts: self.free_slot_count(),
            stack_free_slots: self.stack.free_slots(),
        };
        let decision = self.policy.decide(self.cycle, req);
        match decision {
            DivisionDecision::GrantToContext | DivisionDecision::GrantToStack => {
                let place = if decision == DivisionDecision::GrantToContext {
                    self.stats.divisions_granted_context += 1;
                    BirthPlace::Context
                } else {
                    self.stats.divisions_granted_stack += 1;
                    BirthPlace::Stack
                };
                let parent_worker = {
                    let t = self.slots[parent].thread.as_mut().expect("parent thread");
                    t.arch.set(rd, 0);
                    // Paper: the parent stalls one cycle for the copy.
                    t.dispatch_block_until = self.cycle + 1;
                    t.arch.worker
                };
                let child_worker = self.tree.record_birth(Some(parent_worker), self.cycle, place);
                let mut child_arch =
                    self.slots[parent].thread.as_ref().expect("parent thread").arch.clone();
                child_arch.pc = target;
                child_arch.set(rd, 1);
                child_arch.worker = child_worker;
                self.live_workers += 1;
                self.stats.max_live_workers = self.stats.max_live_workers.max(self.live_workers);

                self.trace_event(TraceKind::Division {
                    parent: parent_worker,
                    child: Some(child_worker),
                    outcome: if place == BirthPlace::Context { "context" } else { "stack" },
                });
                if place == BirthPlace::Context {
                    // Prefer a context on the requester's core; a remote
                    // child pays the cross-core register-copy latency the
                    // paper's §5 CMP study sweeps.
                    let per_core = self.per_core();
                    let my_core = parent / per_core;
                    let local =
                        self.slots.iter().enumerate().position(|(j, s)| {
                            s.state == SlotState::Free && j / per_core == my_core
                        });
                    let (free, extra) = match local {
                        Some(j) => (j, 0),
                        None => (
                            self.slots
                                .iter()
                                .position(|s| s.state == SlotState::Free)
                                .expect("grant implies a free slot"),
                            self.cfg.remote_division_latency,
                        ),
                    };
                    // Child waits for the register copy (commit-time copy
                    // in the paper, approximated from dispatch).
                    self.install(
                        free,
                        child_arch,
                        SlotState::WaitCopy {
                            until: self.cycle + 1 + self.cfg.division_latency + extra,
                        },
                    );
                } else {
                    self.stack.push(SavedThread { arch: child_arch });
                }
            }
            DivisionDecision::DenyNoResource
            | DivisionDecision::DenyThrottled
            | DivisionDecision::DenyDisabled => {
                let outcome = match decision {
                    DivisionDecision::DenyNoResource => {
                        self.stats.divisions_denied_no_resource += 1;
                        "deny:resource"
                    }
                    DivisionDecision::DenyThrottled => {
                        self.stats.divisions_denied_throttled += 1;
                        "deny:throttle"
                    }
                    _ => {
                        self.stats.divisions_denied_disabled += 1;
                        "deny:disabled"
                    }
                };
                let t = self.slots[parent].thread.as_mut().expect("parent thread");
                t.arch.set(rd, -1);
                let parent_worker = t.arch.worker;
                self.trace_event(TraceKind::Division {
                    parent: parent_worker,
                    child: None,
                    outcome,
                });
            }
        }
    }

    fn fetch_stage(&mut self) {
        let now = self.cycle;
        let per_core = self.per_core();
        let mut units = 0u64;
        for core in 0..self.cfg.cores {
            units += self.fetch_core(core * per_core, (core + 1) * per_core, now);
        }
        if let Some(p) = self.profile.as_deref_mut() {
            p.fetch.record(units);
        }
    }

    /// ICount.4.4 fetch for the slots of one core; returns the number of
    /// instructions fetched.
    fn fetch_core(&mut self, lo: usize, hi: usize, now: u64) -> u64 {
        // Pick the fetch_threads least-occupied eligible threads.
        let mut eligible = std::mem::take(&mut self.scratch.eligible);
        eligible.clear();
        eligible.extend(self.slots[lo..hi].iter().enumerate().filter_map(|(k, s)| {
            if s.state != SlotState::Active {
                return None;
            }
            let t = s.thread.as_ref()?;
            (t.fetch_pc.is_some()
                && t.fetch_block_until <= now
                && t.fetch_queue.len() < FETCH_QUEUE_CAP)
                .then(|| (t.icount(), lo + k))
        }));
        eligible.sort_unstable();
        eligible.truncate(self.cfg.fetch_threads);

        let core = lo / self.per_core();
        let mut total_budget = self.cfg.fetch_width;
        let line_bytes = self.hier.line_bytes();
        let l1i_latency = self.cfg.l1i.latency;
        let mut units = 0u64;
        for &(_, i) in &eligible {
            if total_budget == 0 {
                break;
            }
            let mut last_line = u64::MAX;
            for _ in 0..self.cfg.fetch_per_thread {
                if total_budget == 0 {
                    break;
                }
                let t = self.slots[i].thread.as_mut().expect("eligible slot has thread");
                if t.fetch_queue.len() >= FETCH_QUEUE_CAP {
                    break;
                }
                let Some(pc) = t.fetch_pc else { break };
                if pc as usize >= self.text.len() {
                    // Speculative fetch ran off the text section; stall
                    // until dispatch redirects.
                    t.fetch_pc = None;
                    break;
                }
                let byte_addr = pc as u64 * INSTR_BYTES;
                let line = match self.line_shift {
                    Some(s) => byte_addr >> s,
                    None => byte_addr / line_bytes,
                };
                if line != last_line {
                    let access = self.hier.access_instr_on(core, byte_addr, now);
                    if access.served_by != ServedBy::L1 {
                        let t = self.slots[i].thread.as_mut().expect("eligible slot");
                        t.fetch_block_until = now + access.latency;
                        break;
                    }
                    let _ = l1i_latency;
                    last_line = line;
                }
                let fetch_class = self.text.meta(pc as usize).fetch;
                let t = self.slots[i].thread.as_mut().expect("eligible slot has thread");
                let mut predicted_taken = false;
                let mut stop = false;
                match fetch_class {
                    FetchClass::CondBr { target } => {
                        predicted_taken = self.pred.predict(pc, t.bp_history);
                        if predicted_taken {
                            t.fetch_pc = Some(target);
                            stop = true; // one taken transfer per thread-cycle
                        } else {
                            t.fetch_pc = Some(pc + 1);
                        }
                    }
                    FetchClass::Jump { target } => {
                        t.fetch_pc = Some(target);
                        stop = true;
                    }
                    FetchClass::Stop => {
                        // Indirect target unknown until dispatch; `kthr` /
                        // `halt` never fetch past themselves.
                        t.fetch_pc = None;
                        stop = true;
                    }
                    FetchClass::Fall => {
                        t.fetch_pc = Some(pc + 1);
                    }
                }
                t.fetch_queue.push_back(Fetched { pc, predicted_taken });
                self.stats.fetched += 1;
                units += 1;
                total_budget -= 1;
                if stop {
                    break;
                }
            }
        }
        eligible.clear();
        self.scratch.eligible = eligible;
        units
    }
}

/// A reusable machine slot for batch drivers: holds one warmed
/// [`Machine`] across runs and rebuilds it in place with
/// [`Machine::reset`], so repeated runs reuse the data-memory buffer, the
/// entry arena and the stage scratch instead of reallocating them. A
/// prepared machine is cycle-for-cycle identical to a fresh one.
#[derive(Debug, Default)]
pub struct WarmMachine {
    machine: Option<Machine>,
}

impl WarmMachine {
    /// An empty slot (the first `prepare` builds a machine from scratch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Readies the held machine for a run of `program` under `cfg`,
    /// building one if the slot is empty.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::new`]; the slot survives a
    /// validation error and stays usable.
    pub fn prepare(
        &mut self,
        cfg: MachineConfig,
        program: &Program,
    ) -> Result<&mut Machine, SimError> {
        match &mut self.machine {
            Some(m) => m.reset(cfg, program)?,
            None => self.machine = Some(Machine::new(cfg, program)?),
        }
        Ok(self.machine.as_mut().expect("slot filled above"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_isa::asm::Asm;
    use capsule_isa::program::{DataBuilder, ThreadSpec};
    use capsule_isa::reg::Reg;

    fn somt() -> MachineConfig {
        MachineConfig::table1_somt()
    }

    fn build(f: impl FnOnce(&mut Asm, &mut DataBuilder), threads: Vec<ThreadSpec>) -> Program {
        let mut a = Asm::new();
        let mut d = DataBuilder::new();
        f(&mut a, &mut d);
        let mut p = Program::new(a.assemble().unwrap(), d.build(), 1 << 16);
        p.threads = threads;
        p
    }

    #[test]
    fn straight_line_program_halts() {
        let p = build(
            |a, _| {
                a.li(Reg(1), 7);
                a.addi(Reg(1), Reg(1), 35);
                a.out(Reg(1));
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        let mut m = Machine::new(somt(), &p).unwrap();
        let o = m.run(10_000).unwrap();
        assert_eq!(o.ints(), vec![42]);
        assert!(o.stats.cycles > 0);
        assert_eq!(o.stats.committed, 4); // all four, including halt
    }

    #[test]
    fn loop_result_matches_reference() {
        let p = build(
            |a, _| {
                a.li(Reg(1), 100);
                a.li(Reg(2), 0);
                a.bind("loop");
                a.add(Reg(2), Reg(2), Reg(1));
                a.addi(Reg(1), Reg(1), -1);
                a.bne(Reg(1), Reg::ZERO, "loop");
                a.out(Reg(2));
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        let mut m = Machine::new(somt(), &p).unwrap();
        let o = m.run(100_000).unwrap();
        assert_eq!(o.ints(), vec![5050]);
        assert!(o.stats.branches >= 99);
    }

    #[test]
    fn memory_program_works() {
        let p = build(
            |a, d| {
                let arr = d.words(&[5, 3, 9, 1]);
                a.li(Reg(1), arr as i64);
                a.li(Reg(2), 0); // sum
                a.li(Reg(3), 4); // count
                a.bind("loop");
                a.ld(Reg(4), 0, Reg(1));
                a.add(Reg(2), Reg(2), Reg(4));
                a.addi(Reg(1), Reg(1), 8);
                a.addi(Reg(3), Reg(3), -1);
                a.bne(Reg(3), Reg::ZERO, "loop");
                a.out(Reg(2));
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        let o = Machine::new(somt(), &p).unwrap().run(100_000).unwrap();
        assert_eq!(o.ints(), vec![18]);
        assert!(o.l1d.accesses >= 4);
    }

    #[test]
    fn division_splits_work() {
        // Parent computes sum of 1..=50, child of 51..=100, into separate
        // memory cells; parent joins by polling a done flag.
        let p = build(
            |a, d| {
                let cell_a = d.word(0);
                let cell_b = d.word(0);
                let done = d.word(0);
                let sum = |a: &mut Asm, lo: Reg, hi: Reg, acc: Reg| {
                    // acc = lo + (lo+1) + ... + hi  (hi inclusive)
                    a.li(acc, 0);
                    a.bind("sl");
                    a.add(acc, acc, lo);
                    a.addi(lo, lo, 1);
                    a.bge(hi, lo, "sl");
                };
                let (lo, hi, acc, tmp) = (Reg(1), Reg(2), Reg(3), Reg(4));
                a.nthr(Reg(10), "child");
                // parent (0) or denied (-1): sum 1..=50
                a.li(lo, 1);
                a.li(hi, 50);
                // if denied, sum the whole range sequentially
                a.li(tmp, -1);
                a.bne(Reg(10), tmp, "parent_go");
                a.li(hi, 100);
                a.bind("parent_go");
                sum(a, lo, hi, acc);
                a.li(tmp, cell_a as i64);
                a.st(acc, 0, tmp);
                // wait for child if we divided
                a.beq(Reg(10), Reg::ZERO, "join");
                a.j("report_seq");
                a.bind("join");
                a.li(tmp, done as i64);
                a.bind("wait");
                a.ld(Reg(5), 0, tmp);
                a.beq(Reg(5), Reg::ZERO, "wait");
                a.li(tmp, cell_b as i64);
                a.ld(Reg(6), 0, tmp);
                a.li(tmp, cell_a as i64);
                a.ld(Reg(7), 0, tmp);
                a.add(Reg(8), Reg(6), Reg(7));
                a.out(Reg(8));
                a.halt();
                a.bind("report_seq");
                a.li(tmp, cell_a as i64);
                a.ld(Reg(7), 0, tmp);
                a.out(Reg(7));
                a.halt();
                // child: sum 51..=100, set done
                a.bind("child");
                a.li(lo, 51);
                a.li(hi, 100);
                a.li(acc, 0);
                a.bind("cl");
                a.add(acc, acc, lo);
                a.addi(lo, lo, 1);
                a.bge(hi, lo, "cl");
                a.li(tmp, cell_b as i64);
                a.st(acc, 0, tmp);
                a.li(Reg(5), 1);
                a.li(tmp, done as i64);
                a.st(Reg(5), 0, tmp);
                a.kthr();
            },
            vec![ThreadSpec::at(0)],
        );
        let mut m = Machine::new(somt(), &p).unwrap();
        let o = m.run(1_000_000).unwrap();
        assert_eq!(o.ints(), vec![5050]);
        assert_eq!(o.stats.divisions_requested, 1);
        assert_eq!(o.stats.divisions_granted(), 1);
        assert_eq!(o.stats.deaths, 1);
        assert_eq!(o.tree.len(), 2);
    }

    #[test]
    fn division_denied_on_superscalar() {
        let p = build(
            |a, _| {
                a.nthr(Reg(1), "child");
                a.out(Reg(1));
                a.halt();
                a.bind("child");
                a.kthr();
            },
            vec![ThreadSpec::at(0)],
        );
        let o = Machine::new(MachineConfig::table1_superscalar(), &p).unwrap().run(10_000).unwrap();
        assert_eq!(o.ints(), vec![-1]);
        assert_eq!(o.stats.divisions_denied_disabled, 1);
    }

    #[test]
    fn locks_hand_off_between_threads() {
        // Two loader threads increment a shared counter 50 times each.
        let p = build(
            |a, d| {
                let counter = d.word(0);
                let done = d.word(0);
                let (rc, rv, ri, rdn) = (Reg(1), Reg(2), Reg(3), Reg(4));
                a.li(rc, counter as i64);
                a.li(ri, 50);
                a.bind("loop");
                a.mlock(rc);
                a.ld(rv, 0, rc);
                a.addi(rv, rv, 1);
                a.st(rv, 0, rc);
                a.munlock(rc);
                a.addi(ri, ri, -1);
                a.bne(ri, Reg::ZERO, "loop");
                a.li(rdn, done as i64);
                a.mlock(rdn);
                a.ld(rv, 0, rdn);
                a.addi(rv, rv, 1);
                a.st(rv, 0, rdn);
                a.munlock(rdn);
                a.tid(Reg(5));
                a.bne(Reg(5), Reg::ZERO, "park");
                a.bind("wait");
                a.ld(rv, 0, rdn);
                a.li(Reg(6), 2);
                a.bne(rv, Reg(6), "wait");
                a.ld(rv, 0, rc);
                a.out(rv);
                a.halt();
                a.bind("park");
                a.kthr();
            },
            vec![ThreadSpec::at(0), ThreadSpec::at(0)],
        );
        let o = Machine::new(somt(), &p).unwrap().run(5_000_000).unwrap();
        assert_eq!(o.ints(), vec![100]);
        assert!(o.stats.lock_acquires >= 100);
    }

    #[test]
    fn timeout_reported() {
        let p = build(
            |a, _| {
                a.bind("x");
                a.j("x");
            },
            vec![ThreadSpec::at(0)],
        );
        let e = Machine::new(somt(), &p).unwrap().run(1000);
        assert_eq!(e.unwrap_err(), SimError::Timeout { cycles: 1000 });
    }

    #[test]
    fn pre_tripped_token_cancels_before_any_cycle() {
        let p = build(
            |a, _| {
                a.bind("x");
                a.j("x");
            },
            vec![ThreadSpec::at(0)],
        );
        let mut m = Machine::new(somt(), &p).unwrap();
        let tok = CancelToken::new();
        tok.cancel();
        m.set_cancel_token(tok);
        assert_eq!(m.run(1_000_000).unwrap_err(), SimError::Cancelled { cycle: 0 });
    }

    #[test]
    fn cancel_mid_flight_is_cancelled_not_timeout() {
        // An infinite loop with a generous budget: only the token can stop
        // it (a Timeout here would take the full budget).
        let p = build(
            |a, _| {
                a.bind("x");
                a.j("x");
            },
            vec![ThreadSpec::at(0)],
        );
        let mut m = Machine::new(somt(), &p).unwrap();
        let tok = CancelToken::new();
        m.set_cancel_token(tok.clone());
        let err = std::thread::scope(|s| {
            let h = s.spawn(move || m.run(u64::MAX / 2).unwrap_err());
            // Let the run get going, then trip the token from outside.
            std::thread::sleep(std::time::Duration::from_millis(20));
            tok.cancel();
            h.join().expect("runner thread")
        });
        match err {
            SimError::Cancelled { .. } => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn untripped_token_does_not_perturb_the_run() {
        let mk = || {
            build(
                |a, _| {
                    a.li(Reg(1), 7);
                    a.out(Reg(1));
                    a.halt();
                },
                vec![ThreadSpec::at(0)],
            )
        };
        let plain = Machine::new(somt(), &mk()).unwrap().run(10_000).unwrap();
        let mut m = Machine::new(somt(), &mk()).unwrap();
        m.set_cancel_token(CancelToken::new());
        let tokened = m.run(10_000).unwrap();
        assert_eq!(plain.ints(), tokened.ints());
        assert_eq!(plain.cycles(), tokened.cycles());
    }

    #[test]
    fn all_dead_reported() {
        let p = build(
            |a, _| {
                a.kthr();
            },
            vec![ThreadSpec::at(0)],
        );
        let e = Machine::new(somt(), &p).unwrap().run(10_000);
        assert!(matches!(e.unwrap_err(), SimError::AllThreadsDead { .. }));
    }

    #[test]
    fn trap_reports_location() {
        let p = build(
            |a, _| {
                a.li(Reg(1), 0);
                a.ld(Reg(2), 0, Reg(1));
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        match Machine::new(somt(), &p).unwrap().run(10_000) {
            Err(SimError::Trap { pc: 1, slot: 0, .. }) => {}
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn too_many_loader_threads_rejected() {
        let p = build(
            |a, _| {
                a.halt();
            },
            (0..3).map(|_| ThreadSpec::at(0)).collect(),
        );
        let e = Machine::new(MachineConfig::table1_superscalar(), &p);
        assert!(matches!(e.unwrap_err(), SimError::TooManyThreads { requested: 3, contexts: 1 }));
    }

    #[test]
    fn sections_are_tracked() {
        let p = build(
            |a, _| {
                a.li(Reg(1), 20);
                a.mark_start(1);
                a.bind("l");
                a.addi(Reg(1), Reg(1), -1);
                a.bne(Reg(1), Reg::ZERO, "l");
                a.mark_end(1);
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        let o = Machine::new(somt(), &p).unwrap().run(100_000).unwrap();
        assert!(o.sections.section_cycles(1) > 0);
        assert_eq!(o.sections.section_entries(1), 1);
        assert!(o.sections.section_cycles(1) <= o.stats.cycles);
    }

    #[test]
    fn profile_reports_stage_work_without_perturbing_the_run() {
        let mk = || {
            build(
                |a, d| {
                    let arr = d.words(&[1, 2, 3, 4, 5, 6, 7, 8]);
                    a.li(Reg(1), arr as i64);
                    a.li(Reg(2), 0);
                    a.li(Reg(3), 8);
                    a.bind("loop");
                    a.ld(Reg(4), 0, Reg(1));
                    a.add(Reg(2), Reg(2), Reg(4));
                    a.addi(Reg(1), Reg(1), 8);
                    a.addi(Reg(3), Reg(3), -1);
                    a.bne(Reg(3), Reg::ZERO, "loop");
                    a.out(Reg(2));
                    a.halt();
                },
                vec![ThreadSpec::at(0)],
            )
        };
        let plain = Machine::new(somt(), &mk()).unwrap().run(100_000).unwrap();
        assert!(plain.profile.is_none());

        let mut m = Machine::new(somt(), &mk()).unwrap();
        m.enable_profile();
        let o = m.run(100_000).unwrap();
        let p = o.profile.as_ref().expect("profile enabled");
        // The profile must not perturb a single simulated number.
        assert_eq!(o.stats, plain.stats);
        assert_eq!(o.ints(), plain.ints());
        // Stage work is consistent with the run's own counters.
        assert_eq!(p.fetch.units, o.stats.fetched);
        assert_eq!(p.dispatch.units, o.stats.dispatched);
        assert!(p.issue.units > 0 && p.issue.units <= o.stats.dispatched);
        assert_eq!(p.issue.units, p.complete.units); // everything issued completes
        assert!(p.commit.units <= o.stats.committed);
        assert!(p.fetch.active_cycles <= p.stepped_cycles);
        // Stepped plus fast-forwarded cycles account for the whole run.
        assert_eq!(p.stepped_cycles + p.skipped_cycles, o.stats.cycles);
    }

    #[test]
    fn fast_forward_skips_memory_stalls_without_changing_the_clock_meaning() {
        // A pointer-chase of dependent cold loads: the machine spends most
        // cycles waiting on the 200-cycle memory latency, which the idle
        // fast-forward should jump over rather than step through.
        let p = build(
            |a, d| {
                // Chain: cell[i] holds the address of cell[i+1], strided
                // a full 512-byte block apart so every load misses L1.
                d.align(8);
                let base = d.here();
                let stride = 64 * 8u64;
                for i in 0..16u64 {
                    let mut block = [0i64; 64];
                    if i < 15 {
                        block[0] = (base + (i + 1) * stride) as i64;
                    }
                    d.words(&block);
                }
                a.li(Reg(1), base as i64);
                a.li(Reg(3), 15);
                a.bind("chase");
                a.ld(Reg(1), 0, Reg(1));
                a.addi(Reg(3), Reg(3), -1);
                a.bne(Reg(3), Reg::ZERO, "chase");
                a.out(Reg(3));
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        let mut m = Machine::new(somt(), &p).unwrap();
        m.enable_profile();
        let o = m.run(1_000_000).unwrap();
        assert_eq!(o.ints(), vec![0]);
        let p = o.profile.as_ref().expect("profile enabled");
        assert!(p.fast_forwards > 0, "expected idle jumps, got {p:?}");
        assert!(
            p.skipped_cycles > o.stats.cycles / 2,
            "a latency-bound run should mostly fast-forward: {p:?}"
        );
    }

    #[test]
    fn timeout_is_identical_with_fast_forward_on_deadlock() {
        // Two threads that each grab one lock and then want the other's:
        // a deadlock with no future event. Fast-forward must burn the
        // budget to the exact same Timeout the stepped loop reports.
        let p = build(
            |a, d| {
                let l1 = d.word(0);
                let l2 = d.word(0);
                a.li(Reg(1), l1 as i64);
                a.li(Reg(2), l2 as i64);
                a.tid(Reg(3));
                a.bne(Reg(3), Reg::ZERO, "second");
                a.mlock(Reg(1));
                a.bind("spin1"); // give the other thread time to lock l2
                a.addi(Reg(4), Reg(4), 1);
                a.li(Reg(5), 200);
                a.bne(Reg(4), Reg(5), "spin1");
                a.mlock(Reg(2));
                a.halt();
                a.bind("second");
                a.mlock(Reg(2));
                a.bind("spin2");
                a.addi(Reg(4), Reg(4), 1);
                a.li(Reg(5), 200);
                a.bne(Reg(4), Reg(5), "spin2");
                a.mlock(Reg(1));
                a.halt();
            },
            vec![ThreadSpec::at(0), ThreadSpec::at(0)],
        );
        let e = Machine::new(somt(), &p).unwrap().run(50_000);
        assert_eq!(e.unwrap_err(), SimError::Timeout { cycles: 50_000 });
    }

    #[test]
    fn superscalar_and_somt_agree_functionally() {
        let mk = || {
            build(
                |a, _| {
                    a.li(Reg(1), 37);
                    a.li(Reg(2), 11);
                    a.mul(Reg(3), Reg(1), Reg(2));
                    a.out(Reg(3));
                    a.halt();
                },
                vec![ThreadSpec::at(0)],
            )
        };
        let o1 = Machine::new(somt(), &mk()).unwrap().run(10_000).unwrap();
        let o2 =
            Machine::new(MachineConfig::table1_superscalar(), &mk()).unwrap().run(10_000).unwrap();
        assert_eq!(o1.ints(), o2.ints());
    }

    /// A division- and memory-heavy program whose run is long enough to
    /// pause in the middle of real pipeline activity.
    fn checkpoint_workload() -> Program {
        build(
            |a, d| {
                let cell_a = d.word(0);
                let cell_b = d.word(0);
                let done = d.word(0);
                // Parent: sum 1..=60; child: sum 61..=120.
                a.li(Reg(9), 0); // will hold nthr result
                a.nthr(Reg(9), "child");
                a.li(Reg(1), 1);
                a.li(Reg(2), 60);
                a.li(Reg(3), 0);
                a.bind("ploop");
                a.add(Reg(3), Reg(3), Reg(1));
                a.addi(Reg(1), Reg(1), 1);
                a.bge(Reg(2), Reg(1), "ploop");
                a.li(Reg(4), cell_a as i64);
                a.st(Reg(3), 0, Reg(4));
                // Join: poll the done flag.
                a.li(Reg(5), done as i64);
                a.bind("join");
                a.ld(Reg(6), 0, Reg(5));
                a.beq(Reg(6), Reg::ZERO, "join");
                a.li(Reg(7), cell_b as i64);
                a.ld(Reg(8), 0, Reg(7));
                a.add(Reg(3), Reg(3), Reg(8));
                a.out(Reg(3));
                a.halt();
                a.bind("child");
                a.li(Reg(1), 61);
                a.li(Reg(2), 120);
                a.li(Reg(3), 0);
                a.bind("cloop");
                a.add(Reg(3), Reg(3), Reg(1));
                a.addi(Reg(1), Reg(1), 1);
                a.bge(Reg(2), Reg(1), "cloop");
                a.li(Reg(4), cell_b as i64);
                a.st(Reg(3), 0, Reg(4));
                a.li(Reg(6), 1);
                a.li(Reg(5), done as i64);
                a.st(Reg(6), 0, Reg(5));
                a.kthr();
            },
            vec![ThreadSpec::at(0)],
        )
    }

    fn full_run(p: &Program) -> SimOutcome {
        let mut m = Machine::new(somt(), p).unwrap();
        m.enable_profile();
        m.enable_trace(4096);
        m.run(100_000).unwrap()
    }

    #[test]
    fn snapshot_roundtrip_matches_uninterrupted_run() {
        let p = checkpoint_workload();
        let straight = full_run(&p);
        assert_eq!(straight.ints(), vec![(1..=120i64).sum::<i64>()]);

        // Pause mid-run, snapshot, restore into a *fresh* machine.
        let mut m = Machine::new(somt(), &p).unwrap();
        m.enable_profile();
        m.enable_trace(4096);
        let paused = m.run_until(100_000, 40).unwrap();
        assert!(paused.is_none(), "run must pause before completion");
        let blob = m.snapshot();

        let mut fresh = Machine::new(somt(), &p).unwrap();
        fresh.restore_snapshot(&blob).unwrap();
        assert_eq!(fresh.cycle(), m.cycle());
        let resumed = fresh.run(100_000).unwrap();
        assert_eq!(resumed, straight, "restored run diverged from uninterrupted run");
    }

    #[test]
    fn snapshot_resume_in_place_matches() {
        let p = checkpoint_workload();
        let straight = full_run(&p);
        let mut m = Machine::new(somt(), &p).unwrap();
        m.enable_profile();
        m.enable_trace(4096);
        assert!(m.run_until(100_000, 25).unwrap().is_none());
        let blob = m.snapshot();
        // Snapshotting must not perturb the paused machine.
        let direct = m.run(100_000).unwrap();
        assert_eq!(direct, straight);
        // The same machine can be rewound from the blob after finishing.
        m.restore_snapshot(&blob).unwrap();
        let replayed = m.run(100_000).unwrap();
        assert_eq!(replayed, straight);
    }

    #[test]
    fn repeated_pause_resume_is_deterministic() {
        let p = checkpoint_workload();
        let straight = full_run(&p);
        let mut m = Machine::new(somt(), &p).unwrap();
        m.enable_profile();
        m.enable_trace(4096);
        let mut pause = 10;
        let outcome = loop {
            match m.run_until(100_000, pause).unwrap() {
                Some(o) => break o,
                None => {
                    // Migrate through a snapshot at every pause.
                    let blob = m.snapshot();
                    let mut next = Machine::new(somt(), &p).unwrap();
                    next.restore_snapshot(&blob).unwrap();
                    m = next;
                    pause += 17;
                }
            }
        };
        assert_eq!(outcome, straight);
    }

    #[test]
    fn snapshot_rejects_wrong_magic_and_version() {
        let p = checkpoint_workload();
        let mut m = Machine::new(somt(), &p).unwrap();
        assert!(m.run_until(100_000, 20).unwrap().is_none());
        let blob = m.snapshot();

        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 0xff;
        let err = m.restore_snapshot(&bad_magic).unwrap_err();
        assert!(
            matches!(err, SimError::SnapshotMismatch { ref reason } if reason.contains("magic"))
        );

        let mut bad_version = blob.clone();
        bad_version[8] = 0xfe; // format version field
        let err = m.restore_snapshot(&bad_version).unwrap_err();
        assert!(
            matches!(err, SimError::SnapshotMismatch { ref reason } if reason.contains("version"))
        );
    }

    #[test]
    fn snapshot_rejects_different_program() {
        let p = checkpoint_workload();
        let mut m = Machine::new(somt(), &p).unwrap();
        assert!(m.run_until(100_000, 20).unwrap().is_none());
        let blob = m.snapshot();

        let other = build(
            |a, _| {
                a.li(Reg(1), 1);
                a.out(Reg(1));
                a.halt();
            },
            vec![ThreadSpec::at(0)],
        );
        let mut wrong = Machine::new(somt(), &other).unwrap();
        let err = wrong.restore_snapshot(&blob).unwrap_err();
        assert!(
            matches!(err, SimError::SnapshotMismatch { ref reason } if reason.contains("hash"))
        );

        // A different machine configuration is rejected the same way.
        let mut wrong_cfg = Machine::new(MachineConfig::table1_superscalar(), &p).unwrap();
        let err = wrong_cfg.restore_snapshot(&blob).unwrap_err();
        assert!(
            matches!(err, SimError::SnapshotMismatch { ref reason } if reason.contains("hash"))
        );
    }

    #[test]
    fn truncated_and_corrupted_blobs_error_not_panic() {
        let p = checkpoint_workload();
        let mut m = Machine::new(somt(), &p).unwrap();
        assert!(m.run_until(100_000, 30).unwrap().is_none());
        let blob = m.snapshot();

        // Every proper prefix must be rejected cleanly.
        for len in (0..blob.len()).step_by(97).chain([blob.len() - 1]) {
            let mut victim = Machine::new(somt(), &p).unwrap();
            let err = victim.restore_snapshot(&blob[..len]).unwrap_err();
            assert!(matches!(err, SimError::SnapshotMismatch { .. }), "prefix {len}");
        }

        // A corrupted length prefix right after the header must not drive
        // a huge allocation or a panic.
        let mut corrupt = blob.clone();
        for b in &mut corrupt[20..28] {
            *b = 0xff;
        }
        let mut victim = Machine::new(somt(), &p).unwrap();
        assert!(matches!(
            victim.restore_snapshot(&corrupt).unwrap_err(),
            SimError::SnapshotMismatch { .. }
        ));

        // Trailing garbage is rejected too.
        let mut long = blob.clone();
        long.push(0);
        let mut victim = Machine::new(somt(), &p).unwrap();
        assert!(matches!(
            victim.restore_snapshot(&long).unwrap_err(),
            SimError::SnapshotMismatch { .. }
        ));
    }

    #[test]
    fn warm_machine_is_clean_after_a_restored_run() {
        // A worker that restored a snapshot job must leave no checkpoint
        // state behind: its next fresh job is byte-identical to one run
        // on a never-checkpointed machine.
        let p = checkpoint_workload();
        let fresh_ref = full_run(&p);

        let mut warm = WarmMachine::new();
        {
            let m = warm.prepare(somt(), &p).unwrap();
            assert!(m.run_until(100_000, 35).unwrap().is_none());
            let blob = m.snapshot();
            m.restore_snapshot(&blob).unwrap();
            m.run(100_000).unwrap();
        }
        // Next job through the same warm slot, no checkpoint involved.
        let m = warm.prepare(somt(), &p).unwrap();
        m.enable_profile();
        m.enable_trace(4096);
        let next = m.run(100_000).unwrap();
        assert_eq!(next, fresh_ref, "checkpoint state leaked through the warm pool");
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let p = checkpoint_workload();
        let mk = || {
            let mut m = Machine::new(somt(), &p).unwrap();
            assert!(m.run_until(100_000, 45).unwrap().is_none());
            m.snapshot()
        };
        assert_eq!(mk(), mk(), "same state must serialize to the same bytes");
    }
}
