//! Targeted tests of individual machine mechanisms: branch-misprediction
//! cost, I-cache behaviour, lock-contention stalls, divide-to-stack
//! births, and the load-latency swap heuristic.

use capsule_core::config::MachineConfig;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;
use capsule_sim::machine::Machine;

fn run(cfg: MachineConfig, p: &Program, budget: u64) -> capsule_sim::SimOutcome {
    Machine::new(cfg, p).expect("machine builds").run(budget).expect("halts")
}

/// A loop whose branch alternates per iteration is predictable by the
/// two-level component; a data-dependent pseudo-random branch is not.
/// Both loops execute the same instruction mix.
#[test]
fn mispredictions_cost_cycles() {
    let build = |random: bool| {
        let mut a = Asm::new();
        let (i, x, t, acc) = (Reg(1), Reg(2), Reg(3), Reg(4));
        a.li(i, 4000);
        a.li(x, 12345);
        a.li(acc, 0);
        a.bind("loop");
        if random {
            // x = x * 1103515245 + 12345 (LCG); branch on bit 13
            a.muli(x, x, 1103515245);
            a.addi(x, x, 12345);
            a.srli(t, x, 13);
        } else {
            // x alternates 0/1
            a.addi(x, x, 1);
            a.mv(t, x);
        }
        a.andi(t, t, 1);
        a.beq(t, Reg::ZERO, "skip");
        a.addi(acc, acc, 1);
        a.bind("skip");
        a.addi(i, i, -1);
        a.bne(i, Reg::ZERO, "loop");
        a.out(acc);
        a.halt();
        Program::new(a.assemble().unwrap(), DataBuilder::new().build(), 4096)
            .with_thread(ThreadSpec::at(0))
    };
    let regular = run(MachineConfig::table1_superscalar(), &build(false), 10_000_000);
    let random = run(MachineConfig::table1_superscalar(), &build(true), 10_000_000);
    assert!(
        random.stats.mispredict_rate() > regular.stats.mispredict_rate() + 0.1,
        "random branches must mispredict more: {:.3} vs {:.3}",
        random.stats.mispredict_rate(),
        regular.stats.mispredict_rate()
    );
}

/// Lock contention shows up in the stall statistics.
#[test]
fn lock_contention_is_visible() {
    let mut d = DataBuilder::new();
    let cell = d.word(0);
    let done = d.word(0);
    let mut a = Asm::new();
    let (addr, v, i, dn) = (Reg(1), Reg(2), Reg(3), Reg(4));
    a.li(addr, cell as i64);
    a.li(i, 200);
    a.bind("loop");
    a.mlock(addr);
    a.ld(v, 0, addr);
    a.addi(v, v, 1);
    a.st(v, 0, addr);
    a.munlock(addr);
    a.addi(i, i, -1);
    a.bne(i, Reg::ZERO, "loop");
    a.li(dn, done as i64);
    a.mlock(dn);
    a.ld(v, 0, dn);
    a.addi(v, v, 1);
    a.st(v, 0, dn);
    a.munlock(dn);
    a.tid(v);
    a.bne(v, Reg::ZERO, "park");
    a.bind("wait");
    a.ld(v, 0, dn);
    a.li(i, 4);
    a.bne(v, i, "wait");
    a.ld(v, 0, addr);
    a.out(v);
    a.halt();
    a.bind("park");
    a.kthr();
    let mut p = Program::new(a.assemble().unwrap(), d.build(), 1 << 16);
    for _ in 0..4 {
        p.threads.push(ThreadSpec::at(0));
    }
    let o = run(MachineConfig::table1_smt(), &p, 50_000_000);
    assert_eq!(o.ints(), vec![800]);
    assert!(o.stats.lock_stalls > 0, "4 threads on one lock must contend");
    assert!(o.stats.lock_stall_cycles > 0);
}

/// With every context busy, granted divisions go to the context stack and
/// the children still complete after swapping in.
#[test]
fn divide_to_stack_children_complete() {
    let mut d = DataBuilder::new();
    let counter = d.word(0);
    let mut a = Asm::new();
    let (addr, v, i, probe) = (Reg(1), Reg(2), Reg(3), Reg(4));
    const KIDS: i64 = 12; // more than the 7 free contexts
    a.li(i, KIDS);
    a.bind("spawn");
    a.nthr(probe, "child");
    a.li(v, -1);
    a.beq(probe, v, "spawn"); // insist until granted
    a.addi(i, i, -1);
    a.bne(i, Reg::ZERO, "spawn");
    // wait for all children
    a.li(addr, counter as i64);
    a.bind("wait");
    a.ld(v, 0, addr);
    a.li(i, KIDS);
    a.bne(v, i, "wait");
    a.out(v);
    a.halt();
    a.bind("child");
    a.li(addr, counter as i64);
    a.mlock(addr);
    a.ld(v, 0, addr);
    a.addi(v, v, 1);
    a.st(v, 0, addr);
    a.munlock(addr);
    a.kthr();
    let p = Program::new(a.assemble().unwrap(), d.build(), 1 << 16).with_thread(ThreadSpec::at(0));
    let o = run(MachineConfig::table1_somt(), &p, 50_000_000);
    assert_eq!(o.ints(), vec![KIDS]);
    assert!(o.stats.divisions_granted_stack > 0, "some children must be born on the stack");
    assert!(o.stats.swaps_in > 0, "stack-born children must be swapped in");
}

/// A memory-bound thread crossing the slow-load threshold is swapped out
/// in favour of a parked thread when no context is free. The heuristic
/// compares each load against the global average of the last 1000 loads,
/// so a cache-hot sibling thread is needed to keep that average low.
#[test]
fn slow_thread_is_swapped_out() {
    let mut cfg = MachineConfig::table1_somt();
    cfg.contexts = 2;
    cfg.swap_counter_threshold = 8; // swap quickly for the test
    let mut d = DataBuilder::new();
    let flag = d.word(0);
    let hot = d.word(7);
    d.label("big");
    let big = d.zeros(512 * 1024); // strides far past L1 and half of L2
    let mut a = Asm::new();
    let (addr, v, i, probe) = (Reg(1), Reg(2), Reg(3), Reg(4));
    // worker B occupies the second context with cache-hot loads
    a.nthr(probe, "hot_worker");
    // child C is born onto the stack (no context left)
    a.nthr(probe, "parked_child");
    // ancestor A: cold striding loads, every one far above the global
    // average that B's cache-hot loads keep low (no fast loads in this
    // loop, or they would decrement the slow counter again)
    a.li(i, 1500);
    a.li(addr, big as i64);
    a.bind("loop");
    a.ld(v, 0, addr);
    a.addi(addr, addr, 4096);
    a.li(v, (big + 500 * 1024) as i64);
    a.blt(addr, v, "no_wrap");
    a.li(addr, big as i64);
    a.bind("no_wrap");
    a.addi(i, i, -1);
    a.bne(i, Reg::ZERO, "loop");
    a.li(addr, flag as i64);
    a.ld(v, 0, addr);
    a.out(v);
    a.halt();
    a.bind("hot_worker");
    a.li(i, 60_000);
    a.li(addr, hot as i64);
    a.bind("hot_loop");
    a.ld(v, 0, addr);
    a.addi(i, i, -1);
    a.bne(i, Reg::ZERO, "hot_loop");
    a.kthr();
    a.bind("parked_child");
    a.li(addr, flag as i64);
    a.li(v, 1);
    a.st(v, 0, addr);
    a.kthr();
    let p = Program::new(a.assemble().unwrap(), d.build(), 1 << 20).with_thread(ThreadSpec::at(0));
    let o = run(cfg, &p, 100_000_000);
    assert_eq!(o.ints(), vec![1], "the parked child must have executed");
    assert!(o.stats.swaps_out >= 1, "the slow ancestor must be swapped out: {:?}", o.stats);
    assert_eq!(o.stats.divisions_granted_stack, 1);
}

/// The I-cache misses on cold code and warms up.
#[test]
fn icache_warms_up() {
    let mut a = Asm::new();
    a.li(Reg(1), 50);
    a.bind("loop");
    a.addi(Reg(1), Reg(1), -1);
    a.bne(Reg(1), Reg::ZERO, "loop");
    a.out(Reg(1));
    a.halt();
    let p = Program::new(a.assemble().unwrap(), DataBuilder::new().build(), 4096)
        .with_thread(ThreadSpec::at(0));
    let o = run(MachineConfig::table1_superscalar(), &p, 1_000_000);
    assert!(o.l1i.misses >= 1, "first line fetch must miss");
    assert!(o.l1i.hits > o.l1i.misses, "loop body must hit after warm-up");
}

/// Division latency delays the child observably on a dependent handoff.
#[test]
fn division_latency_delays_child() {
    let build = || {
        let mut a = Asm::new();
        a.nthr(Reg(1), "child");
        a.bind("wait");
        a.j("wait"); // parent spins forever; child halts the machine
        a.bind("child");
        a.li(Reg(2), 7);
        a.out(Reg(2));
        a.halt();
        Program::new(a.assemble().unwrap(), DataBuilder::new().build(), 4096)
            .with_thread(ThreadSpec::at(0))
    };
    let mut fast = MachineConfig::table1_somt();
    fast.division_latency = 0;
    let mut slow = MachineConfig::table1_somt();
    slow.division_latency = 150;
    let f = run(fast, &build(), 1_000_000);
    let s = run(slow, &build(), 1_000_000);
    assert_eq!(f.ints(), vec![7]);
    assert_eq!(s.ints(), vec![7]);
    assert!(
        s.cycles() >= f.cycles() + 100,
        "150-cycle copy must delay the halt: {} vs {}",
        s.cycles(),
        f.cycles()
    );
}

/// One division + death + section, enough to emit a handful of trace
/// events (shared by the trace tests below).
fn division_lifecycle_program() -> Program {
    let mut d = DataBuilder::new();
    let flag = d.word(0);
    let mut a = Asm::new();
    a.mark_start(1);
    a.nthr(Reg(1), "child");
    a.li(Reg(2), flag as i64);
    a.bind("wait");
    a.ld(Reg(3), 0, Reg(2));
    a.beq(Reg(3), Reg::ZERO, "wait");
    a.mark_end(1);
    a.out(Reg(3));
    a.halt();
    a.bind("child");
    a.li(Reg(2), flag as i64);
    a.li(Reg(3), 1);
    a.st(Reg(3), 0, Reg(2));
    a.kthr();
    Program::new(a.assemble().unwrap(), d.build(), 4096).with_thread(ThreadSpec::at(0))
}

/// The event trace captures the CAPSULE decisions of a run.
#[test]
fn trace_records_division_lifecycle() {
    let p = division_lifecycle_program();
    let mut m = Machine::new(MachineConfig::table1_somt(), &p).expect("machine");
    m.enable_trace(64);
    let o = m.run(1_000_000).expect("halts");
    assert_eq!(o.ints(), vec![1]);
    let rendered = m.trace().expect("trace enabled").render();
    assert!(rendered.contains("w0 divides -> w1 (context)"), "{rendered}");
    assert!(rendered.contains("w1 dies"), "{rendered}");
    assert!(rendered.contains("section 1 enter"), "{rendered}");
    assert!(rendered.contains("halt"), "{rendered}");
    assert_eq!(m.trace().unwrap().dropped(), 0);
    // The trace also rides out on the outcome itself, for consumers that
    // no longer hold the machine (the scenario runner, timeline export).
    let out_trace = o.trace.as_ref().expect("outcome carries the trace");
    assert_eq!(out_trace.events(), m.trace().unwrap().events());
}

/// Regression: a run that overflows the trace limit keeps exactly
/// `limit` events, counts every drop, and perturbs nothing — the
/// simulated outcome is identical to an untraced run.
#[test]
fn trace_limit_overflow_counts_drops_without_perturbing() {
    let p = division_lifecycle_program();
    let mut plain = Machine::new(MachineConfig::table1_somt(), &p).expect("machine");
    let baseline = plain.run(1_000_000).expect("halts");

    let mut m = Machine::new(MachineConfig::table1_somt(), &p).expect("machine");
    m.enable_trace(2);
    let o = m.run(1_000_000).expect("halts");
    let t = o.trace.as_ref().expect("trace enabled");
    assert_eq!(t.limit(), 2);
    assert_eq!(t.events().len(), 2, "retention is capped at the limit");
    assert!(t.dropped() > 0, "overflow must be counted, not silent");
    assert!(t.render().contains("further events dropped"), "{}", t.render());

    // Nothing timed moved: tracing is observation only.
    assert_eq!(o.stats.cycles, baseline.stats.cycles);
    assert_eq!(o.stats.committed, baseline.stats.committed);
    assert_eq!(o.output, baseline.output);
    assert_eq!(baseline.trace, None);
}

/// Error types render useful messages (C-GOOD-ERR).
#[test]
fn sim_error_messages_are_informative() {
    use capsule_sim::{SimError, TrapKind};
    let cases: Vec<(SimError, &str)> = vec![
        (SimError::Timeout { cycles: 10 }, "no halt within 10 cycles"),
        (SimError::AllThreadsDead { cycle: 5 }, "all workers dead"),
        (SimError::TooManyThreads { requested: 9, contexts: 8 }, "9 loader threads"),
        (SimError::Config("bad".into()), "invalid machine config"),
        (
            SimError::Trap { cycle: 1, slot: 2, pc: 3, kind: TrapKind::BadAddress(0) },
            "context 2 trapped at pc 3",
        ),
    ];
    for (e, want) in cases {
        assert!(e.to_string().contains(want), "{e}");
    }
}
