//! End-to-end exercise of the CAPSULE execution model: a worker sums an
//! array by dividing itself in half whenever the architecture grants a
//! probe, with a lock-protected token counter as the join — the same
//! skeleton the paper's componentized workloads use.

use capsule_core::config::{DivisionMode, MachineConfig};
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;
use capsule_sim::machine::Machine;
use capsule_sim::{Interp, InterpConfig};

const LEAF: i64 = 32;

/// Real program builder.
fn build_sum(values: &[i64]) -> Program {
    let mut d = DataBuilder::new();
    let arr = d.words(values);
    let global = d.word(0);
    let outstanding = d.word(1);

    let (lo, hi) = (Reg::A0, Reg::A1);
    let local = Reg(10);
    let mid = Reg(11);
    let probe = Reg(12);
    let t0 = Reg(13);
    let t1 = Reg(14);
    let addr = Reg(15);
    let end = Reg(16);
    let minus1 = Reg(17);

    let mut a = Asm::new();
    a.bind("worker");
    a.li(local, 0);
    a.li(minus1, -1);
    a.bind("loop");
    a.sub(t0, hi, lo);
    a.slti(t1, t0, LEAF + 1);
    a.bne(t1, Reg::ZERO, "chunk");
    // mid = lo + len/2
    a.srai(t0, t0, 1);
    a.add(mid, lo, t0);
    // outstanding += 1 under lock, before the probe
    a.li(addr, outstanding as i64);
    a.mlock(addr);
    a.ld(t0, 0, addr);
    a.addi(t0, t0, 1);
    a.st(t0, 0, addr);
    a.munlock(addr);
    // the probe itself (Figure 2's switch)
    a.nthr(probe, "child");
    a.bne(probe, minus1, "granted_parent");
    // denied: give the token back, fall through to sequential work
    a.li(addr, outstanding as i64);
    a.mlock(addr);
    a.ld(t0, 0, addr);
    a.addi(t0, t0, -1);
    a.st(t0, 0, addr);
    a.munlock(addr);
    a.j("chunk");
    a.bind("granted_parent");
    a.mv(hi, mid); // keep the left half
    a.j("loop");
    a.bind("child");
    a.mv(lo, mid); // take the right half
    a.li(local, 0);
    a.li(minus1, -1);
    a.j("loop");
    // sequential leaf work: sum [lo, min(lo+LEAF, hi))
    a.bind("chunk");
    a.addi(end, lo, LEAF);
    a.bge(hi, end, "have_end");
    a.mv(end, hi);
    a.bind("have_end");
    a.bind("chunk_loop");
    a.bge(lo, end, "chunk_done");
    a.slli(t0, lo, 3);
    a.li(t1, arr as i64);
    a.add(t1, t1, t0);
    a.ld(t0, 0, t1);
    a.add(local, local, t0);
    a.addi(lo, lo, 1);
    a.j("chunk_loop");
    a.bind("chunk_done");
    a.blt(lo, hi, "loop"); // more range left: probe again
                           // finished my range: merge and release my token
    a.li(addr, global as i64);
    a.mlock(addr);
    a.ld(t0, 0, addr);
    a.add(t0, t0, local);
    a.st(t0, 0, addr);
    a.munlock(addr);
    a.li(addr, outstanding as i64);
    a.mlock(addr);
    a.ld(t0, 0, addr);
    a.addi(t0, t0, -1);
    a.st(t0, 0, addr);
    a.munlock(addr);
    // ancestor joins; every other worker dies
    a.tid(t0);
    a.bne(t0, Reg::ZERO, "die");
    a.li(addr, outstanding as i64);
    a.bind("join");
    a.ld(t0, 0, addr);
    a.bne(t0, Reg::ZERO, "join");
    a.li(addr, global as i64);
    a.ld(t0, 0, addr);
    a.out(t0);
    a.halt();
    a.bind("die");
    a.kthr();

    Program::new(a.assemble().unwrap(), d.build(), 1 << 20)
        .with_thread(ThreadSpec::at(0).with_reg(Reg::A0, 0).with_reg(Reg::A1, values.len() as i64))
}

fn values(n: usize) -> Vec<i64> {
    (0..n as i64).map(|i| (i * 7919) % 1000 - 500).collect()
}

#[test]
fn somt_computes_correct_sum_with_divisions() {
    let vs = values(2000);
    let expected: i64 = vs.iter().sum();
    let p = build_sum(&vs);
    let mut m = Machine::new(MachineConfig::table1_somt(), &p).unwrap();
    let o = m.run(50_000_000).unwrap();
    assert_eq!(o.ints(), vec![expected]);
    assert!(o.stats.divisions_requested > 0, "no probes happened");
    assert!(o.stats.divisions_granted() > 0, "no division granted on SOMT");
    // Children still draining their `kthr` when the ancestor halts are not
    // finalized, so deaths may lag granted divisions by the few workers in
    // flight at the end of the run.
    assert!(o.stats.deaths <= o.stats.divisions_granted());
    assert!(o.stats.divisions_granted() - o.stats.deaths <= 8);
    assert_eq!(o.tree.len() as u64, 1 + o.stats.divisions_granted());
}

#[test]
fn superscalar_computes_same_sum_sequentially() {
    let vs = values(2000);
    let expected: i64 = vs.iter().sum();
    let p = build_sum(&vs);
    let mut m = Machine::new(MachineConfig::table1_superscalar(), &p).unwrap();
    let o = m.run(100_000_000).unwrap();
    assert_eq!(o.ints(), vec![expected]);
    assert_eq!(o.stats.divisions_granted(), 0);
    assert_eq!(o.stats.deaths, 0);
}

#[test]
fn somt_is_faster_than_superscalar() {
    let vs = values(4000);
    let p = build_sum(&vs);
    let somt = Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(100_000_000).unwrap();
    let scalar =
        Machine::new(MachineConfig::table1_superscalar(), &p).unwrap().run(200_000_000).unwrap();
    assert_eq!(somt.ints(), scalar.ints());
    let speedup = scalar.cycles() as f64 / somt.cycles() as f64;
    assert!(
        speedup > 1.5,
        "expected parallel speedup, got {speedup:.2} (somt {} vs scalar {})",
        somt.cycles(),
        scalar.cycles()
    );
}

#[test]
fn smt_never_mode_denies_all_divisions() {
    let vs = values(500);
    let expected: i64 = vs.iter().sum();
    let p = build_sum(&vs);
    let mut cfg = MachineConfig::table1_smt();
    assert_eq!(cfg.division_mode, DivisionMode::Never);
    cfg.contexts = 8;
    let o = Machine::new(cfg, &p).unwrap().run(100_000_000).unwrap();
    assert_eq!(o.ints(), vec![expected]);
    assert_eq!(o.stats.divisions_granted(), 0);
    assert!(o.stats.divisions_denied_disabled > 0);
}

#[test]
fn interpreter_agrees_with_machine() {
    let vs = values(1000);
    let p = build_sum(&vs);
    let machine_out =
        Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(100_000_000).unwrap();
    let interp_out = Interp::new(&p, InterpConfig::default()).unwrap().run(100_000_000).unwrap();
    assert_eq!(machine_out.ints().len(), 1);
    assert_eq!(
        machine_out.ints()[0],
        interp_out.output[0].as_int().unwrap(),
        "timing machine and reference interpreter disagree"
    );
}

#[test]
fn genealogy_is_consistent() {
    let vs = values(3000);
    let p = build_sum(&vs);
    let o = Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(100_000_000).unwrap();
    // Every non-root node has a parent born earlier.
    for n in o.tree.nodes() {
        if let Some(parent) = n.parent {
            let p = &o.tree.nodes()[parent.index()];
            assert!(p.birth_cycle <= n.birth_cycle);
        }
        if let Some(d) = n.death_cycle {
            assert!(d >= n.birth_cycle);
        }
    }
    // The dot rendering mentions every worker.
    let dot = o.tree.to_dot();
    for n in o.tree.nodes() {
        assert!(dot.contains(&format!("n{}", n.id.0)));
    }
}
