//! CMP-mode tests: the §5 shared-memory CMP extrapolation — per-core
//! pipelines and private L1s over a shared L2, with cross-core division
//! paying a remote register-copy latency.

use capsule_core::config::MachineConfig;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;
use capsule_sim::machine::Machine;

/// Divide-and-conquer token-counted sum (same skeleton as the divide_sum
/// integration test, compact version): returns the program and expected
/// output.
fn sum_program(n: i64) -> (Program, i64) {
    let mut d = DataBuilder::new();
    let total = d.word(0);
    let tokens = d.word(1);
    let (lo, hi) = (Reg::A0, Reg::A1);
    let (mid, local, probe, t0, t1) = (Reg(10), Reg(11), Reg(12), Reg(13), Reg(14));
    let mut a = Asm::new();
    a.bind("worker");
    a.li(local, 0);
    a.bind("loop");
    a.sub(t0, hi, lo);
    a.slti(t1, t0, 65);
    a.bne(t1, Reg::ZERO, "leaf");
    a.srai(t0, t0, 1);
    a.add(mid, lo, t0);
    a.li(t0, tokens as i64);
    a.mlock(t0);
    a.ld(t1, 0, t0);
    a.addi(t1, t1, 1);
    a.st(t1, 0, t0);
    a.munlock(t0);
    a.nthr(probe, "child");
    a.li(t0, -1);
    a.bne(probe, t0, "granted");
    a.li(t0, tokens as i64);
    a.mlock(t0);
    a.ld(t1, 0, t0);
    a.addi(t1, t1, -1);
    a.st(t1, 0, t0);
    a.munlock(t0);
    a.j("leaf");
    a.bind("granted");
    a.mv(hi, mid);
    a.j("loop");
    a.bind("child");
    a.mv(lo, mid);
    a.li(local, 0);
    a.j("loop");
    a.bind("leaf");
    a.bind("leaf_loop");
    a.bge(lo, hi, "merge");
    a.add(local, local, lo);
    a.addi(lo, lo, 1);
    a.j("leaf_loop");
    a.bind("merge");
    a.li(t0, total as i64);
    a.mlock(t0);
    a.ld(t1, 0, t0);
    a.add(t1, t1, local);
    a.st(t1, 0, t0);
    a.munlock(t0);
    a.li(t0, tokens as i64);
    a.mlock(t0);
    a.ld(t1, 0, t0);
    a.addi(t1, t1, -1);
    a.st(t1, 0, t0);
    a.munlock(t0);
    a.tid(t1);
    a.bne(t1, Reg::ZERO, "die");
    a.li(t0, tokens as i64);
    a.bind("join");
    a.ld(t1, 0, t0);
    a.bne(t1, Reg::ZERO, "join");
    a.li(t0, total as i64);
    a.ld(t1, 0, t0);
    a.out(t1);
    a.halt();
    a.bind("die");
    a.kthr();
    let p = Program::new(a.assemble().unwrap(), d.build(), 1 << 18)
        .with_thread(ThreadSpec::at(0).with_reg(Reg::A0, 1).with_reg(Reg::A1, n + 1));
    (p, n * (n + 1) / 2)
}

#[test]
fn cmp_configurations_compute_the_same_result() {
    let (p, expected) = sum_program(30_000);
    for (cores, per_core) in [(1, 8), (2, 4), (4, 2), (8, 1)] {
        let cfg = MachineConfig::cmp_somt(cores, per_core);
        let mut m = Machine::new(cfg, &p).expect("machine");
        let o = m.run(10_000_000_000).expect("halts");
        assert_eq!(o.ints(), vec![expected], "{cores}x{per_core}");
        assert!(o.stats.divisions_granted() > 0, "{cores}x{per_core} must divide");
    }
}

#[test]
fn cmp_beats_single_core_smt_on_issue_bound_work() {
    // 8 contexts as 1×8 (shared 8-wide issue) vs 4×2 (4 × 8-wide issue):
    // the CMP has four times the aggregate issue bandwidth and private
    // L1s, so compute-bound parallel work must not get slower.
    let (p, expected) = sum_program(60_000);
    let smt = {
        let mut m = Machine::new(MachineConfig::cmp_somt(1, 8), &p).expect("machine");
        m.run(10_000_000_000).expect("halts")
    };
    let cmp = {
        let mut m = Machine::new(MachineConfig::cmp_somt(4, 2), &p).expect("machine");
        m.run(10_000_000_000).expect("halts")
    };
    assert_eq!(smt.ints(), vec![expected]);
    assert_eq!(cmp.ints(), vec![expected]);
    assert!(
        (cmp.cycles() as f64) < smt.cycles() as f64 * 1.05,
        "4x2 CMP ({}) should not lose to 1x8 SMT ({})",
        cmp.cycles(),
        smt.cycles()
    );
}

#[test]
fn remote_division_latency_is_charged() {
    // A 2×1 CMP: the ancestor occupies core 0's only context, so every
    // granted division is remote. Sweep the remote latency and observe
    // the handoff slow down.
    let mk = || {
        let mut a = Asm::new();
        a.nthr(Reg(1), "child");
        a.bind("spin");
        a.j("spin");
        a.bind("child");
        a.li(Reg(2), 9);
        a.out(Reg(2));
        a.halt();
        Program::new(a.assemble().unwrap(), DataBuilder::new().build(), 4096)
            .with_thread(ThreadSpec::at(0))
    };
    let mut cycles = Vec::new();
    for remote in [0u64, 300] {
        let mut cfg = MachineConfig::cmp_somt(2, 1);
        cfg.remote_division_latency = remote;
        let mut m = Machine::new(cfg, &mk()).expect("machine");
        let o = m.run(1_000_000).expect("halts");
        assert_eq!(o.ints(), vec![9]);
        cycles.push(o.cycles());
    }
    assert!(
        cycles[1] >= cycles[0] + 250,
        "remote copy latency must delay the child: {} vs {}",
        cycles[1],
        cycles[0]
    );
}

#[test]
fn local_division_does_not_pay_remote_latency() {
    // 2 cores × 4 contexts: the first child lands on the parent's core.
    let mk = || {
        let mut a = Asm::new();
        a.nthr(Reg(1), "child");
        a.bind("spin");
        a.j("spin");
        a.bind("child");
        a.out(Reg(1));
        a.halt();
        Program::new(a.assemble().unwrap(), DataBuilder::new().build(), 4096)
            .with_thread(ThreadSpec::at(0))
    };
    let mut cycles = Vec::new();
    for remote in [0u64, 500] {
        let mut cfg = MachineConfig::cmp_somt(2, 4);
        cfg.remote_division_latency = remote;
        let mut m = Machine::new(cfg, &mk()).expect("machine");
        let o = m.run(1_000_000).expect("halts");
        cycles.push(o.cycles());
    }
    assert_eq!(cycles[0], cycles[1], "a local child must not pay the remote latency");
}

#[test]
fn per_core_l1_contention_differs_from_shared() {
    // Two loader threads each stream a 6 kB region: together they thrash
    // a single shared 8 kB L1D, but each fits one private L1D.
    let mk = || {
        let mut d = DataBuilder::new();
        d.align(8192);
        let region = d.zeros(2 * 8 * 1024);
        let mut a = Asm::new();
        let (addr, v, i, base) = (Reg(1), Reg(2), Reg(3), Reg(4));
        // base = region + tid * 8k (regions page-aligned and disjoint)
        a.tid(base);
        a.slli(base, base, 13);
        a.li(addr, region as i64);
        a.add(base, base, addr);
        a.li(i, 3000);
        a.mv(addr, base);
        a.bind("loop");
        a.ld(v, 0, addr);
        a.addi(addr, addr, 64);
        a.sub(v, addr, base);
        a.li(Reg(5), 6 * 1024);
        a.blt(v, Reg(5), "nowrap");
        a.mv(addr, base);
        a.bind("nowrap");
        a.addi(i, i, -1);
        a.bne(i, Reg::ZERO, "loop");
        a.tid(v);
        a.bne(v, Reg::ZERO, "park");
        a.out(i);
        a.halt();
        a.bind("park");
        a.kthr();
        let mut p = Program::new(a.assemble().unwrap(), d.build(), 1 << 18);
        p.threads = vec![ThreadSpec::at(0), ThreadSpec::at(0)];
        p
    };
    let shared = {
        let mut m = Machine::new(MachineConfig::cmp_somt(1, 2), &mk()).expect("machine");
        m.run(100_000_000).expect("halts")
    };
    let private = {
        let mut m = Machine::new(MachineConfig::cmp_somt(2, 1), &mk()).expect("machine");
        m.run(100_000_000).expect("halts")
    };
    assert!(
        private.l1d.miss_rate() < shared.l1d.miss_rate(),
        "private L1s must thrash less: {:.3} vs {:.3}",
        private.l1d.miss_rate(),
        shared.l1d.miss_rate()
    );
}
