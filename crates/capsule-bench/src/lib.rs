//! Shared harness for the per-figure/per-table evaluation binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §3 for the index). They print both the raw series
//! and a summary, and validate every simulated run against the workload's
//! host reference before reporting it.
//!
//! Scale: the paper's full data-set sizes take minutes; by default the
//! binaries run a reduced configuration that preserves every qualitative
//! effect. Pass `--full` (or set `CAPSULE_BENCH_FULL=1`) for the
//! paper-sized runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchfile;
pub mod catalog;
pub mod checkpoint;
pub mod fuzz;
pub mod scenario;
pub mod trace_export;

pub use checkpoint::{run_checkpointed, CheckpointFailure, CheckpointOutcome};
pub use scenario::{
    BatchError, BatchReport, BatchRunner, RawWorkload, RunFailure, RunRecord, Scenario,
};

/// Observation knobs for a checked run, all off by default: none of them
/// may perturb a simulated number (the golden fixtures pin this), they
/// only make extra data ride out on the [`SimOutcome`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Collect the per-stage self-profile into [`SimOutcome::profile`].
    pub profile: bool,
    /// Record the CAPSULE event trace into [`SimOutcome::trace`],
    /// retaining at most this many events.
    pub trace: Option<usize>,
}

use capsule_core::config::MachineConfig;
use capsule_sim::cancel::CancelToken;
use capsule_sim::machine::{Machine, WarmMachine};
use capsule_sim::SimOutcome;
use capsule_workloads::{Variant, Workload};

/// Cycle budget for any single simulated run.
pub const BUDGET: u64 = 200_000_000_000;

/// Whether the paper-sized configuration was requested.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
        || std::env::var("CAPSULE_BENCH_FULL").is_ok_and(|v| v == "1")
}

/// Picks `quick` or `full` depending on [`full_scale`].
pub fn scaled<T>(quick: T, full: T) -> T {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// Runs `workload`'s `variant` on `cfg`, validates the output against the
/// host reference, and returns the outcome.
///
/// # Panics
///
/// Panics on simulator errors or a failed correctness check — a bench
/// must never report numbers from a wrong run.
pub fn run_checked(cfg: MachineConfig, workload: &dyn Workload, variant: Variant) -> SimOutcome {
    try_run_checked(cfg, workload, variant, BUDGET, None)
        .unwrap_or_else(|e| panic!("{}: {e}", workload.name()))
}

/// Runs `workload`'s `variant` on `cfg` under a cycle `budget` and an
/// optional [`CancelToken`], validating the output against the host
/// reference. The error-propagating core behind [`run_checked`], used
/// directly where a failed run must become a structured response (the
/// job server) instead of a process abort.
///
/// # Errors
///
/// [`RunFailure`] describing the stage that failed (machine build,
/// simulation — including [`capsule_sim::SimError::Timeout`] and
/// [`capsule_sim::SimError::Cancelled`] — or the host-reference check).
pub fn try_run_checked(
    cfg: MachineConfig,
    workload: &dyn Workload,
    variant: Variant,
    budget: u64,
    cancel: Option<&CancelToken>,
) -> Result<SimOutcome, RunFailure> {
    try_run_checked_with(cfg, workload, variant, budget, cancel, RunOptions::default())
}

/// [`try_run_checked`] with explicit [`RunOptions`] (profile and event
/// tracing) — the full-control entry point behind the `profile: true`
/// serve requests and the `capsule-trace` timeline exporter.
///
/// # Errors
///
/// Same as [`try_run_checked`].
pub fn try_run_checked_with(
    cfg: MachineConfig,
    workload: &dyn Workload,
    variant: Variant,
    budget: u64,
    cancel: Option<&CancelToken>,
    opts: RunOptions,
) -> Result<SimOutcome, RunFailure> {
    let mut warm = WarmMachine::new();
    try_run_checked_warm(cfg, workload, variant, budget, cancel, opts, &mut warm)
}

/// [`try_run_checked_with`] against a caller-held [`WarmMachine`]: the
/// machine is rebuilt in place via [`capsule_sim::machine::Machine::reset`],
/// so back-to-back runs reuse the data-memory buffer, the window arena and
/// the stage scratch instead of reallocating them. A warmed run is
/// cycle-for-cycle identical to a fresh one (pinned by the
/// `reset_equivalence` integration test).
///
/// # Errors
///
/// Same as [`try_run_checked`].
#[allow(clippy::too_many_arguments)]
pub fn try_run_checked_warm(
    cfg: MachineConfig,
    workload: &dyn Workload,
    variant: Variant,
    budget: u64,
    cancel: Option<&CancelToken>,
    opts: RunOptions,
    warm: &mut WarmMachine,
) -> Result<SimOutcome, RunFailure> {
    let program = workload.program(variant);
    let m = warm.prepare(cfg, &program).map_err(RunFailure::Build)?;
    if let Some(tok) = cancel {
        m.set_cancel_token(tok.clone());
    }
    if opts.profile {
        m.enable_profile();
    }
    if let Some(limit) = opts.trace {
        m.enable_trace(limit);
    }
    let outcome = m.run(budget).map_err(RunFailure::Sim)?;
    workload.check(&outcome.output).map_err(RunFailure::Check)?;
    Ok(outcome)
}

/// Simple statistics over a series.
#[derive(Debug, Clone, Copy)]
pub struct Series {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Computes [`Series`] statistics.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn series(values: &[u64]) -> Series {
    assert!(!values.is_empty());
    let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
    let var = values.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / values.len() as f64;
    Series {
        mean,
        min: *values.iter().min().expect("non-empty"),
        max: *values.iter().max().expect("non-empty"),
        stddev: var.sqrt(),
    }
}

/// Renders an ASCII histogram like the paper's Figures 3 and 5 (x = execution
/// time, y = number of data sets).
pub fn histogram(name: &str, values: &[u64], lo: u64, hi: u64, bins: usize) -> String {
    use std::fmt::Write as _;
    let mut counts = vec![0usize; bins];
    let span = (hi - lo).max(1);
    for &v in values {
        let b = ((v.saturating_sub(lo)) as u128 * bins as u128 / span as u128) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    let _ = writeln!(out, "{name}");
    for (i, &c) in counts.iter().enumerate() {
        let left = lo + span * i as u64 / bins as u64;
        let bar = "#".repeat(c * 50 / peak);
        let _ = writeln!(out, "  {left:>12} | {bar} {c}");
    }
    out
}

/// Prints a two-column aligned row.
pub fn row(label: &str, value: impl std::fmt::Display) {
    println!("  {label:<42} {value}");
}

/// Runs a raw [`capsule_isa::program::Program`] (no workload checker) and
/// returns the outcome.
///
/// # Panics
///
/// Panics on simulator errors.
pub fn run_checked_raw(cfg: MachineConfig, program: &capsule_isa::program::Program) -> SimOutcome {
    let mut m = Machine::new(cfg, program).expect("machine builds");
    m.run(BUDGET).expect("program halts")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_statistics() {
        let s = series(&[2, 4, 6]);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 6);
        assert!((s.stddev - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn histogram_places_values() {
        // lo=0, hi=10, 2 bins: [0,5) and [5,10]; values at/above hi
        // clamp into the last bin.
        let h = histogram("test", &[0, 4, 5, 9, 9, 10], 0, 10, 2);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines[0], "test");
        assert_eq!(lines.len(), 3);
        let parse = |line: &str| {
            let left: u64 = line.split_whitespace().next().expect("edge").parse().expect("edge");
            let count: usize = line.rsplit(' ').next().expect("count").parse().expect("count");
            let hashes = line.matches('#').count();
            (left, count, hashes)
        };
        // Exact per-bin counts and left edges.
        assert_eq!(parse(lines[1]), (0, 2, 2 * 50 / 4));
        assert_eq!(parse(lines[2]), (5, 4, 50)); // peak bin gets the full 50-char bar
    }

    #[test]
    fn run_checked_smoke() {
        use capsule_workloads::dijkstra::Dijkstra;
        let w = Dijkstra::figure3(3, 40);
        let o = run_checked(MachineConfig::table1_somt(), &w, Variant::Component);
        assert!(o.cycles() > 0);
    }

    #[test]
    fn scaled_picks_quick_without_flag() {
        // (tests run without --full)
        if !full_scale() {
            assert_eq!(scaled(1, 2), 1);
        }
    }
}
