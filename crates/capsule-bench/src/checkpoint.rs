//! Checkpointed batch execution: periodic machine snapshots, cooperative
//! preemption, and resume-from-blob.
//!
//! A checkpointed job runs its scenarios **serially** on one warmed
//! machine so the in-flight scenario can be snapshotted at any cycle
//! boundary. Every `interval` simulated cycles the runner emits a
//! checkpoint blob — already-finished outcomes plus a
//! [`Machine::snapshot`](capsule_sim::Machine::snapshot) of the scenario
//! in progress — and checks a shared preempt flag. A preempted job
//! returns [`CheckpointOutcome::Preempted`] with the blob; feeding that
//! blob back via `resume` continues the batch cycle-for-cycle as if it
//! had never been interrupted, so the final [`BatchReport`] is
//! byte-identical to an uninterrupted run (pinned by the
//! `checkpoint` integration tests).
//!
//! Blob layout: `MAGIC (u64) | VERSION (u32) | scenario_count |
//! next_index | next_index × SimOutcome | has_snapshot (u8) [| machine
//! snapshot bytes]`. Every section is length-prefixed and validated;
//! a rejected blob surfaces as [`CheckpointFailure::Blob`], never a
//! panic. The embedded machine snapshot carries its own config/program
//! hash, so a blob can only resume the job it was taken from.

use std::sync::atomic::{AtomicBool, Ordering};

use capsule_core::codec::{CodecError, Reader, Writer};
use capsule_sim::cancel::CancelToken;
use capsule_sim::machine::WarmMachine;
use capsule_sim::SimOutcome;

use crate::scenario::{BatchError, BatchReport, RunFailure, RunRecord, Scenario};
use crate::RunOptions;

/// Magic prefix of a job checkpoint blob (`"CAPJOBC1"` little-endian).
pub const MAGIC: u64 = u64::from_le_bytes(*b"CAPJOBC1");

/// Job-checkpoint format version; restore rejects other versions.
pub const VERSION: u32 = 1;

/// How a checkpointed batch ended.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// Every scenario finished; the report is identical to an
    /// uninterrupted [`BatchRunner`](crate::BatchRunner) run of the same
    /// batch on one worker.
    Done(BatchReport),
    /// The preempt flag was observed at a checkpoint boundary; the blob
    /// resumes the batch via [`run_checkpointed`]'s `resume`.
    Preempted(Vec<u8>),
}

/// Why a checkpointed batch failed.
#[derive(Debug)]
pub enum CheckpointFailure {
    /// A scenario failed to build, simulate, or validate.
    Batch(Box<BatchError>),
    /// The resume blob was rejected (wrong magic/version, truncated,
    /// corrupted, or taken from a different job).
    Blob(String),
}

impl std::fmt::Display for CheckpointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointFailure::Batch(e) => write!(f, "{e}"),
            CheckpointFailure::Blob(reason) => write!(f, "checkpoint rejected: {reason}"),
        }
    }
}

impl std::error::Error for CheckpointFailure {}

/// Completed-outcome prefix plus the optional in-flight machine
/// snapshot, as decoded from a checkpoint blob.
struct ResumeState {
    outcomes: Vec<SimOutcome>,
    machine: Option<Vec<u8>>,
}

fn encode_blob(outcomes: &[SimOutcome], scenario_count: usize, machine: Option<&[u8]>) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(MAGIC);
    w.u32(VERSION);
    w.usize(scenario_count);
    w.usize(outcomes.len());
    for o in outcomes {
        o.encode(&mut w);
    }
    match machine {
        None => w.u8(0),
        Some(snap) => {
            w.u8(1);
            w.bytes(snap);
        }
    }
    w.into_bytes()
}

fn decode_blob(blob: &[u8], scenario_count: usize) -> Result<ResumeState, CheckpointFailure> {
    let fail = |reason: String| CheckpointFailure::Blob(reason);
    let codec = |e: CodecError| CheckpointFailure::Blob(e.to_string());
    let mut r = Reader::new(blob);
    let magic = r.u64().map_err(|_| fail("blob shorter than the checkpoint header".into()))?;
    if magic != MAGIC {
        return Err(fail("not a capsule job checkpoint (bad magic)".into()));
    }
    let version = r.u32().map_err(codec)?;
    if version != VERSION {
        return Err(fail(format!("format version {version}, this build reads {VERSION}")));
    }
    let count = r.usize().map_err(codec)?;
    if count != scenario_count {
        return Err(fail(format!(
            "checkpoint covers {count} scenarios, this job has {scenario_count}"
        )));
    }
    let done = r.usize().map_err(codec)?;
    if done > count {
        return Err(fail(format!("{done} completed outcomes out of {count} scenarios")));
    }
    let mut outcomes = Vec::with_capacity(done);
    for _ in 0..done {
        outcomes.push(SimOutcome::decode(&mut r).map_err(codec)?);
    }
    let machine = match r.u8().map_err(codec)? {
        0 => None,
        1 => Some(r.bytes().map_err(codec)?.to_vec()),
        _ => return Err(fail("bad machine-snapshot tag".into())),
    };
    if !r.is_empty() {
        return Err(fail("trailing bytes after checkpoint body".into()));
    }
    Ok(ResumeState { outcomes, machine })
}

fn batch_err(scenarios: &[Scenario], index: usize, failure: RunFailure) -> CheckpointFailure {
    let sc = &scenarios[index];
    CheckpointFailure::Batch(Box::new(BatchError {
        index,
        group: sc.group.clone(),
        label: sc.label.clone(),
        workload: sc.workload.name().to_string(),
        failure,
    }))
}

/// Runs `scenarios` serially with periodic checkpoints.
///
/// Every `interval` cycles of the in-flight scenario (0 disables
/// mid-run checkpoints) the runner pauses at a cycle boundary, builds a
/// checkpoint blob, hands it to `on_checkpoint`, and — if `preempt` is
/// set — parks the batch as [`CheckpointOutcome::Preempted`] instead of
/// continuing. The preempt flag is also honoured between scenarios.
/// Pass a previous blob as `resume` to continue a parked batch; the
/// final report is byte-identical to an uninterrupted run.
///
/// # Errors
///
/// [`CheckpointFailure::Blob`] if the resume blob is rejected;
/// [`CheckpointFailure::Batch`] when a scenario fails (same failure the
/// [`BatchRunner`](crate::BatchRunner) would report).
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed(
    title: impl Into<String>,
    scenarios: Vec<Scenario>,
    budget: u64,
    cancel: Option<&CancelToken>,
    opts: RunOptions,
    warm: &mut WarmMachine,
    interval: u64,
    preempt: &AtomicBool,
    resume: Option<&[u8]>,
    mut on_checkpoint: impl FnMut(&[u8]),
) -> Result<CheckpointOutcome, CheckpointFailure> {
    let title = title.into();
    let mut outcomes: Vec<SimOutcome> = Vec::new();
    let mut in_flight: Option<Vec<u8>> = None;
    if let Some(blob) = resume {
        let state = decode_blob(blob, scenarios.len())?;
        outcomes = state.outcomes;
        in_flight = state.machine;
    }

    while outcomes.len() < scenarios.len() {
        let index = outcomes.len();
        if preempt.load(Ordering::Relaxed) {
            // Re-park without losing a carried-over in-flight snapshot.
            return Ok(CheckpointOutcome::Preempted(encode_blob(
                &outcomes,
                scenarios.len(),
                in_flight.as_deref(),
            )));
        }
        let sc = &scenarios[index];
        let program = sc.workload.program(sc.variant);
        let m = warm
            .prepare(sc.config.clone(), &program)
            .map_err(|e| batch_err(&scenarios, index, RunFailure::Build(e)))?;
        if let Some(tok) = cancel {
            m.set_cancel_token(tok.clone());
        }
        if opts.profile {
            m.enable_profile();
        }
        if let Some(limit) = opts.trace {
            m.enable_trace(limit);
        }
        if let Some(snap) = in_flight.take() {
            // The snapshot's config/program hash rejects a blob taken
            // from any other scenario, so a stale or swapped blob fails
            // here instead of producing wrong numbers.
            m.restore_snapshot(&snap).map_err(|e| CheckpointFailure::Blob(e.to_string()))?;
        }
        let outcome = loop {
            // interval == 0 disables pausing entirely (checked_div -> None).
            let next_pause = match m.cycle().checked_div(interval) {
                None => u64::MAX,
                Some(periods) => (periods + 1).saturating_mul(interval),
            };
            match m.run_until(budget, next_pause) {
                Ok(Some(outcome)) => break outcome,
                Ok(None) => {
                    let snap = m.snapshot();
                    let blob = encode_blob(&outcomes, scenarios.len(), Some(&snap));
                    if preempt.load(Ordering::Relaxed) {
                        return Ok(CheckpointOutcome::Preempted(blob));
                    }
                    on_checkpoint(&blob);
                }
                Err(e) => return Err(batch_err(&scenarios, index, RunFailure::Sim(e))),
            }
        };
        sc.workload
            .check(&outcome.output)
            .map_err(|e| batch_err(&scenarios, index, RunFailure::Check(e)))?;
        outcomes.push(outcome);
    }

    let records = scenarios
        .iter()
        .zip(outcomes)
        .map(|(sc, outcome)| RunRecord {
            group: sc.group.clone(),
            label: sc.label.clone(),
            workload: sc.workload.name(),
            variant: crate::scenario::variant_name(sc.variant),
            outcome,
        })
        .collect();
    Ok(CheckpointOutcome::Done(BatchReport { title, records }))
}
