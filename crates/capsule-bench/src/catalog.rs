//! Shared scenario catalog: every figure/table evaluation of the paper as
//! a named, scale-parameterised scenario list.
//!
//! The per-figure binaries in `src/bin/` and the `capsule-serve` job
//! server build their batches from the same entries, so a scenario named
//! over the wire is byte-for-byte the scenario the corresponding binary
//! runs. Each entry exists at three scales:
//!
//! - [`Scale::Smoke`] — seconds; CI smoke tests and server round-trips,
//! - [`Scale::Quick`] — the binaries' default reduced configuration,
//! - [`Scale::Full`] — the paper-sized runs (`--full`).
//!
//! Quick and Full reproduce the historical binary parameters exactly;
//! Smoke shrinks the data sets while keeping every machine configuration
//! and variant untouched.

use std::sync::Arc;

use capsule_core::config::{DivisionMode, MachineConfig};
use capsule_workloads::datasets::{lzw_text, random_list, ListShape, Tree};
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::lang_ports::probe_overhead_program;
use capsule_workloads::lzw::Lzw;
use capsule_workloads::perceptron::Perceptron;
use capsule_workloads::quicksort::QuickSort;
use capsule_workloads::spec::{Bzip2, Crafty, Mcf, Vpr};
use capsule_workloads::{Variant, Workload};

use crate::Scenario;

/// Data-set scale of a catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny instances for CI smoke tests and server round-trips.
    Smoke,
    /// The binaries' default reduced configuration.
    Quick,
    /// The paper-sized configuration (`--full`).
    Full,
}

impl Scale {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Parses a canonical name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The scale the evaluation binaries run at: [`Scale::Full`] when
    /// `--full`/`CAPSULE_BENCH_FULL=1` was given, else [`Scale::Quick`].
    pub fn from_env() -> Scale {
        if crate::full_scale() {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Picks the value for this scale.
    pub fn pick<T>(self, smoke: T, quick: T, full: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One named evaluation from the catalog.
pub struct CatalogEntry {
    /// Stable name, matching the binary in `src/bin/` (`fig3_dijkstra_dist`).
    pub name: &'static str,
    /// Batch title printed in reports (matches the historical binary).
    pub title: &'static str,
    /// One-line description for listings.
    pub about: &'static str,
    /// Builds the scenario list at the requested scale.
    pub build: fn(Scale) -> Vec<Scenario>,
}

impl CatalogEntry {
    /// Builds the scenario list at the requested scale.
    pub fn scenarios(&self, scale: Scale) -> Vec<Scenario> {
        (self.build)(scale)
    }
}

/// All catalog entries, in the paper's figure/table order.
pub fn entries() -> &'static [CatalogEntry] {
    &ENTRIES
}

/// Looks up an entry by name.
pub fn find(name: &str) -> Option<&'static CatalogEntry> {
    ENTRIES.iter().find(|e| e.name == name)
}

/// Names of every catalog entry, in the paper's figure/table order — the
/// canonical job list for server and fleet smoke sweeps (`capsule-loadgen`
/// and the CI fleet smoke test drive exactly this list at smoke scale).
pub fn names() -> Vec<&'static str> {
    ENTRIES.iter().map(|e| e.name).collect()
}

static ENTRIES: [CatalogEntry; 16] = [
    CatalogEntry {
        name: "fig3_dijkstra_dist",
        title: "Figure 3 — Dijkstra distribution",
        about: "execution-time distribution of Dijkstra over random graphs",
        build: fig3_dijkstra_dist,
    },
    CatalogEntry {
        name: "fig5_quicksort_dist",
        title: "Figure 5 — QuickSort distribution",
        about: "execution-time distribution of QuickSort over shaped lists",
        build: fig5_quicksort_dist,
    },
    CatalogEntry {
        name: "fig6_division_tree",
        title: "Figure 6 — QuickSort division genealogy",
        about: "division genealogy of one component QuickSort run",
        build: fig6_division_tree,
    },
    CatalogEntry {
        name: "fig7_throttling",
        title: "Figure 7 — division throttling",
        about: "death-rate throttle on small parallel sections (LZW, Perceptron)",
        build: fig7_throttling,
    },
    CatalogEntry {
        name: "fig8_spec_speedups",
        title: "Figure 8 — SPEC analog speedups",
        about: "SPEC CINT2000 analog speedups, SOMT vs superscalar",
        build: fig8_spec_speedups,
    },
    CatalogEntry {
        name: "table1_config",
        title: "Table 1 — baseline configuration smoke run",
        about: "smoke run of the three Table 1 machine configurations",
        build: table1_config,
    },
    CatalogEntry {
        name: "table2_componentization",
        title: "Table 2 — componentization",
        about: "componentized-section share of the SPEC analogs",
        build: table2_componentization,
    },
    CatalogEntry {
        name: "table3_divisions",
        title: "Table 3 — division rates",
        about: "successful-division percentage and rate on the SOMT",
        build: table3_divisions,
    },
    CatalogEntry {
        name: "ablation_policies",
        title: "Ablations — interpretation choices",
        about: "divide-to-stack, death-rate window and swap-threshold ablations",
        build: ablation_policies,
    },
    CatalogEntry {
        name: "cmp_scaling",
        title: "§5 — CMP extrapolation",
        about: "8 contexts as 1x8 through 8x1 cores, plus remote-division latency",
        build: cmp_scaling,
    },
    CatalogEntry {
        name: "sens_crafty_contexts",
        title: "§5 — crafty context study",
        about: "crafty's software pool vs context count",
        build: sens_crafty_contexts,
    },
    CatalogEntry {
        name: "sens_division_latency",
        title: "§5 — division-latency sensitivity",
        about: "division-latency sweep on division-heavy workloads",
        build: sens_division_latency,
    },
    CatalogEntry {
        name: "sens_vpr_cache",
        title: "§5 — vpr cache sensitivity",
        about: "vpr with Table 1 caches vs doubled capacity and ports",
        build: sens_vpr_cache,
    },
    CatalogEntry {
        name: "toolchain_overhead",
        title: "§3.2 — toolchain overhead per division",
        about: "software cost of the coworker lowering per division probe",
        build: toolchain_overhead,
    },
    CatalogEntry {
        name: "fuzz_regress",
        title: "Fuzzing — minimized corpus regression",
        about: "replays the embedded capsule-fuzz corpus on the Table 1 machines",
        build: crate::fuzz::fuzz_regress,
    },
    CatalogEntry {
        name: "fuzz_gen",
        title: "Fuzzing — seeded generated programs",
        about: "seeded fuzz programs checked against the reference interpreter",
        build: crate::fuzz::fuzz_gen,
    },
];

type SharedWorkload = Arc<dyn Workload + Send + Sync>;

// --- Scale-dependent parameters the binaries also print ------------------

/// Figure 3 sweep size: (graphs, nodes per graph).
pub fn fig3_params(scale: Scale) -> (usize, usize) {
    (scale.pick(4, 20, 100), scale.pick(60, 250, 1000))
}

/// Figure 5 sweep size: (lists, values per list).
pub fn fig5_params(scale: Scale) -> (usize, usize) {
    (scale.pick(5, 25, 500), scale.pick(120, 800, 4000))
}

/// §3.2 probe count.
pub fn toolchain_probes(scale: Scale) -> usize {
    scale.pick(200, 1000, 10_000)
}

// --- Shared smoke-scale SPEC instances -----------------------------------

fn mcf_at(scale: Scale) -> SharedWorkload {
    match scale {
        Scale::Smoke => Arc::new(Mcf::new(Tree::random(17, 7, 2, 3, 200, 50), 2)),
        Scale::Quick => Arc::new(Mcf::standard(17)),
        Scale::Full => Arc::new(Mcf::standard(18)),
    }
}

fn vpr_at(scale: Scale) -> SharedWorkload {
    Arc::new(Vpr::standard(19, scale.pick(7, 10, 14), scale.pick(3, 6, 10), 2))
}

fn bzip2_at(scale: Scale) -> SharedWorkload {
    match scale {
        Scale::Smoke => Arc::new(Bzip2::new(lzw_text(23, 160, 6), 2)),
        Scale::Quick => Arc::new(Bzip2::standard(23, 280)),
        Scale::Full => Arc::new(Bzip2::standard(23, 700)),
    }
}

fn crafty_at(scale: Scale, pool: usize) -> SharedWorkload {
    match scale {
        // Standard's shape (a wide grafted root consumed in waves) over
        // fewer, shallower subtrees.
        Scale::Smoke => {
            let subs: Vec<(i64, Tree)> = (0..8)
                .map(|i| ((i * 13) % 50 + 1, Tree::random(2900 + i as u64, 5, 2, 3, 160, 60)))
                .collect();
            Arc::new(Crafty::new(Tree::graft(subs), pool))
        }
        _ => Arc::new(Crafty::standard(29, pool)),
    }
}

// --- Entry builders ------------------------------------------------------

fn fig3_dijkstra_dist(scale: Scale) -> Vec<Scenario> {
    let (graphs, nodes) = fig3_params(scale);
    let mut scenarios = Vec::new();
    for g in 0..graphs {
        let w: SharedWorkload = Arc::new(Dijkstra::figure3(1000 + g as u64, nodes));
        scenarios.push(Scenario::new(
            "superscalar",
            format!("g{g}"),
            MachineConfig::table1_superscalar(),
            Variant::Sequential,
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            "smt_static",
            format!("g{g}"),
            MachineConfig::table1_smt(),
            Variant::Static(8),
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            "somt_component",
            format!("g{g}"),
            MachineConfig::table1_somt(),
            Variant::Component,
            w,
        ));
    }
    scenarios
}

fn fig5_quicksort_dist(scale: Scale) -> Vec<Scenario> {
    let (lists, len) = fig5_params(scale);
    let mut scenarios = Vec::new();
    for i in 0..lists {
        let shape = ListShape::ALL[i % ListShape::ALL.len()];
        let w: SharedWorkload = Arc::new(QuickSort::new(random_list(2000 + i as u64, len, shape)));
        scenarios.push(Scenario::new(
            "superscalar",
            format!("l{i}"),
            MachineConfig::table1_superscalar(),
            Variant::Sequential,
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            "smt_static",
            format!("l{i}"),
            MachineConfig::table1_smt(),
            Variant::Static(8),
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            "somt_component",
            format!("l{i}"),
            MachineConfig::table1_somt(),
            Variant::Component,
            w,
        ));
    }
    scenarios
}

fn fig6_division_tree(scale: Scale) -> Vec<Scenario> {
    let len = scale.pick(400, 3000, 12000);
    vec![Scenario::new(
        "somt",
        "uniform",
        MachineConfig::table1_somt(),
        Variant::Component,
        Arc::new(QuickSort::new(random_list(4242, len, ListShape::Uniform))),
    )]
}

fn fig7_throttling(scale: Scale) -> Vec<Scenario> {
    let lzw: SharedWorkload = Arc::new(Lzw::figure7(5, scale.pick(300, 2000, 4096)));
    let perc: SharedWorkload = Arc::new(
        Perceptron::figure7(
            3,
            scale.pick(8, 10, 12),
            scale.pick(256, 2048, 10000),
            scale.pick(2, 3, 4),
        )
        .with_leaf(8),
    );

    let mut scenarios = Vec::new();
    for (wname, w) in [("LZW", &lzw), ("Perceptron", &perc)] {
        for (policy, mode) in
            [("greedy", DivisionMode::Greedy), ("throttled", DivisionMode::GreedyThrottled)]
        {
            let mut cfg = MachineConfig::table1_somt();
            cfg.division_mode = mode;
            scenarios.push(Scenario::new(
                format!("{wname}/{policy}"),
                policy,
                cfg,
                Variant::Component,
                Arc::clone(w),
            ));
        }
    }
    scenarios
}

fn fig8_spec_speedups(scale: Scale) -> Vec<Scenario> {
    let rows: [(&str, SharedWorkload); 4] = [
        ("mcf", mcf_at(scale)),
        ("vpr", vpr_at(scale)),
        ("bzip2", bzip2_at(scale)),
        ("crafty", crafty_at(scale, 8)),
    ];
    let mut scenarios = Vec::new();
    for (name, w) in &rows {
        // crafty has no sequential rewrite in the paper either; its
        // baseline is the pool-of-one on the superscalar.
        scenarios.push(Scenario::new(
            format!("{name}/scalar"),
            "scalar",
            MachineConfig::table1_superscalar(),
            Variant::Sequential,
            Arc::clone(w),
        ));
        scenarios.push(Scenario::new(
            format!("{name}/somt"),
            "somt",
            MachineConfig::table1_somt(),
            Variant::Component,
            Arc::clone(w),
        ));
    }
    scenarios
}

fn table1_config(_scale: Scale) -> Vec<Scenario> {
    let w = Arc::new(Dijkstra::figure3(1, 40));
    vec![
        Scenario::new("somt", "smoke", MachineConfig::table1_somt(), Variant::Component, w.clone()),
        Scenario::new("smt", "smoke", MachineConfig::table1_smt(), Variant::Static(8), w.clone()),
        Scenario::new(
            "superscalar",
            "smoke",
            MachineConfig::table1_superscalar(),
            Variant::Sequential,
            w,
        ),
    ]
}

fn table2_componentization(scale: Scale) -> Vec<Scenario> {
    [
        ("181.mcf", mcf_at(scale)),
        ("175.vpr", vpr_at(scale)),
        ("256.bzip2", bzip2_at(scale)),
        ("186.crafty", crafty_at(scale, 8)),
    ]
    .into_iter()
    .map(|(name, w)| {
        Scenario::new(
            name,
            "sequential",
            MachineConfig::table1_superscalar(),
            Variant::Sequential,
            w,
        )
    })
    .collect()
}

fn table3_divisions(scale: Scale) -> Vec<Scenario> {
    [("mcf", mcf_at(scale)), ("vpr", vpr_at(scale)), ("bzip2", bzip2_at(scale))]
        .into_iter()
        .map(|(name, w)| {
            Scenario::new(name, "component", MachineConfig::table1_somt(), Variant::Component, w)
        })
        .collect()
}

fn ablation_policies(scale: Scale) -> Vec<Scenario> {
    let dij: SharedWorkload = Arc::new(Dijkstra::figure3(7, scale.pick(60, 250, 1000)));
    let lzw: SharedWorkload = Arc::new(Lzw::figure7(5, scale.pick(300, 2000, 4096)));
    let vpr: SharedWorkload =
        Arc::new(Vpr::standard(19, scale.pick(7, 12, 20), scale.pick(3, 8, 12), 2));

    let mut scenarios = Vec::new();
    for (name, w) in [("dijkstra", &dij), ("lzw", &lzw)] {
        for allow in [true, false] {
            let mut cfg = MachineConfig::table1_somt();
            cfg.allow_divide_to_stack = allow;
            scenarios.push(Scenario::new(
                format!("stack/{name}/{allow}"),
                format!("{allow}"),
                cfg,
                Variant::Component,
                Arc::clone(w),
            ));
        }
    }
    for window in [32u64, 128, 512, 2048] {
        let mut cfg = MachineConfig::table1_somt();
        cfg.death_window = window;
        scenarios.push(Scenario::new(
            format!("window/{window}"),
            format!("{window}"),
            cfg,
            Variant::Component,
            Arc::clone(&lzw),
        ));
    }
    for thr in [32i64, 256, 1024] {
        let mut cfg = MachineConfig::table1_somt();
        cfg.swap_counter_threshold = thr;
        scenarios.push(Scenario::new(
            format!("swap/{thr}"),
            format!("{thr}"),
            cfg,
            Variant::Component,
            Arc::clone(&vpr),
        ));
    }
    scenarios
}

fn cmp_scaling(scale: Scale) -> Vec<Scenario> {
    const ORGS: [(usize, usize); 4] = [(1, 8), (2, 4), (4, 2), (8, 1)];
    const REMOTE_LATENCIES: [u64; 4] = [0, 50, 100, 200];

    let dij: SharedWorkload = Arc::new(Dijkstra::figure3(7, scale.pick(60, 250, 1000)));
    let mcf = mcf_at(scale);

    let mut scenarios = Vec::new();
    for (name, w) in [("dijkstra", &dij), ("mcf", &mcf)] {
        for (cores, per_core) in ORGS {
            scenarios.push(Scenario::new(
                format!("org/{name}/{cores}x{per_core}"),
                format!("{cores}x{per_core}"),
                MachineConfig::cmp_somt(cores, per_core),
                Variant::Component,
                Arc::clone(w),
            ));
        }
    }
    for remote in REMOTE_LATENCIES {
        let mut cfg = MachineConfig::cmp_somt(4, 2);
        cfg.remote_division_latency = remote;
        scenarios.push(Scenario::new(
            format!("latency/{remote}"),
            format!("{remote}"),
            cfg,
            Variant::Component,
            Arc::clone(&mcf),
        ));
    }
    scenarios
}

fn sens_crafty_contexts(scale: Scale) -> Vec<Scenario> {
    const CONTEXTS: [usize; 3] = [2, 4, 8];
    let mut scenarios = vec![Scenario::new(
        "baseline",
        "pool1",
        MachineConfig::table1_superscalar(),
        Variant::Sequential,
        crafty_at(scale, 1),
    )];
    for contexts in CONTEXTS {
        let mut cfg = MachineConfig::table1_somt();
        cfg.contexts = contexts;
        scenarios.push(Scenario::new(
            format!("somt/{contexts}"),
            format!("pool{contexts}"),
            cfg,
            Variant::Component,
            crafty_at(scale, contexts),
        ));
    }
    scenarios
}

fn sens_division_latency(scale: Scale) -> Vec<Scenario> {
    const LATENCIES: [u64; 5] = [0, 25, 50, 100, 200];
    let mcf = mcf_at(scale);
    let dij: SharedWorkload = Arc::new(Dijkstra::figure3(7, scale.pick(60, 250, 1000)));

    let mut scenarios = Vec::new();
    for (name, w) in [("mcf", &mcf), ("dijkstra", &dij)] {
        for lat in LATENCIES {
            let mut cfg = MachineConfig::table1_somt();
            cfg.division_latency = lat;
            scenarios.push(Scenario::new(
                format!("{name}/{lat}"),
                format!("{lat}"),
                cfg,
                Variant::Component,
                Arc::clone(w),
            ));
        }
    }
    scenarios
}

fn sens_vpr_cache(scale: Scale) -> Vec<Scenario> {
    // A larger grid than the Figure 8 default makes vpr properly
    // cache-hungry.
    let w: SharedWorkload =
        Arc::new(Vpr::standard(19, scale.pick(8, 16, 24), scale.pick(4, 8, 12), 2));

    let mut scenarios = Vec::new();
    for (tag, double) in [("base", false), ("doubled", true)] {
        let mut scalar_cfg = MachineConfig::table1_superscalar();
        let mut somt_cfg = MachineConfig::table1_somt();
        if double {
            for cfg in [&mut scalar_cfg, &mut somt_cfg] {
                cfg.l1d = cfg.l1d.doubled();
                cfg.l2 = cfg.l2.doubled();
            }
        }
        scenarios.push(Scenario::new(
            format!("{tag}/scalar"),
            tag,
            scalar_cfg,
            Variant::Sequential,
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            format!("{tag}/somt"),
            tag,
            somt_cfg,
            Variant::Component,
            Arc::clone(&w),
        ));
    }
    scenarios
}

fn toolchain_overhead(scale: Scale) -> Vec<Scenario> {
    let n = toolchain_probes(scale);
    let plain = probe_overhead_program(n, false);
    let probed = probe_overhead_program(n, true);
    vec![
        Scenario::raw(
            "scalar/plain",
            "plain",
            MachineConfig::table1_superscalar(),
            "probe-overhead-plain",
            plain.clone(),
        ),
        Scenario::raw(
            "scalar/coworker",
            "coworker",
            MachineConfig::table1_superscalar(),
            "probe-overhead-coworker",
            probed.clone(),
        ),
        Scenario::raw(
            "somt/plain",
            "plain",
            MachineConfig::table1_somt(),
            "probe-overhead-plain",
            plain,
        ),
        Scenario::raw(
            "somt/coworker",
            "coworker",
            MachineConfig::table1_somt(),
            "probe-overhead-coworker",
            probed,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_match_lookup() {
        for e in entries() {
            assert!(std::ptr::eq(find(e.name).expect("findable"), e));
        }
        let mut names: Vec<_> = entries().iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), entries().len());
    }

    #[test]
    fn names_lists_every_entry_in_order() {
        let listed = names();
        assert_eq!(listed.len(), entries().len());
        for (name, e) in listed.iter().zip(entries()) {
            assert_eq!(*name, e.name);
        }
    }

    #[test]
    fn every_entry_builds_at_smoke_scale() {
        for e in entries() {
            let scenarios = (e.build)(Scale::Smoke);
            assert!(!scenarios.is_empty(), "{} builds no scenarios", e.name);
        }
    }

    #[test]
    fn quick_scale_builds_the_historical_batches() {
        // Spot-check sizes against the pre-catalog binaries.
        assert_eq!((find("fig3_dijkstra_dist").unwrap().build)(Scale::Quick).len(), 20 * 3);
        assert_eq!((find("fig5_quicksort_dist").unwrap().build)(Scale::Quick).len(), 25 * 3);
        assert_eq!((find("fig7_throttling").unwrap().build)(Scale::Quick).len(), 4);
        assert_eq!((find("ablation_policies").unwrap().build)(Scale::Quick).len(), 4 + 4 + 3);
        assert_eq!((find("cmp_scaling").unwrap().build)(Scale::Quick).len(), 8 + 4);
        assert_eq!((find("toolchain_overhead").unwrap().build)(Scale::Quick).len(), 4);
    }

    #[test]
    fn scale_names_roundtrip() {
        for s in [Scale::Smoke, Scale::Quick, Scale::Full] {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("paper"), None);
    }
}
