//! Writing Chrome trace-event timeline files for batch runs.
//!
//! Shared by the `capsule-trace` bin and `bench_sim --trace-export`: a
//! batch executed with [`crate::RunOptions::trace`] enabled carries a
//! [`capsule_sim::trace::Trace`] on every record; this module converts
//! each one through [`capsule_sim::chrome_trace`] and writes one
//! `.json` file per record, loadable in `chrome://tracing` / Perfetto.

use std::io;
use std::path::{Path, PathBuf};

use crate::scenario::BatchReport;

/// Filesystem-safe rendering of a group/label ("LZW/throttled" →
/// "LZW-throttled"): alphanumerics, `-`, `_` and `.` survive, anything
/// else becomes `-`.
pub fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') { c } else { '-' })
        .collect()
}

/// One written timeline file.
#[derive(Debug)]
pub struct ExportedTrace {
    /// Where the Chrome-trace JSON went.
    pub path: PathBuf,
    /// Events retained in the trace.
    pub events: usize,
    /// Events dropped at the retention limit.
    pub dropped: u64,
}

/// Writes `dir/<entry>.<index>.<group>.<label>.json` for every record of
/// `report` that carries a trace. `contexts[i]` must be the hardware
/// context count of scenario `i` (the lane count of its timeline).
/// Records without a trace (tracing disabled) are skipped.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_batch(
    dir: &Path,
    entry: &str,
    report: &BatchReport,
    contexts: &[usize],
) -> io::Result<Vec<ExportedTrace>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (i, r) in report.records.iter().enumerate() {
        let Some(trace) = &r.outcome.trace else { continue };
        let lanes = contexts.get(i).copied().unwrap_or(1);
        let doc = capsule_sim::chrome_trace(trace, lanes, r.outcome.profile.as_ref());
        let name = format!("{}.{:02}.{}.{}.json", slug(entry), i, slug(&r.group), slug(&r.label));
        let path = dir.join(name);
        std::fs::write(&path, doc.to_string_pretty())?;
        written.push(ExportedTrace {
            path,
            events: trace.events().len(),
            dropped: trace.dropped(),
        });
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slug_keeps_safe_chars_only() {
        assert_eq!(slug("LZW/throttled"), "LZW-throttled");
        assert_eq!(slug("a b:c_d-e.f"), "a-b-c_d-e.f");
        assert_eq!(slug("plain"), "plain");
    }
}
