//! Shared machinery for the tracked benchmark files (`BENCH_sim.json`,
//! `BENCH_serve.json`): reading entry fields back out of a previous run
//! and the `--compare` regression gate.
//!
//! Every tracked bench file shares the same envelope — a `schema` tag
//! and an `entries` array whose rows are keyed by `entry` — so the
//! baseline/compare plumbing lives here once and the binaries
//! (`bench_sim`, `bench_serve`) only decide which field gates and what
//! unit label the table prints.

use capsule_core::output::Json;

/// Reads `entry -> <field>` out of a previous bench file.
///
/// # Errors
///
/// A human-readable message when the file is unreadable or not valid
/// JSON. Entries missing the field (e.g. a `--deterministic` baseline
/// without timing fields) are silently skipped, matching the compare
/// gate's treatment of new entries.
pub fn try_read_entry_field(path: &str, field: &str) -> Result<Vec<(String, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("baseline {path} is not valid JSON: {e}"))?;
    let mut map = Vec::new();
    if let Some(entries) = json.get("entries").and_then(Json::as_array) {
        for e in entries {
            if let (Some(name), Some(v)) =
                (e.get("entry").and_then(Json::as_str), e.get(field).and_then(Json::as_f64))
            {
                map.push((name.to_string(), v));
            }
        }
    }
    Ok(map)
}

/// [`try_read_entry_field`] for the binaries: prints the error and exits
/// with status 2 (bad invocation) when the baseline cannot be read.
pub fn read_entry_field(path: &str, field: &str) -> Vec<(String, f64)> {
    try_read_entry_field(path, field).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Rounds to three decimals so the JSON stays diff-friendly.
pub fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// The `--compare` gate: prints a per-entry speedup table of `field`
/// (labelled with `unit`) against a previous bench file at `path` and
/// returns the number of entries that regressed beyond the `noise`
/// fraction. Higher is better — an entry regresses when
/// `current < baseline * (1 - noise)`. Entries absent from the baseline
/// print as `new` and never regress.
pub fn compare_field(
    path: &str,
    field: &str,
    unit: &str,
    noise: f64,
    current: &[(String, f64)],
) -> usize {
    let base = read_entry_field(path, field);
    println!("\ncomparison vs {path} (noise tolerance {:.0}%):", noise * 100.0);
    println!(
        "  {:<24} {:>14} {:>14} {:>9}  verdict",
        "entry",
        format!("baseline {unit}"),
        format!("current {unit}"),
        "speedup"
    );
    let mut regressions = 0usize;
    for (name, cur) in current {
        let Some((_, base_v)) = base.iter().find(|(n, _)| n == name) else {
            println!("  {name:<24} {:>14} {cur:>14.0} {:>9}  new", "-", "-");
            continue;
        };
        let speedup = cur / base_v.max(1e-9);
        let regressed = speedup < 1.0 - noise;
        if regressed {
            regressions += 1;
        }
        println!(
            "  {name:<24} {base_v:>14.0} {cur:>14.0} {speedup:>8.2}x  {}",
            if regressed { "REGRESSED" } else { "ok" }
        );
    }
    if regressions > 0 {
        println!("\n{regressions} entries regressed beyond the noise tolerance");
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str, contents: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("capsule-benchfile-{name}-{}", std::process::id()));
        std::fs::write(&path, contents).expect("write scratch bench file");
        path
    }

    #[test]
    fn round3_keeps_three_decimals() {
        assert_eq!(round3(1.23456), 1.235);
        assert_eq!(round3(2.0), 2.0);
    }

    #[test]
    fn entry_fields_read_back_and_missing_fields_are_skipped() {
        let path = scratch(
            "read",
            r#"{"schema":"capsule-bench-serve/1","entries":[
                {"entry":"a","throughput_rps":120.5},
                {"entry":"b"},
                {"entry":"c","throughput_rps":7}
            ]}"#,
        );
        let got = try_read_entry_field(path.to_str().expect("utf8 path"), "throughput_rps")
            .expect("readable");
        assert_eq!(got, vec![("a".to_string(), 120.5), ("c".to_string(), 7.0)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unreadable_and_malformed_baselines_are_errors() {
        let missing = try_read_entry_field("/nonexistent/benchfile.json", "x");
        assert!(missing.is_err_and(|e| e.contains("cannot read")));
        let path = scratch("malformed", "not json");
        let bad = try_read_entry_field(path.to_str().expect("utf8 path"), "x");
        assert!(bad.is_err_and(|e| e.contains("not valid JSON")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn the_gate_counts_regressions_beyond_the_noise_band() {
        let path = scratch(
            "gate",
            r#"{"entries":[
                {"entry":"steady","v":100.0},
                {"entry":"regressed","v":100.0},
                {"entry":"boundary","v":100.0}
            ]}"#,
        );
        let p = path.to_str().expect("utf8 path");
        let current = vec![
            ("steady".to_string(), 99.0),    // within noise
            ("regressed".to_string(), 50.0), // far below
            ("boundary".to_string(), 85.0),  // exactly 1 - noise: not regressed
            ("brand-new".to_string(), 1.0),  // absent from baseline
        ];
        assert_eq!(compare_field(p, "v", "rps", 0.15, &current), 1);
        assert_eq!(compare_field(p, "v", "rps", 0.60, &current), 0);
        let _ = std::fs::remove_file(&path);
    }
}
