//! Table 1: baseline configuration of the SOMT, SMT and superscalar
//! processors. Ends with a smoke run of the configured machine through
//! the shared scenario runner, so the printed configuration is one that
//! demonstrably executes.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::{row, BatchRunner};
use capsule_core::config::MachineConfig;

fn main() {
    let c = MachineConfig::table1_somt();
    println!("Table 1 — baseline configuration (SOMT / SMT / superscalar)\n");
    row("Fetch width", c.fetch_width);
    row("Fetch policy", format!("ICount.{}.{}", c.fetch_threads, c.fetch_per_thread));
    row(
        "Issue / Decode / Commit width",
        format!("{} / {} / {}", c.issue_width, c.decode_width, c.commit_width),
    );
    row("RUU size (instruction window)", c.ruu_size);
    row("LSQ size", c.lsq_size);
    row(
        "FUs",
        format!(
            "{} IALU, {} IMULT, {} FPALU, {} FPMULT",
            c.fus.ialu, c.fus.imult, c.fus.fpalu, c.fus.fpmult
        ),
    );
    row(
        "Branch prediction",
        format!(
            "combined, {} meta, {} bimodal, {} 2-level ({} history bits)",
            c.predictor.meta_entries,
            c.predictor.bimodal_entries,
            c.predictor.twolevel_entries,
            c.predictor.history_bits
        ),
    );
    row("Memory latency", format!("{} cycles", c.mem_latency));
    row("L1 DCache", format!("{} kB, {} cycle(s)", c.l1d.size_bytes / 1024, c.l1d.latency));
    row("L1 ICache", format!("{} kB, {} cycle(s)", c.l1i.size_bytes / 1024, c.l1i.latency));
    row("L2 unified", format!("{} kB, {} cycles", c.l2.size_bytes / 1024, c.l2.latency));
    println!("\nCAPSULE extensions (SOMT only):");
    row("Hardware contexts", c.contexts);
    row("Division policy", format!("{:?}", c.division_mode));
    row(
        "Death-rate window / limit",
        format!("{} cycles / {}", c.death_window, c.throttle_death_limit()),
    );
    row("Context stack entries", c.context_stack_entries);
    row("Swap latency", format!("{} cycles", c.swap_latency));
    row(
        "Swap heuristic",
        format!(
            "mean of last {} loads, threshold {}",
            c.swap_load_window, c.swap_counter_threshold
        ),
    );
    row("Lock table entries", c.lock_table_entries);
    println!("\nBaselines: SMT = same, division disabled; superscalar = 1 context.");
    c.validate().expect("Table 1 config is self-consistent");

    // Smoke-run each configured machine on a tiny workload.
    let entry = catalog::find("table1_config").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));
    println!(
        "\nsmoke run (40-node Dijkstra): somt {} cy, smt {} cy, superscalar {} cy",
        report.only("somt").outcome.cycles(),
        report.only("smt").outcome.cycles(),
        report.only("superscalar").outcome.cycles(),
    );
    report.emit("table1_config");
}
