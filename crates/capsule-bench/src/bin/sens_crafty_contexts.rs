//! §5 crafty context study: the paper's software thread pool makes
//! *more* contexts worse — "the overall speedup of the same application
//! on a 4-context SOMT is 2.3 instead of 1.7 for an 8-context SOMT".
//!
//! Runs the crafty analog with a pool sized to the context count on 2-,
//! 4- and 8-context SOMTs, against the pool-of-one superscalar baseline.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;

const CONTEXTS: [usize; 3] = [2, 4, 8];

fn main() {
    println!("§5 — crafty: software pool vs context count (paper: 4 ctx 2.3x > 8 ctx 1.7x)\n");

    let entry = catalog::find("sens_crafty_contexts").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));

    let baseline = report.only("baseline").outcome.cycles();
    println!("superscalar pool-of-one baseline: {baseline} cycles\n");
    println!(
        "{:>9} {:>14} {:>9} {:>12} {:>12}",
        "contexts", "cycles", "speedup", "grant rate", "lock stalls"
    );

    for contexts in CONTEXTS {
        let o = &report.only(&format!("somt/{contexts}")).outcome;
        println!(
            "{contexts:>9} {:>14} {:>8.2}x {:>11.0}% {:>12}",
            o.cycles(),
            baseline as f64 / o.cycles() as f64,
            100.0 * o.stats.grant_rate(),
            o.stats.lock_stalls
        );
    }
    println!("\n(the occupied contexts deny nearly all hardware division probes, and the");
    println!(" 8-context speedup lands near the paper's 1.7x; the paper's 4>8 inversion does");
    println!(" not reproduce here — the fast lock table turns the pool's active wait into");
    println!(" quiet WaitLock stalls instead of pthread-style pipeline pollution, see");
    println!(" EXPERIMENTS.md)");
    report.emit("sens_crafty_contexts");
}
