//! Figure 7: division throttling of small parallel sections (LZW and
//! Perceptron).
//!
//! Both programs create very short-lived workers; the paper's death-rate
//! throttle (deny while ≥ contexts/2 deaths happened in the last 128
//! cycles) protects them from drowning in division overhead. Each
//! workload runs under the plain greedy policy and under greedy +
//! throttle, on the 8-context SOMT.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::{full_scale, BatchRunner};

fn main() {
    println!(
        "Figure 7 — division throttling of small parallel sections{}\n",
        if full_scale() { " (paper scale)" } else { " (reduced scale; --full for paper scale)" }
    );

    let entry = catalog::find("fig7_throttling").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));

    for name in ["LZW", "Perceptron"] {
        let mut cycles = Vec::new();
        for (policy, label) in
            [("greedy", "greedy (no throttle)"), ("throttled", "greedy + throttle")]
        {
            let o = &report.only(&format!("{name}/{policy}")).outcome;
            println!("{name:<11} {label:<22} {:>12} cycles", o.cycles());
            println!(
                "{:<11} {:<22} {} granted / {} requested, {} denied by throttle, {} deaths",
                "",
                "",
                o.stats.divisions_granted(),
                o.stats.divisions_requested,
                o.stats.divisions_denied_throttled,
                o.stats.deaths
            );
            cycles.push(o.cycles());
        }
        println!("{name:<11} throttle benefit: {:.2}x\n", cycles[0] as f64 / cycles[1] as f64);
    }
    println!("(the paper's Figure 7 shows both programs benefiting from throttling)");
    report.emit("fig7_throttling");
}
