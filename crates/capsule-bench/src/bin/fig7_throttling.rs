//! Figure 7: division throttling of small parallel sections (LZW and
//! Perceptron).
//!
//! Both programs create very short-lived workers; the paper's death-rate
//! throttle (deny while ≥ contexts/2 deaths happened in the last 128
//! cycles) protects them from drowning in division overhead. Each
//! workload runs under the plain greedy policy and under greedy +
//! throttle, on the 8-context SOMT.

use capsule_bench::{full_scale, run_checked, scaled};
use capsule_core::config::{DivisionMode, MachineConfig};
use capsule_workloads::lzw::Lzw;
use capsule_workloads::perceptron::Perceptron;
use capsule_workloads::{Variant, Workload};

fn main() {
    println!(
        "Figure 7 — division throttling of small parallel sections{}\n",
        if full_scale() { " (paper scale)" } else { " (reduced scale; --full for paper scale)" }
    );

    // LZW: the paper matches N = 4096 characters.
    let lzw = Lzw::figure7(5, scaled(2000, 4096));
    // Perceptron: the paper splits a 10000-neuron group.
    let perc = Perceptron::figure7(3, scaled(10, 12), scaled(2048, 10000), scaled(3, 4))
        .with_leaf(8);

    let workloads: [(&str, &dyn Workload); 2] = [("LZW", &lzw), ("Perceptron", &perc)];
    for (name, w) in workloads {
        let mut cycles = Vec::new();
        for (policy, mode) in [
            ("greedy (no throttle)", DivisionMode::Greedy),
            ("greedy + throttle", DivisionMode::GreedyThrottled),
        ] {
            let mut cfg = MachineConfig::table1_somt();
            cfg.division_mode = mode;
            let o = run_checked(cfg, w, Variant::Component);
            println!("{name:<11} {policy:<22} {:>12} cycles", o.cycles());
            println!(
                "{:<11} {:<22} {} granted / {} requested, {} denied by throttle, {} deaths",
                "",
                "",
                o.stats.divisions_granted(),
                o.stats.divisions_requested,
                o.stats.divisions_denied_throttled,
                o.stats.deaths
            );
            cycles.push(o.cycles());
        }
        println!(
            "{name:<11} throttle benefit: {:.2}x\n",
            cycles[0] as f64 / cycles[1] as f64
        );
    }
    println!("(the paper's Figure 7 shows both programs benefiting from throttling)");
}
