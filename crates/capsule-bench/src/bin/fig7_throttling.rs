//! Figure 7: division throttling of small parallel sections (LZW and
//! Perceptron).
//!
//! Both programs create very short-lived workers; the paper's death-rate
//! throttle (deny while ≥ contexts/2 deaths happened in the last 128
//! cycles) protects them from drowning in division overhead. Each
//! workload runs under the plain greedy policy and under greedy +
//! throttle, on the 8-context SOMT.

use std::sync::Arc;

use capsule_bench::{full_scale, scaled, BatchRunner, Scenario};
use capsule_core::config::{DivisionMode, MachineConfig};
use capsule_workloads::lzw::Lzw;
use capsule_workloads::perceptron::Perceptron;
use capsule_workloads::{Variant, Workload};

fn main() {
    println!(
        "Figure 7 — division throttling of small parallel sections{}\n",
        if full_scale() { " (paper scale)" } else { " (reduced scale; --full for paper scale)" }
    );

    // LZW: the paper matches N = 4096 characters.
    let lzw: Arc<dyn Workload + Send + Sync> = Arc::new(Lzw::figure7(5, scaled(2000, 4096)));
    // Perceptron: the paper splits a 10000-neuron group.
    let perc: Arc<dyn Workload + Send + Sync> = Arc::new(
        Perceptron::figure7(3, scaled(10, 12), scaled(2048, 10000), scaled(3, 4)).with_leaf(8),
    );

    let mut scenarios = Vec::new();
    for (wname, w) in [("LZW", &lzw), ("Perceptron", &perc)] {
        for (policy, mode) in
            [("greedy", DivisionMode::Greedy), ("throttled", DivisionMode::GreedyThrottled)]
        {
            let mut cfg = MachineConfig::table1_somt();
            cfg.division_mode = mode;
            scenarios.push(Scenario::new(
                format!("{wname}/{policy}"),
                policy,
                cfg,
                Variant::Component,
                Arc::clone(w),
            ));
        }
    }
    let report = BatchRunner::from_env().run("Figure 7 — division throttling", scenarios);

    for name in ["LZW", "Perceptron"] {
        let mut cycles = Vec::new();
        for (policy, label) in
            [("greedy", "greedy (no throttle)"), ("throttled", "greedy + throttle")]
        {
            let o = &report.only(&format!("{name}/{policy}")).outcome;
            println!("{name:<11} {label:<22} {:>12} cycles", o.cycles());
            println!(
                "{:<11} {:<22} {} granted / {} requested, {} denied by throttle, {} deaths",
                "",
                "",
                o.stats.divisions_granted(),
                o.stats.divisions_requested,
                o.stats.divisions_denied_throttled,
                o.stats.deaths
            );
            cycles.push(o.cycles());
        }
        println!(
            "{name:<11} throttle benefit: {:.2}x\n",
            cycles[0] as f64 / cycles[1] as f64
        );
    }
    println!("(the paper's Figure 7 shows both programs benefiting from throttling)");
    report.emit("fig7_throttling");
}
