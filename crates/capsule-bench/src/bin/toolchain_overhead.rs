//! §3.2 toolchain overhead: "the measured average programming overhead is
//! 15 cycles per division".
//!
//! Measures the software cost of the Capsule C `coworker` lowering on
//! this machine: the same loop of worker invocations compiled once with
//! `coworker` (token take/return + `nthr` probe + branch) and once as a
//! plain call. On the superscalar every probe is denied, so the cycle
//! difference divided by the invocation count is the per-probe software
//! overhead; on the SOMT most probes are granted, giving the per-division
//! cost including the child's pooled-stack allocation.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;

fn main() {
    let scale = Scale::from_env();
    let n = catalog::toolchain_probes(scale);
    println!("§3.2 — toolchain software overhead per division (paper: ~15 cycles)\n");

    let entry = catalog::find("toolchain_overhead").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(scale));

    let p_scalar = &report.only("scalar/plain").outcome;
    let c_scalar = &report.only("scalar/coworker").outcome;
    assert_eq!(p_scalar.ints(), c_scalar.ints(), "results must agree");
    println!(
        "superscalar (all {n} probes denied):   plain {:>9} cy, coworker {:>9} cy -> {:>5.1} cy/probe",
        p_scalar.cycles(),
        c_scalar.cycles(),
        (c_scalar.cycles() as f64 - p_scalar.cycles() as f64) / n as f64
    );

    let p_somt = &report.only("somt/plain").outcome;
    let c_somt = &report.only("somt/coworker").outcome;
    assert_eq!(p_somt.ints(), c_somt.ints(), "results must agree");
    println!(
        "SOMT ({} of {n} probes granted):   plain {:>9} cy, coworker {:>9} cy -> {:>5.1} cy/probe",
        c_somt.stats.divisions_granted(),
        p_somt.cycles(),
        c_somt.cycles(),
        (c_somt.cycles() as f64 - p_somt.cycles() as f64) / n as f64
    );
    println!("\n(per-probe cost on the SOMT includes the granted children's pooled-stack");
    println!(" allocation, register-copy stall and join-token traffic; negative values mean");
    println!(" the division overhead was hidden by the parallelism it bought)");
    report.emit("toolchain_overhead");
}
