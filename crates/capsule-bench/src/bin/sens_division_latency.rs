//! §5 sensitivity study: division latency (the paper simulates division
//! latencies up to 200 cycles — the CMP-porting scenario — and observes
//! less than 1 % average performance variation).
//!
//! Sweeps the register-copy latency charged to a divided child on the
//! division-heavy workloads (mcf has the paper's highest grant rate).

use capsule_bench::{run_checked, scaled};
use capsule_core::config::MachineConfig;
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::spec::Mcf;
use capsule_workloads::{Variant, Workload};

fn main() {
    println!("§5 — division-latency sensitivity (paper: <1% variation up to 200 cycles)\n");
    let mcf = Mcf::standard(scaled(17, 18));
    let dij = Dijkstra::figure3(7, scaled(250, 1000));
    let workloads: [(&str, &dyn Workload); 2] = [("mcf", &mcf), ("dijkstra", &dij)];

    for (name, w) in workloads {
        let mut base = None;
        println!("{name}:");
        for lat in [0u64, 25, 50, 100, 200] {
            let mut cfg = MachineConfig::table1_somt();
            cfg.division_latency = lat;
            let o = run_checked(cfg, w, Variant::Component);
            let b = *base.get_or_insert(o.cycles());
            let delta = 100.0 * (o.cycles() as f64 - b as f64) / b as f64;
            println!(
                "  latency {lat:>3} cycles: {:>12} cycles  ({delta:+.2}% vs latency 0), {} divisions",
                o.cycles(),
                o.stats.divisions_granted()
            );
        }
        println!();
    }
}
