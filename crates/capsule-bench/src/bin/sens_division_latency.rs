//! §5 sensitivity study: division latency (the paper simulates division
//! latencies up to 200 cycles — the CMP-porting scenario — and observes
//! less than 1 % average performance variation).
//!
//! Sweeps the register-copy latency charged to a divided child on the
//! division-heavy workloads (mcf has the paper's highest grant rate).

use std::sync::Arc;

use capsule_bench::{scaled, BatchRunner, Scenario};
use capsule_core::config::MachineConfig;
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::spec::Mcf;
use capsule_workloads::{Variant, Workload};

const LATENCIES: [u64; 5] = [0, 25, 50, 100, 200];

fn main() {
    println!("§5 — division-latency sensitivity (paper: <1% variation up to 200 cycles)\n");
    let mcf: Arc<dyn Workload + Send + Sync> = Arc::new(Mcf::standard(scaled(17, 18)));
    let dij: Arc<dyn Workload + Send + Sync> =
        Arc::new(Dijkstra::figure3(7, scaled(250, 1000)));

    let mut scenarios = Vec::new();
    for (name, w) in [("mcf", &mcf), ("dijkstra", &dij)] {
        for lat in LATENCIES {
            let mut cfg = MachineConfig::table1_somt();
            cfg.division_latency = lat;
            scenarios.push(Scenario::new(
                format!("{name}/{lat}"),
                format!("{lat}"),
                cfg,
                Variant::Component,
                Arc::clone(w),
            ));
        }
    }
    let report = BatchRunner::from_env().run("§5 — division-latency sensitivity", scenarios);

    for name in ["mcf", "dijkstra"] {
        let mut base = None;
        println!("{name}:");
        for lat in LATENCIES {
            let o = &report.only(&format!("{name}/{lat}")).outcome;
            let b = *base.get_or_insert(o.cycles());
            let delta = 100.0 * (o.cycles() as f64 - b as f64) / b as f64;
            println!(
                "  latency {lat:>3} cycles: {:>12} cycles  ({delta:+.2}% vs latency 0), {} divisions",
                o.cycles(),
                o.stats.divisions_granted()
            );
        }
        println!();
    }
    report.emit("sens_division_latency");
}
