//! §5 sensitivity study: division latency (the paper simulates division
//! latencies up to 200 cycles — the CMP-porting scenario — and observes
//! less than 1 % average performance variation).
//!
//! Sweeps the register-copy latency charged to a divided child on the
//! division-heavy workloads (mcf has the paper's highest grant rate).

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;

const LATENCIES: [u64; 5] = [0, 25, 50, 100, 200];

fn main() {
    println!("§5 — division-latency sensitivity (paper: <1% variation up to 200 cycles)\n");
    let entry = catalog::find("sens_division_latency").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));

    for name in ["mcf", "dijkstra"] {
        let mut base = None;
        println!("{name}:");
        for lat in LATENCIES {
            let o = &report.only(&format!("{name}/{lat}")).outcome;
            let b = *base.get_or_insert(o.cycles());
            let delta = 100.0 * (o.cycles() as f64 - b as f64) / b as f64;
            println!(
                "  latency {lat:>3} cycles: {:>12} cycles  ({delta:+.2}% vs latency 0), {} divisions",
                o.cycles(),
                o.stats.divisions_granted()
            );
        }
        println!();
    }
    report.emit("sens_division_latency");
}
