//! Figure 5: distribution of execution time for QuickSort over lists of
//! various distributions — superscalar vs static SMT vs component SOMT.
//!
//! The paper uses 500 lists; the default here cycles the five input
//! shapes over a reduced count (`--full` for 500).

use capsule_bench::catalog::{self, Scale};
use capsule_bench::{full_scale, histogram, series, BatchRunner};

fn main() {
    let scale = Scale::from_env();
    let (lists, len) = catalog::fig5_params(scale);
    println!(
        "Figure 5 — QuickSort execution-time distribution ({lists} lists x {len} values{})\n",
        if full_scale() { ", paper scale" } else { ", reduced scale; --full for paper scale" }
    );

    let entry = catalog::find("fig5_quicksort_dist").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(scale));
    let seq = report.group_cycles("superscalar");
    let stat = report.group_cycles("smt_static");
    let comp = report.group_cycles("somt_component");

    if std::env::args().any(|a| a == "--csv") {
        println!("index\tsuperscalar\tsmt_static\tsomt_component");
        for i in 0..seq.len() {
            println!("{i}\t{}\t{}\t{}", seq[i], stat[i], comp[i]);
        }
        return;
    }

    let lo = *comp.iter().min().expect("non-empty");
    let hi = *seq.iter().max().expect("non-empty");
    println!("{}", histogram("superscalar (sequential)", &seq, lo, hi, 12));
    println!("{}", histogram("SMT (statically parallelized)", &stat, lo, hi, 12));
    println!("{}", histogram("SOMT (component)", &comp, lo, hi, 12));

    let (s, t, c) = (series(&seq), series(&stat), series(&comp));
    println!(
        "mean cycles: superscalar {:.0}, SMT-static {:.0}, SOMT-component {:.0}",
        s.mean, t.mean, c.mean
    );
    println!("component speedup vs superscalar: {:.2}x   (paper: 2.93x)", s.mean / c.mean);
    println!("component speedup vs static:      {:.2}x   (paper: 2.51x)", t.mean / c.mean);
    println!(
        "stability (stddev/mean): superscalar {:.2}, static {:.2}, component {:.2}",
        s.stddev / s.mean,
        t.stddev / t.mean,
        c.stddev / c.mean
    );
    report.emit("fig5_quicksort_dist");
}
