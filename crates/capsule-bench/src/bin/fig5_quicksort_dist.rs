//! Figure 5: distribution of execution time for QuickSort over lists of
//! various distributions — superscalar vs static SMT vs component SOMT.
//!
//! The paper uses 500 lists; the default here cycles the five input
//! shapes over a reduced count (`--full` for 500).

use std::sync::Arc;

use capsule_bench::{full_scale, histogram, scaled, series, BatchRunner, Scenario};
use capsule_core::config::MachineConfig;
use capsule_workloads::datasets::{random_list, ListShape};
use capsule_workloads::quicksort::QuickSort;
use capsule_workloads::{Variant, Workload};

fn main() {
    let lists = scaled(25, 500);
    let len = scaled(800, 4000);
    println!(
        "Figure 5 — QuickSort execution-time distribution ({lists} lists x {len} values{})\n",
        if full_scale() { ", paper scale" } else { ", reduced scale; --full for paper scale" }
    );

    let mut scenarios = Vec::new();
    for i in 0..lists {
        let shape = ListShape::ALL[i % ListShape::ALL.len()];
        let w: Arc<dyn Workload + Send + Sync> =
            Arc::new(QuickSort::new(random_list(2000 + i as u64, len, shape)));
        scenarios.push(Scenario::new(
            "superscalar",
            format!("l{i}"),
            MachineConfig::table1_superscalar(),
            Variant::Sequential,
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            "smt_static",
            format!("l{i}"),
            MachineConfig::table1_smt(),
            Variant::Static(8),
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            "somt_component",
            format!("l{i}"),
            MachineConfig::table1_somt(),
            Variant::Component,
            w,
        ));
    }
    let report = BatchRunner::from_env().run("Figure 5 — QuickSort distribution", scenarios);
    let seq = report.group_cycles("superscalar");
    let stat = report.group_cycles("smt_static");
    let comp = report.group_cycles("somt_component");

    if std::env::args().any(|a| a == "--csv") {
        println!("index\tsuperscalar\tsmt_static\tsomt_component");
        for i in 0..seq.len() {
            println!("{i}\t{}\t{}\t{}", seq[i], stat[i], comp[i]);
        }
        return;
    }

    let lo = *comp.iter().min().expect("non-empty");
    let hi = *seq.iter().max().expect("non-empty");
    println!("{}", histogram("superscalar (sequential)", &seq, lo, hi, 12));
    println!("{}", histogram("SMT (statically parallelized)", &stat, lo, hi, 12));
    println!("{}", histogram("SOMT (component)", &comp, lo, hi, 12));

    let (s, t, c) = (series(&seq), series(&stat), series(&comp));
    println!("mean cycles: superscalar {:.0}, SMT-static {:.0}, SOMT-component {:.0}", s.mean, t.mean, c.mean);
    println!("component speedup vs superscalar: {:.2}x   (paper: 2.93x)", s.mean / c.mean);
    println!("component speedup vs static:      {:.2}x   (paper: 2.51x)", t.mean / c.mean);
    println!(
        "stability (stddev/mean): superscalar {:.2}, static {:.2}, component {:.2}",
        s.stddev / s.mean,
        t.stddev / t.mean,
        c.stddev / c.mean
    );
    report.emit("fig5_quicksort_dist");
}
