//! Figure 5: distribution of execution time for QuickSort over lists of
//! various distributions — superscalar vs static SMT vs component SOMT.
//!
//! The paper uses 500 lists; the default here cycles the five input
//! shapes over a reduced count (`--full` for 500).

use capsule_bench::{full_scale, histogram, run_checked, scaled, series};
use capsule_core::config::MachineConfig;
use capsule_workloads::datasets::{random_list, ListShape};
use capsule_workloads::quicksort::QuickSort;
use capsule_workloads::Variant;

fn main() {
    let lists = scaled(25, 500);
    let len = scaled(800, 4000);
    println!(
        "Figure 5 — QuickSort execution-time distribution ({lists} lists x {len} values{})\n",
        if full_scale() { ", paper scale" } else { ", reduced scale; --full for paper scale" }
    );

    let mut seq = Vec::new();
    let mut stat = Vec::new();
    let mut comp = Vec::new();
    for i in 0..lists {
        let shape = ListShape::ALL[i % ListShape::ALL.len()];
        let w = QuickSort::new(random_list(2000 + i as u64, len, shape));
        seq.push(run_checked(MachineConfig::table1_superscalar(), &w, Variant::Sequential).cycles());
        stat.push(run_checked(MachineConfig::table1_smt(), &w, Variant::Static(8)).cycles());
        comp.push(run_checked(MachineConfig::table1_somt(), &w, Variant::Component).cycles());
    }

    if std::env::args().any(|a| a == "--csv") {
        println!("index\tsuperscalar\tsmt_static\tsomt_component");
        for i in 0..seq.len() {
            println!("{i}\t{}\t{}\t{}", seq[i], stat[i], comp[i]);
        }
        return;
    }

    let lo = *comp.iter().min().expect("non-empty");
    let hi = *seq.iter().max().expect("non-empty");
    println!("{}", histogram("superscalar (sequential)", &seq, lo, hi, 12));
    println!("{}", histogram("SMT (statically parallelized)", &stat, lo, hi, 12));
    println!("{}", histogram("SOMT (component)", &comp, lo, hi, 12));

    let (s, t, c) = (series(&seq), series(&stat), series(&comp));
    println!("mean cycles: superscalar {:.0}, SMT-static {:.0}, SOMT-component {:.0}", s.mean, t.mean, c.mean);
    println!("component speedup vs superscalar: {:.2}x   (paper: 2.93x)", s.mean / c.mean);
    println!("component speedup vs static:      {:.2}x   (paper: 2.51x)", t.mean / c.mean);
    println!(
        "stability (stddev/mean): superscalar {:.2}, static {:.2}, component {:.2}",
        s.stddev / s.mean,
        t.stddev / t.mean,
        c.stddev / c.mean
    );
}
