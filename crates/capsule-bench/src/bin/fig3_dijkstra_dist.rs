//! Figure 3: distribution of execution time for Dijkstra over random
//! graphs — superscalar (sequential) vs standard SMT (static) vs SOMT
//! (component).
//!
//! The paper uses 100 graphs of 1000 nodes; the default here runs a
//! reduced set (pass `--full` for the paper-sized sweep). Besides the
//! histograms, the binary reports the §5 headline numbers: component
//! speedup over the static and sequential versions, and the stability
//! (standard deviation) of each distribution.

use std::sync::Arc;

use capsule_bench::{full_scale, histogram, scaled, series, BatchRunner, Scenario};
use capsule_core::config::MachineConfig;
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::{Variant, Workload};

fn main() {
    let graphs = scaled(20, 100);
    let nodes = scaled(250, 1000);
    println!(
        "Figure 3 — Dijkstra execution-time distribution ({graphs} graphs x {nodes} nodes{})\n",
        if full_scale() { ", paper scale" } else { ", reduced scale; --full for paper scale" }
    );

    let mut scenarios = Vec::new();
    for g in 0..graphs {
        let w: Arc<dyn Workload + Send + Sync> =
            Arc::new(Dijkstra::figure3(1000 + g as u64, nodes));
        scenarios.push(Scenario::new(
            "superscalar",
            format!("g{g}"),
            MachineConfig::table1_superscalar(),
            Variant::Sequential,
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            "smt_static",
            format!("g{g}"),
            MachineConfig::table1_smt(),
            Variant::Static(8),
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            "somt_component",
            format!("g{g}"),
            MachineConfig::table1_somt(),
            Variant::Component,
            w,
        ));
    }
    let report = BatchRunner::from_env().run("Figure 3 — Dijkstra distribution", scenarios);
    let seq = report.group_cycles("superscalar");
    let stat = report.group_cycles("smt_static");
    let comp = report.group_cycles("somt_component");

    if std::env::args().any(|a| a == "--csv") {
        println!("index\tsuperscalar\tsmt_static\tsomt_component");
        for i in 0..seq.len() {
            println!("{i}\t{}\t{}\t{}", seq[i], stat[i], comp[i]);
        }
        return;
    }

    let lo = *comp.iter().min().expect("non-empty");
    let hi = *seq.iter().max().expect("non-empty");
    println!("{}", histogram("superscalar (sequential)", &seq, lo, hi, 12));
    println!("{}", histogram("SMT (statically parallelized)", &stat, lo, hi, 12));
    println!("{}", histogram("SOMT (component)", &comp, lo, hi, 12));

    let (s, t, c) = (series(&seq), series(&stat), series(&comp));
    println!("mean cycles: superscalar {:.0}, SMT-static {:.0}, SOMT-component {:.0}", s.mean, t.mean, c.mean);
    println!("component speedup vs superscalar: {:.2}x   (paper: 2.51x)", s.mean / c.mean);
    println!("component speedup vs static:      {:.2}x   (paper: 1.23x)", t.mean / c.mean);
    println!(
        "stability (stddev/mean): superscalar {:.2}, static {:.2}, component {:.2}",
        s.stddev / s.mean,
        t.stddev / t.mean,
        c.stddev / c.mean
    );
    println!("(the paper highlights the component version's tighter distribution)");
    report.emit("fig3_dijkstra_dist");
}
