//! Figure 3: distribution of execution time for Dijkstra over random
//! graphs — superscalar (sequential) vs standard SMT (static) vs SOMT
//! (component).
//!
//! The paper uses 100 graphs of 1000 nodes; the default here runs a
//! reduced set (pass `--full` for the paper-sized sweep). Besides the
//! histograms, the binary reports the §5 headline numbers: component
//! speedup over the static and sequential versions, and the stability
//! (standard deviation) of each distribution.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::{full_scale, histogram, series, BatchRunner};

fn main() {
    let scale = Scale::from_env();
    let (graphs, nodes) = catalog::fig3_params(scale);
    println!(
        "Figure 3 — Dijkstra execution-time distribution ({graphs} graphs x {nodes} nodes{})\n",
        if full_scale() { ", paper scale" } else { ", reduced scale; --full for paper scale" }
    );

    let entry = catalog::find("fig3_dijkstra_dist").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(scale));
    let seq = report.group_cycles("superscalar");
    let stat = report.group_cycles("smt_static");
    let comp = report.group_cycles("somt_component");

    if std::env::args().any(|a| a == "--csv") {
        println!("index\tsuperscalar\tsmt_static\tsomt_component");
        for i in 0..seq.len() {
            println!("{i}\t{}\t{}\t{}", seq[i], stat[i], comp[i]);
        }
        return;
    }

    let lo = *comp.iter().min().expect("non-empty");
    let hi = *seq.iter().max().expect("non-empty");
    println!("{}", histogram("superscalar (sequential)", &seq, lo, hi, 12));
    println!("{}", histogram("SMT (statically parallelized)", &stat, lo, hi, 12));
    println!("{}", histogram("SOMT (component)", &comp, lo, hi, 12));

    let (s, t, c) = (series(&seq), series(&stat), series(&comp));
    println!(
        "mean cycles: superscalar {:.0}, SMT-static {:.0}, SOMT-component {:.0}",
        s.mean, t.mean, c.mean
    );
    println!("component speedup vs superscalar: {:.2}x   (paper: 2.51x)", s.mean / c.mean);
    println!("component speedup vs static:      {:.2}x   (paper: 1.23x)", t.mean / c.mean);
    println!(
        "stability (stddev/mean): superscalar {:.2}, static {:.2}, component {:.2}",
        s.stddev / s.mean,
        t.stddev / t.mean,
        c.stddev / c.mean
    );
    println!("(the paper highlights the component version's tighter distribution)");
    report.emit("fig3_dijkstra_dist");
}
