//! Table 3: percentage and rate of successful divisions for mcf, vpr and
//! bzip2 on the 8-context SOMT.
//!
//! The paper's columns: divisions requested, divisions allowed, the
//! percentage allowed, and the number of committed instructions per
//! allowed division.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;

fn main() {
    println!("Table 3 — percentage and rate of successful divisions (SOMT)\n");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>16} {:>14}",
        "bench", "requested", "allowed", "% allowed", "insts/division", "paper"
    );

    let entry = catalog::find("table3_divisions").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));

    for (name, paper) in [("mcf", "40% / 3.7K"), ("vpr", "4% / 4.5M"), ("bzip2", "6% / 30M")] {
        let o = &report.only(name).outcome;
        let ipd = o.stats.insts_per_division().map_or("-".to_string(), |v| format!("{v:.0}"));
        println!(
            "{name:<8} {:>12} {:>12} {:>9.0}% {:>16} {:>14}",
            o.stats.divisions_requested,
            o.stats.divisions_granted(),
            100.0 * o.stats.grant_rate(),
            ipd,
            paper
        );
    }
    println!("\n(the paper's absolute rates depend on SPEC input sizes; the ordering —");
    println!(" mcf grants often at fine grain, vpr/bzip2 rarely — is the reproducible shape)");
    report.emit("table3_divisions");
}
