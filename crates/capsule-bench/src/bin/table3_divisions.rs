//! Table 3: percentage and rate of successful divisions for mcf, vpr and
//! bzip2 on the 8-context SOMT.
//!
//! The paper's columns: divisions requested, divisions allowed, the
//! percentage allowed, and the number of committed instructions per
//! allowed division.

use capsule_bench::{run_checked, scaled};
use capsule_core::config::MachineConfig;
use capsule_workloads::spec::{Bzip2, Mcf, Vpr};
use capsule_workloads::{Variant, Workload};

fn main() {
    println!("Table 3 — percentage and rate of successful divisions (SOMT)\n");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>16} {:>14}",
        "bench", "requested", "allowed", "% allowed", "insts/division", "paper"
    );

    let mcf = Mcf::standard(scaled(17, 18));
    let vpr = Vpr::standard(19, scaled(10, 14), scaled(6, 10), 2);
    let bzip2 = Bzip2::standard(23, scaled(280, 700));
    let rows: [(&str, &dyn Workload, &str); 3] = [
        ("mcf", &mcf, "40% / 3.7K"),
        ("vpr", &vpr, "4% / 4.5M"),
        ("bzip2", &bzip2, "6% / 30M"),
    ];

    for (name, w, paper) in rows {
        let o = run_checked(MachineConfig::table1_somt(), w, Variant::Component);
        let ipd = o
            .stats
            .insts_per_division()
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        println!(
            "{name:<8} {:>12} {:>12} {:>9.0}% {:>16} {:>14}",
            o.stats.divisions_requested,
            o.stats.divisions_granted(),
            100.0 * o.stats.grant_rate(),
            ipd,
            paper
        );
    }
    println!("\n(the paper's absolute rates depend on SPEC input sizes; the ordering —");
    println!(" mcf grants often at fine grain, vpr/bzip2 rarely — is the reproducible shape)");
}
