//! Table 3: percentage and rate of successful divisions for mcf, vpr and
//! bzip2 on the 8-context SOMT.
//!
//! The paper's columns: divisions requested, divisions allowed, the
//! percentage allowed, and the number of committed instructions per
//! allowed division.

use std::sync::Arc;

use capsule_bench::{scaled, BatchRunner, Scenario};
use capsule_core::config::MachineConfig;
use capsule_workloads::spec::{Bzip2, Mcf, Vpr};
use capsule_workloads::{Variant, Workload};

fn main() {
    println!("Table 3 — percentage and rate of successful divisions (SOMT)\n");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>16} {:>14}",
        "bench", "requested", "allowed", "% allowed", "insts/division", "paper"
    );

    let rows: [(&str, Arc<dyn Workload + Send + Sync>, &str); 3] = [
        ("mcf", Arc::new(Mcf::standard(scaled(17, 18))), "40% / 3.7K"),
        ("vpr", Arc::new(Vpr::standard(19, scaled(10, 14), scaled(6, 10), 2)), "4% / 4.5M"),
        ("bzip2", Arc::new(Bzip2::standard(23, scaled(280, 700))), "6% / 30M"),
    ];

    let scenarios = rows
        .iter()
        .map(|(name, w, _)| {
            Scenario::new(
                *name,
                "component",
                MachineConfig::table1_somt(),
                Variant::Component,
                Arc::clone(w),
            )
        })
        .collect();
    let report = BatchRunner::from_env().run("Table 3 — division rates", scenarios);

    for (name, _, paper) in &rows {
        let o = &report.only(name).outcome;
        let ipd = o
            .stats
            .insts_per_division()
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        println!(
            "{name:<8} {:>12} {:>12} {:>9.0}% {:>16} {:>14}",
            o.stats.divisions_requested,
            o.stats.divisions_granted(),
            100.0 * o.stats.grant_rate(),
            ipd,
            paper
        );
    }
    println!("\n(the paper's absolute rates depend on SPEC input sizes; the ordering —");
    println!(" mcf grants often at fine grain, vpr/bzip2 rarely — is the reproducible shape)");
    report.emit("table3_divisions");
}
