//! Timeline exporter: runs one catalog entry with CAPSULE-event tracing
//! enabled and writes a Chrome trace-event JSON file per scenario —
//! load the output in `chrome://tracing` or <https://ui.perfetto.dev>
//! to see the division tree, denials, swaps, locks and sections of a
//! real run on one lane per hardware context.
//!
//! ```text
//! capsule-trace ENTRY [--scale smoke|quick|full] [--out DIR] [--limit N]
//! ```
//!
//! - `ENTRY` — a catalog entry name (`capsule-trace --list` prints them).
//! - `--scale` — data-set scale (default `smoke`).
//! - `--out DIR` — output directory (default `target/capsule-traces`).
//! - `--limit N` — per-run trace retention limit in events (default
//!   200000); overflow is counted and reported, never silent.
//!
//! Tracing is observation-only: the simulated outcomes of a traced run
//! are byte-identical to an untraced one (pinned by the golden tests).

use std::path::PathBuf;

use capsule_bench::catalog::{self, Scale};
use capsule_bench::trace_export::export_batch;
use capsule_bench::{BatchRunner, RunOptions, BUDGET};

struct Args {
    entry: String,
    scale: Scale,
    out: PathBuf,
    limit: usize,
}

fn usage_and_exit(code: i32) -> ! {
    eprintln!("usage: capsule-trace ENTRY [--scale smoke|quick|full] [--out DIR] [--limit N]");
    eprintln!("       capsule-trace --list");
    std::process::exit(code);
}

fn parse_args() -> Args {
    let mut entry: Option<String> = None;
    let mut scale = Scale::Smoke;
    let mut out = PathBuf::from("target/capsule-traces");
    let mut limit = 200_000usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--list" => {
                for e in catalog::entries() {
                    println!("{:<24} {}", e.name, e.about);
                }
                std::process::exit(0);
            }
            "--scale" => {
                let v = value("--scale");
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?} (smoke|quick|full)");
                    std::process::exit(2);
                });
            }
            "--out" => out = PathBuf::from(value("--out")),
            "--limit" => {
                let v = value("--limit");
                limit = v.parse().unwrap_or_else(|_| {
                    eprintln!("--limit wants a positive integer, got {v:?}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => usage_and_exit(0),
            other if entry.is_none() && !other.starts_with('-') => entry = Some(other.to_string()),
            other => {
                eprintln!("unknown argument {other:?}");
                usage_and_exit(2);
            }
        }
    }
    let Some(entry) = entry else { usage_and_exit(2) };
    Args { entry, scale, out, limit }
}

fn main() {
    let args = parse_args();
    let Some(entry) = catalog::find(&args.entry) else {
        eprintln!("unknown entry {:?}; known entries:", args.entry);
        for name in catalog::names() {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    };

    let scenarios = entry.scenarios(args.scale);
    let contexts: Vec<usize> = scenarios.iter().map(|s| s.config.contexts).collect();
    println!(
        "{}: {} scenario(s) at {} scale, trace limit {} events",
        entry.name,
        scenarios.len(),
        args.scale.name(),
        args.limit
    );

    let opts = RunOptions { profile: true, trace: Some(args.limit) };
    let report = BatchRunner::from_env()
        .try_run_opts(entry.title, scenarios, BUDGET, None, opts)
        .unwrap_or_else(|e| {
            eprintln!("batch failed: {e}");
            std::process::exit(1);
        });

    let written = export_batch(&args.out, entry.name, &report, &contexts).unwrap_or_else(|e| {
        eprintln!("cannot write traces to {}: {e}", args.out.display());
        std::process::exit(1);
    });
    for w in &written {
        let dropped =
            if w.dropped > 0 { format!("  ({} dropped)", w.dropped) } else { String::new() };
        println!("  {:>8} events  {}{dropped}", w.events, w.path.display());
    }
    println!("wrote {} timeline file(s); open them in chrome://tracing or Perfetto", written.len());
}
