//! Simulator-throughput benchmark: host wall-clock and simulated cycles
//! per host second, per catalog entry.
//!
//! Unlike the figure/table binaries (which report *simulated* quantities
//! only), this mode measures the simulator itself: how fast the host
//! churns through simulated cycles. It drives every catalog entry at a
//! chosen scale through the shared [`BatchRunner`] and writes
//! `BENCH_sim.json` (`capsule-bench-sim/1`), the tracked record of the
//! perf trajectory. See docs/PERF.md.
//!
//! ```text
//! bench_sim [--scale smoke|quick|full] [--out PATH] [--baseline PATH]
//!           [--compare PATH] [--noise FRAC] [--entries a,b,c]
//!           [--reports DIR] [--deterministic] [--trace-export DIR]
//! ```
//!
//! - `--baseline PATH` folds a previous `BENCH_sim.json` in: each entry
//!   gains `baseline_wall_ms` and `speedup` (baseline / current).
//! - `--compare PATH` gates on a previous `BENCH_sim.json`: prints a
//!   per-entry `sim_cycles_per_sec` speedup table and exits nonzero if
//!   any entry regressed beyond the `--noise` fraction (default 0.15,
//!   i.e. current throughput below 85% of the baseline fails). The
//!   output file is still written before the gate exits.
//! - `--reports DIR` additionally writes each entry's deterministic
//!   `capsule-bench-report/1` JSON to `DIR/<entry>.json`, for
//!   byte-identical parity checks across simulator changes.
//! - `--deterministic` omits every host-timing field from the output so
//!   two runs of the same build produce byte-identical JSON (the CI
//!   determinism smoke).
//! - `--trace-export DIR` runs every scenario with CAPSULE-event tracing
//!   on and writes one Chrome trace-event JSON per scenario to `DIR`
//!   (see docs/OBSERVABILITY.md). Reports and simulated numbers are
//!   unaffected — tracing is observation-only — but host wall-clock
//!   times include the recording cost, so don't compare a traced run's
//!   `wall_ms` against an untraced baseline.

use std::time::Instant;

use capsule_bench::benchfile::{compare_field, read_entry_field, round3};
use capsule_bench::catalog::{self, Scale};
use capsule_bench::trace_export::export_batch;
use capsule_bench::{BatchRunner, RunOptions, BUDGET};
use capsule_core::output::Json;

struct EntryResult {
    name: &'static str,
    scenarios: usize,
    sim_cycles: u64,
    wall_ms: f64,
}

struct Args {
    scale: Scale,
    out: String,
    baseline: Option<String>,
    compare: Option<String>,
    noise: f64,
    entries: Option<Vec<String>>,
    reports: Option<String>,
    deterministic: bool,
    trace_export: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Quick,
        out: "BENCH_sim.json".to_string(),
        baseline: None,
        compare: None,
        noise: 0.15,
        entries: None,
        reports: None,
        deterministic: false,
        trace_export: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--scale" => {
                let v = value("--scale");
                args.scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?} (smoke|quick|full)");
                    std::process::exit(2);
                });
            }
            "--out" => args.out = value("--out"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--compare" => args.compare = Some(value("--compare")),
            "--noise" => {
                let v = value("--noise");
                args.noise = v.parse().unwrap_or_else(|_| {
                    eprintln!("--noise needs a fraction (e.g. 0.15), got {v:?}");
                    std::process::exit(2);
                });
            }
            "--reports" => args.reports = Some(value("--reports")),
            "--entries" => {
                args.entries =
                    Some(value("--entries").split(',').map(|s| s.trim().to_string()).collect());
            }
            "--deterministic" => args.deterministic = true,
            "--trace-export" => args.trace_export = Some(value("--trace-export")),
            "--full" => args.scale = Scale::Full, // parity with the figure binaries
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let runner = BatchRunner::from_env();
    let mut results: Vec<EntryResult> = Vec::new();

    println!("simulator throughput, {} scale, {} worker(s)\n", args.scale.name(), runner.workers());
    println!(
        "  {:<24} {:>5} {:>14} {:>10} {:>14}",
        "entry", "runs", "sim cycles", "wall ms", "cycles/sec"
    );
    for entry in catalog::entries() {
        if let Some(filter) = &args.entries {
            if !filter.iter().any(|f| f == entry.name) {
                continue;
            }
        }
        let scenarios = entry.scenarios(args.scale);
        let n = scenarios.len();
        let contexts: Vec<usize> = scenarios.iter().map(|s| s.config.contexts).collect();
        let opts =
            RunOptions { profile: false, trace: args.trace_export.as_ref().map(|_| 200_000usize) };
        let start = Instant::now();
        let report = runner
            .try_run_opts(entry.title, scenarios, BUDGET, None, opts)
            .unwrap_or_else(|e| panic!("batch failed: {e}"));
        let wall = start.elapsed();
        let sim_cycles: u64 = report.records.iter().map(|r| r.outcome.cycles()).sum();
        let wall_ms = wall.as_secs_f64() * 1e3;
        let per_sec = sim_cycles as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "  {:<24} {:>5} {:>14} {:>10.1} {:>14.0}",
            entry.name, n, sim_cycles, wall_ms, per_sec
        );
        if let Some(dir) = &args.reports {
            std::fs::create_dir_all(dir).expect("create reports dir");
            let path = format!("{dir}/{}.json", entry.name);
            std::fs::write(&path, report.to_json().to_string_pretty()).expect("write report");
        }
        if let Some(dir) = &args.trace_export {
            let written = export_batch(std::path::Path::new(dir), entry.name, &report, &contexts)
                .expect("write chrome traces");
            for w in &written {
                println!(
                    "    trace: {} ({} events, {} dropped)",
                    w.path.display(),
                    w.events,
                    w.dropped
                );
            }
        }
        results.push(EntryResult { name: entry.name, scenarios: n, sim_cycles, wall_ms });
    }

    let baseline = args.baseline.as_deref().map(|p| read_entry_field(p, "wall_ms"));
    let mut root = Json::object();
    root.push("schema", "capsule-bench-sim/1");
    root.push("scale", args.scale.name());
    let mut rows = Vec::with_capacity(results.len());
    let mut total_wall = 0.0;
    let mut improved = 0usize;
    let mut compared = 0usize;
    for r in &results {
        let mut row = Json::object();
        row.push("entry", r.name).push("scenarios", r.scenarios).push("sim_cycles", r.sim_cycles);
        if !args.deterministic {
            let secs = r.wall_ms / 1e3;
            row.push("wall_ms", round3(r.wall_ms))
                .push("sim_cycles_per_sec", round3(r.sim_cycles as f64 / secs.max(1e-9)));
            if let Some(base) = &baseline {
                if let Some((_, base_ms)) = base.iter().find(|(n, _)| n == r.name) {
                    compared += 1;
                    let speedup = base_ms / r.wall_ms.max(1e-9);
                    if speedup >= 1.3 {
                        improved += 1;
                    }
                    row.push("baseline_wall_ms", round3(*base_ms)).push("speedup", round3(speedup));
                }
            }
        }
        total_wall += r.wall_ms;
        rows.push(row);
    }
    root.push("entries", Json::Array(rows));
    if !args.deterministic {
        root.push("total_wall_ms", round3(total_wall));
    }
    if compared > 0 {
        println!(
            "\n{improved}/{compared} entries at >= 1.3x speedup over {}",
            args.baseline.as_deref().unwrap_or("?")
        );
    }
    std::fs::write(&args.out, root.to_string_pretty()).expect("write BENCH_sim.json");
    println!("\nwrote {}", args.out);

    if let Some(path) = &args.compare {
        let current: Vec<(String, f64)> = results
            .iter()
            .map(|r| (r.name.to_string(), r.sim_cycles as f64 / (r.wall_ms / 1e3).max(1e-9)))
            .collect();
        if compare_field(path, "sim_cycles_per_sec", "c/s", args.noise, &current) > 0 {
            std::process::exit(1);
        }
    }
}
