//! §5 vpr cache study: "The parallel version is memory bandwidth-limited,
//! so doubling cache size and cache ports improves the speedup of a
//! single iteration from 2.47 to 3.5, and the overall speedup to 3.0."
//!
//! Runs the vpr analog on the Table 1 SOMT and on a SOMT with doubled
//! L1-D/L2 capacity and ports, both against the matching superscalar.

use capsule_bench::{run_checked, scaled};
use capsule_core::config::MachineConfig;
use capsule_workloads::spec::Vpr;
use capsule_workloads::Variant;

fn main() {
    println!("§5 — vpr cache sensitivity (paper: overall speedup 2.47 -> 3.0 with 2x cache)\n");
    // A larger grid than the Figure 8 default makes vpr properly
    // cache-hungry.
    let w = Vpr::standard(19, scaled(16, 24), scaled(8, 12), 2);

    for (name, double) in [("Table 1 caches", false), ("2x size + 2x ports", true)] {
        let mut scalar_cfg = MachineConfig::table1_superscalar();
        let mut somt_cfg = MachineConfig::table1_somt();
        if double {
            for cfg in [&mut scalar_cfg, &mut somt_cfg] {
                cfg.l1d = cfg.l1d.doubled();
                cfg.l2 = cfg.l2.doubled();
            }
        }
        let scalar = run_checked(scalar_cfg, &w, Variant::Sequential);
        let somt = run_checked(somt_cfg, &w, Variant::Component);
        println!("{name}:");
        println!(
            "  superscalar {:>12} cycles (L1D miss {:.1}%, L2 miss {:.1}%)",
            scalar.cycles(),
            100.0 * scalar.l1d.miss_rate(),
            100.0 * scalar.l2.miss_rate()
        );
        println!(
            "  SOMT        {:>12} cycles (L1D miss {:.1}%, L2 miss {:.1}%)",
            somt.cycles(),
            100.0 * somt.l1d.miss_rate(),
            100.0 * somt.l2.miss_rate()
        );
        println!("  speedup     {:>11.2}x\n", scalar.cycles() as f64 / somt.cycles() as f64);
    }
}
