//! §5 vpr cache study: "The parallel version is memory bandwidth-limited,
//! so doubling cache size and cache ports improves the speedup of a
//! single iteration from 2.47 to 3.5, and the overall speedup to 3.0."
//!
//! Runs the vpr analog on the Table 1 SOMT and on a SOMT with doubled
//! L1-D/L2 capacity and ports, both against the matching superscalar.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;

fn main() {
    println!("§5 — vpr cache sensitivity (paper: overall speedup 2.47 -> 3.0 with 2x cache)\n");
    let entry = catalog::find("sens_vpr_cache").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));

    for (name, tag) in [("Table 1 caches", "base"), ("2x size + 2x ports", "doubled")] {
        let scalar = &report.only(&format!("{tag}/scalar")).outcome;
        let somt = &report.only(&format!("{tag}/somt")).outcome;
        println!("{name}:");
        println!(
            "  superscalar {:>12} cycles (L1D miss {:.1}%, L2 miss {:.1}%)",
            scalar.cycles(),
            100.0 * scalar.l1d.miss_rate(),
            100.0 * scalar.l2.miss_rate()
        );
        println!(
            "  SOMT        {:>12} cycles (L1D miss {:.1}%, L2 miss {:.1}%)",
            somt.cycles(),
            100.0 * somt.l1d.miss_rate(),
            100.0 * somt.l2.miss_rate()
        );
        println!("  speedup     {:>11.2}x\n", scalar.cycles() as f64 / somt.cycles() as f64);
    }
    report.emit("sens_vpr_cache");
}
