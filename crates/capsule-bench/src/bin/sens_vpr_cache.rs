//! §5 vpr cache study: "The parallel version is memory bandwidth-limited,
//! so doubling cache size and cache ports improves the speedup of a
//! single iteration from 2.47 to 3.5, and the overall speedup to 3.0."
//!
//! Runs the vpr analog on the Table 1 SOMT and on a SOMT with doubled
//! L1-D/L2 capacity and ports, both against the matching superscalar.

use std::sync::Arc;

use capsule_bench::{scaled, BatchRunner, Scenario};
use capsule_core::config::MachineConfig;
use capsule_workloads::spec::Vpr;
use capsule_workloads::{Variant, Workload};

fn main() {
    println!("§5 — vpr cache sensitivity (paper: overall speedup 2.47 -> 3.0 with 2x cache)\n");
    // A larger grid than the Figure 8 default makes vpr properly
    // cache-hungry.
    let w: Arc<dyn Workload + Send + Sync> =
        Arc::new(Vpr::standard(19, scaled(16, 24), scaled(8, 12), 2));

    let mut scenarios = Vec::new();
    for (tag, double) in [("base", false), ("doubled", true)] {
        let mut scalar_cfg = MachineConfig::table1_superscalar();
        let mut somt_cfg = MachineConfig::table1_somt();
        if double {
            for cfg in [&mut scalar_cfg, &mut somt_cfg] {
                cfg.l1d = cfg.l1d.doubled();
                cfg.l2 = cfg.l2.doubled();
            }
        }
        scenarios.push(Scenario::new(
            format!("{tag}/scalar"),
            tag,
            scalar_cfg,
            Variant::Sequential,
            Arc::clone(&w),
        ));
        scenarios.push(Scenario::new(
            format!("{tag}/somt"),
            tag,
            somt_cfg,
            Variant::Component,
            Arc::clone(&w),
        ));
    }
    let report = BatchRunner::from_env().run("§5 — vpr cache sensitivity", scenarios);

    for (name, tag) in [("Table 1 caches", "base"), ("2x size + 2x ports", "doubled")] {
        let scalar = &report.only(&format!("{tag}/scalar")).outcome;
        let somt = &report.only(&format!("{tag}/somt")).outcome;
        println!("{name}:");
        println!(
            "  superscalar {:>12} cycles (L1D miss {:.1}%, L2 miss {:.1}%)",
            scalar.cycles(),
            100.0 * scalar.l1d.miss_rate(),
            100.0 * scalar.l2.miss_rate()
        );
        println!(
            "  SOMT        {:>12} cycles (L1D miss {:.1}%, L2 miss {:.1}%)",
            somt.cycles(),
            100.0 * somt.l1d.miss_rate(),
            100.0 * somt.l2.miss_rate()
        );
        println!("  speedup     {:>11.2}x\n", scalar.cycles() as f64 / somt.cycles() as f64);
    }
    report.emit("sens_vpr_cache");
}
