//! Table 2: componentization statistics of the SPEC CINT2000 analogs.
//!
//! The paper's line/function counts describe their C-source edits; the
//! reproducible column is the share of total execution time spent in the
//! componentized subgraph, which this binary measures on the superscalar
//! baseline (the paper's fractions are properties of the original serial
//! programs). The source-edit columns are reprinted from the paper for
//! reference.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;
use capsule_workloads::spec::KERNEL_SECTION;

fn main() {
    println!("Table 2 — SPEC CINT2000 componentization\n");
    println!(
        "{:<12} {:>22} {:>20} {:>12} {:>10}",
        "benchmark", "paper lines modified", "paper functions", "paper %", "measured %"
    );

    let entry = catalog::find("table2_componentization").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));

    let rows = [
        ("181.mcf", "174 / 2412", "2", "45%"),
        ("175.vpr", "624 / 17729", "10", "93%"),
        ("256.bzip2", "317 / 4649", "3", "20%"),
        ("186.crafty", "201 / 45000", "8", "100%"),
    ];
    for (name, lines, funcs, paper) in rows {
        let o = &report.only(name).outcome;
        let pct = 100.0 * o.sections.section_fraction(KERNEL_SECTION, o.cycles());
        println!("{name:<12} {lines:>22} {funcs:>20} {paper:>12} {pct:>9.0}%");
    }
    println!("\n(measured % = cycles inside mark.start/mark.end over total, sequential run)");
    report.emit("table2_componentization");
}
