//! Table 2: componentization statistics of the SPEC CINT2000 analogs.
//!
//! The paper's line/function counts describe their C-source edits; the
//! reproducible column is the share of total execution time spent in the
//! componentized subgraph, which this binary measures on the superscalar
//! baseline (the paper's fractions are properties of the original serial
//! programs). The source-edit columns are reprinted from the paper for
//! reference.

use capsule_bench::{run_checked, scaled};
use capsule_core::config::MachineConfig;
use capsule_workloads::spec::{Bzip2, Crafty, Mcf, Vpr, KERNEL_SECTION};
use capsule_workloads::{Variant, Workload};

fn main() {
    println!("Table 2 — SPEC CINT2000 componentization\n");
    println!(
        "{:<12} {:>22} {:>20} {:>12} {:>10}",
        "benchmark", "paper lines modified", "paper functions", "paper %", "measured %"
    );

    let mcf = Mcf::standard(scaled(17, 18));
    let vpr = Vpr::standard(19, scaled(10, 14), scaled(6, 10), 2);
    let bzip2 = Bzip2::standard(23, scaled(280, 700));
    let crafty = Crafty::standard(29, 8);
    let rows: [(&str, &dyn Workload, &str, &str, &str); 4] = [
        ("181.mcf", &mcf, "174 / 2412", "2", "45%"),
        ("175.vpr", &vpr, "624 / 17729", "10", "93%"),
        ("256.bzip2", &bzip2, "317 / 4649", "3", "20%"),
        ("186.crafty", &crafty, "201 / 45000", "8", "100%"),
    ];

    for (name, w, lines, funcs, paper) in rows {
        let o = run_checked(MachineConfig::table1_superscalar(), w, Variant::Sequential);
        let pct = 100.0 * o.sections.section_fraction(KERNEL_SECTION, o.cycles());
        println!("{name:<12} {lines:>22} {funcs:>20} {paper:>12} {pct:>9.0}%");
    }
    println!("\n(measured % = cycles inside mark.start/mark.end over total, sequential run)");
}
