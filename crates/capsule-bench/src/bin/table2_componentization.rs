//! Table 2: componentization statistics of the SPEC CINT2000 analogs.
//!
//! The paper's line/function counts describe their C-source edits; the
//! reproducible column is the share of total execution time spent in the
//! componentized subgraph, which this binary measures on the superscalar
//! baseline (the paper's fractions are properties of the original serial
//! programs). The source-edit columns are reprinted from the paper for
//! reference.

use std::sync::Arc;

use capsule_bench::{scaled, BatchRunner, Scenario};
use capsule_core::config::MachineConfig;
use capsule_workloads::spec::{Bzip2, Crafty, Mcf, Vpr, KERNEL_SECTION};
use capsule_workloads::{Variant, Workload};

type Row = (&'static str, Arc<dyn Workload + Send + Sync>, &'static str, &'static str, &'static str);

fn main() {
    println!("Table 2 — SPEC CINT2000 componentization\n");
    println!(
        "{:<12} {:>22} {:>20} {:>12} {:>10}",
        "benchmark", "paper lines modified", "paper functions", "paper %", "measured %"
    );

    let rows: [Row; 4] = [
        ("181.mcf", Arc::new(Mcf::standard(scaled(17, 18))), "174 / 2412", "2", "45%"),
        (
            "175.vpr",
            Arc::new(Vpr::standard(19, scaled(10, 14), scaled(6, 10), 2)),
            "624 / 17729",
            "10",
            "93%",
        ),
        ("256.bzip2", Arc::new(Bzip2::standard(23, scaled(280, 700))), "317 / 4649", "3", "20%"),
        ("186.crafty", Arc::new(Crafty::standard(29, 8)), "201 / 45000", "8", "100%"),
    ];

    let scenarios = rows
        .iter()
        .map(|(name, w, ..)| {
            Scenario::new(
                *name,
                "sequential",
                MachineConfig::table1_superscalar(),
                Variant::Sequential,
                Arc::clone(w),
            )
        })
        .collect();
    let report = BatchRunner::from_env().run("Table 2 — componentization", scenarios);

    for (name, _, lines, funcs, paper) in &rows {
        let o = &report.only(name).outcome;
        let pct = 100.0 * o.sections.section_fraction(KERNEL_SECTION, o.cycles());
        println!("{name:<12} {lines:>22} {funcs:>20} {paper:>12} {pct:>9.0}%");
    }
    println!("\n(measured % = cycles inside mark.start/mark.end over total, sequential run)");
    report.emit("table2_componentization");
}
