//! Figure 8: overall and componentized-section speedups of the
//! re-engineered SPEC CINT2000 analogs on the 8-context SOMT versus a
//! superscalar with the same resources, plus the share of execution
//! spent in componentized sections (also Table 2's right column).

use std::sync::Arc;

use capsule_bench::{full_scale, scaled, BatchRunner, Scenario};
use capsule_core::config::MachineConfig;
use capsule_workloads::spec::{Bzip2, Crafty, Mcf, Vpr, KERNEL_SECTION};
use capsule_workloads::{Variant, Workload};

fn main() {
    println!(
        "Figure 8 — SPEC CINT2000 analog speedups (SOMT vs superscalar){}\n",
        if full_scale() { " (paper scale)" } else { " (reduced scale; --full for paper scale)" }
    );

    let workloads: [(&str, Arc<dyn Workload + Send + Sync>, &str); 4] = [
        ("mcf", Arc::new(Mcf::standard(scaled(17, 18))), "45%"),
        ("vpr", Arc::new(Vpr::standard(19, scaled(10, 14), scaled(6, 10), 2)), "93%"),
        ("bzip2", Arc::new(Bzip2::standard(23, scaled(280, 700))), "20%"),
        ("crafty", Arc::new(Crafty::standard(29, 8)), "100%"),
    ];

    let mut scenarios = Vec::new();
    for (name, w, _) in &workloads {
        // crafty has no sequential rewrite in the paper either; its
        // baseline is the pool-of-one on the superscalar.
        scenarios.push(Scenario::new(
            format!("{name}/scalar"),
            "scalar",
            MachineConfig::table1_superscalar(),
            Variant::Sequential,
            Arc::clone(w),
        ));
        scenarios.push(Scenario::new(
            format!("{name}/somt"),
            "somt",
            MachineConfig::table1_somt(),
            Variant::Component,
            Arc::clone(w),
        ));
    }
    let report = BatchRunner::from_env().run("Figure 8 — SPEC analog speedups", scenarios);

    println!(
        "{:<8} {:>14} {:>14} {:>9} {:>9} {:>11} {:>8}",
        "bench", "scalar cyc", "somt cyc", "overall", "kernel", "%component", "paper %"
    );
    for (name, _, paper_pct) in &workloads {
        let scalar = &report.only(&format!("{name}/scalar")).outcome;
        let somt = &report.only(&format!("{name}/somt")).outcome;

        let overall = scalar.cycles() as f64 / somt.cycles() as f64;
        // kernel speedup: componentized-section cycles on each machine
        let k_scalar = scalar.sections.section_cycles(KERNEL_SECTION);
        let k_somt = somt.sections.section_cycles(KERNEL_SECTION);
        let kernel = k_scalar as f64 / k_somt.max(1) as f64;
        let pct = 100.0 * scalar.sections.section_fraction(KERNEL_SECTION, scalar.cycles());
        println!(
            "{name:<8} {:>14} {:>14} {:>8.2}x {:>8.2}x {:>10.0}% {:>8}",
            scalar.cycles(),
            somt.cycles(),
            overall,
            kernel,
            pct,
            paper_pct
        );
    }
    println!("\n(paper Figure 8: overall speedups between 1.1 and 3.0; crafty 1.7)");
    report.emit("fig8_spec_speedups");
}
