//! Figure 8: overall and componentized-section speedups of the
//! re-engineered SPEC CINT2000 analogs on the 8-context SOMT versus a
//! superscalar with the same resources, plus the share of execution
//! spent in componentized sections (also Table 2's right column).

use capsule_bench::{full_scale, run_checked, scaled};
use capsule_core::config::MachineConfig;
use capsule_workloads::spec::{Bzip2, Crafty, Mcf, Vpr, KERNEL_SECTION};
use capsule_workloads::{Variant, Workload};

fn main() {
    println!(
        "Figure 8 — SPEC CINT2000 analog speedups (SOMT vs superscalar){}\n",
        if full_scale() { " (paper scale)" } else { " (reduced scale; --full for paper scale)" }
    );

    let mcf = Mcf::standard(scaled(17, 18));
    let vpr = Vpr::standard(19, scaled(10, 14), scaled(6, 10), 2);
    let bzip2 = Bzip2::standard(23, scaled(280, 700));
    let crafty = Crafty::standard(29, 8);
    let workloads: [(&str, &dyn Workload, &str); 4] = [
        ("mcf", &mcf, "45%"),
        ("vpr", &vpr, "93%"),
        ("bzip2", &bzip2, "20%"),
        ("crafty", &crafty, "100%"),
    ];

    println!(
        "{:<8} {:>14} {:>14} {:>9} {:>9} {:>11} {:>8}",
        "bench", "scalar cyc", "somt cyc", "overall", "kernel", "%component", "paper %"
    );
    for (name, w, paper_pct) in workloads {
        // crafty has no sequential rewrite in the paper either; its
        // baseline is the pool-of-one on the superscalar.
        let seq_variant = Variant::Sequential;
        let scalar = run_checked(MachineConfig::table1_superscalar(), w, seq_variant);
        let somt = run_checked(MachineConfig::table1_somt(), w, Variant::Component);

        let overall = scalar.cycles() as f64 / somt.cycles() as f64;
        // kernel speedup: componentized-section cycles on each machine
        let k_scalar = scalar.sections.section_cycles(KERNEL_SECTION);
        let k_somt = somt.sections.section_cycles(KERNEL_SECTION);
        let kernel = k_scalar as f64 / k_somt.max(1) as f64;
        let pct = 100.0 * scalar.sections.section_fraction(KERNEL_SECTION, scalar.cycles());
        println!(
            "{name:<8} {:>14} {:>14} {:>8.2}x {:>8.2}x {:>10.0}% {:>8}",
            scalar.cycles(),
            somt.cycles(),
            overall,
            kernel,
            pct,
            paper_pct
        );
    }
    println!("\n(paper Figure 8: overall speedups between 1.1 and 3.0; crafty 1.7)");
}
