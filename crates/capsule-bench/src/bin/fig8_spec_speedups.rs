//! Figure 8: overall and componentized-section speedups of the
//! re-engineered SPEC CINT2000 analogs on the 8-context SOMT versus a
//! superscalar with the same resources, plus the share of execution
//! spent in componentized sections (also Table 2's right column).

use capsule_bench::catalog::{self, Scale};
use capsule_bench::{full_scale, BatchRunner};
use capsule_workloads::spec::KERNEL_SECTION;

fn main() {
    println!(
        "Figure 8 — SPEC CINT2000 analog speedups (SOMT vs superscalar){}\n",
        if full_scale() { " (paper scale)" } else { " (reduced scale; --full for paper scale)" }
    );

    let entry = catalog::find("fig8_spec_speedups").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));

    println!(
        "{:<8} {:>14} {:>14} {:>9} {:>9} {:>11} {:>8}",
        "bench", "scalar cyc", "somt cyc", "overall", "kernel", "%component", "paper %"
    );
    for (name, paper_pct) in [("mcf", "45%"), ("vpr", "93%"), ("bzip2", "20%"), ("crafty", "100%")]
    {
        let scalar = &report.only(&format!("{name}/scalar")).outcome;
        let somt = &report.only(&format!("{name}/somt")).outcome;

        let overall = scalar.cycles() as f64 / somt.cycles() as f64;
        // kernel speedup: componentized-section cycles on each machine
        let k_scalar = scalar.sections.section_cycles(KERNEL_SECTION);
        let k_somt = somt.sections.section_cycles(KERNEL_SECTION);
        let kernel = k_scalar as f64 / k_somt.max(1) as f64;
        let pct = 100.0 * scalar.sections.section_fraction(KERNEL_SECTION, scalar.cycles());
        println!(
            "{name:<8} {:>14} {:>14} {:>8.2}x {:>8.2}x {:>10.0}% {:>8}",
            scalar.cycles(),
            somt.cycles(),
            overall,
            kernel,
            pct,
            paper_pct
        );
    }
    println!("\n(paper Figure 8: overall speedups between 1.1 and 3.0; crafty 1.7)");
    report.emit("fig8_spec_speedups");
}
