//! §5 CMP extrapolation ("Potential impact of CMPs on dynamic spawning"):
//! the same 8 contexts organized as 1×8 (SMT) through 8×1 (CMP), plus the
//! paper's division-latency sweep on the CMP — "we have simulated
//! division latencies up to 200 cycles, and observed an average
//! performance variation of less than 1%".

use capsule_bench::{run_checked, scaled};
use capsule_core::config::MachineConfig;
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::spec::Mcf;
use capsule_workloads::{Variant, Workload};

fn main() {
    println!("§5 — CMP extrapolation: 8 contexts, varying core organisation\n");
    let dij = Dijkstra::figure3(7, scaled(250, 1000));
    let mcf = Mcf::standard(scaled(17, 18));
    let workloads: [(&str, &dyn Workload); 2] = [("dijkstra", &dij), ("mcf", &mcf)];

    for (name, w) in workloads {
        println!("{name}:");
        let mut base = None;
        for (cores, per_core) in [(1usize, 8usize), (2, 4), (4, 2), (8, 1)] {
            let cfg = MachineConfig::cmp_somt(cores, per_core);
            let o = run_checked(cfg, w, Variant::Component);
            let b = *base.get_or_insert(o.cycles());
            println!(
                "  {cores}x{per_core:<2} cores: {:>12} cycles ({:+6.1}% vs 1x8), {} divisions, L1D miss {:.1}%",
                o.cycles(),
                100.0 * (o.cycles() as f64 - b as f64) / b as f64,
                o.stats.divisions_granted(),
                100.0 * o.l1d.miss_rate()
            );
        }
        println!();
    }

    println!("remote-division-latency sweep on the 4x2 CMP (paper: <1% up to 200):\n");
    let mut base = None;
    for remote in [0u64, 50, 100, 200] {
        let mut cfg = MachineConfig::cmp_somt(4, 2);
        cfg.remote_division_latency = remote;
        let o = run_checked(cfg, &mcf, Variant::Component);
        let b = *base.get_or_insert(o.cycles());
        println!(
            "  remote latency {remote:>3}: {:>12} cycles ({:+.2}% vs 0)",
            o.cycles(),
            100.0 * (o.cycles() as f64 - b as f64) / b as f64
        );
    }
}
