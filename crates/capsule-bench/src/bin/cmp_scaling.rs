//! §5 CMP extrapolation ("Potential impact of CMPs on dynamic spawning"):
//! the same 8 contexts organized as 1×8 (SMT) through 8×1 (CMP), plus the
//! paper's division-latency sweep on the CMP — "we have simulated
//! division latencies up to 200 cycles, and observed an average
//! performance variation of less than 1%".

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;

const ORGS: [(usize, usize); 4] = [(1, 8), (2, 4), (4, 2), (8, 1)];
const REMOTE_LATENCIES: [u64; 4] = [0, 50, 100, 200];

fn main() {
    println!("§5 — CMP extrapolation: 8 contexts, varying core organisation\n");
    let entry = catalog::find("cmp_scaling").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));

    for name in ["dijkstra", "mcf"] {
        println!("{name}:");
        let mut base = None;
        for (cores, per_core) in ORGS {
            let o = &report.only(&format!("org/{name}/{cores}x{per_core}")).outcome;
            let b = *base.get_or_insert(o.cycles());
            println!(
                "  {cores}x{per_core:<2} cores: {:>12} cycles ({:+6.1}% vs 1x8), {} divisions, L1D miss {:.1}%",
                o.cycles(),
                100.0 * (o.cycles() as f64 - b as f64) / b as f64,
                o.stats.divisions_granted(),
                100.0 * o.l1d.miss_rate()
            );
        }
        println!();
    }

    println!("remote-division-latency sweep on the 4x2 CMP (paper: <1% up to 200):\n");
    let mut base = None;
    for remote in REMOTE_LATENCIES {
        let o = &report.only(&format!("latency/{remote}")).outcome;
        let b = *base.get_or_insert(o.cycles());
        println!(
            "  remote latency {remote:>3}: {:>12} cycles ({:+.2}% vs 0)",
            o.cycles(),
            100.0 * (o.cycles() as f64 - b as f64) / b as f64
        );
    }
    report.emit("cmp_scaling");
}
