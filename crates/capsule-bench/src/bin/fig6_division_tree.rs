//! Figure 6: the irregular division genealogy of a component QuickSort
//! run, as Graphviz DOT (the paper renders the same structure).
//!
//! Usage: `cargo run -p capsule-bench --bin fig6_division_tree [> fig6.dot]`

use std::sync::Arc;

use capsule_bench::{scaled, BatchRunner, Scenario};
use capsule_core::config::MachineConfig;
use capsule_workloads::datasets::{random_list, ListShape};
use capsule_workloads::quicksort::QuickSort;
use capsule_workloads::Variant;

fn main() {
    let len = scaled(3000, 12000);
    let report = BatchRunner::from_env().run(
        "Figure 6 — QuickSort division genealogy",
        vec![Scenario::new(
            "somt",
            "uniform",
            MachineConfig::table1_somt(),
            Variant::Component,
            Arc::new(QuickSort::new(random_list(4242, len, ListShape::Uniform))),
        )],
    );
    let o = &report.only("somt").outcome;
    eprintln!(
        "// Figure 6 — QuickSort division genealogy: {} workers, depth {}, {} divisions granted of {}",
        o.tree.len(),
        o.tree.max_depth(),
        o.stats.divisions_granted(),
        o.stats.divisions_requested
    );
    eprintln!("// (DOT on stdout; render with `dot -Tsvg`)");
    print!("{}", o.tree.to_dot());
    match report.write_json("fig6_division_tree") {
        Ok(path) => eprintln!("// report: {}", path.display()),
        Err(e) => eprintln!("// report not written: {e}"),
    }
}
