//! Figure 6: the irregular division genealogy of a component QuickSort
//! run, as Graphviz DOT (the paper renders the same structure).
//!
//! Usage: `cargo run -p capsule-bench --bin fig6_division_tree [> fig6.dot]`

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;

fn main() {
    let entry = catalog::find("fig6_division_tree").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));
    let o = &report.only("somt").outcome;
    eprintln!(
        "// Figure 6 — QuickSort division genealogy: {} workers, depth {}, {} divisions granted of {}",
        o.tree.len(),
        o.tree.max_depth(),
        o.stats.divisions_granted(),
        o.stats.divisions_requested
    );
    eprintln!("// (DOT on stdout; render with `dot -Tsvg`)");
    print!("{}", o.tree.to_dot());
    match report.write_json("fig6_division_tree") {
        Ok(path) => eprintln!("// report: {}", path.display()),
        Err(e) => eprintln!("// report not written: {e}"),
    }
}
