//! Figure 6: the irregular division genealogy of a component QuickSort
//! run, as Graphviz DOT (the paper renders the same structure).
//!
//! Usage: `cargo run -p capsule-bench --bin fig6_division_tree [> fig6.dot]`

use capsule_bench::{run_checked, scaled};
use capsule_core::config::MachineConfig;
use capsule_workloads::datasets::{random_list, ListShape};
use capsule_workloads::quicksort::QuickSort;
use capsule_workloads::Variant;

fn main() {
    let len = scaled(3000, 12000);
    let w = QuickSort::new(random_list(4242, len, ListShape::Uniform));
    let o = run_checked(MachineConfig::table1_somt(), &w, Variant::Component);
    eprintln!(
        "// Figure 6 — QuickSort division genealogy: {} workers, depth {}, {} divisions granted of {}",
        o.tree.len(),
        o.tree.max_depth(),
        o.stats.divisions_granted(),
        o.stats.divisions_requested
    );
    eprintln!("// (DOT on stdout; render with `dot -Tsvg`)");
    print!("{}", o.tree.to_dot());
}
