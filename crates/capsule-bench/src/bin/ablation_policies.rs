//! Ablations of the interpretation choices documented in DESIGN.md:
//!
//! 1. `allow_divide_to_stack` — may `nthr` park a child on the context
//!    stack when no physical context is free?
//! 2. the death-rate window N (the paper fixes N = 128);
//! 3. the swap-out counter threshold (the paper fixes 256).

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;

fn main() {
    let entry = catalog::find("ablation_policies").expect("catalog entry");
    let report = BatchRunner::from_env().run(entry.title, entry.scenarios(Scale::from_env()));

    println!("Ablation 1 — divide-to-stack (children born onto the context stack)\n");
    for name in ["dijkstra", "lzw"] {
        for allow in [true, false] {
            let o = &report.only(&format!("stack/{name}/{allow}")).outcome;
            println!(
                "  {name:<10} divide_to_stack={allow:<5}  {:>12} cycles, {:>6} granted ({} to stack), {} swap-ins",
                o.cycles(),
                o.stats.divisions_granted(),
                o.stats.divisions_granted_stack,
                o.stats.swaps_in
            );
        }
    }

    println!("\nAblation 2 — death-rate window N (paper: 128)\n");
    for window in [32u64, 128, 512, 2048] {
        let o = &report.only(&format!("window/{window}")).outcome;
        println!(
            "  lzw        N={window:<5} {:>12} cycles, {:>6} granted, {:>6} throttled",
            o.cycles(),
            o.stats.divisions_granted(),
            o.stats.divisions_denied_throttled
        );
    }

    println!("\nAblation 3 — swap-out counter threshold (paper: 256)\n");
    println!("  (vpr's routers stream per-net arrays, so worker load latencies spread;");
    println!("   swap-outs additionally need parked workers to yield to, which makes");
    println!("   them rare at these scales — the mechanics test suite exercises the");
    println!("   heuristic deterministically)\n");
    for thr in [32i64, 256, 1024] {
        let o = &report.only(&format!("swap/{thr}")).outcome;
        println!(
            "  vpr        threshold={thr:<5} {:>12} cycles, {} swap-outs, {} swap-ins",
            o.cycles(),
            o.stats.swaps_out,
            o.stats.swaps_in
        );
    }
    report.emit("ablation_policies");
}
