//! Ablations of the interpretation choices documented in DESIGN.md:
//!
//! 1. `allow_divide_to_stack` — may `nthr` park a child on the context
//!    stack when no physical context is free?
//! 2. the death-rate window N (the paper fixes N = 128);
//! 3. the swap-out counter threshold (the paper fixes 256).

use capsule_bench::{run_checked, scaled};
use capsule_core::config::MachineConfig;
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::lzw::Lzw;
use capsule_workloads::{Variant, Workload};

fn main() {
    let dij = Dijkstra::figure3(7, scaled(250, 1000));
    let lzw = Lzw::figure7(5, scaled(2000, 4096));

    println!("Ablation 1 — divide-to-stack (children born onto the context stack)\n");
    let pairs: [(&str, &dyn Workload); 2] = [("dijkstra", &dij), ("lzw", &lzw)];
    for (name, w) in pairs {
        for allow in [true, false] {
            let mut cfg = MachineConfig::table1_somt();
            cfg.allow_divide_to_stack = allow;
            let o = run_checked(cfg, w, Variant::Component);
            println!(
                "  {name:<10} divide_to_stack={allow:<5}  {:>12} cycles, {:>6} granted ({} to stack), {} swap-ins",
                o.cycles(),
                o.stats.divisions_granted(),
                o.stats.divisions_granted_stack,
                o.stats.swaps_in
            );
        }
    }

    println!("\nAblation 2 — death-rate window N (paper: 128)\n");
    for window in [32u64, 128, 512, 2048] {
        let mut cfg = MachineConfig::table1_somt();
        cfg.death_window = window;
        let o = run_checked(cfg, &lzw, Variant::Component);
        println!(
            "  lzw        N={window:<5} {:>12} cycles, {:>6} granted, {:>6} throttled",
            o.cycles(),
            o.stats.divisions_granted(),
            o.stats.divisions_denied_throttled
        );
    }

    println!("\nAblation 3 — swap-out counter threshold (paper: 256)\n");
    println!("  (vpr's routers stream per-net arrays, so worker load latencies spread;");
    println!("   swap-outs additionally need parked workers to yield to, which makes");
    println!("   them rare at these scales — the mechanics test suite exercises the");
    println!("   heuristic deterministically)\n");
    let vpr = capsule_workloads::spec::Vpr::standard(19, scaled(12, 20), scaled(8, 12), 2);
    for thr in [32i64, 256, 1024] {
        let mut cfg = MachineConfig::table1_somt();
        cfg.swap_counter_threshold = thr;
        let o = run_checked(cfg, &vpr, Variant::Component);
        println!(
            "  vpr        threshold={thr:<5} {:>12} cycles, {} swap-outs, {} swap-ins",
            o.cycles(),
            o.stats.swaps_out,
            o.stats.swaps_in
        );
    }
}
