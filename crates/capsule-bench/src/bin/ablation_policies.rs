//! Ablations of the interpretation choices documented in DESIGN.md:
//!
//! 1. `allow_divide_to_stack` — may `nthr` park a child on the context
//!    stack when no physical context is free?
//! 2. the death-rate window N (the paper fixes N = 128);
//! 3. the swap-out counter threshold (the paper fixes 256).

use std::sync::Arc;

use capsule_bench::{scaled, BatchRunner, Scenario};
use capsule_core::config::MachineConfig;
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::lzw::Lzw;
use capsule_workloads::{Variant, Workload};

fn main() {
    let dij: Arc<dyn Workload + Send + Sync> =
        Arc::new(Dijkstra::figure3(7, scaled(250, 1000)));
    let lzw: Arc<dyn Workload + Send + Sync> = Arc::new(Lzw::figure7(5, scaled(2000, 4096)));
    let vpr: Arc<dyn Workload + Send + Sync> =
        Arc::new(capsule_workloads::spec::Vpr::standard(19, scaled(12, 20), scaled(8, 12), 2));

    let mut scenarios = Vec::new();
    for (name, w) in [("dijkstra", &dij), ("lzw", &lzw)] {
        for allow in [true, false] {
            let mut cfg = MachineConfig::table1_somt();
            cfg.allow_divide_to_stack = allow;
            scenarios.push(Scenario::new(
                format!("stack/{name}/{allow}"),
                format!("{allow}"),
                cfg,
                Variant::Component,
                Arc::clone(w),
            ));
        }
    }
    for window in [32u64, 128, 512, 2048] {
        let mut cfg = MachineConfig::table1_somt();
        cfg.death_window = window;
        scenarios.push(Scenario::new(
            format!("window/{window}"),
            format!("{window}"),
            cfg,
            Variant::Component,
            Arc::clone(&lzw),
        ));
    }
    for thr in [32i64, 256, 1024] {
        let mut cfg = MachineConfig::table1_somt();
        cfg.swap_counter_threshold = thr;
        scenarios.push(Scenario::new(
            format!("swap/{thr}"),
            format!("{thr}"),
            cfg,
            Variant::Component,
            Arc::clone(&vpr),
        ));
    }
    let report = BatchRunner::from_env().run("Ablations — interpretation choices", scenarios);

    println!("Ablation 1 — divide-to-stack (children born onto the context stack)\n");
    for name in ["dijkstra", "lzw"] {
        for allow in [true, false] {
            let o = &report.only(&format!("stack/{name}/{allow}")).outcome;
            println!(
                "  {name:<10} divide_to_stack={allow:<5}  {:>12} cycles, {:>6} granted ({} to stack), {} swap-ins",
                o.cycles(),
                o.stats.divisions_granted(),
                o.stats.divisions_granted_stack,
                o.stats.swaps_in
            );
        }
    }

    println!("\nAblation 2 — death-rate window N (paper: 128)\n");
    for window in [32u64, 128, 512, 2048] {
        let o = &report.only(&format!("window/{window}")).outcome;
        println!(
            "  lzw        N={window:<5} {:>12} cycles, {:>6} granted, {:>6} throttled",
            o.cycles(),
            o.stats.divisions_granted(),
            o.stats.divisions_denied_throttled
        );
    }

    println!("\nAblation 3 — swap-out counter threshold (paper: 256)\n");
    println!("  (vpr's routers stream per-net arrays, so worker load latencies spread;");
    println!("   swap-outs additionally need parked workers to yield to, which makes");
    println!("   them rare at these scales — the mechanics test suite exercises the");
    println!("   heuristic deterministically)\n");
    for thr in [32i64, 256, 1024] {
        let o = &report.only(&format!("swap/{thr}")).outcome;
        println!(
            "  vpr        threshold={thr:<5} {:>12} cycles, {} swap-outs, {} swap-ins",
            o.cycles(),
            o.stats.swaps_out,
            o.stats.swaps_in
        );
    }
    report.emit("ablation_policies");
}
