//! Catalog adapters for `capsule-fuzz` generated programs.
//!
//! Two entry families back the `fuzz_regress` and `fuzz_gen` catalog
//! entries:
//!
//! * **regression** — every minimized artifact embedded in the
//!   `capsule-fuzz` corpus, replayed on the Table 1 machines;
//! * **generated** — a fixed seeded slice of the fuzzer's program space
//!   (the seeds scale with [`Scale`], the programs are deterministic).
//!
//! Unlike [`crate::scenario::RawWorkload`], the checker is *not* a
//! no-op: expected output is computed once by the functional reference
//! interpreter, so a server- or bench-side run that disagrees with the
//! reference semantics fails its batch loudly.

use std::sync::Arc;

use capsule_core::config::MachineConfig;
use capsule_core::OutValue;
use capsule_fuzz::{build, corpus, generate, GenParams, ProgramSpec};
use capsule_isa::program::Program;
use capsule_sim::{Interp, InterpConfig};
use capsule_workloads::{Variant, Workload};

use crate::catalog::Scale;
use crate::Scenario;

/// A fuzz-generated program as a checked workload: the program comes
/// from the spec's deterministic lowering, the expected output from the
/// reference interpreter.
pub struct FuzzWorkload {
    name: &'static str,
    program: Program,
    expected: Vec<OutValue>,
}

impl FuzzWorkload {
    /// Lowers `spec` and computes its reference output.
    ///
    /// # Panics
    ///
    /// Panics when the spec does not lower or the interpreter rejects
    /// the program — corpus and seeded specs are validated by the
    /// capsule-fuzz test suite, so this is a build defect.
    pub fn new(name: &'static str, spec: &ProgramSpec) -> FuzzWorkload {
        let program = build(spec).expect("fuzz spec must lower");
        let mut interp = Interp::new(&program, InterpConfig::default())
            .expect("fuzz program must be interpretable");
        let outcome = interp.run(50_000_000).expect("fuzz program must terminate");
        FuzzWorkload { name, program, expected: outcome.output }
    }
}

impl Workload for FuzzWorkload {
    fn name(&self) -> &'static str {
        self.name
    }
    fn supports(&self, _variant: Variant) -> bool {
        true
    }
    fn program(&self, _variant: Variant) -> Program {
        self.program.clone()
    }
    fn check(&self, output: &[OutValue]) -> Result<(), String> {
        // Bit-level comparison (floats by bits) against the reference
        // interpreter, mirroring the fuzz harness's digest check.
        let bits = |vs: &[OutValue]| -> Vec<(u8, u64)> {
            vs.iter()
                .map(|v| match v {
                    OutValue::Int(i) => (0u8, *i as u64),
                    OutValue::Float(f) => (1u8, f.to_bits()),
                })
                .collect()
        };
        if bits(output) == bits(&self.expected) {
            Ok(())
        } else {
            Err(format!(
                "fuzz output disagrees with reference interpreter: got {} values, expected {}",
                output.len(),
                self.expected.len()
            ))
        }
    }
}

/// The machines a fuzz program is swept over: every Table 1 preset whose
/// context count can boot the program's loader threads.
fn machines_for(spec: &ProgramSpec) -> Vec<(&'static str, MachineConfig)> {
    let presets = [
        ("superscalar", MachineConfig::table1_superscalar()),
        ("smt", MachineConfig::table1_smt()),
        ("somt", MachineConfig::table1_somt()),
    ];
    presets.into_iter().filter(|(_, cfg)| cfg.contexts >= spec.version.threads()).collect()
}

/// The same spec with the task count raised to at least 256: identical
/// task code and join structure, but enough cycles that batch-level
/// contracts measured in thousands of cycles (periodic checkpoints,
/// preemption) actually engage. Minimized corpus programs finish in a
/// few hundred cycles, which would otherwise dodge those paths.
fn amplified(spec: &ProgramSpec) -> ProgramSpec {
    let mut s = spec.clone();
    s.ntasks = s.ntasks.max(256);
    s
}

/// `fuzz_regress`: replays the embedded minimized corpus on the Table 1
/// machines, plus an amplified (256-task) soak variant of each program
/// on the SOMT. The corpus is identical at every scale — regressions
/// must never be scaled away.
pub fn fuzz_regress(_scale: Scale) -> Vec<Scenario> {
    let mut out = Vec::new();
    for (name, artifact) in corpus::load() {
        let stem = name.strip_suffix(".json").unwrap_or(name);
        let workload: Arc<FuzzWorkload> = Arc::new(FuzzWorkload::new("fuzz", &artifact.spec));
        for (group, cfg) in machines_for(&artifact.spec) {
            out.push(Scenario::new(group, stem, cfg, Variant::Sequential, workload.clone()));
        }
        let soak = Arc::new(FuzzWorkload::new("fuzz", &amplified(&artifact.spec)));
        out.push(Scenario::new(
            "somt-soak",
            stem,
            MachineConfig::table1_somt(),
            Variant::Sequential,
            soak,
        ));
    }
    out
}

/// First seed of the `fuzz_gen` slice; far from the CI sweep range so
/// the catalog exercises different programs than `ci.sh`'s sweep.
pub const FUZZ_GEN_BASE_SEED: u64 = 9_000;

/// Seed count per scale for [`fuzz_gen`].
pub fn fuzz_gen_seeds(scale: Scale) -> u64 {
    scale.pick(3, 12, 48)
}

/// `fuzz_gen`: a deterministic seeded slice of the fuzzer's program
/// space, checked against the reference interpreter on every machine.
pub fn fuzz_gen(scale: Scale) -> Vec<Scenario> {
    let mut out = Vec::new();
    for seed in FUZZ_GEN_BASE_SEED..FUZZ_GEN_BASE_SEED + fuzz_gen_seeds(scale) {
        let spec = generate(seed, GenParams::default());
        let workload: Arc<FuzzWorkload> = Arc::new(FuzzWorkload::new("fuzz", &spec));
        let label = format!("seed{seed}-{}", spec.version.name());
        for (group, cfg) in machines_for(&spec) {
            out.push(Scenario::new(group, label.clone(), cfg, Variant::Sequential, {
                workload.clone()
            }));
        }
    }
    let soak = generate(FUZZ_GEN_BASE_SEED, GenParams::default());
    out.push(Scenario::new(
        "somt-soak",
        format!("seed{FUZZ_GEN_BASE_SEED}-amplified"),
        MachineConfig::table1_somt(),
        Variant::Sequential,
        Arc::new(FuzzWorkload::new("fuzz", &amplified(&soak))),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatchRunner;

    #[test]
    fn fuzz_catalog_entries_run_clean_at_smoke_scale() {
        let runner = BatchRunner::with_workers(2);
        for build in [fuzz_regress, fuzz_gen] {
            let scenarios = build(Scale::Smoke);
            assert!(!scenarios.is_empty());
            let report = runner.run("fuzz smoke", scenarios);
            assert!(!report.records.is_empty());
        }
    }

    #[test]
    fn fuzz_checker_rejects_wrong_output() {
        let spec = generate(FUZZ_GEN_BASE_SEED, GenParams::default());
        let w = FuzzWorkload::new("fuzz", &spec);
        assert!(w.check(&w.expected).is_ok());
        let mut wrong = w.expected.clone();
        wrong.push(OutValue::Int(424242));
        assert!(w.check(&wrong).is_err());
    }
}
