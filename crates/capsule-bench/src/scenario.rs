//! Shared scenario runner: every evaluation binary describes its runs as
//! a batch of [`Scenario`]s and hands them to a [`BatchRunner`], which
//! owns checked execution, host-reference validation, parallel execution
//! across host cores, and machine-readable JSON reporting.
//!
//! Reports are deterministic: records appear in scenario order and carry
//! only simulated quantities (never wall-clock time or the worker
//! count), so the same batch produces byte-identical JSON whether it ran
//! on 1 worker or 16.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use capsule_core::config::MachineConfig;
use capsule_core::output::Json;
use capsule_isa::program::Program;
use capsule_sim::cancel::CancelToken;
use capsule_sim::machine::WarmMachine;
use capsule_sim::{SimError, SimOutcome};
use capsule_workloads::{Variant, Workload};

use crate::{try_run_checked_warm, RunOptions};

/// Why one checked run failed, by stage.
#[derive(Debug, Clone, PartialEq)]
pub enum RunFailure {
    /// The machine could not be built for this config/program.
    Build(SimError),
    /// The simulation aborted (trap, timeout, cancellation, ...).
    Sim(SimError),
    /// The simulated output did not match the host reference.
    Check(String),
    /// The worker thread panicked while running the scenario (a bug in
    /// the workload or simulator); the payload is the panic message.
    Panic(String),
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Build(e) => write!(f, "machine build failed: {e}"),
            RunFailure::Sim(e) => write!(f, "simulation failed: {e}"),
            RunFailure::Check(e) => write!(f, "wrong result: {e}"),
            RunFailure::Panic(e) => write!(f, "worker panicked: {e}"),
        }
    }
}

impl std::error::Error for RunFailure {}

impl RunFailure {
    /// True when the failure is a tripped [`CancelToken`].
    pub fn is_cancelled(&self) -> bool {
        matches!(self, RunFailure::Sim(SimError::Cancelled { .. }))
    }
}

/// A failed batch: which scenario failed first (lowest index) and why.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchError {
    /// Index of the failing scenario in submission order.
    pub index: usize,
    /// The scenario's group.
    pub group: String,
    /// The scenario's label.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// The failure itself.
    pub failure: RunFailure,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario #{} ({}/{}, workload {}): {}",
            self.index, self.group, self.label, self.workload, self.failure
        )
    }
}

impl std::error::Error for BatchError {}

/// One independent simulated run: a workload variant on a machine.
#[derive(Clone)]
pub struct Scenario {
    /// Series key; runs that belong to one curve/histogram share a group
    /// (e.g. `"superscalar"`, `"somt"`).
    pub group: String,
    /// Distinguishes runs within a group (e.g. the dataset index).
    pub label: String,
    /// Machine to simulate.
    pub config: MachineConfig,
    /// Which implementation of the workload to build.
    pub variant: Variant,
    /// The workload; shared so one dataset can run on several machines.
    pub workload: Arc<dyn Workload + Send + Sync>,
}

impl Scenario {
    /// A scenario over a shared workload.
    pub fn new(
        group: impl Into<String>,
        label: impl Into<String>,
        config: MachineConfig,
        variant: Variant,
        workload: Arc<dyn Workload + Send + Sync>,
    ) -> Scenario {
        Scenario { group: group.into(), label: label.into(), config, variant, workload }
    }

    /// A scenario over a raw program with no host reference (the checker
    /// accepts any output). For toolchain-level measurements.
    pub fn raw(
        group: impl Into<String>,
        label: impl Into<String>,
        config: MachineConfig,
        name: &'static str,
        program: Program,
    ) -> Scenario {
        Scenario::new(
            group,
            label,
            config,
            Variant::Sequential,
            Arc::new(RawWorkload { name, program }),
        )
    }
}

/// Adapter: a pre-built [`Program`] as a [`Workload`] whose checker
/// accepts any output. Every variant returns the same program.
pub struct RawWorkload {
    name: &'static str,
    program: Program,
}

impl Workload for RawWorkload {
    fn name(&self) -> &'static str {
        self.name
    }
    fn supports(&self, _variant: Variant) -> bool {
        true
    }
    fn program(&self, _variant: Variant) -> Program {
        self.program.clone()
    }
    fn check(&self, _output: &[capsule_core::OutValue]) -> Result<(), String> {
        Ok(())
    }
}

/// The result of one [`Scenario`]: identification plus the full
/// validated simulation outcome.
#[derive(Debug)]
pub struct RunRecord {
    /// The scenario's group.
    pub group: String,
    /// The scenario's label.
    pub label: String,
    /// Workload name ([`Workload::name`]).
    pub workload: &'static str,
    /// Variant that ran, as a report string.
    pub variant: String,
    /// Full simulation outcome (already checked against the host
    /// reference).
    pub outcome: SimOutcome,
}

pub(crate) fn variant_name(v: Variant) -> String {
    match v {
        Variant::Sequential => "sequential".to_string(),
        Variant::Static(n) => format!("static({n})"),
        Variant::Component => "component".to_string(),
    }
}

/// Executes batches of scenarios in parallel across host threads.
///
/// The runner keeps a pool of warmed machines: each worker thread checks
/// one [`WarmMachine`] out for the duration of a batch and rebuilds it in
/// place per scenario, so consecutive scenarios — and consecutive batches
/// on a long-lived runner — reuse the data-memory buffer, the window
/// arena and the stage scratch instead of reallocating them. Warmed runs
/// are cycle-for-cycle identical to fresh ones, so reports are unaffected.
pub struct BatchRunner {
    workers: usize,
    /// Warmed machines surviving across scenarios and batches; workers
    /// check one out per batch and return it when the batch ends.
    pool: Mutex<Vec<WarmMachine>>,
}

impl BatchRunner {
    /// Worker count from `CAPSULE_BENCH_WORKERS`, defaulting to the host
    /// parallelism.
    pub fn from_env() -> BatchRunner {
        let workers = std::env::var("CAPSULE_BENCH_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        BatchRunner::with_workers(workers)
    }

    /// A runner with an explicit worker count (min 1).
    pub fn with_workers(workers: usize) -> BatchRunner {
        BatchRunner { workers: workers.max(1), pool: Mutex::new(Vec::new()) }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every scenario (validating each against its host reference)
    /// and returns the records **in scenario order**, regardless of the
    /// worker count or scheduling.
    ///
    /// # Panics
    ///
    /// Panics if any scenario fails to simulate or fails validation — a
    /// bench must never report numbers from a wrong run. Services that
    /// need a structured failure instead use [`BatchRunner::try_run_with`].
    pub fn run(&self, title: impl Into<String>, scenarios: Vec<Scenario>) -> BatchReport {
        self.try_run_with(title, scenarios, crate::BUDGET, None)
            .unwrap_or_else(|e| panic!("batch failed: {e}"))
    }

    /// Runs every scenario under a per-run cycle `budget` and an optional
    /// shared [`CancelToken`], propagating the first failure (in scenario
    /// order) instead of panicking.
    ///
    /// A panic inside a worker thread (from workload or simulator bugs)
    /// is caught and reported as [`RunFailure::Panic`] for its scenario
    /// rather than poisoning the batch: the remaining scenarios are
    /// drained, the other workers keep their slots, and the caller gets a
    /// structured [`BatchError`]. Once any scenario has failed, workers
    /// stop picking up new scenarios (in-flight runs still finish).
    ///
    /// # Errors
    ///
    /// The failure of the lowest-indexed failing scenario.
    pub fn try_run_with(
        &self,
        title: impl Into<String>,
        scenarios: Vec<Scenario>,
        budget: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<BatchReport, Box<BatchError>> {
        self.try_run_opts(title, scenarios, budget, cancel, RunOptions::default())
    }

    /// [`BatchRunner::try_run_with`] plus [`RunOptions`]: the same
    /// checked parallel execution with per-stage profiling and/or event
    /// tracing enabled on every machine. The observation data rides on
    /// each record's [`SimOutcome`]; reports stay byte-identical because
    /// [`BatchReport::to_json`] never serializes it.
    ///
    /// # Errors
    ///
    /// The failure of the lowest-indexed failing scenario.
    pub fn try_run_opts(
        &self,
        title: impl Into<String>,
        scenarios: Vec<Scenario>,
        budget: u64,
        cancel: Option<&CancelToken>,
        opts: RunOptions,
    ) -> Result<BatchReport, Box<BatchError>> {
        let title = title.into();
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<Result<RunRecord, RunFailure>>>> =
            scenarios.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(scenarios.len()).max(1);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    // Check a warmed machine out of the pool (or start an
                    // empty slot) for the whole batch; return it at the
                    // end so later batches keep the allocations warm.
                    let mut warm = self
                        .pool
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .pop()
                        .unwrap_or_default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(sc) = scenarios.get(i) else { break };
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            try_run_checked_warm(
                                sc.config.clone(),
                                sc.workload.as_ref(),
                                sc.variant,
                                budget,
                                cancel,
                                opts,
                                &mut warm,
                            )
                        }))
                        .unwrap_or_else(|p| Err(RunFailure::Panic(panic_message(p))));
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(result.map(|outcome| RunRecord {
                                group: sc.group.clone(),
                                label: sc.label.clone(),
                                workload: sc.workload.name(),
                                variant: variant_name(sc.variant),
                                outcome,
                            }));
                    }
                    // A machine left mid-run by a panic or error is fine
                    // to return: `reset` rebuilds every piece of state.
                    self.pool.lock().unwrap_or_else(PoisonError::into_inner).push(warm);
                });
            }
        });
        let mut records = Vec::with_capacity(scenarios.len());
        let mut first_err: Option<Box<BatchError>> = None;
        for (i, slot) in slots.into_iter().enumerate() {
            let filled = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
            match filled {
                Some(Ok(record)) => records.push(record),
                Some(Err(failure)) if first_err.is_none() => {
                    let sc = &scenarios[i];
                    first_err = Some(Box::new(BatchError {
                        index: i,
                        group: sc.group.clone(),
                        label: sc.label.clone(),
                        workload: sc.workload.name().to_string(),
                        failure,
                    }));
                }
                // Later failures lose to the lowest-indexed one; a None
                // slot means the worker that claimed this index observed
                // the failure flag and stopped (possibly at a lower
                // index than the failure that set the flag).
                Some(Err(_)) | None => {}
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // Workers only skip slots after the failure flag is set, and the
        // failing worker writes its Err slot before exiting the scope.
        assert_eq!(records.len(), scenarios.len(), "slots skipped without a recorded failure");
        Ok(BatchReport { title, records })
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// All records of a batch, in scenario order.
#[derive(Debug)]
pub struct BatchReport {
    /// Human-readable batch title (goes into the JSON header).
    pub title: String,
    /// One record per scenario, in submission order.
    pub records: Vec<RunRecord>,
}

impl BatchReport {
    /// The records of one group, in scenario order.
    pub fn group(&self, group: &str) -> Vec<&RunRecord> {
        self.records.iter().filter(|r| r.group == group).collect()
    }

    /// The cycle counts of one group, in scenario order.
    pub fn group_cycles(&self, group: &str) -> Vec<u64> {
        self.records.iter().filter(|r| r.group == group).map(|r| r.outcome.cycles()).collect()
    }

    /// The single record of a group that is expected to hold exactly one.
    ///
    /// # Panics
    ///
    /// Panics if the group does not contain exactly one record.
    pub fn only(&self, group: &str) -> &RunRecord {
        let rs = self.group(group);
        assert_eq!(rs.len(), 1, "group {group:?} has {} records, expected 1", rs.len());
        rs[0]
    }

    /// The machine-readable report. Deterministic: contains only
    /// simulated quantities (no wall-clock time, no worker count), in
    /// scenario order. Schema documented in docs/SIMULATOR.md.
    pub fn to_json(&self) -> Json {
        let mut root = Json::object();
        root.push("title", self.title.as_str());
        root.push("schema", "capsule-bench-report/1");
        let mut records = Vec::with_capacity(self.records.len());
        for r in &self.records {
            let s = &r.outcome.stats;
            let mut rec = Json::object();
            rec.push("group", r.group.as_str())
                .push("label", r.label.as_str())
                .push("workload", r.workload)
                .push("variant", r.variant.as_str())
                .push("cycles", r.outcome.cycles())
                .push("committed", s.committed)
                .push("ipc", s.ipc())
                .push("divisions_requested", s.divisions_requested)
                .push("divisions_granted", s.divisions_granted())
                .push("deaths", s.deaths)
                .push("max_live_workers", s.max_live_workers)
                .push("l1d_misses", r.outcome.l1d.misses)
                .push("l2_misses", r.outcome.l2.misses)
                .push("mem_accesses", r.outcome.mem_accesses);
            records.push(rec);
        }
        root.push("records", Json::Array(records));
        root
    }

    /// Writes the JSON report to `<report dir>/<slug>.json` and returns
    /// the path. The directory defaults to `target/capsule-reports` and
    /// can be overridden with `CAPSULE_BENCH_REPORT_DIR`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, slug: &str) -> std::io::Result<PathBuf> {
        let dir = std::env::var("CAPSULE_BENCH_REPORT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/capsule-reports"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{slug}.json"));
        std::fs::write(&path, self.to_json().to_string_pretty())?;
        Ok(path)
    }

    /// Writes the report (see [`BatchReport::write_json`]) and prints
    /// where it went; on failure prints the error instead of aborting
    /// the bench (the numbers were already validated and printed).
    pub fn emit(&self, slug: &str) {
        match self.write_json(slug) {
            Ok(path) => println!("\nreport: {}", path.display()),
            Err(e) => eprintln!("\nreport {slug}.json not written: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_workloads::dijkstra::Dijkstra;
    use capsule_workloads::quicksort::QuickSort;

    fn small_batch() -> Vec<Scenario> {
        let mut scenarios = Vec::new();
        for g in 0..4u64 {
            let w: Arc<dyn Workload + Send + Sync> = Arc::new(Dijkstra::figure3(g, 30));
            scenarios.push(Scenario::new(
                "somt",
                format!("g{g}"),
                MachineConfig::table1_somt(),
                Variant::Component,
                Arc::clone(&w),
            ));
            scenarios.push(Scenario::new(
                "superscalar",
                format!("g{g}"),
                MachineConfig::table1_superscalar(),
                Variant::Sequential,
                w,
            ));
        }
        scenarios.push(Scenario::new(
            "qs",
            "only",
            MachineConfig::table1_somt(),
            Variant::Component,
            Arc::new(QuickSort::new(vec![5, 3, 9, 1, 2])),
        ));
        scenarios
    }

    #[test]
    fn records_stay_in_scenario_order() {
        let report = BatchRunner::with_workers(3).run("order", small_batch());
        let labels: Vec<&str> = report.records.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["g0", "g0", "g1", "g1", "g2", "g2", "g3", "g3", "only"]);
        assert_eq!(report.group("somt").len(), 4);
        assert_eq!(report.group_cycles("superscalar").len(), 4);
        assert_eq!(report.only("qs").workload, "quicksort");
    }

    /// The determinism contract: the same batch on 1 worker and on many
    /// workers yields identical per-run cycle counts and byte-identical
    /// JSON reports.
    #[test]
    fn worker_count_never_changes_the_report() {
        let serial = BatchRunner::with_workers(1).run("det", small_batch());
        let parallel = BatchRunner::with_workers(4).run("det", small_batch());
        let c1: Vec<u64> = serial.records.iter().map(|r| r.outcome.cycles()).collect();
        let c4: Vec<u64> = parallel.records.iter().map(|r| r.outcome.cycles()).collect();
        assert_eq!(c1, c4);
        assert_eq!(serial.to_json().to_string_pretty(), parallel.to_json().to_string_pretty());
    }

    #[test]
    fn raw_scenarios_accept_any_output() {
        let w = Dijkstra::figure3(9, 20);
        let program = w.program(Variant::Sequential);
        let report = BatchRunner::with_workers(2).run(
            "raw",
            vec![Scenario::raw(
                "raw",
                "p0",
                MachineConfig::table1_superscalar(),
                "raw-dijkstra",
                program,
            )],
        );
        assert!(report.only("raw").outcome.cycles() > 0);
    }

    fn spin_program() -> Program {
        use capsule_isa::asm::Asm;
        use capsule_isa::program::{DataBuilder, ThreadSpec};
        let mut a = Asm::new();
        a.bind("x");
        a.j("x");
        Program::new(a.assemble().expect("assembles"), DataBuilder::new().build(), 4096)
            .with_thread(ThreadSpec::at(0))
    }

    /// A workload whose program construction panics (a synthetic
    /// workload bug).
    struct PanickyWorkload;

    impl Workload for PanickyWorkload {
        fn name(&self) -> &'static str {
            "panicky"
        }
        fn supports(&self, _variant: Variant) -> bool {
            true
        }
        fn program(&self, _variant: Variant) -> Program {
            panic!("synthetic workload bug")
        }
        fn check(&self, _output: &[capsule_core::OutValue]) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn budget_overrun_is_a_structured_timeout() {
        let scenarios = vec![Scenario::raw(
            "spin",
            "loop",
            MachineConfig::table1_somt(),
            "spin",
            spin_program(),
        )];
        let err = BatchRunner::with_workers(2)
            .try_run_with("budget", scenarios, 2_000, None)
            .expect_err("spin scenario must time out");
        assert_eq!(err.index, 0);
        assert_eq!(err.group, "spin");
        assert_eq!(err.failure, RunFailure::Sim(SimError::Timeout { cycles: 2_000 }));
        assert!(!err.failure.is_cancelled());
        assert!(err.to_string().contains("no halt within 2000 cycles"), "{err}");
    }

    #[test]
    fn worker_panic_is_a_structured_failure_not_an_abort() {
        let mut scenarios = small_batch();
        scenarios.insert(
            0,
            Scenario::new(
                "buggy",
                "b0",
                MachineConfig::table1_somt(),
                Variant::Component,
                Arc::new(PanickyWorkload),
            ),
        );
        // Silence the default panic hook while the worker's panic is
        // caught and converted; restore it afterwards.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result =
            BatchRunner::with_workers(3).try_run_with("panic", scenarios, crate::BUDGET, None);
        std::panic::set_hook(hook);
        let err = result.expect_err("panicking worker must fail the batch");
        assert_eq!(err.index, 0);
        assert_eq!(err.workload, "panicky");
        match &err.failure {
            RunFailure::Panic(msg) => assert!(msg.contains("synthetic workload bug"), "{msg}"),
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn pre_tripped_cancel_token_fails_the_batch_as_cancelled() {
        let tok = CancelToken::new();
        tok.cancel();
        let err = BatchRunner::with_workers(2)
            .try_run_with("cancelled", small_batch(), crate::BUDGET, Some(&tok))
            .expect_err("tripped token must cancel the batch");
        assert!(err.failure.is_cancelled(), "got {:?}", err.failure);
    }

    #[test]
    fn try_run_with_matches_run_on_success() {
        let report = BatchRunner::with_workers(2)
            .try_run_with("same", small_batch(), crate::BUDGET, Some(&CancelToken::new()))
            .expect("batch succeeds");
        let baseline = BatchRunner::with_workers(2).run("same", small_batch());
        assert_eq!(report.to_json().to_string_compact(), baseline.to_json().to_string_compact());
    }

    #[test]
    fn json_report_has_the_documented_shape() {
        let report = BatchRunner::with_workers(2).run(
            "shape",
            vec![Scenario::new(
                "g",
                "l",
                MachineConfig::table1_somt(),
                Variant::Component,
                Arc::new(QuickSort::new(vec![2, 1])),
            )],
        );
        let json = report.to_json().to_string_compact();
        for key in [
            "\"title\":\"shape\"",
            "\"schema\":\"capsule-bench-report/1\"",
            "\"group\":\"g\"",
            "\"label\":\"l\"",
            "\"workload\":\"quicksort\"",
            "\"variant\":\"component\"",
            "\"cycles\":",
            "\"ipc\":",
            "\"divisions_granted\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
