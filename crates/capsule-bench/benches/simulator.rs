//! Criterion benches of the cycle-level simulator itself: simulation
//! throughput (host time per simulated workload) on the three machines,
//! plus the reference interpreter for comparison.

use capsule_core::config::MachineConfig;
use capsule_sim::machine::Machine;
use capsule_sim::{Interp, InterpConfig};
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::{Variant, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_machines(c: &mut Criterion) {
    let w = Dijkstra::figure3(7, 120);
    let seq = w.program(Variant::Sequential);
    let comp = w.program(Variant::Component);

    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    g.bench_function("superscalar_dijkstra", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::table1_superscalar(), &seq).unwrap();
            let o = m.run(1_000_000_000).unwrap();
            w.check(&o.output).unwrap();
            o.cycles()
        })
    });
    g.bench_function("somt_dijkstra", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::table1_somt(), &comp).unwrap();
            let o = m.run(1_000_000_000).unwrap();
            w.check(&o.output).unwrap();
            o.cycles()
        })
    });
    g.bench_function("cmp4x2_dijkstra", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::cmp_somt(4, 2), &comp).unwrap();
            let o = m.run(1_000_000_000).unwrap();
            w.check(&o.output).unwrap();
            o.cycles()
        })
    });
    g.bench_function("interp_dijkstra", |b| {
        b.iter(|| {
            let mut i = Interp::new(&comp, InterpConfig::default()).unwrap();
            i.run(1_000_000_000).unwrap().steps
        })
    });
    g.finish();
}

criterion_group!(benches, bench_machines);
criterion_main!(benches);
