//! Benches of the cycle-level simulator itself: simulation throughput
//! (host time per simulated workload) on the three machines, plus the
//! reference interpreter for comparison.
//!
//! Std-only manual timing harness (no criterion). Gated behind the
//! `criterion-bench` feature so the default build stays hermetic:
//!
//! ```text
//! cargo bench -p capsule-bench --features criterion-bench
//! ```

use capsule_core::config::MachineConfig;
use capsule_sim::machine::Machine;
use capsule_sim::{Interp, InterpConfig};
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::{Variant, Workload};
use std::time::Instant;

/// Run `f` repeatedly for ~`budget_ms`, reporting the best iteration.
fn measure(name: &str, budget_ms: u64, mut f: impl FnMut()) {
    f();
    let deadline = Instant::now() + std::time::Duration::from_millis(budget_ms);
    let mut best = std::time::Duration::MAX;
    let mut iters = 0u64;
    while Instant::now() < deadline || iters == 0 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
        iters += 1;
    }
    println!("{name:<40} best {best:>12?}  ({iters} iters)");
}

fn main() {
    let w = Dijkstra::figure3(7, 120);
    let seq = w.program(Variant::Sequential);
    let comp = w.program(Variant::Component);

    measure("simulator/superscalar_dijkstra", 2000, || {
        let mut m = Machine::new(MachineConfig::table1_superscalar(), &seq).unwrap();
        let o = m.run(1_000_000_000).unwrap();
        w.check(&o.output).unwrap();
        std::hint::black_box(o.cycles());
    });
    measure("simulator/somt_dijkstra", 2000, || {
        let mut m = Machine::new(MachineConfig::table1_somt(), &comp).unwrap();
        let o = m.run(1_000_000_000).unwrap();
        w.check(&o.output).unwrap();
        std::hint::black_box(o.cycles());
    });
    measure("simulator/cmp4x2_dijkstra", 2000, || {
        let mut m = Machine::new(MachineConfig::cmp_somt(4, 2), &comp).unwrap();
        let o = m.run(1_000_000_000).unwrap();
        w.check(&o.output).unwrap();
        std::hint::black_box(o.cycles());
    });
    measure("simulator/interp_dijkstra", 2000, || {
        let mut i = Interp::new(&comp, InterpConfig::default()).unwrap();
        std::hint::black_box(i.run(1_000_000_000).unwrap().steps);
    });
}
