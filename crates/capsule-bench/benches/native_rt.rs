//! Benches of the native runtime analog: conditional division (CAPSULE
//! policy) vs always-spawn vs sequential, on sort and reduce.
//!
//! Std-only manual timing harness (no criterion). Gated behind the
//! `criterion-bench` feature so the default build stays hermetic:
//!
//! ```text
//! cargo bench -p capsule-bench --features criterion-bench
//! ```

use capsule_rt::{capsule_sort, capsule_sum, RtConfig};
use std::time::Instant;

fn data(len: usize) -> Vec<i64> {
    (0..len as i64).map(|i| (i.wrapping_mul(2654435761)) % 1_000_003).collect()
}

/// Run `f` repeatedly for ~`budget_ms`, reporting the best iteration.
fn measure(name: &str, budget_ms: u64, mut f: impl FnMut()) {
    // Warm-up.
    f();
    let deadline = Instant::now() + std::time::Duration::from_millis(budget_ms);
    let mut best = std::time::Duration::MAX;
    let mut iters = 0u64;
    while Instant::now() < deadline || iters == 0 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
        iters += 1;
    }
    println!("{name:<40} best {best:>12?}  ({iters} iters)");
}

fn bench_sort(workers: usize) {
    for len in [50_000usize, 400_000] {
        let input = data(len);
        for (name, cfg) in [
            ("sequential", RtConfig::never()),
            ("always", RtConfig::always(workers)),
            ("capsule", RtConfig::somt_like(workers)),
        ] {
            measure(&format!("capsule_sort/{name}/{len}"), 1500, || {
                let mut v = input.clone();
                capsule_sort(cfg, &mut v);
            });
        }
    }
}

fn bench_sum(workers: usize) {
    let input = data(1_000_000);
    for (name, cfg) in [
        ("sequential", RtConfig::never()),
        ("always", RtConfig::always(workers)),
        ("capsule", RtConfig::somt_like(workers)),
    ] {
        measure(&format!("capsule_sum/{name}/{}", input.len()), 1000, || {
            std::hint::black_box(capsule_sum(cfg, &input));
        });
    }
}

fn main() {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(2);
    println!("native_rt bench, {workers} workers");
    bench_sort(workers);
    bench_sum(workers);
}
