//! Criterion benches of the native runtime analog: conditional division
//! (CAPSULE policy) vs always-spawn vs sequential, on sort and reduce.

use capsule_rt::{capsule_sort, capsule_sum, RtConfig};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn data(len: usize) -> Vec<i64> {
    (0..len as i64).map(|i| (i.wrapping_mul(2654435761)) % 1_000_003).collect()
}

fn bench_sort(c: &mut Criterion) {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(2);
    let mut g = c.benchmark_group("capsule_sort");
    for len in [50_000usize, 400_000] {
        let input = data(len);
        for (name, cfg) in [
            ("sequential", RtConfig::never()),
            ("always", RtConfig::always(workers)),
            ("capsule", RtConfig::somt_like(workers)),
        ] {
            g.bench_with_input(BenchmarkId::new(name, len), &input, |b, input| {
                b.iter_batched(
                    || input.clone(),
                    |mut v| capsule_sort(cfg, &mut v),
                    BatchSize::LargeInput,
                );
            });
        }
    }
    g.finish();
}

fn bench_sum(c: &mut Criterion) {
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(2);
    let mut g = c.benchmark_group("capsule_sum");
    let input = data(1_000_000);
    for (name, cfg) in [
        ("sequential", RtConfig::never()),
        ("always", RtConfig::always(workers)),
        ("capsule", RtConfig::somt_like(workers)),
    ] {
        g.bench_with_input(BenchmarkId::new(name, input.len()), &input, |b, input| {
            b.iter(|| capsule_sum(cfg, input));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sort, bench_sum);
criterion_main!(benches);
