//! Checkpoint/restore equivalence: a checkpointed, preempted and resumed
//! batch must be cycle-for-cycle — and byte-for-byte — identical to an
//! uninterrupted run.
//!
//! Three contracts are pinned here:
//!
//! - **Round-trip determinism** for *every* catalog smoke entry: running
//!   with periodic checkpoints produces the exact `SimOutcome` list and
//!   report bytes of a plain `BatchRunner` run.
//! - **Preemption transparency** (seeded, property-style): parking a job
//!   at random checkpoint boundaries — including migrating the blob to a
//!   different warmed machine, as the fleet does across backends — never
//!   changes a single simulated number.
//! - **Warm-pool hygiene**: a machine that finished a restored run leaves
//!   no residue for the next fresh job (the `reset_equivalence` contract,
//!   extended to restores).

use std::sync::atomic::{AtomicBool, Ordering};

use capsule_bench::catalog::{self, Scale};
use capsule_bench::checkpoint::{run_checkpointed, CheckpointFailure, CheckpointOutcome};
use capsule_bench::{BatchReport, BatchRunner, RunOptions, BUDGET};
use capsule_core::rng::{Rng, Xoshiro256StarStar};
use capsule_sim::machine::{Machine, WarmMachine};

const OPTS: RunOptions = RunOptions { profile: true, trace: Some(4096) };

fn uninterrupted(name: &str) -> BatchReport {
    let entry = catalog::find(name).expect("catalog entry exists");
    BatchRunner::with_workers(1)
        .try_run_opts(entry.title, entry.scenarios(Scale::Smoke), BUDGET, None, OPTS)
        .expect("catalog smoke batch succeeds")
}

fn outcomes_debug(report: &BatchReport) -> String {
    let outcomes: Vec<_> = report.records.iter().map(|r| &r.outcome).collect();
    format!("{outcomes:#?}")
}

#[test]
fn every_smoke_entry_roundtrips_through_checkpoints() {
    let mut warm = WarmMachine::new();
    for name in catalog::names() {
        let entry = catalog::find(name).expect("catalog entry exists");
        let baseline = uninterrupted(name);
        let mut checkpoints = 0usize;
        let outcome = run_checkpointed(
            entry.title,
            entry.scenarios(Scale::Smoke),
            BUDGET,
            None,
            OPTS,
            &mut warm,
            2_000,
            &AtomicBool::new(false),
            None,
            |_| checkpoints += 1,
        )
        .expect("checkpointed batch succeeds");
        let CheckpointOutcome::Done(report) = outcome else {
            panic!("{name}: preempted without a preempt request");
        };
        assert_eq!(
            outcomes_debug(&report),
            outcomes_debug(&baseline),
            "{name}: checkpointed outcomes diverged from the uninterrupted run"
        );
        assert_eq!(
            report.to_json().to_string_pretty(),
            baseline.to_json().to_string_pretty(),
            "{name}: checkpointed report bytes diverged"
        );
        assert!(checkpoints > 0, "{name}: no checkpoint was ever taken");
    }
}

/// Seeded property test: preempt at random checkpoint boundaries,
/// resuming alternately on the same warmed machine and on a fresh one
/// (the migration case), until the batch completes. The final report
/// must match the uninterrupted run byte-for-byte.
#[test]
fn random_preemption_points_never_change_the_report() {
    const ENTRIES: [&str; 3] = ["table1_config", "fig6_division_tree", "fig7_throttling"];
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xCAF5_0135);
    for name in ENTRIES {
        let entry = catalog::find(name).expect("catalog entry exists");
        let baseline = uninterrupted(name);
        let mut warm = WarmMachine::new();
        let mut blob: Option<Vec<u8>> = None;
        let mut preemptions = 0usize;
        let report = loop {
            // A fresh interval per leg lands the pauses on different
            // cycle boundaries each time the job resumes.
            let interval = 500 + rng.u64_below(3_000);
            let after = rng.u64_below(4);
            let preempt = AtomicBool::new(false);
            let mut seen = 0u64;
            let result = run_checkpointed(
                entry.title,
                entry.scenarios(Scale::Smoke),
                BUDGET,
                None,
                OPTS,
                &mut warm,
                interval,
                &preempt,
                blob.as_deref(),
                |_| {
                    seen += 1;
                    if seen > after {
                        preempt.store(true, Ordering::Relaxed);
                    }
                },
            )
            .expect("checkpointed batch succeeds");
            match result {
                CheckpointOutcome::Done(report) => break report,
                CheckpointOutcome::Preempted(b) => {
                    preemptions += 1;
                    blob = Some(b);
                    if preemptions % 2 == 1 {
                        // Migrate: resume on a brand-new machine.
                        warm = WarmMachine::new();
                    }
                    // Give up preempting eventually so the test ends.
                    if preemptions >= 4 {
                        let report = match run_checkpointed(
                            entry.title,
                            entry.scenarios(Scale::Smoke),
                            BUDGET,
                            None,
                            OPTS,
                            &mut warm,
                            interval,
                            &AtomicBool::new(false),
                            blob.as_deref(),
                            |_| {},
                        )
                        .expect("final leg succeeds")
                        {
                            CheckpointOutcome::Done(report) => report,
                            CheckpointOutcome::Preempted(_) => {
                                panic!("preempted without a preempt request")
                            }
                        };
                        break report;
                    }
                }
            }
        };
        assert!(preemptions > 0, "{name}: the seed never preempted; weaken `after`");
        assert_eq!(
            outcomes_debug(&report),
            outcomes_debug(&baseline),
            "{name}: preempted+resumed outcomes diverged"
        );
        assert_eq!(
            report.to_json().to_string_pretty(),
            baseline.to_json().to_string_pretty(),
            "{name}: preempted+resumed report bytes diverged"
        );
    }
}

/// A warmed machine that restored a snapshot and finished that run must
/// be indistinguishable from fresh for the next job (no leaked arena,
/// predictor, cache or policy state).
#[test]
fn warm_machine_is_clean_after_a_restored_job() {
    let entry = catalog::find("table1_config").expect("catalog entry exists");
    let mut warm = WarmMachine::new();

    // Leg 1: run the job through a preemption + restore on `warm`.
    let preempt = AtomicBool::new(false);
    let first = run_checkpointed(
        entry.title,
        entry.scenarios(Scale::Smoke),
        BUDGET,
        None,
        OPTS,
        &mut warm,
        300,
        &preempt,
        None,
        |_| preempt.store(true, Ordering::Relaxed),
    )
    .expect("leg 1 succeeds");
    let CheckpointOutcome::Preempted(blob) = first else {
        panic!("job must be preempted at the first checkpoint");
    };
    match run_checkpointed(
        entry.title,
        entry.scenarios(Scale::Smoke),
        BUDGET,
        None,
        OPTS,
        &mut warm,
        300,
        &AtomicBool::new(false),
        Some(&blob),
        |_| {},
    )
    .expect("leg 2 succeeds")
    {
        CheckpointOutcome::Done(_) => {}
        CheckpointOutcome::Preempted(_) => panic!("preempted without a preempt request"),
    }

    // Leg 2: a different fresh scenario on the used machine must match a
    // brand-new machine exactly.
    let probe = catalog::find("fig6_division_tree").expect("catalog entry exists");
    let sc = &probe.scenarios(Scale::Smoke)[0];
    let program = sc.workload.program(sc.variant);
    let mut fresh = Machine::new(sc.config.clone(), &program).expect("machine builds");
    fresh.enable_profile();
    fresh.enable_trace(4096);
    let expected = fresh.run(BUDGET).expect("fresh run halts");
    let m = warm.prepare(sc.config.clone(), &program).expect("reset succeeds");
    m.enable_profile();
    m.enable_trace(4096);
    let actual = m.run(BUDGET).expect("warmed run halts");
    assert_eq!(
        format!("{actual:#?}"),
        format!("{expected:#?}"),
        "restored-and-finished machine leaked state into the next fresh job"
    );
}

/// Damaged or foreign blobs must come back as structured
/// `CheckpointFailure::Blob` errors, never a panic or a wrong run.
#[test]
fn damaged_and_foreign_blobs_are_rejected() {
    let entry = catalog::find("table1_config").expect("catalog entry exists");
    let mut warm = WarmMachine::new();
    let preempt = AtomicBool::new(false);
    let parked = run_checkpointed(
        entry.title,
        entry.scenarios(Scale::Smoke),
        BUDGET,
        None,
        RunOptions::default(),
        &mut warm,
        300,
        &preempt,
        None,
        |_| preempt.store(true, Ordering::Relaxed),
    )
    .expect("parking succeeds");
    let CheckpointOutcome::Preempted(blob) = parked else {
        panic!("job must be preempted at the first checkpoint");
    };

    let resume = |blob: &[u8], scenarios| {
        run_checkpointed(
            entry.title,
            scenarios,
            BUDGET,
            None,
            RunOptions::default(),
            &mut WarmMachine::new(),
            300,
            &AtomicBool::new(false),
            Some(blob),
            |_| {},
        )
    };

    // Truncations at every prefix length (stride keeps the test fast).
    for cut in (0..blob.len()).step_by(61).chain([blob.len() - 1]) {
        match resume(&blob[..cut], entry.scenarios(Scale::Smoke)) {
            Err(CheckpointFailure::Blob(_)) => {}
            other => panic!("truncated blob at {cut} must be rejected, got {other:?}"),
        }
    }

    // Wrong magic and wrong version.
    let mut bad = blob.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        resume(&bad, entry.scenarios(Scale::Smoke)),
        Err(CheckpointFailure::Blob(r)) if r.contains("magic")
    ));
    let mut bad = blob.clone();
    bad[8] = 0xfe;
    assert!(matches!(
        resume(&bad, entry.scenarios(Scale::Smoke)),
        Err(CheckpointFailure::Blob(r)) if r.contains("version")
    ));

    // A job with a different scenario count.
    let mut short = entry.scenarios(Scale::Smoke);
    short.pop();
    assert!(matches!(
        resume(&blob, short),
        Err(CheckpointFailure::Blob(r)) if r.contains("scenarios")
    ));

    // Same count, different first scenario: the embedded machine
    // snapshot's config/program hash must reject the foreign job.
    let mut swapped = entry.scenarios(Scale::Smoke);
    swapped.reverse();
    assert!(matches!(
        resume(&blob, swapped),
        Err(CheckpointFailure::Blob(r)) if r.contains("hash")
    ));

    // Trailing garbage.
    let mut long = blob.clone();
    long.push(0);
    assert!(matches!(
        resume(&long, entry.scenarios(Scale::Smoke)),
        Err(CheckpointFailure::Blob(r)) if r.contains("trailing")
    ));
}
