//! Decode-cache regression tests: the process-global cache of decoded
//! program texts must never perturb a simulated number (reports are
//! byte-identical with the cache on and off), and two programs sharing a
//! pc range must never see each other's decoded instructions (the cache
//! is keyed by text content, so "invalidation" holds by construction).
//!
//! The cache-enable flag is process-global, so every toggle lives in the
//! single test below — the content-correctness test is written to pass
//! under either state and can run concurrently.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BatchRunner;
use capsule_isa::asm::Asm;
use capsule_isa::decode::{clear_decode_cache, decode_text, set_decode_cache_enabled};
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;
use capsule_isa::Instr;
use capsule_sim::Machine;

/// With the cache enabled and disabled, a pinned catalog entry produces
/// byte-identical reports (the golden fixtures pin the enabled path, so
/// equality here extends the pin to the uncached path).
#[test]
fn reports_are_byte_identical_with_cache_on_and_off() {
    let entry = catalog::find("table1_config").expect("catalog entry exists");
    let runner = BatchRunner::with_workers(1);

    set_decode_cache_enabled(true);
    let cached = runner.run(entry.title, entry.scenarios(Scale::Smoke));

    set_decode_cache_enabled(false);
    clear_decode_cache();
    let uncached = runner.run(entry.title, entry.scenarios(Scale::Smoke));

    set_decode_cache_enabled(true);
    assert_eq!(
        cached.to_json().to_string_pretty(),
        uncached.to_json().to_string_pretty(),
        "decode cache changed a simulated number"
    );
}

fn program(text: Vec<Instr>, result: i64) -> (Program, i64) {
    (Program::new(text, DataBuilder::new().build(), 4096).with_thread(ThreadSpec::at(0)), result)
}

/// Two programs occupying the same pc range [0, len) with different
/// instructions: each machine must execute its own program's text, and
/// each decode must serve its own metadata — a pc-indexed cache without
/// content keying would confuse them.
#[test]
fn programs_sharing_a_pc_range_never_share_decodes() {
    let mut a = Asm::new();
    a.li(Reg(1), 7);
    a.addi(Reg(1), Reg(1), 35);
    a.out(Reg(1));
    a.halt();
    let (prog_a, want_a) = program(a.assemble().expect("assembles"), 42);

    // Same instruction count, same pcs, different text.
    let mut b = Asm::new();
    b.li(Reg(1), 50);
    b.addi(Reg(1), Reg(1), -8);
    b.out(Reg(1));
    b.halt();
    let (prog_b, want_b) = program(b.assemble().expect("assembles"), 42);
    assert_eq!(prog_a.text.len(), prog_b.text.len(), "pc ranges must coincide");
    assert_ne!(prog_a.text, prog_b.text, "texts must differ");

    let da = decode_text(&prog_a.text);
    let db = decode_text(&prog_b.text);
    assert_eq!(da.instrs(), &prog_a.text[..], "decode A serves A's text");
    assert_eq!(db.instrs(), &prog_b.text[..], "decode B serves B's text");
    assert_ne!(da.key(), db.key(), "different texts hash to different keys");

    // Interleave runs A, B, A: every run must compute its own result.
    for (prog, want) in [(&prog_a, want_a), (&prog_b, want_b), (&prog_a, want_a)] {
        let outcome = Machine::new(capsule_core::config::MachineConfig::table1_somt(), prog)
            .expect("machine builds")
            .run(100_000)
            .expect("halts");
        assert_eq!(outcome.ints(), vec![want]);
    }
}

/// Identical texts share one decoded block (when the cache is enabled,
/// which other tests may toggle — so only assert the always-true half:
/// decoding is idempotent on content).
#[test]
fn decoding_is_idempotent_on_content() {
    let mut a = Asm::new();
    a.li(Reg(2), 1);
    a.out(Reg(2));
    a.halt();
    let text = a.assemble().expect("assembles");
    let d1 = decode_text(&text);
    let d2 = decode_text(&text.clone());
    assert_eq!(d1.instrs(), d2.instrs());
    assert_eq!(d1.key(), d2.key());
}
