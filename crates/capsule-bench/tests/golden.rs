//! Golden determinism fixtures: exact simulated outcomes for a set of
//! smoke-scale catalog entries, pinned byte-for-byte.
//!
//! The cycle-level machine's outcomes are part of the repo's contract:
//! performance work on the simulator hot path must not perturb a single
//! simulated number. These tests run four catalog entries at smoke scale
//! and compare the full `capsule-bench-report/1` JSON against checked-in
//! fixtures, plus the complete `SimStats` of one run (fields the report
//! does not carry: fetched, branches, swaps, lock counters, ...).
//!
//! To regenerate after an *intentional* timing change (new machine
//! feature, config change — never a pure optimization):
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p capsule-bench --test golden
//! ```

use capsule_bench::catalog::{self, Scale};
use capsule_bench::{BatchRunner, RunOptions, BUDGET};
use capsule_core::config::MachineConfig;
use capsule_sim::Machine;
use capsule_workloads::dijkstra::Dijkstra;
use capsule_workloads::{Variant, Workload};

/// The pinned entries. Together they cover the SOMT, SMT and superscalar
/// machines, division + throttling, raw programs, and the division tree.
const GOLDEN_ENTRIES: [&str; 4] =
    ["table1_config", "fig6_division_tree", "fig7_throttling", "toolchain_overhead"];

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn check_or_bless(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var("GOLDEN_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {} ({e}); run with GOLDEN_BLESS=1", name));
    assert_eq!(
        actual, expected,
        "golden fixture {name} diverged: the simulator's timed outcomes changed.\n\
         If this is an intentional model change, regenerate with GOLDEN_BLESS=1;\n\
         if it came from a performance refactor, the refactor is wrong."
    );
}

#[test]
fn smoke_scale_reports_match_fixtures() {
    let runner = BatchRunner::with_workers(2);
    for name in GOLDEN_ENTRIES {
        let entry = catalog::find(name).expect("golden entry exists");
        let report = runner.run(entry.title, entry.scenarios(Scale::Smoke));
        let json = report.to_json().to_string_pretty();
        check_or_bless(&format!("{name}.smoke.json"), &json);
    }
}

/// Observability must be observation-only: the same golden entries run
/// with event tracing *and* per-stage profiling enabled have to produce
/// the exact fixture bytes. If this diverges while
/// `smoke_scale_reports_match_fixtures` passes, an observability hook
/// leaked into simulated timing.
#[test]
fn tracing_and_profiling_do_not_perturb_golden_reports() {
    let runner = BatchRunner::with_workers(2);
    let opts = RunOptions { profile: true, trace: Some(65_536) };
    for name in GOLDEN_ENTRIES {
        let entry = catalog::find(name).expect("golden entry exists");
        let report = runner
            .try_run_opts(entry.title, entry.scenarios(Scale::Smoke), BUDGET, None, opts)
            .expect("batch succeeds");
        // The observation data did ride out...
        for r in &report.records {
            assert!(r.outcome.profile.is_some(), "{name}: profile missing");
            assert!(r.outcome.trace.is_some(), "{name}: trace missing");
        }
        // ...and the report bytes are still the pinned fixture.
        let json = report.to_json().to_string_pretty();
        let expected = std::fs::read_to_string(fixture_path(&format!("{name}.smoke.json")))
            .expect("fixture exists (blessed by smoke_scale_reports_match_fixtures)");
        assert_eq!(
            json, expected,
            "golden fixture {name} diverged under tracing: observability perturbed the run"
        );
    }
}

#[test]
fn full_simstats_match_fixture() {
    // One run pinned down to every SimStats field and cache counter.
    let w = Dijkstra::figure3(1, 40);
    let program = w.program(Variant::Component);
    let mut m = Machine::new(MachineConfig::table1_somt(), &program).expect("machine builds");
    let o = m.run(1_000_000_000).expect("halts");
    w.check(&o.output).expect("correct result");
    let text = format!(
        "{:#?}\nl1i: {:?}\nl1d: {:?}\nl2: {:?}\nmem_accesses: {}\ntree_len: {}\noutput: {:?}\n",
        o.stats,
        o.l1i,
        o.l1d,
        o.l2,
        o.mem_accesses,
        o.tree.len(),
        o.ints()
    );
    check_or_bless("dijkstra_somt.stats.txt", &text);
}
