//! `Machine::reset` equivalence: a machine rebuilt in place for a new
//! program must be cycle-for-cycle identical to a freshly constructed
//! one. This is the contract that lets the batch runner and the job
//! server keep warmed machines across runs without perturbing a single
//! simulated number.
//!
//! The check runs every scenario of three catalog entries back-to-back
//! through one warmed machine (so each reset inherits the previous run's
//! buffers, arena occupancy and cache of decoded text) and compares the
//! complete `SimOutcome` — stats, output, sections, tree, cache stats,
//! per-stage profile and event trace — against a fresh machine's, via
//! the exhaustive `Debug` rendering.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::BUDGET;
use capsule_sim::machine::{Machine, WarmMachine};
use capsule_sim::SimOutcome;

/// Three entries spanning the SOMT/SMT/superscalar configs, division +
/// throttling, and raw toolchain programs.
const ENTRIES: [&str; 3] = ["table1_config", "fig7_throttling", "toolchain_overhead"];

fn run_to_debug(m: &mut Machine) -> String {
    m.enable_profile();
    m.enable_trace(4096);
    let outcome: SimOutcome = m.run(BUDGET).expect("catalog scenario halts");
    format!("{outcome:#?}")
}

#[test]
fn reset_machine_is_cycle_identical_to_fresh() {
    let mut warm = WarmMachine::new();
    let mut compared = 0usize;
    for name in ENTRIES {
        let entry = catalog::find(name).expect("catalog entry exists");
        for sc in entry.scenarios(Scale::Smoke) {
            let program = sc.workload.program(sc.variant);

            let mut fresh = Machine::new(sc.config.clone(), &program).expect("machine builds");
            let expected = run_to_debug(&mut fresh);

            // The warmed machine carries state over from the previous
            // scenario (different program, config, even thread count);
            // reset must erase all of it.
            let m = warm.prepare(sc.config.clone(), &program).expect("reset succeeds");
            let actual = run_to_debug(m);

            assert_eq!(
                actual, expected,
                "{name}/{}/{}: outcome after reset diverged from a fresh machine",
                sc.group, sc.label
            );
            compared += 1;
        }
    }
    assert!(compared >= 3, "expected at least one scenario per entry, compared {compared}");
}

#[test]
fn reset_validation_failure_leaves_the_machine_usable() {
    let entry = catalog::find("table1_config").expect("catalog entry exists");
    let sc = &entry.scenarios(Scale::Smoke)[0];
    let program = sc.workload.program(sc.variant);

    let mut warm = WarmMachine::new();
    warm.prepare(sc.config.clone(), &program).expect("initial build");

    // A config with zero contexts fails validation; the held machine must
    // survive and still run the original program afterwards.
    let mut bad = sc.config.clone();
    bad.contexts = 0;
    assert!(warm.prepare(bad, &program).is_err(), "invalid config must be rejected");

    let m = warm.prepare(sc.config.clone(), &program).expect("slot still usable");
    let outcome = m.run(BUDGET).expect("runs after failed reset");
    let fresh = Machine::new(sc.config.clone(), &program)
        .expect("machine builds")
        .run(BUDGET)
        .expect("fresh run halts");
    assert_eq!(outcome.stats, fresh.stats);
}
