//! Structural validation of the Chrome trace-event export on a real
//! catalog run: the throttling scenario (Figure 7) at smoke scale must
//! yield a timeline with one named lane per hardware context and at
//! least one `deny:*` division instant — the paper's "the architecture
//! denies the replication" moment, visible in Perfetto.

use capsule_bench::catalog::{self, Scale};
use capsule_bench::trace_export::export_batch;
use capsule_bench::{BatchRunner, RunOptions, BUDGET};
use capsule_core::output::Json;

fn lane_names(doc: &Json) -> Vec<String> {
    doc.get("traceEvents")
        .expect("traceEvents")
        .as_array()
        .expect("array")
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .map(|e| e.get("args").unwrap().get("name").unwrap().as_str().unwrap().to_string())
        .collect()
}

#[test]
fn throttling_timeline_has_context_lanes_and_deny_instants() {
    let entry = catalog::find("fig7_throttling").expect("entry exists");
    let scenarios = entry.scenarios(Scale::Smoke);
    let contexts: Vec<usize> = scenarios.iter().map(|s| s.config.contexts).collect();
    let opts = RunOptions { profile: true, trace: Some(200_000) };
    let report = BatchRunner::with_workers(2)
        .try_run_opts(entry.title, scenarios, BUDGET, None, opts)
        .expect("batch succeeds");

    let dir = std::env::temp_dir().join(format!("capsule-chrome-test-{}", std::process::id()));
    let written = export_batch(&dir, entry.name, &report, &contexts).expect("export writes");
    assert_eq!(written.len(), report.records.len(), "every record exports one file");

    let mut saw_deny = false;
    for (i, (w, r)) in written.iter().zip(report.records.iter()).enumerate() {
        let text = std::fs::read_to_string(&w.path).expect("trace file readable");
        let doc = Json::parse(&text).expect("chrome export is valid JSON");

        // One lane per hardware context, plus the divisions and sections
        // lanes, all named through thread_name metadata.
        let lanes = lane_names(&doc);
        assert_eq!(lanes.len(), contexts[i] + 2, "lane count for record {i}");
        for ctx in 0..contexts[i] {
            assert!(lanes.contains(&format!("ctx{ctx}")), "missing ctx{ctx} lane");
        }
        assert!(lanes.contains(&"divisions".to_string()));
        assert!(lanes.contains(&"sections".to_string()));

        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // The embedded stage profile from the same run.
        assert!(
            events.iter().any(|e| e.get("name").and_then(Json::as_str) == Some("stage_profile")),
            "stage_profile instant missing"
        );
        // Worker residency intervals on context lanes.
        assert!(
            events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("X")),
            "no residency intervals in record {i}"
        );
        // Truncation accounting is always present.
        let other = doc.get("otherData").unwrap();
        assert_eq!(
            other.get("retained_events").unwrap().as_u64().unwrap() as usize,
            r.outcome.trace.as_ref().unwrap().events().len()
        );

        // The throttled runs deny divisions; at least one must surface
        // as a deny:* instant on the divisions lane.
        let denies: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Json::as_str).is_some_and(|n| n.starts_with("deny:"))
            })
            .collect();
        if r.group.ends_with("/throttled") {
            assert!(!denies.is_empty(), "no deny instant in throttled record {i} ({})", r.group);
            saw_deny = true;
            for d in denies {
                assert_eq!(d.get("ph").unwrap().as_str(), Some("i"));
                assert_eq!(d.get("tid").unwrap().as_u64(), Some(contexts[i] as u64));
                assert_eq!(d.get("args").unwrap().get("child").unwrap(), &Json::Null);
            }
        }
    }
    assert!(saw_deny, "the throttling entry produced no denied division at all");
    std::fs::remove_dir_all(&dir).ok();
}
