//! Re-export of the component runtime fragments
//! ([`capsule_isa::rtlib`]): token-counter join, pooled worker stacks,
//! phase barrier, and the generic divide-in-half range worker. They live
//! in the ISA crate (the toolchain links them into post-processed
//! programs, paper §3.2); the semantic tests below exercise them on the
//! reference interpreter, which the ISA crate cannot depend on.

pub use capsule_isa::rtlib::*;

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_isa::asm::Asm;
    use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
    use capsule_isa::reg::Reg;
    use capsule_sim::{Interp, InterpConfig};

    #[test]
    fn labels_are_unique() {
        let l = Labels::new("x");
        assert_ne!(l.fresh("a"), l.fresh("a"));
        assert!(l.fresh("loop").starts_with("x_loop_"));
    }

    #[test]
    fn runtime_layout_is_disjoint() {
        let mut d = DataBuilder::new();
        let rt = init_runtime(&mut d, 1, 4, 256);
        assert!(rt.tokens < rt.pool_head);
        assert!(rt.pool_head < rt.pool_next);
        assert!(rt.pool_next < rt.pool_base);
        assert_eq!(rt.pool_slots, 4);
    }

    /// Run a tiny program through the interpreter to validate the emitted
    /// fragments semantically.
    fn run(
        f: impl FnOnce(&mut Asm, &mut DataBuilder) -> Vec<ThreadSpec>,
        max_workers: usize,
    ) -> Vec<i64> {
        let mut a = Asm::new();
        let mut d = DataBuilder::new();
        let threads = f(&mut a, &mut d);
        let mut p = Program::new(a.assemble().unwrap(), d.build(), 1 << 18);
        p.threads = threads;
        let mut i = Interp::new(&p, InterpConfig { max_workers, allow_division: true }).unwrap();
        let out = i.run(10_000_000).unwrap();
        out.output.iter().filter_map(|v| v.as_int()).collect()
    }

    #[test]
    fn locked_add_and_join() {
        let out = run(
            |a, d| {
                let rt = init_runtime(d, 1, 2, 256);
                let l = Labels::new("t");
                emit_locked_add(a, rt.tokens, 5);
                emit_locked_add(a, rt.tokens, -6);
                emit_join_spin(a, &rt, &l); // 0 immediately
                a.li(Reg(1), 77);
                a.out(Reg(1));
                a.halt();
                vec![ThreadSpec::at(0)]
            },
            4,
        );
        assert_eq!(out, vec![77]);
    }

    #[test]
    fn stack_pool_alloc_free_roundtrip() {
        let out = run(
            |a, d| {
                let rt = init_runtime(d, 1, 2, 256);
                let l = Labels::new("t");
                emit_stack_alloc(a, &rt, &l);
                a.out(STACK_ID);
                // push/pop through the allocated stack
                a.li(Reg(1), 41);
                emit_push(a, Reg(1));
                a.li(Reg(1), 0);
                emit_pop(a, Reg(2));
                a.addi(Reg(2), Reg(2), 1);
                a.out(Reg(2));
                emit_stack_free(a, &rt);
                // allocate again: same slot comes back (LIFO free list)
                emit_stack_alloc(a, &rt, &l);
                a.out(STACK_ID);
                a.halt();
                vec![ThreadSpec::at(0)]
            },
            4,
        );
        assert_eq!(out, vec![0, 42, 0]);
    }

    #[test]
    fn distinct_workers_get_distinct_stacks() {
        let out = run(
            |a, d| {
                let rt = init_runtime(d, 2, 4, 256);
                let l = Labels::new("t");
                let sum = d.word(0);
                // two loader threads allocate a stack each and write its id
                // into a locked accumulator (ids 0 and 1 in some order).
                emit_stack_alloc(a, &rt, &l);
                a.li(Reg(1), sum as i64);
                a.mlock(Reg(1));
                a.ld(Reg(2), 0, Reg(1));
                a.slli(Reg(3), STACK_ID, 4);
                a.addi(Reg(3), Reg(3), 1); // encode presence
                a.add(Reg(2), Reg(2), Reg(3));
                a.st(Reg(2), 0, Reg(1));
                a.munlock(Reg(1));
                emit_locked_add(a, rt.tokens, -1);
                a.tid(Reg(4));
                a.bne(Reg(4), Reg::ZERO, "park");
                emit_join_spin(a, &rt, &l);
                a.li(Reg(1), sum as i64);
                a.ld(Reg(2), 0, Reg(1));
                a.out(Reg(2));
                a.halt();
                a.bind("park");
                a.kthr();
                vec![ThreadSpec::at(0), ThreadSpec::at(0)]
            },
            4,
        );
        // ids {0,1}: encoded contributions 1 and 17 in some order = 18.
        assert_eq!(out, vec![18]);
    }

    #[test]
    fn barrier_releases_all_parties() {
        let out = run(
            |a, d| {
                let b = init_barrier(d, 2);
                let rt = init_runtime(d, 2, 2, 256);
                let l = Labels::new("t");
                let cell = d.word(0);
                // Phase 1: both threads add 1; barrier; thread 0 reads.
                emit_locked_add(a, cell, 1);
                emit_barrier_wait(a, &b, &l);
                a.tid(Reg(1));
                a.bne(Reg(1), Reg::ZERO, "park");
                a.li(Reg(2), cell as i64);
                a.ld(Reg(3), 0, Reg(2));
                a.out(Reg(3)); // must be 2: barrier ordered the adds
                a.halt();
                a.bind("park");
                a.kthr();
                let _ = rt;
                vec![ThreadSpec::at(0), ThreadSpec::at(0)]
            },
            4,
        );
        assert_eq!(out, vec![2]);
    }
}
