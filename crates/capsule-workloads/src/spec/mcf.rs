//! 181.mcf analog: route planning as a parallel tree search.
//!
//! Paper §5: *"In 181.mcf, the component replaces a sequential tree
//! traversal (for route planning) with a parallel tree search ... we
//! chose to test division at every tree node, and ... the code only
//! performs an elementary task at each node"* — hence mcf's very high
//! division-request rate in Table 3.
//!
//! The kernel searches a random cost tree for the cheapest root-to-leaf
//! route, reusing the Dijkstra component walk (a tree is a graph where no
//! path ever dies by pruning, so every node is visited and `nthr` is
//! probed at every interior node). Serial pre/post passes over the tree
//! arrays approximate the 55 % of 181.mcf the paper leaves untouched.

use capsule_core::OutValue;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;

use crate::datasets::{Graph, Tree};
use crate::dijkstra::{emit_walk_body, layout_graph, GraphLayout, UNREACHED};
use crate::rt::{emit_join_spin, emit_stack_alloc, emit_stack_free, init_runtime, Labels};
use crate::spec::KERNEL_SECTION;
use crate::{expect_ints, Variant, Workload};

const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const PENDING: Reg = Reg(13);

/// The mcf analog over one random cost tree.
#[derive(Debug, Clone)]
pub struct Mcf {
    tree: Tree,
    graph: Graph,
    /// Serial pre/post passes over the tree arrays (sizes the
    /// non-componentized fraction; Table 2 reports ~55 % serial).
    pub serial_passes: usize,
}

impl Mcf {
    /// Builds the analog for `tree`.
    pub fn new(tree: Tree, serial_passes: usize) -> Self {
        let adj: Vec<Vec<(u32, i64)>> = tree
            .children
            .iter()
            .map(|kids| kids.iter().map(|&c| (c, tree.cost[c as usize])).collect())
            .collect();
        Mcf { tree, graph: Graph { adj }, serial_passes }
    }

    /// Default evaluation instance.
    pub fn standard(seed: u64) -> Self {
        Mcf::new(Tree::random(seed, 12, 2, 3, 4000, 100), 8)
    }

    /// Host-reference cheapest route cost.
    pub fn expected_min(&self) -> i64 {
        self.tree.min_leaf_cost()
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Emits one serial pass: a checksum walk over the dist/cost arrays
    /// (memory-touching serial work, like mcf's untouched phases).
    fn emit_serial_pass(&self, a: &mut Asm, g: &GraphLayout, l: &Labels, acc: Reg) {
        let lp = l.fresh("serial");
        a.li(R5, g.idx as i64);
        a.li(R6, g.n as i64);
        a.bind(&lp);
        a.ld(R7, 0, R5);
        a.add(acc, acc, R7);
        a.xori(acc, acc, 0x5a);
        a.addi(R5, R5, 8);
        a.addi(R6, R6, -1);
        a.bne(R6, Reg::ZERO, &lp);
    }

    fn build(&self, allow_divide: bool) -> Program {
        let mut d = DataBuilder::new();
        let g = layout_graph(&mut d, &self.graph, UNREACHED);
        let rt = init_runtime(&mut d, 1, 32, 4096);
        let mut a = Asm::new();
        let l = Labels::new("mcf");
        let acc = Reg(21); // serial checksum accumulator (survives the walk)

        // ---- serial pre-phase ----
        a.li(acc, 0);
        for _ in 0..self.serial_passes {
            self.emit_serial_pass(&mut a, &g, &l, acc);
        }
        // ---- componentized kernel: the tree search ----
        a.mark_start(KERNEL_SECTION);
        a.li(PENDING, 0);
        a.li(Reg::A0, 0);
        a.li(Reg::A1, 0);
        emit_stack_alloc(&mut a, &rt, &l);
        a.j("w_node_check");
        a.bind("w_finish");
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "w_die");
        emit_join_spin(&mut a, &rt, &l);
        a.mark_end(KERNEL_SECTION);
        // min over the leaves (serial post-scan)
        a.li(R5, 0); // node index
        a.li(R6, UNREACHED); // best
        a.bind("min_loop");
        a.li(R7, g.n as i64);
        a.bge(R5, R7, "min_done");
        a.slli(R7, R5, 3);
        a.li(R8, g.idx as i64);
        a.add(R8, R8, R7);
        a.ld(R9, 0, R8); // idx[u]
        a.ld(R8, 8, R8); // idx[u+1]
        a.bne(R9, R8, "min_next"); // interior node
        a.li(R8, g.dist as i64);
        a.add(R8, R8, R7);
        a.ld(R9, 0, R8);
        a.bge(R9, R6, "min_next");
        a.mv(R6, R9);
        a.bind("min_next");
        a.addi(R5, R5, 1);
        a.j("min_loop");
        a.bind("min_done");
        a.mv(Reg(22), R6); // stash best across the serial post-phase
                           // ---- serial post-phase ----
        for _ in 0..self.serial_passes {
            self.emit_serial_pass(&mut a, &g, &l, acc);
        }
        // fold the serial checksum into a second output so it cannot be
        // skipped, then report the route cost
        a.out(Reg(22));
        a.out(acc);
        a.halt();
        a.bind("w_die");
        emit_stack_free(&mut a, &rt);
        a.kthr();
        emit_walk_body(&mut a, "w", &g, &rt, allow_divide);

        Program::new(a.assemble().expect("mcf assembles"), d.build(), 1 << 17)
            .with_thread(ThreadSpec::at(0))
    }

    /// Host-side mirror of the serial checksum.
    fn expected_serial_acc(&self) -> i64 {
        let n = self.graph.len();
        let mut idx = Vec::with_capacity(n + 1);
        let mut acc_count = 0i64;
        for u in 0..n {
            idx.push(acc_count);
            acc_count += self.graph.adj[u].len() as i64;
        }
        // The pass reads idx[0..n] (not the n+1-th entry).
        let mut acc = 0i64;
        for _ in 0..self.serial_passes * 2 {
            for &v in idx.iter().take(n) {
                acc = acc.wrapping_add(v) ^ 0x5a;
            }
        }
        acc
    }
}

impl Workload for Mcf {
    fn name(&self) -> &'static str {
        "mcf"
    }

    fn supports(&self, variant: Variant) -> bool {
        !matches!(variant, Variant::Static(_))
    }

    fn program(&self, variant: Variant) -> Program {
        match variant {
            Variant::Sequential => self.build(false),
            Variant::Component => self.build(true),
            Variant::Static(_) => panic!("mcf has no static variant (see paper §5)"),
        }
    }

    fn check(&self, output: &[OutValue]) -> Result<(), String> {
        expect_ints(output, &[self.expected_min(), self.expected_serial_acc()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::config::MachineConfig;
    use capsule_sim::machine::Machine;
    use capsule_sim::{Interp, InterpConfig};

    fn small() -> Mcf {
        Mcf::new(Tree::random(11, 7, 2, 3, 200, 50), 2)
    }

    #[test]
    fn component_finds_min_route_on_interp() {
        let w = small();
        let p = w.program(Variant::Component);
        let out = Interp::new(&p, InterpConfig::default()).unwrap().run(100_000_000).unwrap();
        w.check(&out.output).unwrap();
    }

    #[test]
    fn component_probes_at_every_interior_node() {
        let w = small();
        let p = w.program(Variant::Component);
        let o = Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(500_000_000).unwrap();
        w.check(&o.output).unwrap();
        // Every interior node with k children issues k-1 probes.
        let expected_probes: u64 =
            w.tree().children.iter().map(|k| k.len().saturating_sub(1) as u64).sum();
        assert_eq!(o.stats.divisions_requested, expected_probes);
    }

    #[test]
    fn sequential_matches() {
        let w = small();
        let p = w.program(Variant::Sequential);
        let o = Machine::new(MachineConfig::table1_superscalar(), &p)
            .unwrap()
            .run(500_000_000)
            .unwrap();
        w.check(&o.output).unwrap();
    }

    #[test]
    fn kernel_section_is_tracked() {
        let w = small();
        let p = w.program(Variant::Component);
        let o = Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(500_000_000).unwrap();
        let frac = o.sections.section_fraction(KERNEL_SECTION, o.stats.cycles);
        assert!(frac > 0.0 && frac < 1.0, "kernel fraction {frac}");
    }
}
