//! Re-engineered SPEC CINT2000 analogs (paper §4, Table 2, Figure 8,
//! Table 3).
//!
//! The paper componentizes a kernel of each program and embeds it in the
//! untouched serial remainder; Table 2 reports how much of the execution
//! the componentized subgraph covers (mcf 45 %, vpr 93 %, bzip2 20 %,
//! crafty 100 %). Each analog here implements the kernel the paper names
//! and wraps it in serial pre/post phases sized to approximate those
//! fractions:
//!
//! - [`mcf`] — route planning as a parallel tree search (division tested
//!   at **every** node, giving the high division rate of Table 3);
//! - [`vpr`] — FPGA routing: negotiated multi-path maze routing over a
//!   grid, one component shortest-path exploration per net per iteration;
//! - [`bzip2`] — block-sorting compression: component quicksort over the
//!   block's suffix array;
//! - [`crafty`] — game-tree search driven by a *software* thread pool,
//!   reproducing the paper's finding that software-managed contexts
//!   inhibit hardware division.

pub mod bzip2;
pub mod crafty;
pub mod mcf;
pub mod vpr;

pub use bzip2::Bzip2;
pub use crafty::Crafty;
pub use mcf::Mcf;
pub use vpr::Vpr;

/// Section id used by all SPEC analogs for their componentized kernel.
pub const KERNEL_SECTION: u16 = 1;
