//! 186.crafty analog: game-tree search driven by a software thread pool.
//!
//! Paper §5: the crafty component version is derived from an existing
//! pthread-based parallel implementation that *"maintains a pool of
//! threads in active wait and, in some sense, manages thread contexts by
//! software, and mostly inhibits dynamic component division"* — and the
//! pool overhead makes a 4-context machine (2.3×) beat an 8-context one
//! (1.7×).
//!
//! The analog searches a random game tree two-ply style: every root child
//! defines a task (evaluate `cost[child] + min` leaf cost of its subtree);
//! the final answer is the maximum over tasks. Tasks are distributed
//! through a lock-protected software work queue served by `P` loader
//! threads (the pool). The component variant additionally probes `nthr`
//! at every interior subtree node — probes that mostly fail while the
//! pool occupies the contexts, exactly the paper's observation.

use capsule_core::OutValue;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;

use crate::datasets::Tree;
use crate::rt::{
    emit_join_spin, emit_locked_add, emit_stack_alloc, emit_stack_free, init_runtime, Labels,
};
use crate::spec::KERNEL_SECTION;
use crate::{expect_ints, Variant, Workload};

/// "Infinity" for subtree minima.
const BIG: i64 = 1 << 60;

const PENDING: Reg = Reg(13);
const NODE: Reg = Reg::A0;
const ACCC: Reg = Reg::A1; // accumulated path cost
const CV: Reg = Reg::A2; // staged child node
const CP: Reg = Reg::A3; // staged child path cost
const TASK: Reg = Reg(22); // current task id (inherited by divided children)
const LMIN: Reg = Reg(21); // worker-local minimum
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const R10: Reg = Reg(10);
const R12: Reg = Reg(12);

/// The crafty analog.
#[derive(Debug, Clone)]
pub struct Crafty {
    tree: Tree,
    /// Software pool size (the pthread count of the original).
    pub pool_threads: usize,
    /// Tasks published per wave: the pool consumes the search in waves
    /// (like crafty's per-ply splits) and idle threads *actively wait*
    /// between waves — the software overhead the paper blames for the
    /// 4-context > 8-context anomaly.
    pub wave_size: usize,
}

impl Crafty {
    /// Builds the analog; the tree's root children become the task list.
    pub fn new(tree: Tree, pool_threads: usize) -> Self {
        assert!(pool_threads >= 1);
        assert!(!tree.children[0].is_empty(), "root must have children");
        Crafty { tree, pool_threads, wave_size: 6 }
    }

    /// Overrides the wave size (builder style).
    pub fn with_wave(mut self, wave_size: usize) -> Self {
        assert!(wave_size >= 1);
        self.wave_size = wave_size;
        self
    }

    /// Default evaluation instance: a wide root (24 tasks, consumed in
    /// waves) over uneven subtrees.
    pub fn standard(seed: u64, pool_threads: usize) -> Self {
        let subs: Vec<(i64, Tree)> = (0..24)
            .map(|i| {
                let edge = (i * 13) % 50 + 1;
                (edge, Tree::random(seed * 100 + i as u64, 7, 2, 3, 160, 60))
            })
            .collect();
        Crafty::new(Tree::graft(subs), pool_threads)
    }

    /// Host-reference value: max over root children of
    /// `cost[c] + min leaf cost below c`.
    pub fn expected_value(&self) -> i64 {
        fn min_below(t: &Tree, u: usize, acc: i64) -> i64 {
            if t.children[u].is_empty() {
                return acc;
            }
            t.children[u]
                .iter()
                .map(|&c| min_below(t, c as usize, acc + t.cost[c as usize]))
                .min()
                .expect("non-empty")
        }
        self.tree.children[0]
            .iter()
            .map(|&c| min_below(&self.tree, c as usize, self.tree.cost[c as usize]))
            .max()
            .expect("root has children")
    }

    /// The game tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    fn build(&self, pool: usize, allow_divide: bool) -> Program {
        let t = &self.tree;
        let n = t.len();
        let ntasks = t.children[0].len();
        let mut d = DataBuilder::new();
        // Tree CSR: idx, child array, cost array.
        let mut idx = Vec::with_capacity(n + 1);
        let mut childs = Vec::new();
        let mut acc = 0i64;
        for u in 0..n {
            idx.push(acc);
            for &c in &t.children[u] {
                childs.push(c as i64);
                acc += 1;
            }
        }
        idx.push(acc);
        d.label("idx");
        let idx_a = d.words(&idx);
        d.label("childs");
        let childs_a = d.words(&childs);
        d.label("cost");
        let cost_a = d.words(&t.cost);
        // Task list = root children; per-task minima; queue head.
        let roots: Vec<i64> = t.children[0].iter().map(|&c| c as i64).collect();
        d.label("tasks");
        let tasks_a = d.words(&roots);
        d.label("task_min");
        let task_min = d.words(&vec![BIG; ntasks]);
        let qhead = d.word(0);
        let wave = self.wave_size.min(ntasks);
        let published = d.word(wave as i64);
        let done_c = d.word(0);
        let finished = d.word(0);
        let rt = init_runtime(&mut d, pool as i64, pool + 26, 4096);

        let mut a = Asm::new();
        let l = Labels::new("cr");

        // ---- pool thread entry ----
        a.mark_start(KERNEL_SECTION);
        emit_stack_alloc(&mut a, &rt, &l);
        a.bind("task_loop");
        // test-and-test-and-set: peek without the lock first (the
        // pthread-style busy wait keeps the thread fetching and issuing,
        // polluting the shared pipeline — the pool's software overhead)
        a.li(R5, qhead as i64);
        a.ld(TASK, 0, R5);
        a.li(R6, published as i64);
        a.ld(R7, 0, R6);
        a.blt(TASK, R7, "try_take");
        // wave exhausted: ACTIVE WAIT on plain loads
        a.tid(R6);
        a.bne(R6, Reg::ZERO, "check_finished");
        // thread 0 doubles as the coordinator: publish the next wave once
        // every task of the current one has completed
        a.li(R6, done_c as i64);
        a.ld(R7, 0, R6);
        a.li(R6, published as i64);
        a.ld(R8, 0, R6);
        a.bne(R7, R8, "check_finished");
        a.li(R6, ntasks as i64);
        a.bge(R8, R6, "set_finished");
        a.addi(R8, R8, wave as i64);
        a.li(R6, ntasks as i64);
        a.bge(R6, R8, "store_pub");
        a.mv(R8, R6);
        a.bind("store_pub");
        a.li(R6, published as i64);
        a.st(R8, 0, R6);
        a.j("task_loop");
        a.bind("set_finished");
        a.li(R6, finished as i64);
        a.li(R7, 1);
        a.st(R7, 0, R6);
        a.bind("check_finished");
        a.li(R6, finished as i64);
        a.ld(R7, 0, R6);
        a.beq(R7, Reg::ZERO, "task_loop");
        a.j("pool_done");
        a.bind("try_take");
        // confirm under the lock
        a.li(R5, qhead as i64);
        a.mlock(R5);
        a.ld(TASK, 0, R5);
        a.li(R6, published as i64);
        a.ld(R7, 0, R6);
        a.blt(TASK, R7, "take_task");
        a.munlock(R5);
        a.j("task_loop");
        a.bind("take_task");
        a.addi(R6, TASK, 1);
        a.st(R6, 0, R5);
        a.munlock(R5);
        // current work item: the task's root child
        a.slli(R5, TASK, 3);
        a.li(R6, tasks_a as i64);
        a.add(R5, R5, R6);
        a.ld(NODE, 0, R5);
        a.slli(R5, NODE, 3);
        a.li(R6, cost_a as i64);
        a.add(R5, R5, R6);
        a.ld(ACCC, 0, R5);
        a.li(LMIN, BIG);
        a.li(PENDING, 0);
        a.j("dfs");
        // ---- subtree DFS with optional division probing ----
        a.bind("dfs");
        // kids of NODE
        a.slli(R5, NODE, 3);
        a.li(R6, idx_a as i64);
        a.add(R5, R5, R6);
        a.ld(R7, 0, R5); // e
        a.ld(R8, 8, R5); // end
        a.bne(R7, R8, "interior");
        // leaf: fold into the local minimum
        a.bge(ACCC, LMIN, "dfs_next");
        a.mv(LMIN, ACCC);
        a.j("dfs_next");
        a.bind("interior");
        a.sub(R9, R8, R7);
        a.li(R6, 1);
        a.beq(R9, R6, "tail");
        // stage child edge; probe or defer
        a.slli(R9, R7, 3);
        a.li(R6, childs_a as i64);
        a.add(R9, R9, R6);
        a.ld(CV, 0, R9);
        a.slli(R10, CV, 3);
        a.li(R6, cost_a as i64);
        a.add(R10, R10, R6);
        a.ld(R10, 0, R10);
        a.add(CP, ACCC, R10);
        if allow_divide {
            emit_locked_add(&mut a, rt.tokens, 1);
            a.nthr(R12, "division_child");
            a.li(R6, -1);
            a.bne(R12, R6, "advance");
            emit_locked_add(&mut a, rt.tokens, -1);
        }
        a.push_reg(CV);
        a.push_reg(CP);
        a.addi(PENDING, PENDING, 1);
        a.bind("advance");
        a.addi(R7, R7, 1);
        // loop over remaining edges of this node
        a.bne(R7, R8, "interior_more");
        a.j("dfs_next");
        a.bind("interior_more");
        a.sub(R9, R8, R7);
        a.li(R6, 1);
        a.bne(R9, R6, "stage_again");
        a.bind("tail");
        // last child: walk down without spawning
        a.slli(R9, R7, 3);
        a.li(R6, childs_a as i64);
        a.add(R9, R9, R6);
        a.ld(NODE, 0, R9);
        a.slli(R9, NODE, 3);
        a.li(R6, cost_a as i64);
        a.add(R9, R9, R6);
        a.ld(R9, 0, R9);
        a.add(ACCC, ACCC, R9);
        a.j("dfs");
        a.bind("stage_again");
        a.slli(R9, R7, 3);
        a.li(R6, childs_a as i64);
        a.add(R9, R9, R6);
        a.ld(CV, 0, R9);
        a.slli(R10, CV, 3);
        a.li(R6, cost_a as i64);
        a.add(R10, R10, R6);
        a.ld(R10, 0, R10);
        a.add(CP, ACCC, R10);
        if allow_divide {
            emit_locked_add(&mut a, rt.tokens, 1);
            a.nthr(R12, "division_child");
            a.li(R6, -1);
            a.bne(R12, R6, "advance");
            emit_locked_add(&mut a, rt.tokens, -1);
        }
        a.push_reg(CV);
        a.push_reg(CP);
        a.addi(PENDING, PENDING, 1);
        a.j("advance");
        a.bind("dfs_next");
        a.beq(PENDING, Reg::ZERO, "subtree_done");
        a.pop_reg(ACCC);
        a.pop_reg(NODE);
        a.addi(PENDING, PENDING, -1);
        a.j("dfs");
        a.bind("subtree_done");
        // merge the local minimum into task_min[TASK]
        a.slli(R5, TASK, 3);
        a.li(R6, task_min as i64);
        a.add(R5, R5, R6);
        a.mlock(R5);
        a.ld(R7, 0, R5);
        a.bge(LMIN, R7, "merged");
        a.st(LMIN, 0, R5);
        a.bind("merged");
        a.munlock(R5);
        // pool thread: count the task done, fetch the next; divided
        // children die instead
        a.tid(R5);
        a.li(R6, pool as i64);
        a.bge(R5, R6, "division_die");
        a.li(R5, done_c as i64);
        a.mlock(R5);
        a.ld(R6, 0, R5);
        a.addi(R6, R6, 1);
        a.st(R6, 0, R5);
        a.munlock(R5);
        a.j("task_loop");
        a.bind("pool_done");
        emit_locked_add(&mut a, rt.tokens, -1);
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "pool_die");
        // thread 0: join, then max over the task minima
        emit_join_spin(&mut a, &rt, &l);
        a.mark_end(KERNEL_SECTION);
        a.li(R5, 0);
        a.li(R6, -BIG);
        a.bind("max_loop");
        a.li(R7, ntasks as i64);
        a.bge(R5, R7, "max_done");
        a.slli(R7, R5, 3);
        a.li(R8, task_min as i64);
        a.add(R7, R7, R8);
        a.ld(R9, 0, R7);
        a.bge(R6, R9, "max_next");
        a.mv(R6, R9);
        a.bind("max_next");
        a.addi(R5, R5, 1);
        a.j("max_loop");
        a.bind("max_done");
        a.out(R6);
        a.halt();
        a.bind("pool_die");
        emit_stack_free(&mut a, &rt);
        a.kthr();
        // ---- divided child workers ----
        a.bind("division_child");
        a.mv(NODE, CV);
        a.mv(ACCC, CP);
        a.li(LMIN, BIG);
        a.li(PENDING, 0);
        emit_stack_alloc(&mut a, &rt, &l);
        a.j("dfs");
        a.bind("division_die");
        emit_locked_add(&mut a, rt.tokens, -1);
        emit_stack_free(&mut a, &rt);
        a.kthr();

        let mut p = Program::new(a.assemble().expect("crafty assembles"), d.build(), 1 << 17);
        for _ in 0..pool {
            p.threads.push(ThreadSpec::at(0));
        }
        p
    }
}

impl Workload for Crafty {
    fn name(&self) -> &'static str {
        "crafty"
    }

    fn supports(&self, _variant: Variant) -> bool {
        true
    }

    fn program(&self, variant: Variant) -> Program {
        match variant {
            Variant::Sequential => self.build(1, false),
            Variant::Static(p) => self.build(p, false),
            Variant::Component => self.build(self.pool_threads, true),
        }
    }

    fn check(&self, output: &[OutValue]) -> Result<(), String> {
        expect_ints(output, &[self.expected_value()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::config::MachineConfig;
    use capsule_sim::machine::Machine;
    use capsule_sim::{Interp, InterpConfig};

    fn small() -> Crafty {
        Crafty::new(Tree::random(31, 6, 2, 3, 150, 40), 4)
    }

    #[test]
    fn pool_version_computes_value_on_interp() {
        let w = small();
        let p = w.program(Variant::Static(4));
        let out = Interp::new(&p, InterpConfig::default()).unwrap().run(200_000_000).unwrap();
        w.check(&out.output).unwrap();
    }

    #[test]
    fn sequential_pool_of_one_matches() {
        let w = small();
        let p = w.program(Variant::Sequential);
        let o = Machine::new(MachineConfig::table1_superscalar(), &p)
            .unwrap()
            .run(2_000_000_000)
            .unwrap();
        w.check(&o.output).unwrap();
    }

    #[test]
    fn pool_on_smt_matches() {
        let w = small();
        let p = w.program(Variant::Static(8));
        let o = Machine::new(MachineConfig::table1_smt(), &p).unwrap().run(2_000_000_000).unwrap();
        w.check(&o.output).unwrap();
    }

    #[test]
    fn component_with_pool_mostly_inhibits_division() {
        let w = Crafty::standard(33, 8);
        let p = w.program(Variant::Component);
        let o = Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(2_000_000_000).unwrap();
        w.check(&o.output).unwrap();
        // The pool occupies all 8 contexts, so probes can almost never
        // seize one (grants to the context stack remain possible).
        assert!(o.stats.divisions_requested > 0);
        let ctx_rate =
            o.stats.divisions_granted_context as f64 / o.stats.divisions_requested as f64;
        assert!(ctx_rate < 0.25, "expected mostly-denied context grants, rate {ctx_rate:.2}");
    }
}
