//! 175.vpr analog: FPGA routing by simultaneous multi-path exploration.
//!
//! Paper §5: *"In 175.vpr, the component implements FPGA routing and
//! placement by simultaneously exploring many circuit graph paths (up to
//! 8000)"*, with the parallel version being memory-bandwidth limited (the
//! basis of the cache-doubling sensitivity study).
//!
//! The analog is a negotiated maze router in the Pathfinder tradition the
//! original vpr uses: a 4-connected grid carries per-cell base costs and
//! congestion counters. Each iteration freezes the edge weights
//! (`base + congestion × penalty`), routes **all nets concurrently** —
//! the component worker divides the net list in half while probes are
//! granted, and each net is routed exactly with a central-list Dijkstra
//! over its private distance array — then backtraces each route and bumps
//! congestion. Congestion updates are batched per iteration, as parallel
//! Pathfinder implementations do (the paper notes its parallel vpr
//! converges in 9 iterations instead of 8 for the same reason — batched
//! negotiation changes the trajectory; here both variants batch so their
//! results stay comparable; see DESIGN.md).
//!
//! The reported value is the total routed cost of the last iteration.
//! The sequential variant is the same program with every probe denied:
//! one worker routes the nets one after another — the imperative
//! algorithm.

use capsule_core::OutValue;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;

use crate::datasets::Graph;
use crate::dijkstra::{
    emit_central_list_router, layout_graph, ROUTER_DIST_BASE, ROUTER_INLIST_BASE, ROUTER_LIST_BASE,
    UNREACHED,
};
use crate::rt::{
    emit_join_spin, emit_split_range_worker, emit_stack_alloc, emit_stack_free, init_runtime,
    Labels, T0, T1,
};
use crate::spec::KERNEL_SECTION;
use crate::{expect_ints, Variant, Workload};

/// Congestion penalty added per prior use of a cell.
pub const PENALTY: i64 = 13;

const PENDING: Reg = Reg(13);
const ITER: Reg = Reg(21);
const NI: Reg = Reg(19); // net index inside a leaf
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const R10: Reg = Reg(10);
const R11: Reg = Reg(11);
const R12: Reg = Reg(12);
const R14: Reg = Reg(14);
const R15: Reg = Reg(15);
const R16: Reg = Reg(16);
const R17: Reg = Reg(17);
const R18: Reg = Reg(18);

/// The vpr analog.
#[derive(Debug, Clone)]
pub struct Vpr {
    grid: Graph,
    base: Vec<i64>,
    nets: Vec<(u32, u32)>,
    iterations: usize,
}

impl Vpr {
    /// Builds the analog over a grid graph with `nets` (src, dst) pairs.
    pub fn new(grid: Graph, nets: Vec<(u32, u32)>, iterations: usize) -> Self {
        assert!(iterations >= 1 && !nets.is_empty());
        // Recover per-cell base costs: every grid edge into v carries
        // cost[v].
        let mut base = vec![0i64; grid.len()];
        for u in 0..grid.len() {
            for &(v, w) in &grid.adj[u] {
                base[v as usize] = w;
            }
        }
        Vpr { grid, base, nets, iterations }
    }

    /// Default evaluation instance: `side`×`side` grid, `k` nets between
    /// deterministic endpoints spread across the fabric.
    pub fn standard(seed: u64, side: usize, k: usize, iterations: usize) -> Self {
        let grid = Graph::grid(seed, side, 9);
        let n = side * side;
        let nets = (0..k)
            .map(|i| {
                let src = (i * 7919 + 3) % n;
                let mut dst = (i * 104729 + n / 2 + 11) % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                (src as u32, dst as u32)
            })
            .collect();
        Vpr::new(grid, nets, iterations)
    }

    /// Host-reference total routed cost of the final iteration,
    /// mirroring the simulated algorithm step for step (frozen weights
    /// per iteration, independent nets, batched congestion).
    pub fn reference_total(&self) -> i64 {
        let n = self.grid.len();
        let mut idx = Vec::with_capacity(n + 1);
        let mut dest = Vec::new();
        let mut acc = 0usize;
        for u in 0..n {
            idx.push(acc);
            for &(v, _) in &self.grid.adj[u] {
                dest.push(v as usize);
                acc += 1;
            }
        }
        idx.push(acc);
        let mut w = vec![0i64; acc];
        let mut cong = vec![0i64; n];
        let mut total = 0i64;
        for _ in 0..self.iterations {
            for e in 0..acc {
                let v = dest[e];
                w[e] = self.base[v] + cong[v] * PENALTY;
            }
            total = 0;
            let mut bumps = vec![0i64; n];
            for &(src, dst) in &self.nets {
                let dist = shortest(n, &idx, &dest, &w, src as usize);
                total += dist[dst as usize];
                // Backtrace with the same first-match rule as the program.
                let mut cur = dst as usize;
                while cur != src as usize {
                    let mut pred = None;
                    'scan: for e in idx[cur]..idx[cur + 1] {
                        let v = dest[e];
                        for e2 in idx[v]..idx[v + 1] {
                            if dest[e2] == cur {
                                if dist[v] + w[e2] == dist[cur] {
                                    pred = Some(v);
                                }
                                break;
                            }
                        }
                        if pred.is_some() {
                            break 'scan;
                        }
                    }
                    bumps[cur] += 1;
                    cur = pred.expect("backtrace must find a predecessor");
                }
            }
            for (c, b) in cong.iter_mut().zip(&bumps) {
                *c += b;
            }
        }
        total
    }

    /// Net count.
    pub fn nets(&self) -> usize {
        self.nets.len()
    }

    fn build(&self, allow_divide: bool) -> Program {
        let k = self.nets.len();
        let mut d = DataBuilder::new();
        let g = layout_graph(&mut d, &self.grid, UNREACHED);
        let n = g.n;
        d.label("base");
        let base = d.words(&self.base);
        d.label("cong");
        let cong = d.zeros(n * 8);
        let nets_flat: Vec<i64> =
            self.nets.iter().flat_map(|&(s, t)| [s as i64, t as i64]).collect();
        d.label("nets");
        let nets = d.words(&nets_flat);
        // Per-net router scratch: distance / list / in-list arrays.
        d.label("dist_all");
        let dist_all = d.zeros(k * n * 8);
        d.label("list_all");
        let list_all = d.zeros(k * n * 8);
        d.label("inlist_all");
        let inlist_all = d.zeros(k * n * 8);
        let total = d.word(0);
        let rt = init_runtime(&mut d, 1, 32, 4096);
        let edge_count = self.grid.edges() as i64;

        let mut a = Asm::new();
        let l = Labels::new("vpr");

        emit_stack_alloc(&mut a, &rt, &l);
        a.li(ITER, 0);
        a.bind("iter_loop");
        a.li(R5, self.iterations as i64);
        a.bge(ITER, R5, "report");
        // ---- serial: freeze edge weights from congestion ----
        a.li(R5, 0);
        a.bind("wloop");
        a.li(R6, edge_count);
        a.bge(R5, R6, "wdone");
        a.slli(R7, R5, 4);
        a.li(R6, g.edges as i64);
        a.add(R7, R7, R6);
        a.ld(R8, 0, R7); // v
        a.slli(R9, R8, 3);
        a.li(R6, base as i64);
        a.add(R6, R6, R9);
        a.ld(R10, 0, R6);
        a.li(R6, cong as i64);
        a.add(R6, R6, R9);
        a.ld(R11, 0, R6);
        a.muli(R11, R11, PENALTY);
        a.add(R10, R10, R11);
        a.st(R10, 8, R7);
        a.addi(R5, R5, 1);
        a.j("wloop");
        a.bind("wdone");
        // ---- serial: reset every net's distance array ----
        a.li(R5, dist_all as i64);
        a.li(R6, (k * n) as i64);
        a.li(R7, UNREACHED);
        a.bind("rloop");
        a.st(R7, 0, R5);
        a.addi(R5, R5, 8);
        a.addi(R6, R6, -1);
        a.bne(R6, Reg::ZERO, "rloop");
        a.li(R5, total as i64);
        a.st(Reg::ZERO, 0, R5);
        // ---- componentized kernel: route all nets concurrently ----
        a.li(T0, rt.tokens as i64);
        a.li(T1, 1);
        a.st(T1, 0, T0);
        a.li(Reg::A0, 0);
        a.li(Reg::A1, k as i64);
        a.li(PENDING, 0);
        a.mark_start(KERNEL_SECTION);
        a.j("vn_work");
        a.bind("vn_finish");
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "vn_die");
        emit_join_spin(&mut a, &rt, &l);
        a.mark_end(KERNEL_SECTION);
        a.addi(ITER, ITER, 1);
        a.j("iter_loop");
        a.bind("report");
        a.li(R5, total as i64);
        a.ld(R6, 0, R5);
        a.out(R6);
        a.halt();
        a.bind("vn_die");
        emit_stack_free(&mut a, &rt);
        a.kthr();

        // ---- the net-range component worker ----
        emit_split_range_worker(&mut a, "vn", &rt, 1, allow_divide, |a| {
            a.mv(NI, Reg::A0);
            a.bind("vleaf_loop");
            a.bge(NI, Reg::A1, "vleaf_done");
            // per-net scratch bases
            a.li(R5, (n * 8) as i64);
            a.mul(ROUTER_DIST_BASE, NI, R5);
            a.li(R5, dist_all as i64);
            a.add(ROUTER_DIST_BASE, ROUTER_DIST_BASE, R5);
            a.li(R5, (n * 8) as i64);
            a.mul(ROUTER_LIST_BASE, NI, R5);
            a.li(R5, list_all as i64);
            a.add(ROUTER_LIST_BASE, ROUTER_LIST_BASE, R5);
            a.li(R5, (n * 8) as i64);
            a.mul(ROUTER_INLIST_BASE, NI, R5);
            a.li(R5, inlist_all as i64);
            a.add(ROUTER_INLIST_BASE, ROUTER_INLIST_BASE, R5);
            // src into A0 (the router input; our range-lo is now in NI)
            a.slli(R5, NI, 4);
            a.li(R6, nets as i64);
            a.add(R5, R5, R6);
            a.ld(Reg::A0, 0, R5);
            a.j("vr_route");
            a.bind("vr_route_done");
            // dst, accumulate dist[dst]
            a.slli(R5, NI, 4);
            a.li(R6, nets as i64);
            a.add(R5, R5, R6);
            a.ld(R7, 8, R5); // dst
            a.mv(R9, Reg::A0); // src (preserved by the router)
            a.mv(R6, R7); // cur = dst
            a.slli(R5, R7, 3);
            a.add(R5, ROUTER_DIST_BASE, R5);
            a.ld(R8, 0, R5); // dist[dst]
            a.li(R5, total as i64);
            a.mlock(R5);
            a.ld(R10, 0, R5);
            a.add(R10, R10, R8);
            a.st(R10, 0, R5);
            a.munlock(R5);
            // backtrace with the frozen weights and this net's distances
            a.bind("bt_loop");
            a.beq(R6, R9, "bt_done");
            a.slli(R10, R6, 3);
            a.li(R5, g.idx as i64);
            a.add(R10, R10, R5);
            a.ld(R11, 8, R10);
            a.ld(R10, 0, R10); // e = idx[cur]
            a.bind("bt_scan");
            a.bge(R10, R11, "bt_done"); // defensive
            a.slli(R12, R10, 4);
            a.li(R5, g.edges as i64);
            a.add(R12, R12, R5);
            a.ld(R12, 0, R12); // v
            a.slli(R14, R12, 3);
            a.li(R5, g.idx as i64);
            a.add(R14, R14, R5);
            a.ld(R15, 8, R14);
            a.ld(R14, 0, R14); // e2 = idx[v]
            a.bind("bt_scan2");
            a.bge(R14, R15, "bt_next");
            a.slli(R16, R14, 4);
            a.li(R5, g.edges as i64);
            a.add(R16, R16, R5);
            a.ld(R17, 0, R16);
            a.beq(R17, R6, "bt_found_edge");
            a.addi(R14, R14, 1);
            a.j("bt_scan2");
            a.bind("bt_found_edge");
            a.ld(R16, 8, R16); // w(v->cur), frozen
            a.slli(R17, R12, 3);
            a.add(R17, ROUTER_DIST_BASE, R17);
            a.ld(R17, 0, R17);
            a.add(R17, R17, R16);
            a.slli(R18, R6, 3);
            a.add(R18, ROUTER_DIST_BASE, R18);
            a.ld(R18, 0, R18);
            a.beq(R17, R18, "bt_found");
            a.bind("bt_next");
            a.addi(R10, R10, 1);
            a.j("bt_scan");
            a.bind("bt_found");
            // cong[cur] += 1 (locked: nets bump concurrently)
            a.slli(R18, R6, 3);
            a.li(R5, cong as i64);
            a.add(R18, R18, R5);
            a.mlock(R18);
            a.ld(R17, 0, R18);
            a.addi(R17, R17, 1);
            a.st(R17, 0, R18);
            a.munlock(R18);
            a.mv(R6, R12);
            a.j("bt_loop");
            a.bind("bt_done");
            a.addi(NI, NI, 1);
            a.j("vleaf_loop");
            a.bind("vleaf_done");
        });
        emit_central_list_router(&mut a, "vr", &g);

        Program::new(a.assemble().expect("vpr assembles"), d.build(), 1 << 18)
            .with_thread(ThreadSpec::at(0))
    }
}

fn shortest(n: usize, idx: &[usize], dest: &[usize], w: &[i64], src: usize) -> Vec<i64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![i64::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0i64, src)));
    while let Some(Reverse((dv, u))) = heap.pop() {
        if dv > dist[u] {
            continue;
        }
        for e in idx[u]..idx[u + 1] {
            let v = dest[e];
            let nd = dv + w[e];
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

impl Workload for Vpr {
    fn name(&self) -> &'static str {
        "vpr"
    }

    fn supports(&self, variant: Variant) -> bool {
        !matches!(variant, Variant::Static(_))
    }

    fn program(&self, variant: Variant) -> Program {
        match variant {
            Variant::Sequential => self.build(false),
            Variant::Component => self.build(true),
            Variant::Static(_) => panic!("vpr has no static variant"),
        }
    }

    fn check(&self, output: &[OutValue]) -> Result<(), String> {
        expect_ints(output, &[self.reference_total()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::config::MachineConfig;
    use capsule_sim::machine::Machine;
    use capsule_sim::{Interp, InterpConfig};

    fn small() -> Vpr {
        Vpr::standard(13, 7, 3, 2)
    }

    #[test]
    fn component_routes_correctly_on_interp() {
        let w = small();
        let p = w.program(Variant::Component);
        let out = Interp::new(&p, InterpConfig::default()).unwrap().run(500_000_000).unwrap();
        w.check(&out.output).unwrap();
    }

    #[test]
    fn component_routes_on_somt() {
        let w = small();
        let p = w.program(Variant::Component);
        let o = Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(2_000_000_000).unwrap();
        w.check(&o.output).unwrap();
        assert!(o.stats.divisions_granted() > 0);
        let frac = o.sections.section_fraction(KERNEL_SECTION, o.stats.cycles);
        assert!(frac > 0.3, "routing should dominate: {frac}");
    }

    #[test]
    fn sequential_matches() {
        let w = small();
        let p = w.program(Variant::Sequential);
        let o = Machine::new(MachineConfig::table1_superscalar(), &p)
            .unwrap()
            .run(2_000_000_000)
            .unwrap();
        w.check(&o.output).unwrap();
        assert_eq!(o.stats.divisions_granted(), 0);
    }

    #[test]
    fn component_beats_sequential_with_enough_nets() {
        let w = Vpr::standard(19, 10, 8, 2);
        let comp = Machine::new(MachineConfig::table1_somt(), &w.program(Variant::Component))
            .unwrap()
            .run(5_000_000_000)
            .unwrap();
        let seq =
            Machine::new(MachineConfig::table1_superscalar(), &w.program(Variant::Sequential))
                .unwrap()
                .run(5_000_000_000)
                .unwrap();
        w.check(&comp.output).unwrap();
        w.check(&seq.output).unwrap();
        let speedup = seq.cycles() as f64 / comp.cycles() as f64;
        assert!(speedup > 1.5, "vpr speedup {speedup:.2}");
    }

    #[test]
    fn congestion_changes_routes_across_iterations() {
        let one = Vpr::standard(13, 7, 3, 1).reference_total();
        let three = Vpr::standard(13, 7, 3, 3).reference_total();
        assert!(one <= three, "congestion penalties should not reduce total cost");
    }
}
