//! 256.bzip2 analog: block-sorting compression's string sort.
//!
//! Paper §5: *"In 256.bzip2, a block-sorting compression algorithm, the
//! component targets the string sorting process."* The kernel here is a
//! component quicksort over the suffix array of a text block with a
//! lexicographic suffix comparator — the heart of the Burrows–Wheeler
//! block sort. Serial phases around it (run-length counting before, a
//! BWT-style last-column checksum after) stand in for the ~80 % of bzip2
//! the paper leaves untouched (Table 2 reports 20 % componentized).

use capsule_core::OutValue;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;

use crate::datasets::suffix_sort_reference;
use crate::quicksort::{
    emit_insertion, emit_partition, emit_sort_body, layout_array, ArrayLayout, KeyKind,
};
use crate::rt::{emit_join_spin, emit_stack_alloc, emit_stack_free, init_runtime, Labels};
use crate::spec::KERNEL_SECTION;
use crate::{expect_ints, Variant, Workload};

const PENDING: Reg = Reg(13);
const ACC: Reg = Reg(21); // serial-phase accumulator (walk-safe)
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);

/// The bzip2 analog over one text block.
#[derive(Debug, Clone)]
pub struct Bzip2 {
    block: Vec<u8>,
    /// Serial passes before/after the sort (sizes the non-kernel share).
    pub serial_passes: usize,
}

impl Bzip2 {
    /// Builds the analog for `block`.
    pub fn new(block: Vec<u8>, serial_passes: usize) -> Self {
        assert!(!block.is_empty());
        Bzip2 { block, serial_passes }
    }

    /// Default evaluation instance over repetitive text.
    pub fn standard(seed: u64, n: usize) -> Self {
        Bzip2::new(crate::datasets::lzw_text(seed, n, 16), 18)
    }

    /// The block being sorted.
    pub fn block(&self) -> &[u8] {
        &self.block
    }

    /// Host-reference outputs: `[rle_acc, sa_checksum]`.
    pub fn expected(&self) -> Vec<i64> {
        let n = self.block.len() as i64;
        // RLE pass accumulator (one pass), repeated serial_passes*2 times.
        let mut acc = 0i64;
        for _ in 0..self.serial_passes * 2 {
            let mut prev = -1i64;
            for &b in &self.block {
                if b as i64 != prev {
                    acc = acc.wrapping_add(b as i64 + 1);
                    prev = b as i64;
                }
                acc = acc.wrapping_mul(3).wrapping_add(1) % 1_000_003;
            }
        }
        let sa = suffix_sort_reference(&self.block);
        let mut ck = 0i64;
        for (i, &s) in sa.iter().enumerate() {
            // BWT last column: block[(s + n - 1) % n]
            let last = self.block[((s + n - 1) % n) as usize] as i64;
            ck = ck.wrapping_add((i as i64 + 1).wrapping_mul(s + 1)).wrapping_add(last);
        }
        vec![acc, ck]
    }

    fn emit_serial_pass(&self, a: &mut Asm, block: u64, l: &Labels) {
        let lp = l.fresh("rle");
        let skip = l.fresh("rle_skip");
        let n = self.block.len() as i64;
        a.li(R5, 0); // i
        a.li(R6, -1); // prev
        a.bind(&lp);
        a.li(R7, block as i64);
        a.add(R7, R7, R5);
        a.ldb(R8, 0, R7);
        a.beq(R8, R6, &skip);
        a.addi(R9, R8, 1);
        a.add(ACC, ACC, R9);
        a.mv(R6, R8);
        a.bind(&skip);
        a.muli(ACC, ACC, 3);
        a.addi(ACC, ACC, 1);
        a.remi(ACC, ACC, 1_000_003);
        a.addi(R5, R5, 1);
        a.li(R7, n);
        a.blt(R5, R7, &lp);
    }

    fn build(&self, allow_divide: bool) -> Program {
        let n = self.block.len();
        let mut d = DataBuilder::new();
        d.label("block");
        let block = d.raw(&self.block);
        d.align(8);
        let sa_init: Vec<i64> = (0..n as i64).collect();
        let arr: ArrayLayout = layout_array(&mut d, &sa_init);
        let rt = init_runtime(&mut d, 1, 32, 8192);
        let kk = KeyKind::Suffix { block, len: n };

        let mut a = Asm::new();
        let l = Labels::new("bz");

        emit_stack_alloc(&mut a, &rt, &l);
        a.li(ACC, 0);
        for _ in 0..self.serial_passes {
            self.emit_serial_pass(&mut a, block, &l);
        }
        // ---- componentized kernel: suffix quicksort ----
        a.mark_start(KERNEL_SECTION);
        a.li(PENDING, 0);
        a.li(Reg::A0, 0);
        a.li(Reg::A1, n as i64);
        a.j("w_sort");
        a.bind("w_finish");
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "w_die");
        emit_join_spin(&mut a, &rt, &l);
        a.mark_end(KERNEL_SECTION);
        // ---- serial post: RLE passes + BWT-checksum ----
        for _ in 0..self.serial_passes {
            self.emit_serial_pass(&mut a, block, &l);
        }
        a.out(ACC);
        let (i, ck, s, t, u) = (R5, R6, R7, R8, R9);
        a.li(i, 0);
        a.li(ck, 0);
        a.bind("ck_loop");
        a.li(t, n as i64);
        a.bge(i, t, "ck_done");
        a.slli(t, i, 3);
        a.li(u, arr.base as i64);
        a.add(t, t, u);
        a.ld(s, 0, t); // sa[i]
                       // last = block[(s + n - 1) % n]
        a.addi(t, s, n as i64 - 1);
        a.remi(t, t, n as i64);
        a.li(u, block as i64);
        a.add(t, t, u);
        a.ldb(t, 0, t);
        a.addi(u, i, 1);
        a.addi(s, s, 1);
        a.mul(u, u, s);
        a.add(ck, ck, u);
        a.add(ck, ck, t);
        a.addi(i, i, 1);
        a.j("ck_loop");
        a.bind("ck_done");
        a.out(ck);
        a.halt();
        a.bind("w_die");
        emit_stack_free(&mut a, &rt);
        a.kthr();
        emit_sort_body(&mut a, "w", &arr, &rt, allow_divide);
        emit_partition(&mut a, &arr, kk, &l);
        emit_insertion(&mut a, &arr, kk, &l);

        Program::new(a.assemble().expect("bzip2 assembles"), d.build(), 1 << 17)
            .with_thread(ThreadSpec::at(0))
    }
}

impl Workload for Bzip2 {
    fn name(&self) -> &'static str {
        "bzip2"
    }

    fn supports(&self, variant: Variant) -> bool {
        !matches!(variant, Variant::Static(_))
    }

    fn program(&self, variant: Variant) -> Program {
        match variant {
            Variant::Sequential => self.build(false),
            Variant::Component => self.build(true),
            Variant::Static(_) => panic!("bzip2 has no static variant"),
        }
    }

    fn check(&self, output: &[OutValue]) -> Result<(), String> {
        expect_ints(output, &self.expected())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::config::MachineConfig;
    use capsule_sim::machine::Machine;
    use capsule_sim::{Interp, InterpConfig};

    fn small() -> Bzip2 {
        Bzip2::new(crate::datasets::lzw_text(21, 160, 6), 2)
    }

    #[test]
    fn component_suffix_sort_on_interp() {
        let w = small();
        let p = w.program(Variant::Component);
        let mut i = Interp::new(&p, InterpConfig::default()).unwrap();
        let out = i.run(1_000_000_000).unwrap();
        w.check(&out.output).unwrap();
        // Stronger: the suffix array in memory equals the host reference.
        let base = p.symbol("arr");
        let expected = suffix_sort_reference(w.block());
        for (k, &e) in expected.iter().enumerate() {
            assert_eq!(i.memory().read_i64(base + 8 * k as u64).unwrap(), e, "sa[{k}]");
        }
    }

    #[test]
    fn component_on_somt() {
        let w = small();
        let p = w.program(Variant::Component);
        let o = Machine::new(MachineConfig::table1_somt(), &p).unwrap().run(2_000_000_000).unwrap();
        w.check(&o.output).unwrap();
        assert!(o.stats.divisions_requested > 0);
    }

    #[test]
    fn sequential_matches() {
        let w = small();
        let p = w.program(Variant::Sequential);
        let o = Machine::new(MachineConfig::table1_superscalar(), &p)
            .unwrap()
            .run(2_000_000_000)
            .unwrap();
        w.check(&o.output).unwrap();
    }
}
