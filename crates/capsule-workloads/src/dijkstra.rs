//! Dijkstra — the paper's running example (§2, Figures 1–3).
//!
//! Three variants:
//!
//! - **Sequential**: the classic imperative algorithm with the central
//!   tagged-node list the paper's §2 describes ("Normal") — a linear scan
//!   selects the next node each iteration.
//! - **Component**: the paper's component walk. A worker stands on a node
//!   with its accumulated path length; it dies when the node already has a
//!   shorter recorded path, updates the node otherwise (under a per-node
//!   `mlock`), and explores child edges by *dividing itself* via `nthr` —
//!   denied probes push the edge onto the worker's private pooled stack
//!   instead. A token counter joins the group.
//! - **Static**: the same walk with division replaced by static ownership:
//!   `k` loader threads round-robin the root's edges and never divide (the
//!   paper derives its static version from a profile of the component run;
//!   a fixed edge partition is that distribution at t = 0).
//!
//! All variants emit one checksum: the sum of the final distance array.

use capsule_core::OutValue;
use capsule_isa::asm::Asm;
use capsule_isa::program::{DataBuilder, Program, ThreadSpec};
use capsule_isa::reg::Reg;

use crate::datasets::Graph;
use crate::rt::{
    emit_join_spin, emit_locked_add, emit_stack_alloc, emit_stack_free, init_runtime, Labels,
    Runtime,
};
use crate::{expect_ints, Variant, Workload};

/// "Infinity" marker for unvisited nodes (large enough that path sums
/// never reach it, small enough that additions cannot overflow).
pub const UNREACHED: i64 = 1 << 60;

/// Addresses of the graph image in data memory.
#[derive(Debug, Clone, Copy)]
pub struct GraphLayout {
    /// Distance array base (n words).
    pub dist: u64,
    /// CSR index array base (n+1 words).
    pub idx: u64,
    /// Edge array base (pairs of words: destination, weight).
    pub edges: u64,
    /// Node count.
    pub n: usize,
}

/// Lays the graph out in CSR form. `dist0` seeds `dist[0]` (0 for the
/// static variant whose workers never visit the root, [`UNREACHED`] for
/// the component walk which records it itself).
pub fn layout_graph(d: &mut DataBuilder, g: &Graph, dist0: i64) -> GraphLayout {
    let n = g.len();
    let mut dist_init = vec![UNREACHED; n];
    dist_init[0] = dist0;
    d.label("dist");
    let dist = d.words(&dist_init);

    let mut idx = Vec::with_capacity(n + 1);
    let mut edges = Vec::new();
    let mut acc = 0i64;
    for u in 0..n {
        idx.push(acc);
        for &(v, w) in &g.adj[u] {
            edges.push(v as i64);
            edges.push(w);
            acc += 1;
        }
    }
    idx.push(acc);
    d.label("idx");
    let idx_addr = d.words(&idx);
    d.label("edges");
    let edges_addr = d.words(&edges);
    GraphLayout { dist, idx: idx_addr, edges: edges_addr, n }
}

// Worker registers (see rt.rs for the reserved ranges).
const U: Reg = Reg::A0; // current node
const PLEN: Reg = Reg::A1; // accumulated path length
const CV: Reg = Reg::A2; // staged child node
const CP: Reg = Reg::A3; // staged child path length
const PENDING: Reg = Reg(13); // private-stack entry count
const R5: Reg = Reg(5);
const R6: Reg = Reg(6);
const R7: Reg = Reg(7);
const R8: Reg = Reg(8);
const R9: Reg = Reg(9);
const R10: Reg = Reg(10);
const R11: Reg = Reg(11);
const R12: Reg = Reg(12);

/// Emits the shared walk body. Control enters at `{p}_node_check` with
/// `U`/`PLEN` set and leaves to `{p}_finish` (bound by the caller) when
/// the worker's private work is exhausted. With `allow_divide`, edges are
/// offered to the architecture through `nthr` before falling back to the
/// private stack.
pub fn emit_walk_body(a: &mut Asm, p: &str, g: &GraphLayout, rt: &Runtime, allow_divide: bool) {
    a.bind(format!("{p}_node_check"));
    // r5 = &dist[u]
    a.slli(R5, U, 3);
    a.li(R6, g.dist as i64);
    a.add(R5, R5, R6);
    a.mlock(R5);
    a.ld(R6, 0, R5);
    a.bge(PLEN, R6, &format!("{p}_dead_unlock"));
    a.st(PLEN, 0, R5);
    a.munlock(R5);
    // r7 = idx[u], r8 = idx[u+1]
    a.slli(R9, U, 3);
    a.li(R6, g.idx as i64);
    a.add(R9, R9, R6);
    a.ld(R7, 0, R9);
    a.ld(R8, 8, R9);
    a.bind(format!("{p}_edges"));
    a.sub(R9, R8, R7);
    a.beq(R9, Reg::ZERO, &format!("{p}_path_done"));
    a.li(R6, 1);
    a.beq(R9, R6, &format!("{p}_tail"));
    // Load edge r7 and stage the child's arguments.
    a.slli(R9, R7, 4);
    a.li(R6, g.edges as i64);
    a.add(R9, R9, R6);
    a.ld(R10, 0, R9); // v
    a.ld(R11, 8, R9); // w
    a.mv(CV, R10);
    a.add(CP, PLEN, R11);
    if allow_divide {
        // One token for the child worker, counted before it can exist.
        emit_locked_add(a, rt.tokens, 1);
        // The probe of Figure 2: granted → the child (a register copy
        // starting at {p}_child) owns the edge; denied (−1) → keep it.
        a.nthr(R12, &format!("{p}_child"));
        a.li(R6, -1);
        a.bne(R12, R6, &format!("{p}_advance"));
        // denied: no child was born — return its token
        emit_locked_add(a, rt.tokens, -1);
    }
    // Denied (or never dividing): defer the edge to the private stack.
    // The worker's own token covers everything it has pending.
    a.push_reg(CV);
    a.push_reg(CP);
    a.addi(PENDING, PENDING, 1);
    a.bind(format!("{p}_advance"));
    a.addi(R7, R7, 1);
    a.j(&format!("{p}_edges"));
    // Last edge: move along it instead of spawning (tail call).
    a.bind(format!("{p}_tail"));
    a.slli(R9, R7, 4);
    a.li(R6, g.edges as i64);
    a.add(R9, R9, R6);
    a.ld(R10, 0, R9);
    a.ld(R11, 8, R9);
    a.mv(U, R10);
    a.add(PLEN, PLEN, R11);
    a.j(&format!("{p}_node_check"));
    // Sub-optimal path: the worker's current walk dies (Figure 1, A.C.E).
    a.bind(format!("{p}_dead_unlock"));
    a.munlock(R5);
    a.bind(format!("{p}_path_done"));
    a.bne(PENDING, Reg::ZERO, &format!("{p}_resume"));
    // worker exhausted: release its token and finish
    emit_locked_add(a, rt.tokens, -1);
    a.j(&format!("{p}_finish"));
    a.bind(format!("{p}_resume"));
    a.pop_reg(PLEN);
    a.pop_reg(U);
    a.addi(PENDING, PENDING, -1);
    a.j(&format!("{p}_node_check"));
    // Child entry: adopt the staged edge, grab a pooled stack, walk.
    a.bind(format!("{p}_child"));
    a.mv(U, CV);
    a.mv(PLEN, CP);
    a.li(PENDING, 0);
    let l = Labels::new(format!("{p}_c"));
    emit_stack_alloc(a, rt, &l);
    a.j(&format!("{p}_node_check"));
}

/// Emits the post-join checksum: sum of `dist[0..n]` → `out`, `halt`.
pub fn emit_checksum_and_halt(a: &mut Asm, g: &GraphLayout) {
    a.li(R5, g.dist as i64);
    a.li(R6, g.n as i64);
    a.li(R7, 0);
    a.bind("checksum_loop");
    a.ld(R9, 0, R5);
    a.add(R7, R7, R9);
    a.addi(R5, R5, 8);
    a.addi(R6, R6, -1);
    a.bne(R6, Reg::ZERO, "checksum_loop");
    a.out(R7);
    a.halt();
}

/// The Dijkstra workload over one random graph.
#[derive(Debug, Clone)]
pub struct Dijkstra {
    graph: Graph,
    /// Componentized-section mark id used by the component variant.
    pub section: u16,
}

impl Dijkstra {
    /// Builds the workload for `graph`.
    pub fn new(graph: Graph) -> Self {
        Dijkstra { graph, section: 1 }
    }

    /// The paper's Figure 3 data sets: 1000-node random graphs.
    pub fn figure3(seed: u64, n: usize) -> Self {
        Dijkstra::new(Graph::random(seed, n, 3, 64))
    }

    /// Host-reference checksum (sum of shortest distances).
    pub fn expected_checksum(&self) -> i64 {
        self.graph.shortest_distances(0).iter().sum()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    fn component_program(&self) -> Program {
        let mut d = DataBuilder::new();
        let g = layout_graph(&mut d, &self.graph, UNREACHED);
        let rt = init_runtime(&mut d, 1, 32, 4096);
        let mut a = Asm::new();
        let l = Labels::new("dij");

        // Ancestor entry.
        a.mark_start(self.section);
        a.li(PENDING, 0);
        a.li(U, 0);
        a.li(PLEN, 0);
        emit_stack_alloc(&mut a, &rt, &l);
        a.j("w_node_check");
        a.bind("w_finish");
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "w_die");
        emit_join_spin(&mut a, &rt, &l);
        a.mark_end(self.section);
        emit_checksum_and_halt(&mut a, &g);
        a.bind("w_die");
        emit_stack_free(&mut a, &rt);
        a.kthr();
        emit_walk_body(&mut a, "w", &g, &rt, true);

        Program::new(a.assemble().expect("dijkstra component assembles"), d.build(), 1 << 16)
            .with_thread(ThreadSpec::at(0))
    }

    fn static_program(&self, threads: usize) -> Program {
        assert!(threads >= 1);
        let mut d = DataBuilder::new();
        let g = layout_graph(&mut d, &self.graph, 0);
        let rt = init_runtime(&mut d, threads as i64, threads + 2, 4096);
        let root_edges = self.graph.adj[0].len() as i64;
        let mut a = Asm::new();
        let l = Labels::new("dijs");
        let my = Reg(21);

        // Each thread claims root edges my, my+k, my+2k, ...
        a.li(PENDING, 0);
        emit_stack_alloc(&mut a, &rt, &l);
        a.mv(R5, my);
        a.bind("assign");
        a.li(R6, root_edges);
        a.bge(R5, R6, "assigned");
        a.slli(R9, R5, 4);
        a.li(R6, g.edges as i64);
        a.add(R9, R9, R6);
        a.ld(CV, 0, R9);
        a.ld(CP, 8, R9);
        a.push_reg(CV);
        a.push_reg(CP);
        a.addi(PENDING, PENDING, 1);
        a.addi(R5, R5, threads as i64);
        a.j("assign");
        a.bind("assigned");
        // The thread's own "assignment" work item is done: release its
        // token and start draining the pending edges.
        a.j("w_path_done");
        a.bind("w_finish");
        a.tid(R5);
        a.bne(R5, Reg::ZERO, "w_die");
        emit_join_spin(&mut a, &rt, &l);
        emit_checksum_and_halt(&mut a, &g);
        a.bind("w_die");
        emit_stack_free(&mut a, &rt);
        a.kthr();
        emit_walk_body(&mut a, "w", &g, &rt, false);

        let mut p =
            Program::new(a.assemble().expect("dijkstra static assembles"), d.build(), 1 << 16);
        for t in 0..threads {
            p.threads.push(ThreadSpec::at(0).with_reg(my, t as i64));
        }
        p
    }

    fn sequential_program(&self) -> Program {
        let mut d = DataBuilder::new();
        let g = layout_graph(&mut d, &self.graph, UNREACHED);
        d.label("list");
        let list = d.zeros(g.n * 8);
        d.label("inlist");
        let inlist = d.zeros(g.n * 8);
        let mut a = Asm::new();
        a.li(Reg::A0, 0); // source node
        a.li(ROUTER_DIST_BASE, g.dist as i64);
        a.li(ROUTER_LIST_BASE, list as i64);
        a.li(ROUTER_INLIST_BASE, inlist as i64);
        a.j("sq_route");
        a.bind("sq_route_done");
        emit_checksum_and_halt(&mut a, &g);
        emit_central_list_router(&mut a, "sq", &g);

        Program::new(a.assemble().expect("dijkstra sequential assembles"), d.build(), 1 << 17)
            .with_thread(ThreadSpec::at(0))
    }
}

/// Base registers used by [`emit_central_list_router`]: the caller loads
/// the distance, list, and in-list array base addresses here so several
/// router instances (e.g. one per routed net) can share one emitted body.
pub const ROUTER_DIST_BASE: Reg = Reg(20);
/// List-array base register (see [`ROUTER_DIST_BASE`]).
pub const ROUTER_LIST_BASE: Reg = Reg(22);
/// In-list-array base register (see [`ROUTER_DIST_BASE`]).
pub const ROUTER_INLIST_BASE: Reg = Reg(23);

/// Emits the classic imperative Dijkstra of §2 ("Normal"): a central list
/// holds the tagged nodes; each step scans it for the closest one. Enter
/// at `{p}_route` with the source node in `A0`, the scratch-array bases in
/// [`ROUTER_DIST_BASE`]/[`ROUTER_LIST_BASE`]/[`ROUTER_INLIST_BASE`], and
/// the distance array initialized to [`UNREACHED`]; control leaves to
/// `{p}_route_done` (bound by the caller) with the distances filled.
/// Clobbers `r5`–`r18`; preserves `r19`–`r23` and `A1`–`A5`. The in-list
/// array must be all-zero on entry and is left all-zero on exit.
pub fn emit_central_list_router(a: &mut Asm, p: &str, g: &GraphLayout) {
    let (count, besti, bestd, i, tmp, addr, di) =
        (Reg(5), Reg(6), Reg(7), Reg(8), Reg(9), Reg(10), Reg(11));
    let (u, eidx, eend, v, w, nd) = (Reg(12), Reg(14), Reg(15), Reg(16), Reg(17), Reg(18));

    a.bind(format!("{p}_route"));
    // dist[src] = 0; list = [src]; inlist[src] = 1
    a.slli(tmp, Reg::A0, 3);
    a.add(addr, ROUTER_DIST_BASE, tmp);
    a.st(Reg::ZERO, 0, addr);
    a.add(addr, ROUTER_INLIST_BASE, tmp);
    a.li(di, 1);
    a.st(di, 0, addr);
    a.st(Reg::A0, 0, ROUTER_LIST_BASE);
    a.li(count, 1);
    a.bind(format!("{p}_select"));
    a.beq(count, Reg::ZERO, &format!("{p}_route_done"));
    // scan the central list for the closest tagged node
    a.li(besti, 0);
    a.li(bestd, UNREACHED);
    a.li(i, 0);
    a.bind(format!("{p}_scan"));
    a.bge(i, count, &format!("{p}_scanned"));
    a.slli(tmp, i, 3);
    a.add(addr, ROUTER_LIST_BASE, tmp);
    a.ld(u, 0, addr);
    a.slli(tmp, u, 3);
    a.add(addr, ROUTER_DIST_BASE, tmp);
    a.ld(di, 0, addr);
    a.bge(di, bestd, &format!("{p}_scan_next"));
    a.mv(bestd, di);
    a.mv(besti, i);
    a.bind(format!("{p}_scan_next"));
    a.addi(i, i, 1);
    a.j(&format!("{p}_scan"));
    a.bind(format!("{p}_scanned"));
    // u = list[besti]; swap-remove with the last entry
    a.slli(tmp, besti, 3);
    a.add(addr, ROUTER_LIST_BASE, tmp);
    a.ld(u, 0, addr);
    a.addi(count, count, -1);
    a.slli(tmp, count, 3);
    a.add(tmp, ROUTER_LIST_BASE, tmp);
    a.ld(tmp, 0, tmp);
    a.st(tmp, 0, addr);
    a.slli(tmp, u, 3);
    a.add(addr, ROUTER_INLIST_BASE, tmp);
    a.st(Reg::ZERO, 0, addr);
    // relax u's edges
    a.slli(tmp, u, 3);
    a.li(addr, g.idx as i64);
    a.add(addr, addr, tmp);
    a.ld(eidx, 0, addr);
    a.ld(eend, 8, addr);
    a.bind(format!("{p}_relax"));
    a.bge(eidx, eend, &format!("{p}_select"));
    a.slli(tmp, eidx, 4);
    a.li(addr, g.edges as i64);
    a.add(addr, addr, tmp);
    a.ld(v, 0, addr);
    a.ld(w, 8, addr);
    a.add(nd, bestd, w);
    a.slli(tmp, v, 3);
    a.add(addr, ROUTER_DIST_BASE, tmp);
    a.ld(di, 0, addr);
    a.bge(nd, di, &format!("{p}_relax_next"));
    a.st(nd, 0, addr);
    // tag v in the central list if it is not there yet
    a.add(addr, ROUTER_INLIST_BASE, tmp);
    a.ld(di, 0, addr);
    a.bne(di, Reg::ZERO, &format!("{p}_relax_next"));
    a.li(di, 1);
    a.st(di, 0, addr);
    a.slli(addr, count, 3);
    a.add(addr, ROUTER_LIST_BASE, addr);
    a.st(v, 0, addr);
    a.addi(count, count, 1);
    a.bind(format!("{p}_relax_next"));
    a.addi(eidx, eidx, 1);
    a.j(&format!("{p}_relax"));
}

impl Workload for Dijkstra {
    fn name(&self) -> &'static str {
        "dijkstra"
    }

    fn supports(&self, _variant: Variant) -> bool {
        true
    }

    fn program(&self, variant: Variant) -> Program {
        match variant {
            Variant::Sequential => self.sequential_program(),
            Variant::Static(k) => self.static_program(k),
            Variant::Component => self.component_program(),
        }
    }

    fn check(&self, output: &[OutValue]) -> Result<(), String> {
        expect_ints(output, &[self.expected_checksum()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capsule_core::config::MachineConfig;
    use capsule_sim::machine::Machine;
    use capsule_sim::{Interp, InterpConfig};

    fn small() -> Dijkstra {
        Dijkstra::figure3(42, 60)
    }

    #[test]
    fn component_matches_reference_on_interp() {
        let w = small();
        let p = w.program(Variant::Component);
        let mut i = Interp::new(&p, InterpConfig::default()).unwrap();
        let out = i.run(50_000_000).unwrap();
        w.check(&out.output).unwrap();
        // Stronger: every per-node distance matches the host Dijkstra.
        let dist_base = p.symbol("dist");
        let expected = w.graph().shortest_distances(0);
        for (k, &e) in expected.iter().enumerate() {
            let got = i.memory().read_i64(dist_base + 8 * k as u64).unwrap();
            assert_eq!(got, e, "dist[{k}]");
        }
    }

    #[test]
    fn component_runs_on_somt_machine() {
        let w = small();
        let p = w.program(Variant::Component);
        let mut m = Machine::new(MachineConfig::table1_somt(), &p).unwrap();
        let o = m.run(200_000_000).unwrap();
        w.check(&o.output).unwrap();
        assert!(o.stats.divisions_requested > 0);
        assert!(o.stats.divisions_granted() > 0);
        assert!(o.sections.section_cycles(1) > 0);
    }

    #[test]
    fn component_runs_sequentially_when_denied() {
        let w = small();
        let p = w.program(Variant::Component);
        let mut m = Machine::new(MachineConfig::table1_superscalar(), &p).unwrap();
        let o = m.run(400_000_000).unwrap();
        w.check(&o.output).unwrap();
        assert_eq!(o.stats.divisions_granted(), 0);
    }

    #[test]
    fn static_variant_matches_reference() {
        let w = small();
        let p = w.program(Variant::Static(8));
        assert_eq!(p.threads.len(), 8);
        let mut m = Machine::new(MachineConfig::table1_smt(), &p).unwrap();
        let o = m.run(400_000_000).unwrap();
        w.check(&o.output).unwrap();
        assert_eq!(o.stats.divisions_requested, 0, "static version never probes");
    }

    #[test]
    fn sequential_variant_matches_reference() {
        let w = small();
        let p = w.program(Variant::Sequential);
        let mut m = Machine::new(MachineConfig::table1_superscalar(), &p).unwrap();
        let o = m.run(400_000_000).unwrap();
        w.check(&o.output).unwrap();
    }

    #[test]
    fn component_beats_sequential_on_somt() {
        let w = Dijkstra::figure3(7, 120);
        let comp = Machine::new(MachineConfig::table1_somt(), &w.program(Variant::Component))
            .unwrap()
            .run(500_000_000)
            .unwrap();
        let seq =
            Machine::new(MachineConfig::table1_superscalar(), &w.program(Variant::Sequential))
                .unwrap()
                .run(500_000_000)
                .unwrap();
        w.check(&comp.output).unwrap();
        w.check(&seq.output).unwrap();
        assert!(
            comp.cycles() < seq.cycles(),
            "component SOMT ({}) should beat sequential superscalar ({})",
            comp.cycles(),
            seq.cycles()
        );
    }
}
